"""Differential fast-path harness: fast and slow paths must be twins.

The cold-path optimisations (hop coalescing, pooled packets, cached wire
images, trace-free trials) are only admissible because they are invisible:
every country x protocol pair must produce the identical verdict, the
identical trace (when one is captured), and the identical cache key with
the fast path on or off. This suite runs the full matrix through both
paths and diffs everything observable.
"""

import pytest

from repro import fastpath
from repro.core import SERVER_STRATEGIES, deployed_strategy
from repro.runtime import TrialSpec, trial_seed

COUNTRIES = ["china", "india", "iran", "kazakhstan", None]
PROTOCOLS = ["dns", "ftp", "http", "https", "smtp"]
PAIRS = [(c, p) for c in COUNTRIES for p in PROTOCOLS]

# A verdict-diverse strategy sample: the first few deployed strategies.
STRATEGY_NUMBERS = sorted(SERVER_STRATEGIES)[:4]


def _run_both(spec, keep_trace=False):
    """Run ``spec`` with the fast path on, then off; return both results."""
    assert fastpath.enabled(), "suite assumes the default-on fast path"
    fast = spec.run(keep_trace=keep_trace)
    with fastpath.disabled():
        slow = spec.run(keep_trace=keep_trace)
    return fast, slow


def _assert_same_verdict(fast, slow, label):
    assert fast.succeeded == slow.succeeded, label
    assert fast.censored == slow.censored, label
    assert fast.outcome == slow.outcome, label


class TestVerdictEquivalence:
    @pytest.mark.parametrize("country,protocol", PAIRS)
    def test_baseline_matrix(self, country, protocol):
        """No strategy: every pair verdict-identical across paths."""
        for index in range(3):
            spec = TrialSpec.build(
                country, protocol, seed=trial_seed(11, index)
            )
            fast, slow = _run_both(spec)
            _assert_same_verdict(fast, slow, f"{country}/{protocol}#{index}")

    @pytest.mark.parametrize("number", STRATEGY_NUMBERS)
    @pytest.mark.parametrize("protocol", ["http", "smtp"])
    def test_strategy_matrix(self, number, protocol):
        """Deployed strategies: the tampered path is equivalence-checked
        against every censor (strategies stress the serializer patches)."""
        strategy = deployed_strategy(number)
        for country in COUNTRIES:
            for index in range(2):
                spec = TrialSpec.build(
                    country,
                    protocol,
                    server_strategy=strategy,
                    seed=trial_seed(13, index),
                )
                fast, slow = _run_both(spec)
                _assert_same_verdict(fast, slow, f"strategy{number}@{country}")

    def test_client_strategy_equivalence(self):
        from repro.core import CLIENT_SIDE_STRATEGIES, client_side_strategy

        name = sorted(CLIENT_SIDE_STRATEGIES)[0]
        spec = TrialSpec.build(
            "china",
            "http",
            client_strategy=client_side_strategy(name),
            seed=trial_seed(17, 0),
        )
        fast, slow = _run_both(spec)
        _assert_same_verdict(fast, slow, f"client:{name}")


class TestTraceEquivalence:
    """When a trace IS captured, it must be bit-identical across paths
    (the digest covers timestamps, event kinds, and exact wire bytes)."""

    @pytest.mark.parametrize("country,protocol", [
        ("china", "http"), ("china", "smtp"), ("china", "dns"),
        ("iran", "https"), ("india", "http"), ("kazakhstan", "https"),
        (None, "http"),
    ])
    def test_trace_digest_identical(self, country, protocol):
        spec = TrialSpec.build(country, protocol, seed=trial_seed(19, 0))
        fast, slow = _run_both(spec, keep_trace=True)
        assert fast.trace is not None and slow.trace is not None
        assert fast.trace.digest() == slow.trace.digest()

    def test_trace_digest_identical_with_strategy(self):
        number = STRATEGY_NUMBERS[0]
        spec = TrialSpec.build(
            "china",
            "smtp",
            server_strategy=deployed_strategy(number),
            seed=trial_seed(19, 1),
        )
        fast, slow = _run_both(spec, keep_trace=True)
        assert fast.trace.digest() == slow.trace.digest()

    def test_rate_only_trials_drop_the_trace(self):
        spec = TrialSpec.build("china", "http", seed=trial_seed(19, 2))
        fast, slow = _run_both(spec, keep_trace=False)
        assert fast.trace is None and slow.trace is None


class TestCacheKeyEquivalence:
    def test_spec_hash_is_path_independent_and_execution_stable(self):
        """The fast path must not perturb the canonical form: hashes are
        equal across paths and unchanged by running the trial."""
        for country, protocol, extra in [
            ("china", "smtp", {}),
            ("iran", "dns", {"workload": {"qname": "youtube.com"}}),
        ]:
            spec = TrialSpec.build(
                country, protocol,
                server_strategy=deployed_strategy(STRATEGY_NUMBERS[0]),
                seed=trial_seed(23, 0),
                **extra,
            )
            before = spec.canonical_key()
            spec.run()
            assert spec.canonical_key() == before
            with fastpath.disabled():
                twin = TrialSpec.build(
                    country, protocol,
                    server_strategy=deployed_strategy(STRATEGY_NUMBERS[0]),
                    seed=trial_seed(23, 0),
                    **extra,
                )
                twin.run()
                assert twin.canonical_key() == before
                assert twin.spec_hash() == spec.spec_hash()

    def test_capture_trace_never_enters_the_options(self):
        """``capture_trace`` is a run-time detail, not a spec field — it
        must not leak into ``options`` (and thus the cache key)."""
        spec = TrialSpec.build("china", "http", seed=trial_seed(23, 1))
        spec.run()
        assert "capture_trace" not in spec.options

    def test_executor_cache_hits_across_paths(self, tmp_path):
        """A result cached under the fast path is served for the same
        spec with the fast path off, and vice versa."""
        from repro.runtime import ResultCache, TrialExecutor

        specs = [
            TrialSpec.build("china", "smtp", seed=trial_seed(29, i))
            for i in range(4)
        ]
        cache = ResultCache(tmp_path / "a")
        warm_exec = TrialExecutor(workers=1, cache=cache)
        warm = warm_exec.run_batch(specs)
        assert warm_exec.last_stats.cold == len(specs)
        with fastpath.disabled():
            again_exec = TrialExecutor(workers=1, cache=cache)
            again = again_exec.run_batch(specs)
        assert again_exec.last_stats.warm == len(specs)
        for fast_result, slow_result in zip(warm, again):
            assert fast_result.succeeded == slow_result.succeeded
            assert fast_result.outcome == slow_result.outcome
