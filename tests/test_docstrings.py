"""The docstring lint (tools/check_docstrings.py) passes on the trees CI checks."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def load_checker():
    """Import tools/check_docstrings.py as a module (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO / "tools" / "check_docstrings.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_campaign_and_obs_trees_are_fully_documented():
    checker = load_checker()
    violations = checker.check_trees(
        [
            REPO / "src" / "repro" / "campaign",
            REPO / "src" / "repro" / "obs",
            REPO / "src" / "repro" / "censors" / "adaptive.py",
            REPO / "src" / "repro" / "core" / "evolution" / "coevolve.py",
        ]
    )
    assert violations == [], "\n".join(
        f"{path}:{line}: {message}" for path, line, message in violations
    )


def test_checker_flags_undocumented_public_api(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def exposed():\n    pass\n")
    checker = load_checker()
    messages = [message for _, _, message in checker.check_file(bad)]
    assert any("module" in m for m in messages)
    assert any("exposed" in m for m in messages)


def test_checker_exempts_private_and_nested(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text(
        '"""Module."""\n'
        "def _helper():\n    pass\n"
        "def public():\n"
        '    """Doc."""\n'
        "    def inner():\n        pass\n"
        "    return inner\n"
    )
    checker = load_checker()
    assert checker.check_file(ok) == []
