"""Tests for TrialSpec: canonical form, hashing, and execution."""

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial
from repro.runtime import SpecError, TrialSpec


class TestBuild:
    def test_strategy_objects_become_dsl_text(self):
        spec = TrialSpec.build("china", "http", deployed_strategy(1), seed=3)
        assert isinstance(spec.server_strategy, str)
        assert "[TCP:flags:SA]" in spec.server_strategy

    def test_strategy_strings_pass_through(self):
        dsl = "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/"
        spec = TrialSpec.build("kazakhstan", "http", dsl, seed=1)
        assert spec.server_strategy == dsl

    def test_none_strategy(self):
        spec = TrialSpec.build("china", "http", None, seed=0)
        assert spec.server_strategy is None

    def test_jsonable_options_accepted(self):
        spec = TrialSpec.build(
            "china", "http", None, seed=0,
            workload={"path": "/x", "host_header": "example.com"},
            dns_tries=3,
        )
        assert spec.options["dns_tries"] == 3

    def test_live_objects_rejected(self):
        from repro.censors import KazakhstanCensor

        with pytest.raises(SpecError):
            TrialSpec.build("kazakhstan", "http", None, censor=KazakhstanCensor())

    def test_client_strategy_serialized(self):
        spec = TrialSpec.build(
            "china", "http", None, client_strategy=deployed_strategy(8)
        )
        assert isinstance(spec.client_strategy, str)


class TestCanonicalForm:
    def test_key_is_deterministic(self):
        a = TrialSpec.build("china", "http", deployed_strategy(1), seed=3)
        b = TrialSpec.build("china", "http", deployed_strategy(1), seed=3)
        assert a.canonical_key() == b.canonical_key()
        assert a.spec_hash() == b.spec_hash()

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 4},
            {"protocol": "ftp"},
            {"country": "iran"},
            {"server_strategy": None},
            {"options": {"dns_tries": 5}},
        ],
    )
    def test_every_field_feeds_the_hash(self, change):
        base = dict(
            country="china",
            protocol="http",
            server_strategy=str(deployed_strategy(1)),
            seed=3,
            options={},
        )
        changed = {**base, **change}
        assert TrialSpec(**base).spec_hash() != TrialSpec(**changed).spec_hash()

    def test_option_order_is_irrelevant(self):
        a = TrialSpec.build("china", "http", None, censor_hop=2, dns_tries=3)
        b = TrialSpec.build("china", "http", None, dns_tries=3, censor_hop=2)
        assert a.spec_hash() == b.spec_hash()


class TestExecution:
    def test_run_matches_run_trial(self):
        spec = TrialSpec.build("china", "http", deployed_strategy(1), seed=3)
        direct = run_trial("china", "http", deployed_strategy(1), seed=3)
        via_spec = spec.run()
        assert via_spec.outcome == direct.outcome
        assert via_spec.succeeded == direct.succeeded
        assert via_spec.censored == direct.censored

    def test_trace_dropped_by_default(self):
        spec = TrialSpec.build("china", "http", None, seed=1)
        assert spec.run().trace is None
        assert spec.run(keep_trace=True).trace is not None

    def test_specs_survive_pickling(self):
        import pickle

        spec = TrialSpec.build(
            "china", "http", deployed_strategy(1), seed=3,
            workload={"path": "/?q=ultrasurf", "host_header": "example.com"},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.run().outcome == spec.run().outcome
