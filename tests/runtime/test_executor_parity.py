"""Parity tests: parallel and serial execution are bit-identical.

Every spec carries its own derived seed, so the executor's mode (serial
in-process, 4-worker pool, cached) must never change outcomes — for any
``(country, protocol)`` the paper evaluates.
"""

import pytest

from repro.core import deployed_strategy
from repro.eval import COUNTRY_PROTOCOLS, success_rate
from repro.runtime import RunStats, TrialExecutor, TrialSpec, trial_seed

#: One representative evading strategy per country (Table 2, and the
#: SNI-era grid for the post-paper boxes).
STRATEGY_FOR = {
    "china": 1,
    "india": 8,
    "iran": 8,
    "kazakhstan": 11,
    "southkorea": 12,
    "russia": 15,
}

ALL_PAIRS = [
    (country, protocol)
    for country, protocols in COUNTRY_PROTOCOLS.items()
    for protocol in protocols
]


def batch_specs(country, protocol, number, trials, seed=0):
    strategy = deployed_strategy(number)
    return [
        TrialSpec.build(country, protocol, strategy, seed=trial_seed(seed, i))
        for i in range(trials)
    ]


class TestResultParity:
    @pytest.mark.parametrize("country,protocol", ALL_PAIRS)
    def test_trial_results_identical(self, country, protocol):
        specs = batch_specs(country, protocol, STRATEGY_FOR[country], trials=4)
        serial = TrialExecutor(workers=1).run_batch(specs)
        parallel = TrialExecutor(workers=4).run_batch(specs)
        for s, p in zip(serial, parallel):
            assert (s.outcome, s.succeeded, s.censored, s.detail) == (
                p.outcome,
                p.succeeded,
                p.censored,
                p.detail,
            )

    @pytest.mark.parametrize("country,protocol", ALL_PAIRS)
    def test_success_rate_identical(self, country, protocol):
        number = STRATEGY_FOR[country]
        kwargs = dict(trials=6, seed=17)
        serial = success_rate(
            country, protocol, deployed_strategy(number), workers=1, **kwargs
        )
        parallel = success_rate(
            country, protocol, deployed_strategy(number), workers=4, **kwargs
        )
        assert serial == parallel

    def test_serial_matches_legacy_in_process_loop(self):
        """workers=1 runs the very same (seed, spec) sequence a plain
        run_trial loop over trial_seed would — shared derivation."""
        from repro.eval import run_trial

        trials, base = 10, 5
        strategy = deployed_strategy(1)
        legacy = [
            run_trial("china", "http", strategy, seed=trial_seed(base, i)).succeeded
            for i in range(trials)
        ]
        rate = success_rate(
            "china", "http", strategy, trials=trials, seed=base, workers=1
        )
        assert rate == sum(legacy) / trials

    def test_cached_parity(self, tmp_path):
        specs = batch_specs("china", "http", 1, trials=8)
        plain = TrialExecutor(workers=1).run_batch(specs)
        warmer = TrialExecutor(workers=4, cache=tmp_path)
        warm = warmer.run_batch(specs)
        cached = TrialExecutor(workers=1, cache=tmp_path).run_batch(specs)
        for a, b, c in zip(plain, warm, cached):
            assert a.succeeded == b.succeeded == c.succeeded
            assert a.outcome == b.outcome == c.outcome


class TestExecutorMechanics:
    def test_order_is_submission_order(self):
        specs = batch_specs("china", "http", 1, trials=6)
        results = TrialExecutor(workers=4).run_batch(specs)
        redo = [spec.run() for spec in specs]
        assert [r.outcome for r in results] == [r.outcome for r in redo]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            TrialExecutor(workers=0)

    def test_stats_counters(self):
        executor = TrialExecutor(workers=1)
        specs = batch_specs("china", "http", 1, trials=5)
        executor.run_batch(specs)
        stats = executor.last_stats
        assert stats.requested == 5
        assert stats.executed == 5
        assert stats.cache_hits == 0
        assert stats.wall_time > 0
        assert sum(stats.per_worker.values()) == 5
        assert 0.0 <= stats.utilization <= 1.0

    def test_total_stats_accumulate(self):
        executor = TrialExecutor(workers=1)
        specs = batch_specs("china", "http", 1, trials=3)
        executor.run_batch(specs)
        executor.run_batch(specs)
        assert executor.total_stats.requested == 6

    def test_stats_merge(self):
        a = RunStats(requested=2, executed=2, wall_time=1.0, busy_time=0.5,
                     workers=1, per_worker={"1": 2})
        b = RunStats(requested=3, executed=1, cache_hits=2, wall_time=1.0,
                     busy_time=0.25, workers=4, per_worker={"1": 1})
        a.merge(b)
        assert a.requested == 5
        assert a.executed == 3
        assert a.cache_hits == 2
        assert a.workers == 4
        assert a.per_worker == {"1": 3}

    def test_format_mentions_key_counters(self):
        executor = TrialExecutor(workers=1)
        executor.run_batch(batch_specs("china", "http", 1, trials=2))
        line = executor.last_stats.format()
        assert "trials=2" in line
        assert "cache_hits=0" in line

    def test_run_one_keep_trace_bypasses_cache(self, tmp_path):
        executor = TrialExecutor(cache=tmp_path)
        spec = batch_specs("china", "http", 1, trials=1)[0]
        with_trace = executor.run_one(spec, keep_trace=True)
        assert with_trace.trace is not None
        # The traced run must not have been served from or stored to disk.
        assert executor.cache.stats.stores == 0
        without = executor.run_one(spec)
        assert without.trace is None
        assert without.succeeded == with_trace.succeeded
