"""TrialSpec handling of the impairment field: hashing, payloads, parity.

Cache-key schema v2 is additive: specs without impairment keep the exact
canonical form (and hashes) they had before the impairment layer existed,
while impaired specs hash the canonical minimal policy dict.
"""

import pytest

from repro.netsim import Impairment
from repro.runtime import SpecError, TrialExecutor, TrialSpec


class TestCanonicalization:
    def test_unimpaired_spec_omits_the_key(self):
        spec = TrialSpec.build("china", "http", None, seed=1)
        assert "impairment" not in spec.as_dict()
        assert "impairment" not in spec.canonical_key()

    def test_policy_and_dict_forms_hash_equally(self):
        from_policy = TrialSpec.build(
            "china", "http", None, seed=1, impairment=Impairment(loss=0.1)
        )
        from_dict = TrialSpec.build(
            "china", "http", None, seed=1, impairment={"loss": 0.1}
        )
        assert from_policy.spec_hash() == from_dict.spec_hash()

    def test_null_policy_hashes_like_no_policy(self):
        bare = TrialSpec.build("china", "http", None, seed=1)
        null = TrialSpec.build(
            "china", "http", None, seed=1, impairment=Impairment.none()
        )
        assert null.spec_hash() == bare.spec_hash()

    def test_impaired_hash_differs(self):
        bare = TrialSpec.build("china", "http", None, seed=1)
        impaired = TrialSpec.build(
            "china", "http", None, seed=1, impairment={"loss": 0.1}
        )
        assert impaired.spec_hash() != bare.spec_hash()

    def test_distinct_policies_hash_distinctly(self):
        a = TrialSpec.build("china", "http", None, seed=1, impairment={"loss": 0.1})
        b = TrialSpec.build("china", "http", None, seed=1, impairment={"loss": 0.2})
        assert a.spec_hash() != b.spec_hash()

    def test_bad_impairment_raises_spec_error(self):
        with pytest.raises(SpecError):
            TrialSpec.build("china", "http", None, impairment={"lag": 1})
        with pytest.raises(SpecError):
            TrialSpec.build("china", "http", None, impairment={"loss": 2.0})


class TestExecutionParity:
    def test_spec_run_applies_the_policy(self):
        impaired = TrialSpec.build(
            "china", "http", None, seed=3, impairment={"loss": 0.15}, net_seed=1
        )
        result = impaired.run(keep_trace=True)
        assert any(e.kind == "loss" for e in result.trace.events)

    def test_serial_parallel_and_cached_agree(self, tmp_path):
        specs = [
            TrialSpec.build(
                "iran", "https", None, seed=seed,
                impairment={"loss": 0.1}, net_seed=seed,
            )
            for seed in range(6)
        ]
        serial = TrialExecutor(workers=1).run_batch(specs)
        parallel = TrialExecutor(workers=2).run_batch(specs)
        cached_executor = TrialExecutor(workers=1, cache=str(tmp_path))
        cached_executor.run_batch(specs)  # populate
        cached = cached_executor.run_batch(specs)  # all hits
        assert cached_executor.last_stats.cache_hits == len(specs)
        for a, b, c in zip(serial, parallel, cached):
            assert (a.outcome, a.succeeded, a.censored) == (
                b.outcome, b.succeeded, b.censored
            )
            assert (a.outcome, a.succeeded, a.censored) == (
                c.outcome, c.succeeded, c.censored
            )

    def test_impaired_and_bare_results_never_cross_in_cache(self, tmp_path):
        executor = TrialExecutor(cache=str(tmp_path))
        bare = TrialSpec.build("iran", "http", None, seed=4)
        impaired = TrialSpec.build(
            "iran", "http", None, seed=4, impairment={"loss": 0.9}, net_seed=2
        )
        executor.run_batch([bare])
        executor.run_batch([impaired])
        assert executor.last_stats.cache_hits == 0  # distinct cache keys
