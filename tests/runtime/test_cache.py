"""Cache-correctness tests: poisoning detection, bypass, and invariance.

The cache must be *transparent*: hits never change reported results, a
tampered entry is detected by its content address and re-executed, and
disabling the cache really disables it.
"""

import json

import pytest

from repro.core import deployed_strategy
from repro.eval import success_rate
from repro.eval.matrix import measure_censorship_matrix
from repro.runtime import ResultCache, TrialExecutor, TrialSpec, resolve_cache


def spec_for(seed):
    return TrialSpec.build("china", "http", deployed_strategy(1), seed=seed)


class TestResultCache:
    def test_memory_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for(1)
        assert cache.lookup(spec) is None
        result = spec.run()
        cache.store(spec, result)
        hit = cache.lookup(spec)
        assert hit is not None
        assert hit.succeeded == result.succeeded
        assert hit.outcome == result.outcome

    def test_disk_round_trip_across_instances(self, tmp_path):
        spec = spec_for(2)
        ResultCache(tmp_path).store(spec, spec.run())
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(spec) is not None
        assert fresh.stats.hits == 1

    def test_memory_lru_evicts(self):
        cache = ResultCache(max_memory_items=2)
        specs = [spec_for(seed) for seed in range(3)]
        for spec in specs:
            cache.store(spec, spec.run())
        # Oldest entry evicted; newer two retained (no disk layer).
        assert cache.lookup(specs[0]) is None
        assert cache.lookup(specs[1]) is not None
        assert cache.lookup(specs[2]) is not None

    def test_poisoned_spec_key_detected(self, tmp_path):
        spec = spec_for(3)
        cache = ResultCache(tmp_path)
        cache.store(spec, spec.run())
        path = cache._disk_path(spec.spec_hash())
        entry = json.loads(path.read_text())
        entry["spec"] = entry["spec"].replace('"seed":', '"seed_":')
        path.write_text(json.dumps(entry))
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(spec) is None
        assert fresh.stats.poisoned == 1

    def test_poisoned_result_payload_detected(self, tmp_path):
        spec = spec_for(3)
        cache = ResultCache(tmp_path)
        cache.store(spec, spec.run())
        path = cache._disk_path(spec.spec_hash())
        entry = json.loads(path.read_text())
        entry["result"]["succeeded"] = not entry["result"]["succeeded"]
        path.write_text(json.dumps(entry))
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(spec) is None
        assert fresh.stats.poisoned == 1

    def test_corrupt_json_is_a_miss(self, tmp_path):
        spec = spec_for(4)
        cache = ResultCache(tmp_path)
        cache.store(spec, spec.run())
        cache._disk_path(spec.spec_hash()).write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(spec) is None

    def test_wrong_spec_under_right_hash_detected(self, tmp_path):
        # A file renamed (or collided) to another spec's address must not
        # serve: the stored key no longer hashes to the file name.
        spec_a, spec_b = spec_for(5), spec_for(6)
        cache = ResultCache(tmp_path)
        cache.store(spec_a, spec_a.run())
        path_a = cache._disk_path(spec_a.spec_hash())
        path_b = cache._disk_path(spec_b.spec_hash())
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_text(path_a.read_text())
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(spec_b) is None
        assert fresh.stats.poisoned == 1

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(str(tmp_path)).directory == tmp_path
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestCacheTransparency:
    def test_hits_never_change_success_rates(self, tmp_path):
        kwargs = dict(trials=15, seed=7)
        cold = success_rate("china", "http", deployed_strategy(1), **kwargs)
        executor = TrialExecutor(cache=tmp_path)
        warm_miss = success_rate(
            "china", "http", deployed_strategy(1), executor=executor, **kwargs
        )
        warm_hit = success_rate(
            "china", "http", deployed_strategy(1), executor=executor, **kwargs
        )
        assert cold == warm_miss == warm_hit
        assert executor.last_stats.cache_hits == 15
        assert executor.last_stats.executed == 0

    def test_no_cache_bypasses_the_store(self, tmp_path):
        executor = TrialExecutor(cache=tmp_path)
        success_rate(
            "china", "http", deployed_strategy(1), trials=5, seed=1,
            executor=executor,
        )
        uncached = TrialExecutor(cache=None)
        success_rate(
            "china", "http", deployed_strategy(1), trials=5, seed=1,
            executor=uncached,
        )
        assert uncached.last_stats.cache_hits == 0
        assert uncached.last_stats.executed == 5

    def test_second_matrix_run_executes_nothing(self, tmp_path):
        """Acceptance criterion: with the disk cache enabled, an identical
        matrix run performs zero new trial executions."""
        first = TrialExecutor(cache=tmp_path)
        entries_first = measure_censorship_matrix(probes=2, executor=first)
        assert first.last_stats.executed > 0

        second = TrialExecutor(cache=tmp_path)  # fresh process-level state
        entries_second = measure_censorship_matrix(probes=2, executor=second)
        assert second.last_stats.executed == 0
        assert second.last_stats.cache_hits == second.last_stats.requested
        assert [
            (e.country, e.protocol, e.censored) for e in entries_first
        ] == [(e.country, e.protocol, e.censored) for e in entries_second]
