"""Tests for the shared per-trial seed derivation.

The old ``seed + index * 7919`` spacing collided across adjacent base
seeds (``seed=7919, index=0`` vs ``seed=0, index=1``), silently running
the same trial twice in "independent" measurements. These tests pin the
splitmix-based replacement: collision-free in practice, deterministic,
and shared by the serial and parallel paths.
"""

import random

from repro.runtime import splitmix64, trial_seed


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(0) == splitmix64(0)
        assert splitmix64(1) == splitmix64(1)

    def test_bijective_on_samples(self):
        values = [splitmix64(x) for x in range(10_000)]
        assert len(set(values)) == len(values)

    def test_avalanche(self):
        # Flipping one input bit flips a large fraction of output bits.
        flips = bin(splitmix64(42) ^ splitmix64(43)).count("1")
        assert 16 <= flips <= 48


class TestTrialSeed:
    def test_old_scheme_collision_is_gone(self):
        # The exact collision the old spacing had.
        assert 7919 + 0 * 7919 == 0 + 1 * 7919  # the old scheme collided...
        assert trial_seed(7919, 0) != trial_seed(0, 1)  # ...the new one doesn't

    def test_grid_is_collision_free(self):
        seen = {
            trial_seed(base, index)
            for base in range(200)
            for index in range(200)
        }
        assert len(seen) == 200 * 200

    def test_prime_spaced_bases_do_not_alias(self):
        # Bases spaced exactly like the old per-trial stride must still
        # produce fully disjoint trial-seed series.
        series_a = {trial_seed(0, i) for i in range(500)}
        series_b = {trial_seed(7919, i) for i in range(500)}
        assert not (series_a & series_b)

    def test_fits_random_seed(self):
        for base in (0, 1, 2**31, 2**63 - 1):
            seed = trial_seed(base, 3)
            assert seed >= 0
            random.Random(seed)  # accepted without normalization surprises

    def test_negative_bases_are_valid(self):
        assert trial_seed(-1, 0) != trial_seed(1, 0)
        assert trial_seed(-5, 2) >= 0
