"""Unit tests for the shared application plumbing."""

import pytest

from repro.apps.base import (
    DEFAULT_APP_TIMEOUT,
    OUTCOME_RESET,
    OUTCOME_SUCCESS,
    OUTCOME_TIMEOUT,
    BaseClient,
)


class EchoClient(BaseClient):
    """Minimal concrete client: sends 'ping', succeeds on 'pong'."""

    def _on_established(self):
        self._send(b"ping")

    def _on_bytes(self):
        if bytes(self.buffer) == b"pong":
            self._finish(OUTCOME_SUCCESS)


def serve_pong(pair, port=80):
    def on_accept(endpoint):
        endpoint.on_data = lambda data: (endpoint.send(b"pong"), endpoint.close())

    pair.server.listen(port, on_accept)


class TestLifecycle:
    def test_successful_exchange(self, linked_hosts):
        pair = linked_hosts()
        serve_pong(pair)
        client = EchoClient(pair.client, "10.0.0.2", 80)
        client.start()
        pair.run()
        assert client.succeeded
        assert client.finished

    def test_on_complete_callback_fires_once(self, linked_hosts):
        pair = linked_hosts()
        serve_pong(pair)
        client = EchoClient(pair.client, "10.0.0.2", 80)
        calls = []
        client.on_complete = calls.append
        client.start()
        pair.run()
        client._finish("timeout")  # late finish attempts are ignored
        assert calls == [OUTCOME_SUCCESS]
        assert client.outcome == OUTCOME_SUCCESS

    def test_timeout_path(self, linked_hosts):
        pair = linked_hosts()  # no server listening
        client = EchoClient(pair.client, "10.0.0.2", 80, timeout=1.5)
        client.start()
        pair.run(until=10)
        assert client.outcome == OUTCOME_TIMEOUT

    def test_timeout_timer_cancelled_on_success(self, linked_hosts):
        pair = linked_hosts()
        serve_pong(pair)
        client = EchoClient(pair.client, "10.0.0.2", 80, timeout=2.0)
        client.start()
        pair.run(until=30)  # well past the timeout
        assert client.outcome == OUTCOME_SUCCESS

    def test_reset_reported(self, linked_hosts):
        from repro.netsim import Middlebox
        from repro.packets import make_tcp_packet

        class Resetter(Middlebox):
            def process(self, packet, direction, ctx):
                if direction == "c2s" and packet.load:
                    rst = make_tcp_packet(
                        packet.dst, packet.src, packet.dport, packet.sport,
                        flags="RA", seq=packet.tcp.ack,
                        ack=(packet.tcp.seq + len(packet.load)) % (1 << 32),
                    )
                    ctx.inject(rst, toward="client")
                    return []
                return [packet]

        pair = linked_hosts(middleboxes=[Resetter()])
        serve_pong(pair)
        client = EchoClient(pair.client, "10.0.0.2", 80)
        client.start()
        pair.run()
        assert client.outcome == OUTCOME_RESET

    def test_default_timeout_constant(self):
        assert DEFAULT_APP_TIMEOUT == 8.0

    def test_buffer_accumulates(self, linked_hosts):
        pair = linked_hosts()

        def on_accept(endpoint):
            def on_data(data):
                endpoint.send(b"po")
                endpoint.send(b"ng")
                endpoint.close()

            endpoint.on_data = on_data

        pair.server.listen(80, on_accept)
        client = EchoClient(pair.client, "10.0.0.2", 80)
        client.start()
        pair.run()
        assert client.succeeded
