"""Tests for the FTP control-channel client/server pair."""

from repro.apps import FTPClient, FTPServer, OUTCOME_SUCCESS, expected_ftp_banner


def run_ftp(pair, filename="ultrasurf.txt", port=21):
    FTPServer(pair.server, port).install()
    client = FTPClient(pair.client, "10.0.0.2", port, filename=filename)
    client.start()
    pair.run()
    return client


class TestExchange:
    def test_sign_in_and_retr(self, linked_hosts):
        client = run_ftp(linked_hosts())
        assert client.outcome == OUTCOME_SUCCESS

    def test_dialogue_order(self, linked_hosts):
        pair = linked_hosts()
        FTPServer(pair.server, 21).install()
        client = FTPClient(pair.client, "10.0.0.2", 21, filename="notes.txt")
        client.start()
        trace = pair.run()
        client_payloads = [
            bytes(e.packet.load)
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert client_payloads == [
            b"USER anonymous\r\n",
            b"PASS guest\r\n",
            b"RETR notes.txt\r\n",
        ]

    def test_banner_matches_filename(self, linked_hosts):
        client = run_ftp(linked_hosts(), filename="a.txt")
        assert client.outcome == OUTCOME_SUCCESS
        assert expected_ftp_banner("a.txt") in bytes(client.buffer).decode()

    def test_request_bytes_is_retr_line(self, linked_hosts):
        pair = linked_hosts()
        client = FTPClient(pair.client, "10.0.0.2", 21, filename="x.bin")
        assert client.request_bytes() == b"RETR x.bin\r\n"

    def test_server_rejects_retr_before_login(self, linked_hosts):
        pair = linked_hosts()
        FTPServer(pair.server, 21).install()
        responses = []
        ep = pair.client.open_connection("10.0.0.2", 21)
        ep.on_data = lambda data: responses.append(bytes(data))
        ep.on_established = lambda: ep.send(b"RETR secret.txt\r\n")
        ep.connect()
        pair.run()
        assert any(r.startswith(b"530") for r in responses)

    def test_unknown_command_gets_502(self, linked_hosts):
        pair = linked_hosts()
        FTPServer(pair.server, 21).install()
        responses = []
        ep = pair.client.open_connection("10.0.0.2", 21)
        ep.on_data = lambda data: responses.append(bytes(data))
        ep.on_established = lambda: ep.send(b"FROB x\r\n")
        ep.connect()
        pair.run()
        assert any(r.startswith(b"502") for r in responses)
