"""Tests for encrypted SNI (§9's deployed-evasion precedent)."""

import random

from repro.apps import HTTPSClient, HTTPSServer
from repro.apps.tls import build_client_hello, parse_esni, parse_sni
from repro.censors import CHINA_KEYWORDS, match_https
from repro.eval.runner import Trial


class TestESNIWireFormat:
    def test_censor_cannot_read_esni(self):
        hello = build_client_hello("www.wikipedia.org", encrypted_sni=True)
        assert parse_sni(hello) is None

    def test_server_can_decrypt(self):
        hello = build_client_hello(
            "www.wikipedia.org", random.Random(4), encrypted_sni=True
        )
        assert parse_esni(hello) == "www.wikipedia.org"

    def test_plaintext_hello_has_no_esni(self):
        hello = build_client_hello("example.com")
        assert parse_esni(hello) is None
        assert parse_sni(hello) == "example.com"

    def test_name_not_in_clear_bytes(self):
        hello = build_client_hello("www.wikipedia.org", encrypted_sni=True)
        assert b"wikipedia" not in hello

    def test_dpi_verdict_is_unrecognized(self):
        hello = build_client_hello("www.wikipedia.org", encrypted_sni=True)
        assert match_https(hello, CHINA_KEYWORDS) is None


class TestESNITrials:
    def run_https(self, country, encrypted_sni, seed=1):
        trial = Trial(country, "https", None, seed=seed,
                      workload={"server_name": "banned.example", "encrypted_sni": encrypted_sni})
        # Use each censor's actual censored SNI.
        name = "www.wikipedia.org" if country == "china" else "youtube.com"
        trial.client_app.server_name = name
        return trial.run()

    def test_esni_evades_china_https(self):
        result = self.run_https("china", encrypted_sni=True)
        assert result.succeeded
        assert not result.censored

    def test_plaintext_sni_censored_in_china(self):
        result = self.run_https("china", encrypted_sni=False)
        assert not result.succeeded

    def test_esni_evades_iran(self):
        result = self.run_https("iran", encrypted_sni=True)
        assert result.succeeded

    def test_esni_exchange_completes_without_censor(self, linked_hosts):
        pair = linked_hosts()
        HTTPSServer(pair.server, 443).install()
        client = HTTPSClient(
            pair.client, "10.0.0.2", 443,
            server_name="secret.example.org", encrypted_sni=True,
        )
        client.start()
        pair.run()
        assert client.succeeded
