"""Property tests: incremental ClientHello scanning is prefix-stable.

The SNI censors' whole reassembly contract rests on three invariants of
:func:`repro.apps.tls.scan_client_hello`:

1. **Round trip** — a hello built for any hostname scans ``complete``
   and yields that hostname back (plaintext SNI) or hides it (ESNI).
2. **Truncation monotonicity** — every *strict prefix* of a well-formed
   hello reports ``needs_more``, never ``invalid`` and never a bogus
   ``complete``: a censor that buffers byte-at-a-time must not give up
   (or fire) early.
3. **Record splitting is transparent** — re-encoding the hello as many
   smaller records changes the bytes but not the scan verdict or the
   recovered name.

``derandomize=True`` keeps the example set fixed so the suite stays
deterministic (same policy as the tcpstack property tests).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tls import (
    SCAN_COMPLETE,
    SCAN_NEEDS_MORE,
    build_client_hello,
    parse_esni,
    parse_sni,
    scan_client_hello,
    split_handshake_records,
)

PROPERTY_SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

_LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=12,
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))

HOSTNAMES = st.lists(_LABEL, min_size=1, max_size=4).map(".".join)


class TestRoundTrip:
    @given(name=HOSTNAMES)
    @PROPERTY_SETTINGS
    def test_plaintext_sni_round_trips(self, name):
        hello = build_client_hello(name)
        scan = scan_client_hello(hello)
        assert scan.status == SCAN_COMPLETE
        assert scan.server_name == name
        assert scan.consumed == len(hello)
        assert not scan.has_esni
        assert parse_sni(hello) == name

    @given(name=HOSTNAMES)
    @PROPERTY_SETTINGS
    def test_esni_hides_name_from_sni_parsers(self, name):
        hello = build_client_hello(name, encrypted_sni=True)
        scan = scan_client_hello(hello)
        assert scan.status == SCAN_COMPLETE
        assert scan.has_esni
        assert scan.server_name is None
        assert parse_sni(hello) is None
        # Only the server (sharing the masking secret) recovers it.
        assert parse_esni(hello) == name


class TestTruncation:
    @given(name=HOSTNAMES, data=st.data())
    @PROPERTY_SETTINGS
    def test_every_strict_prefix_needs_more(self, name, data):
        hello = build_client_hello(name)
        cut = data.draw(st.integers(min_value=0, max_value=len(hello) - 1))
        scan = scan_client_hello(hello[:cut])
        assert scan.status == SCAN_NEEDS_MORE, f"prefix of {cut} bytes"
        assert scan.server_name is None

    @given(name=HOSTNAMES, data=st.data())
    @PROPERTY_SETTINGS
    def test_prefix_never_parses_a_name(self, name, data):
        hello = build_client_hello(name)
        cut = data.draw(st.integers(min_value=0, max_value=len(hello) - 1))
        assert parse_sni(hello[:cut]) is None


class TestRecordSplitting:
    @given(name=HOSTNAMES, chunk=st.integers(min_value=1, max_value=64))
    @PROPERTY_SETTINGS
    def test_split_records_scan_identically(self, name, chunk):
        hello = build_client_hello(name)
        split = split_handshake_records(hello, chunk)
        assert split is not None
        scan = scan_client_hello(split)
        assert scan.status == SCAN_COMPLETE
        assert scan.server_name == name
        assert scan.consumed == len(split)

    @given(name=HOSTNAMES, chunk=st.integers(min_value=1, max_value=64))
    @PROPERTY_SETTINGS
    def test_split_prefixes_still_need_more(self, name, chunk):
        """Splitting must not create a prefix that scans invalid — the
        lenient censors' pass-through depends on strictly distinguishing
        "incomplete" from "malformed"."""
        split = split_handshake_records(build_client_hello(name), chunk)
        # Cut inside the second record (if any): worst case for naive
        # parsers, which see a dangling record header.
        first_len = 5 + int.from_bytes(split[3:5], "big")
        if first_len < len(split):
            scan = scan_client_hello(split[: first_len + 2])
            assert scan.status == SCAN_NEEDS_MORE
