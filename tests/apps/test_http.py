"""Tests for the HTTP client/server pair."""

from repro.apps import (
    BLOCK_PAGE_MARKER,
    HTTPClient,
    HTTPServer,
    OUTCOME_BLOCKPAGE,
    OUTCOME_SUCCESS,
    expected_http_body,
)


def run_http(pair, path="/", host_header="example.com", port=80):
    HTTPServer(pair.server, port).install()
    client = HTTPClient(pair.client, "10.0.0.2", port, path=path, host_header=host_header)
    client.start()
    pair.run()
    return client


class TestExchange:
    def test_basic_get_succeeds(self, linked_hosts):
        client = run_http(linked_hosts())
        assert client.outcome == OUTCOME_SUCCESS

    def test_body_is_request_specific(self):
        assert expected_http_body("/a", "h") != expected_http_body("/b", "h")
        assert expected_http_body("/a", "h1") != expected_http_body("/a", "h2")

    def test_request_bytes_contain_host_and_path(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPClient(pair.client, "10.0.0.2", 80, path="/?q=x", host_header="h.example")
        raw = client.request_bytes()
        assert raw.startswith(b"GET /?q=x HTTP/1.1\r\n")
        assert b"Host: h.example\r\n" in raw

    def test_nonstandard_port(self, linked_hosts):
        client = run_http(linked_hosts(), port=8080)
        assert client.outcome == OUTCOME_SUCCESS

    def test_censored_path_still_succeeds_without_censor(self, linked_hosts):
        client = run_http(linked_hosts(), path="/?q=ultrasurf")
        assert client.outcome == OUTCOME_SUCCESS


class TestValidation:
    def test_block_page_detected(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPClient(pair.client, "10.0.0.2", 80)
        page = f"<html>{BLOCK_PAGE_MARKER}</html>".encode()
        client.buffer.extend(
            b"HTTP/1.1 200 OK\r\nContent-Length: "
            + str(len(page)).encode()
            + b"\r\n\r\n"
            + page
        )
        client._on_bytes()
        assert client.outcome == OUTCOME_BLOCKPAGE

    def test_wrong_body_is_garbled(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPClient(pair.client, "10.0.0.2", 80)
        client.buffer.extend(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nXXX")
        client._on_bytes()
        assert client.outcome == "garbled"

    def test_incomplete_response_waits(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPClient(pair.client, "10.0.0.2", 80)
        client.buffer.extend(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhal")
        client._on_bytes()
        assert client.outcome is None

    def test_timeout_without_server(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPClient(pair.client, "10.0.0.2", 80, timeout=2.0)
        client.start()
        pair.run()
        assert client.outcome == "timeout"
