"""Tests for the TLS record layer and SNI parsing."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.apps.tls import (
    RECORD_APPDATA,
    RECORD_HANDSHAKE,
    build_application_data,
    build_client_hello,
    build_server_hello,
    expected_tls_payload,
    parse_sni,
)


class TestClientHello:
    def test_record_type_and_version(self):
        hello = build_client_hello("example.com")
        assert hello[0] == RECORD_HANDSHAKE
        assert hello[1:3] == b"\x03\x03"

    def test_record_length_consistent(self):
        hello = build_client_hello("example.com")
        assert int.from_bytes(hello[3:5], "big") == len(hello) - 5

    def test_sni_round_trip(self):
        for name in ("example.com", "www.wikipedia.org", "youtube.com"):
            assert parse_sni(build_client_hello(name)) == name

    def test_deterministic_with_seeded_rng(self):
        a = build_client_hello("x.org", random.Random(5))
        b = build_client_hello("x.org", random.Random(5))
        assert a == b

    @given(st.from_regex(r"[a-z]{1,10}(\.[a-z]{2,8}){1,2}", fullmatch=True))
    def test_sni_round_trip_property(self, name):
        assert parse_sni(build_client_hello(name)) == name


class TestSNIParsing:
    def test_non_tls_returns_none(self):
        assert parse_sni(b"GET / HTTP/1.1\r\n\r\n") is None
        assert parse_sni(b"") is None

    def test_truncated_hello_returns_none(self):
        """A ClientHello split across segments yields no SNI — why induced
        segmentation defeats SNI-based censorship."""
        hello = build_client_hello("www.wikipedia.org")
        for cut in (4, 10, len(hello) // 2, len(hello) - 1):
            assert parse_sni(hello[:cut]) is None

    def test_server_hello_is_not_a_client_hello(self):
        assert parse_sni(build_server_hello("example.com")) is None

    def test_garbage_with_tls_byte_returns_none(self):
        assert parse_sni(b"\x16" + b"\x00" * 40) is None


class TestRecords:
    def test_application_data_wrapping(self):
        record = build_application_data(b"payload")
        assert record[0] == RECORD_APPDATA
        assert record[5:] == b"payload"

    def test_expected_payload_deterministic_per_name(self):
        assert expected_tls_payload("a.com") == expected_tls_payload("a.com")
        assert expected_tls_payload("a.com") != expected_tls_payload("b.com")
