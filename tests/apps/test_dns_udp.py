"""Tests for UDP transport and DNS-over-UDP with GFW lemon injection."""

import random

import pytest

from repro.apps.dns import parse_answer_address, build_response
from repro.apps.dns_udp import (
    OUTCOME_POISONED,
    TRUE_ADDRESS,
    DNSOverUDPClient,
    DNSOverUDPServer,
)
from repro.censors import GreatFirewall
from repro.censors.gfw.dnsudp import LEMON_ADDRESS
from repro.packets import Packet, make_udp_packet


class TestUDPLayer:
    def test_wire_round_trip(self):
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 5353, 53, load=b"query-bytes")
        parsed = Packet.parse(packet.serialize())
        assert parsed.is_udp
        assert parsed.sport == 5353 and parsed.dport == 53
        assert parsed.load == b"query-bytes"
        assert parsed.checksums_ok()

    def test_corrupted_checksum_survives_round_trip(self):
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 5353, 53, load=b"x")
        packet.udp.chksum_override = 0x1234
        parsed = Packet.parse(packet.serialize())
        assert not parsed.checksums_ok()

    def test_udp_field_tamper(self, rng):
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 53, load=b"q")
        packet.replace_field("UDP", "dport", "5353")
        assert packet.dport == 5353
        packet.corrupt_field("UDP", "load", rng)
        assert packet.load != b"q"

    def test_tcp_fields_unavailable_on_udp(self):
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 53)
        with pytest.raises(ValueError):
            packet.get_field("TCP", "flags")
        assert packet.flags == ""

    def test_packet_requires_exactly_one_transport(self):
        from repro.packets import IPv4, TCP, UDP

        with pytest.raises(ValueError):
            Packet(IPv4())
        with pytest.raises(ValueError):
            Packet(IPv4(), TCP(), UDP())


class TestAnswerParsing:
    def test_true_answer(self):
        response = build_response("example.com", 7, address="93.184.216.34")
        assert parse_answer_address(response) == "93.184.216.34"

    def test_garbage_is_none(self):
        assert parse_answer_address(b"\x00\x03abc") is None
        assert parse_answer_address(b"") is None


def run_udp_lookup(linked_hosts, qname, middleboxes=(), seed=5):
    pair = linked_hosts(middleboxes=list(middleboxes), seed=seed)
    server = DNSOverUDPServer(pair.server, 53)
    server.install()
    client = DNSOverUDPClient(pair.client, "10.0.0.2", 53, qname=qname)
    client.start()
    pair.run(until=10)
    return client, server


class TestLookups:
    def test_benign_lookup_succeeds(self, linked_hosts):
        client, server = run_udp_lookup(linked_hosts, "benign.example.com")
        assert client.succeeded
        assert client.answer == TRUE_ADDRESS
        assert server.queries_answered == 1

    def test_forbidden_name_without_censor_succeeds(self, linked_hosts):
        client, _ = run_udp_lookup(linked_hosts, "www.wikipedia.org")
        assert client.succeeded

    def test_timeout_without_server(self, linked_hosts):
        pair = linked_hosts()
        client = DNSOverUDPClient(pair.client, "10.0.0.2", 53, timeout=1.0)
        client.start()
        pair.run(until=5)
        assert client.outcome == "timeout"


class TestLemonInjection:
    def test_forbidden_query_poisoned(self, linked_hosts):
        gfw = GreatFirewall(rng=random.Random(1))
        client, server = run_udp_lookup(
            linked_hosts, "www.wikipedia.org", middleboxes=[gfw]
        )
        assert client.outcome == OUTCOME_POISONED
        assert client.answer == LEMON_ADDRESS
        assert gfw.dns_udp.injections == 1
        # The genuine server still answered — the forgery just won the race.
        assert server.queries_answered == 1

    def test_benign_query_untouched(self, linked_hosts):
        gfw = GreatFirewall(rng=random.Random(1))
        client, _ = run_udp_lookup(
            linked_hosts, "benign.example.com", middleboxes=[gfw]
        )
        assert client.succeeded
        assert gfw.dns_udp.injections == 0

    def test_forged_response_matches_txid(self, linked_hosts):
        """The injected answer carries the query's transaction id (on-path
        censors see the query, so no guessing is needed)."""
        gfw = GreatFirewall(rng=random.Random(1))
        client, _ = run_udp_lookup(
            linked_hosts, "www.wikipedia.org", middleboxes=[gfw]
        )
        assert client.outcome == OUTCOME_POISONED  # accepted => txid matched

    def test_tcp_fallback_evades_with_server_strategy(self, linked_hosts):
        """The motivating pipeline: UDP poisoned -> DNS-over-TCP censored
        by RST -> server-side strategy makes DNS-over-TCP work."""
        from repro.core import deployed_strategy
        from repro.eval import run_trial

        udp_gfw = GreatFirewall(rng=random.Random(1))
        poisoned, _ = run_udp_lookup(
            linked_hosts, "www.wikipedia.org", middleboxes=[udp_gfw]
        )
        assert poisoned.outcome == OUTCOME_POISONED

        tcp_plain = run_trial("china", "dns", None, seed=42, dns_tries=1)
        assert not tcp_plain.succeeded

        tcp_evading = run_trial(
            "china", "dns", deployed_strategy(1), seed=45, dns_tries=3
        )
        assert tcp_evading.succeeded
