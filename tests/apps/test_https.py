"""Tests for the HTTPS client/server pair."""

from repro.apps import HTTPSClient, HTTPSServer, OUTCOME_SUCCESS


def run_https(pair, server_name="example.com", port=443):
    HTTPSServer(pair.server, port).install()
    client = HTTPSClient(pair.client, "10.0.0.2", port, server_name=server_name)
    client.start()
    pair.run()
    return client


class TestExchange:
    def test_tls_exchange_succeeds(self, linked_hosts):
        client = run_https(linked_hosts())
        assert client.outcome == OUTCOME_SUCCESS

    def test_forbidden_sni_without_censor_succeeds(self, linked_hosts):
        client = run_https(linked_hosts(), server_name="www.wikipedia.org")
        assert client.outcome == OUTCOME_SUCCESS

    def test_request_bytes_is_client_hello(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPSClient(pair.client, "10.0.0.2", 443, server_name="a.example")
        from repro.apps import parse_sni

        assert parse_sni(client.request_bytes()) == "a.example"

    def test_wrong_payload_garbled(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPSClient(pair.client, "10.0.0.2", 443, server_name="a.example")
        from repro.apps.tls import build_application_data, build_server_hello

        client.buffer.extend(build_server_hello("a.example"))
        client.buffer.extend(build_application_data(b"not the expected bytes"))
        client._on_bytes()
        assert client.outcome == "garbled"

    def test_partial_records_wait(self, linked_hosts):
        pair = linked_hosts()
        client = HTTPSClient(pair.client, "10.0.0.2", 443)
        from repro.apps.tls import build_server_hello

        hello = build_server_hello("example.com")
        client.buffer.extend(hello[: len(hello) // 2])
        client._on_bytes()
        assert client.outcome is None
