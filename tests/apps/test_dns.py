"""Tests for DNS wire format and the RFC 7766 retrying client."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import DNSClient, DNSServer, OUTCOME_SUCCESS
from repro.apps.dns import (
    DNSAttempt,
    build_query,
    build_response,
    decode_name,
    encode_name,
    parse_query_name,
    parse_response,
)


class TestWireFormat:
    def test_encode_name_labels(self):
        assert encode_name("www.example.com") == b"\x03www\x07example\x03com\x00"

    def test_decode_name_round_trip(self):
        raw = encode_name("a.b.c")
        name, offset = decode_name(raw, 0)
        assert name == "a.b.c"
        assert offset == len(raw)

    def test_label_too_long_rejected(self):
        with pytest.raises(ValueError):
            encode_name("x" * 64 + ".com")

    def test_query_structure(self):
        query = build_query("example.com", 0xABCD)
        length = struct.unpack("!H", query[:2])[0]
        assert length == len(query) - 2
        assert struct.unpack("!H", query[2:4])[0] == 0xABCD

    def test_parse_query_name(self):
        assert parse_query_name(build_query("www.wikipedia.org", 1)) == "www.wikipedia.org"

    def test_parse_query_name_truncated_is_none(self):
        """Segmented queries defeat non-reassembling DPI."""
        query = build_query("www.wikipedia.org", 1)
        for cut in (1, 5, 12, len(query) - 2):
            assert parse_query_name(query[:cut]) is None

    def test_parse_query_name_garbage_is_none(self):
        assert parse_query_name(b"\x00\x04abcd") is None

    def test_response_answers_query(self):
        response = build_response("example.com", 7)
        assert parse_response(response, 7, "example.com")
        assert not parse_response(response, 8, "example.com")
        assert not parse_response(response, 7, "other.com")

    @given(st.from_regex(r"[a-z]{1,12}(\.[a-z]{1,12}){0,3}", fullmatch=True),
           st.integers(0, 0xFFFF))
    def test_query_round_trip_property(self, name, txid):
        assert parse_query_name(build_query(name, txid)) == name


class TestRetries:
    def test_success_first_try(self, linked_hosts):
        pair = linked_hosts()
        DNSServer(pair.server, 53).install()
        client = DNSClient(pair.client, "10.0.0.2", 53, qname="example.com")
        client.start()
        pair.run()
        assert client.succeeded
        assert len(client.attempts) == 1

    def test_retries_after_reset(self, linked_hosts):
        """A censor-style RST on the first two connections: the third try
        succeeds, per RFC 7766."""
        from repro.netsim import Middlebox
        from repro.packets import make_tcp_packet

        class ResetFirstTwo(Middlebox):
            name = "resetter"

            def __init__(self):
                self.flows = {}

            def process(self, packet, direction, ctx):
                if direction != "c2s" or not packet.load:
                    return [packet]
                key = packet.flow
                index = self.flows.setdefault(key, len(self.flows))
                if index < 2:
                    rst = make_tcp_packet(
                        packet.dst, packet.src, packet.dport, packet.sport,
                        flags="RA",
                        seq=packet.tcp.ack,
                        ack=(packet.tcp.seq + len(packet.load)) % (1 << 32),
                    )
                    ctx.inject(rst, toward="client")
                    return []
                return [packet]

        pair = linked_hosts(middleboxes=[ResetFirstTwo()])
        DNSServer(pair.server, 53).install()
        client = DNSClient(pair.client, "10.0.0.2", 53, qname="example.com", tries=3)
        client.start()
        pair.run(until=60)
        assert client.succeeded
        assert len(client.attempts) == 3

    def test_gives_up_after_max_tries(self, linked_hosts):
        from repro.netsim import Middlebox

        class DropData(Middlebox):
            def process(self, packet, direction, ctx):
                if direction == "c2s" and packet.load:
                    return []
                return [packet]

        pair = linked_hosts(middleboxes=[DropData()])
        DNSServer(pair.server, 53).install()
        client = DNSClient(pair.client, "10.0.0.2", 53, tries=2, timeout=3.0)
        client.start()
        pair.run(until=120)
        assert not client.succeeded
        assert client.finished
        assert len(client.attempts) == 2

    def test_fresh_transaction_id_per_attempt(self, linked_hosts):
        pair = linked_hosts()
        client = DNSClient(pair.client, "10.0.0.2", 53, tries=3)
        ids = {client.rng.randrange(1, 0x10000) for _ in range(20)}
        assert len(ids) > 1  # sanity: rng produces varied txids
