"""Tests for the SMTP client/server pair."""

from repro.apps import (
    FORBIDDEN_ADDRESS,
    OUTCOME_SUCCESS,
    SMTPClient,
    SMTPServer,
    expected_smtp_receipt,
)


def run_smtp(pair, recipient=FORBIDDEN_ADDRESS, port=25):
    SMTPServer(pair.server, port).install()
    client = SMTPClient(pair.client, "10.0.0.2", port, recipient=recipient)
    client.start()
    pair.run()
    return client


class TestExchange:
    def test_full_delivery(self, linked_hosts):
        client = run_smtp(linked_hosts())
        assert client.outcome == OUTCOME_SUCCESS

    def test_dialogue_order(self, linked_hosts):
        pair = linked_hosts()
        SMTPServer(pair.server, 25).install()
        client = SMTPClient(pair.client, "10.0.0.2", 25, recipient="a@b.c")
        client.start()
        trace = pair.run()
        payloads = [
            bytes(e.packet.load)
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert payloads[0] == b"HELO client.example\r\n"
        assert payloads[1].startswith(b"MAIL FROM:")
        assert payloads[2] == b"RCPT TO:<a@b.c>\r\n"
        assert payloads[3] == b"DATA\r\n"
        assert payloads[4].endswith(b"\r\n.\r\n")

    def test_receipt_bound_to_recipient(self):
        assert expected_smtp_receipt("a@b.c") != expected_smtp_receipt("x@y.z")

    def test_request_bytes_is_rcpt_line(self, linked_hosts):
        pair = linked_hosts()
        client = SMTPClient(pair.client, "10.0.0.2", 25, recipient="who@where.org")
        assert client.request_bytes() == b"RCPT TO:<who@where.org>\r\n"

    def test_forbidden_recipient_constant(self):
        assert FORBIDDEN_ADDRESS == "xiazai@upup.info"

    def test_unexpected_reply_garbles(self, linked_hosts):
        pair = linked_hosts()
        client = SMTPClient(pair.client, "10.0.0.2", 25)
        client.buffer.extend(b"554 go away\r\n")
        client._on_bytes()
        assert client.outcome == "garbled"
