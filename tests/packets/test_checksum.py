"""Tests for RFC 1071 checksums and the TCP pseudo-header."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import internet_checksum, pseudo_header, tcp_checksum


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic example from RFC 1071 materials.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padded(self):
        # Odd input is padded with a zero byte.
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_all_zeros(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_all_ones_wraps(self):
        assert internet_checksum(b"\xff" * 4) == 0x0000

    @given(st.binary(min_size=0, max_size=64))
    def test_verification_property(self, data):
        """Appending the checksum makes the total checksum verify to zero."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        total = internet_checksum(data + struct.pack("!H", checksum))
        assert total == 0

    @given(st.binary(min_size=2, max_size=64))
    def test_order_of_16bit_words_irrelevant_to_validity(self, data):
        """Checksum is a sum: swapping two aligned words preserves it."""
        if len(data) % 2:
            data += b"\x00"
        if len(data) < 4:
            return
        swapped = data[2:4] + data[0:2] + data[4:]
        assert internet_checksum(data) == internet_checksum(swapped)


class TestPseudoHeader:
    def test_layout(self):
        header = pseudo_header("1.2.3.4", "5.6.7.8", 6, 20)
        assert header == bytes([1, 2, 3, 4, 5, 6, 7, 8, 0, 6, 0, 20])

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError):
            pseudo_header("1.2.3", "5.6.7.8", 6, 20)
        with pytest.raises(ValueError):
            pseudo_header("1.2.3.999", "5.6.7.8", 6, 20)
        with pytest.raises(ValueError):
            pseudo_header("a.b.c.d", "5.6.7.8", 6, 20)


class TestTCPChecksum:
    def test_differs_by_address(self):
        segment = b"\x00" * 20
        a = tcp_checksum("10.0.0.1", "10.0.0.2", segment)
        b = tcp_checksum("10.0.0.1", "10.0.0.3", segment)
        assert a != b

    def test_deterministic(self):
        segment = b"\x01\x02" * 10
        assert tcp_checksum("1.1.1.1", "2.2.2.2", segment) == tcp_checksum(
            "1.1.1.1", "2.2.2.2", segment
        )
