"""Tests for the TCP segment layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import TCP, bits_to_flags, flags_to_bits


class TestFlags:
    def test_round_trip_all_letters(self):
        for letters in ("S", "SA", "PA", "FPA", "R", "RA", ""):
            assert bits_to_flags(flags_to_bits(letters)) == "".join(
                sorted(letters, key="FSRPAUEC".index)
            )

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            flags_to_bits("X")

    def test_canonical_ordering(self):
        assert TCP(flags="AS").flags == "SA"
        assert TCP(flags="apf").flags == "FPA"

    def test_flag_predicates(self):
        syn = TCP(flags="S")
        synack = TCP(flags="SA")
        assert syn.is_syn and not syn.is_synack
        assert synack.is_synack and not synack.is_syn
        assert TCP(flags="R").is_rst
        assert TCP(flags="FA").is_fin and TCP(flags="FA").is_ack

    def test_null_flags(self):
        null = TCP(flags="")
        assert null.flags == ""
        assert not (null.is_syn or null.is_rst or null.is_ack or null.is_fin)


class TestOptions:
    def test_mss_wscale_sack_round_trip(self):
        tcp = TCP(options=[("mss", 1460), ("wscale", 7), ("sackok", None)])
        raw = tcp.serialize("1.1.1.1", "2.2.2.2")
        parsed = TCP.parse(raw, "1.1.1.1", "2.2.2.2")
        assert parsed.get_option("mss") == 1460
        assert parsed.get_option("wscale") == 7
        assert parsed.get_option("sackok") is None  # present, valueless
        assert ("sackok", None) in parsed.options

    def test_timestamp_round_trip(self):
        tcp = TCP(options=[("timestamp", (123456, 654321))])
        parsed = TCP.parse(tcp.serialize("1.1.1.1", "2.2.2.2"), "1.1.1.1", "2.2.2.2")
        assert parsed.get_option("timestamp") == (123456, 654321)

    def test_remove_option(self):
        tcp = TCP(options=[("mss", 1460), ("wscale", 7)])
        tcp.remove_option("wscale")
        assert tcp.get_option("wscale") is None
        assert tcp.get_option("mss") == 1460

    def test_set_option_replaces(self):
        tcp = TCP(options=[("wscale", 7)])
        tcp.set_option("wscale", 2)
        assert tcp.get_option("wscale") == 2
        assert len([o for o in tcp.options if o[0] == "wscale"]) == 1

    def test_dataofs_accounts_for_options(self):
        tcp = TCP(options=[("mss", 1460)])
        raw = tcp.serialize("1.1.1.1", "2.2.2.2")
        dataofs = raw[12] >> 4
        assert dataofs == 6  # 20 bytes header + 4 bytes option


class TestSerialization:
    def test_round_trip_core_fields(self):
        tcp = TCP(
            sport=1234,
            dport=80,
            seq=0xDEADBEEF,
            ack=0x01020304,
            flags="PA",
            window=512,
            load=b"GET / HTTP/1.1\r\n\r\n",
        )
        parsed = TCP.parse(tcp.serialize("10.0.0.1", "10.0.0.2"), "10.0.0.1", "10.0.0.2")
        assert parsed.sport == 1234
        assert parsed.dport == 80
        assert parsed.seq == 0xDEADBEEF
        assert parsed.ack == 0x01020304
        assert parsed.flags == "PA"
        assert parsed.window == 512
        assert parsed.load == b"GET / HTTP/1.1\r\n\r\n"

    def test_checksum_ok_when_untampered(self):
        tcp = TCP(load=b"data")
        parsed = TCP.parse(tcp.serialize("10.0.0.1", "10.0.0.2"), "10.0.0.1", "10.0.0.2")
        assert parsed.chksum_override is None
        assert parsed.checksum_ok("10.0.0.1", "10.0.0.2")

    def test_corrupted_checksum_detected_and_preserved(self):
        tcp = TCP(load=b"data")
        tcp.chksum_override = 0x1337
        raw = tcp.serialize("10.0.0.1", "10.0.0.2")
        parsed = TCP.parse(raw, "10.0.0.1", "10.0.0.2")
        assert parsed.chksum_override == 0x1337
        assert not parsed.checksum_ok("10.0.0.1", "10.0.0.2")

    def test_checksum_depends_on_addresses(self):
        tcp = TCP(load=b"x")
        raw = tcp.serialize("10.0.0.1", "10.0.0.2")
        # Parsing with wrong addresses sees a checksum mismatch.
        parsed = TCP.parse(raw, "10.0.0.1", "10.0.0.9")
        assert parsed.chksum_override is not None

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            TCP.parse(b"\x00" * 10)

    def test_copy_is_deep_for_options(self):
        tcp = TCP(options=[("mss", 1460)])
        clone = tcp.copy()
        clone.set_option("mss", 500)
        assert tcp.get_option("mss") == 1460

    @given(
        sport=st.integers(0, 0xFFFF),
        dport=st.integers(0, 0xFFFF),
        seq=st.integers(0, 0xFFFFFFFF),
        ack=st.integers(0, 0xFFFFFFFF),
        window=st.integers(0, 0xFFFF),
        load=st.binary(max_size=100),
        flag_bits=st.integers(0, 255),
    )
    def test_round_trip_property(self, sport, dport, seq, ack, window, load, flag_bits):
        tcp = TCP(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=bits_to_flags(flag_bits),
            window=window,
            load=load,
        )
        parsed = TCP.parse(tcp.serialize("1.1.1.1", "2.2.2.2"), "1.1.1.1", "2.2.2.2")
        assert parsed.seq == seq and parsed.ack == ack
        assert parsed.flags == bits_to_flags(flag_bits)
        assert parsed.load == load
        assert parsed.chksum_override is None  # checksum always valid
