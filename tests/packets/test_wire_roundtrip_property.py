"""Property-based wire round-trip tests for the whole packet model.

For arbitrary generated packets — TCP and UDP over IPv4 and IPv6 —
``serialize -> parse -> serialize`` must be the identity on wire bytes,
and recomputed checksums must verify after any field mutation (the
engine relies on this: tampered packets go to the wire with *valid*
checksums unless a strategy explicitly corrupts them).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packets import (
    Packet,
    TCP_FLAG_LETTERS,
    make_tcp_packet,
    make_udp_packet,
)

ports = st.integers(1, 65535)
seqs = st.integers(0, 2**32 - 1)
loads = st.binary(max_size=64)
ttls = st.integers(1, 255)
windows = st.integers(0, 65535)
flag_strings = st.sets(st.sampled_from(TCP_FLAG_LETTERS)).map("".join)
option_lists = st.lists(
    st.one_of(
        st.tuples(st.just("mss"), st.integers(0, 65535)),
        st.tuples(st.just("wscale"), st.integers(0, 14)),
        st.tuples(st.just("sackok"), st.none()),
        st.tuples(st.just("nop"), st.none()),
        st.tuples(st.just("timestamp"), st.tuples(seqs, seqs)),
    ),
    max_size=4,
).map(list)

v4_hosts = st.integers(1, 254)
v6_tails = st.integers(1, 0xFFFF)


def v4_pair(a, b):
    return f"10.0.0.{a}", f"192.0.2.{b}"


def v6_pair(a, b):
    return f"2001:db8:1::{a:x}", f"2001:db8:ffff::{b:x}"


@st.composite
def tcp_packets(draw, v6=False):
    a, b = (
        (draw(v6_tails), draw(v6_tails)) if v6 else (draw(v4_hosts), draw(v4_hosts))
    )
    src, dst = v6_pair(a, b) if v6 else v4_pair(a, b)
    return make_tcp_packet(
        src,
        dst,
        draw(ports),
        draw(ports),
        flags=draw(flag_strings),
        seq=draw(seqs),
        ack=draw(seqs),
        load=draw(loads),
        window=draw(windows),
        ttl=draw(ttls),
        options=draw(option_lists),
    )


@st.composite
def udp_packets(draw, v6=False):
    a, b = (
        (draw(v6_tails), draw(v6_tails)) if v6 else (draw(v4_hosts), draw(v4_hosts))
    )
    src, dst = v6_pair(a, b) if v6 else v4_pair(a, b)
    return make_udp_packet(
        src, dst, draw(ports), draw(ports), load=draw(loads), ttl=draw(ttls)
    )


class TestSerializeParseSerialize:
    @given(tcp_packets())
    @settings(max_examples=150)
    def test_tcp_ipv4_identity(self, packet):
        wire = packet.serialize()
        again = Packet.parse(wire).serialize()
        assert again == wire

    @given(tcp_packets(v6=True))
    @settings(max_examples=100)
    def test_tcp_ipv6_identity(self, packet):
        wire = packet.serialize()
        assert Packet.parse(wire).serialize() == wire

    @given(udp_packets())
    @settings(max_examples=100)
    def test_udp_ipv4_identity(self, packet):
        wire = packet.serialize()
        assert Packet.parse(wire).serialize() == wire

    @given(udp_packets(v6=True))
    @settings(max_examples=100)
    def test_udp_ipv6_identity(self, packet):
        wire = packet.serialize()
        assert Packet.parse(wire).serialize() == wire

    @given(tcp_packets())
    @settings(max_examples=100)
    def test_parse_preserves_fields(self, packet):
        parsed = Packet.parse(packet.serialize())
        assert parsed.src == packet.src
        assert parsed.dst == packet.dst
        assert parsed.sport == packet.sport
        assert parsed.dport == packet.dport
        assert parsed.flags == packet.flags
        assert parsed.tcp.seq == packet.tcp.seq
        assert parsed.tcp.ack == packet.tcp.ack
        assert parsed.load == packet.load


MUTATIONS = st.sampled_from(
    [
        ("TCP", "seq", 12345),
        ("TCP", "ack", 99999),
        ("TCP", "window", 10),
        ("TCP", "sport", 4444),
        ("TCP", "dport", 8080),
        ("IP", "ttl", 7),
    ]
)


class TestChecksumsAfterMutation:
    @given(tcp_packets(), MUTATIONS)
    @settings(max_examples=150)
    def test_recomputed_checksums_always_valid(self, packet, mutation):
        protocol, field, value = mutation
        packet.set_field(protocol, field, value)
        parsed = Packet.parse(packet.serialize())
        assert parsed.checksums_ok()

    @given(tcp_packets(v6=True))
    @settings(max_examples=75)
    def test_ipv6_checksums_after_mutation(self, packet):
        packet.set_field("TCP", "seq", 424242)
        parsed = Packet.parse(packet.serialize())
        assert parsed.checksums_ok()

    @given(udp_packets(), st.integers(1, 65535))
    @settings(max_examples=75)
    def test_udp_checksums_after_mutation(self, packet, port):
        packet.udp.dport = port
        parsed = Packet.parse(packet.serialize())
        assert parsed.checksums_ok()

    @given(tcp_packets())
    @settings(max_examples=75)
    def test_corrupted_checksum_override_survives_the_wire(self, packet):
        """chksum_override must reach the wire verbatim (that's how
        insertion packets are built) and fail validation on re-parse
        unless it happens to equal the true checksum."""
        packet.tcp.chksum_override = 0xDEAD
        wire = packet.serialize()
        parsed = Packet.parse(wire)
        if parsed.tcp.chksum_override is None:
            # 1-in-65536 case: 0xDEAD happened to be the true checksum.
            assert parsed.checksums_ok()
        else:
            # Parse preserved the corruption, and it survives re-serialization.
            assert parsed.tcp.chksum_override == 0xDEAD
            assert not parsed.checksums_ok()
            assert parsed.serialize() == wire
