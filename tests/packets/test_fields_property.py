"""Property-based tests over the full Geneva field registries.

For every registered field of every layer: reading after writing returns
the written value (masked to width), corruption keeps values in range,
and tampered packets always survive a wire round trip.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packets import IPv4, Packet, TCP, UDP, make_tcp_packet, make_udp_packet
from repro.packets.fields import corrupt_value

INT_FIELDS_TCP = [
    name for name, spec in TCP.FIELDS.items() if spec.kind == "int"
]
INT_FIELDS_IP = [name for name, spec in IPv4.FIELDS.items() if spec.kind == "int"]
INT_FIELDS_UDP = [name for name, spec in UDP.FIELDS.items() if spec.kind == "int"]


@given(st.sampled_from(INT_FIELDS_TCP), st.integers(0, 2**32 - 1))
def test_tcp_int_fields_masked_round_trip(field, value):
    tcp = TCP()
    spec = TCP.FIELDS[field]
    spec.set(tcp, value)
    stored = spec.get(tcp)
    assert stored == value & ((1 << spec.bits) - 1)


@given(st.sampled_from(INT_FIELDS_IP), st.integers(0, 2**32 - 1))
def test_ip_int_fields_masked_round_trip(field, value):
    ip = IPv4()
    spec = IPv4.FIELDS[field]
    spec.set(ip, value)
    assert spec.get(ip) == value & ((1 << spec.bits) - 1)


@given(st.sampled_from(INT_FIELDS_UDP), st.integers(0, 2**32 - 1))
def test_udp_int_fields_masked_round_trip(field, value):
    udp = UDP()
    spec = UDP.FIELDS[field]
    spec.set(udp, value)
    assert spec.get(udp) == value & ((1 << spec.bits) - 1)


@given(st.sampled_from(sorted(TCP.FIELDS)), st.integers(0, 10_000))
@settings(max_examples=150)
def test_corrupting_any_tcp_field_keeps_packet_serializable(field, seed):
    packet = make_tcp_packet(
        "10.0.0.1", "10.0.0.2", 4000, 80, flags="SA", seq=1, ack=2,
        load=b"x", options=[("mss", 1460), ("wscale", 7)],
    )
    packet.corrupt_field("TCP", field, random.Random(seed))
    raw = packet.serialize()
    assert len(raw) >= 40
    Packet.parse(raw)  # must never raise


@given(st.sampled_from(sorted(IPv4.FIELDS)), st.integers(0, 10_000))
@settings(max_examples=100)
def test_corrupting_any_ip_field_keeps_packet_serializable(field, seed):
    packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 4000, 80)
    packet.corrupt_field("IP", field, random.Random(seed))
    packet.serialize()  # must never raise


@given(st.sampled_from(sorted(UDP.FIELDS)), st.integers(0, 10_000))
@settings(max_examples=80)
def test_corrupting_any_udp_field_keeps_packet_serializable(field, seed):
    packet = make_udp_packet("10.0.0.1", "10.0.0.2", 4000, 53, load=b"q")
    packet.corrupt_field("UDP", field, random.Random(seed))
    packet.serialize()


@given(st.integers(0, 100_000))
def test_corrupt_flags_always_valid_letters(seed):
    from repro.packets.fields import TCP_FLAG_LETTERS

    value = corrupt_value(TCP.FIELDS["flags"], "SA", random.Random(seed))
    assert set(value) <= set(TCP_FLAG_LETTERS)


@given(st.integers(0, 100_000))
def test_corrupt_ip_address_parses(seed):
    value = corrupt_value(IPv4.FIELDS["src"], "1.2.3.4", random.Random(seed))
    parts = value.split(".")
    assert len(parts) == 4
    assert all(0 <= int(part) <= 255 for part in parts)
