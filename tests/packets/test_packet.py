"""Tests for the Packet container and the Geneva field interface."""

import random

import pytest

from repro.packets import Packet, make_tcp_packet


@pytest.fixture
def packet():
    return make_tcp_packet(
        "10.0.0.1", "10.0.0.2", 4000, 80, flags="SA", seq=100, ack=200, load=b"hi"
    )


class TestAccessors:
    def test_convenience_properties(self, packet):
        assert packet.src == "10.0.0.1"
        assert packet.dst == "10.0.0.2"
        assert packet.sport == 4000
        assert packet.dport == 80
        assert packet.flags == "SA"
        assert packet.load == b"hi"

    def test_flow_keys(self, packet):
        assert packet.flow == ("10.0.0.1", 4000, "10.0.0.2", 80)
        assert packet.reverse_flow == ("10.0.0.2", 80, "10.0.0.1", 4000)

    def test_copy_independent(self, packet):
        clone = packet.copy()
        clone.tcp.seq = 999
        clone.ip.ttl = 1
        assert packet.tcp.seq == 100
        assert packet.ip.ttl == 64


class TestFieldInterface:
    def test_get_set_tcp_field(self, packet):
        assert packet.get_field("TCP", "seq") == 100
        packet.set_field("TCP", "seq", 12345)
        assert packet.tcp.seq == 12345

    def test_get_set_ip_field(self, packet):
        packet.set_field("IP", "ttl", 5)
        assert packet.ip.ttl == 5

    def test_replace_flags(self, packet):
        packet.replace_field("TCP", "flags", "R")
        assert packet.flags == "R"

    def test_replace_flags_empty(self, packet):
        packet.replace_field("TCP", "flags", "")
        assert packet.flags == ""

    def test_replace_load(self, packet):
        packet.replace_field("TCP", "load", "GET / HTTP1.")
        assert packet.load == b"GET / HTTP1."

    def test_replace_window(self, packet):
        packet.replace_field("TCP", "window", "10")
        assert packet.tcp.window == 10

    def test_replace_wscale_empty_removes(self):
        pkt = make_tcp_packet(
            "1.1.1.1", "2.2.2.2", 1, 2, options=[("wscale", 7), ("mss", 1460)]
        )
        pkt.replace_field("TCP", "options-wscale", "")
        assert pkt.tcp.get_option("wscale") is None
        assert pkt.tcp.get_option("mss") == 1460

    def test_corrupt_ack_changes_value(self, packet):
        rng = random.Random(3)
        before = packet.tcp.ack
        packet.corrupt_field("TCP", "ack", rng)
        # Random 32-bit value; astronomically unlikely to collide.
        assert packet.tcp.ack != before

    def test_corrupt_empty_load_generates_payload(self):
        pkt = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
        pkt.corrupt_field("TCP", "load", random.Random(4))
        assert len(pkt.load) > 0

    def test_corrupt_same_length_load(self, packet):
        packet.corrupt_field("TCP", "load", random.Random(5))
        assert len(packet.load) == 2

    def test_corrupt_chksum_invalidates(self, packet):
        assert packet.checksums_ok()
        packet.corrupt_field("TCP", "chksum", random.Random(6))
        # 1-in-65536 chance the random value is the real checksum; seed 6 isn't.
        assert not packet.checksums_ok()

    def test_unknown_field_raises(self, packet):
        with pytest.raises(ValueError):
            packet.get_field("TCP", "nonsense")
        with pytest.raises(ValueError):
            packet.get_field("UDP", "sport")


class TestTriggerMatching:
    def test_exact_flag_match(self, packet):
        assert packet.matches("TCP", "flags", "SA")
        assert packet.matches("TCP", "flags", "AS")  # set comparison
        assert not packet.matches("TCP", "flags", "S")
        assert not packet.matches("TCP", "flags", "A")

    def test_int_field_match(self, packet):
        assert packet.matches("TCP", "dport", "80")
        assert not packet.matches("TCP", "dport", "443")

    def test_wire_round_trip(self, packet):
        parsed = Packet.parse(packet.serialize())
        assert parsed.flow == packet.flow
        assert parsed.tcp.seq == packet.tcp.seq
        assert parsed.load == packet.load
        assert parsed.checksums_ok()
