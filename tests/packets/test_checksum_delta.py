"""RFC 1624 incremental checksum: delta updates equal full recomputation.

This is the property suite ``repro.packets.checksum`` leans on: the
serializers patch cached wire images in place and delta-update the
checksum, which is only safe if ``delta_checksum`` agrees with the full
RFC 1071 recomputation for *every* rewrite — including the carry
wraparound cases and the zero-checksum convention of UDP (RFC 768).
Exactness holds whenever the datagram contains at least one non-zero
16-bit word, which every real TCP/UDP pseudo-header guarantees (the
protocol number is non-zero); the all-zero datagram is the one
documented divergence and is pinned here too.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packets import IPv4, IPv6, TCP, UDP, internet_checksum
from repro.packets.checksum import delta_checksum

# ---------------------------------------------------------------------------
# Pure-function properties


def _patch(data: bytes, offset: int, new: bytes) -> bytes:
    return data[:offset] + new + data[offset + len(new) :]


# Every generated datagram starts with a non-zero word (UDP's protocol
# number in a pseudo-header) so the folded sum stays in [1, 0xFFFF].
_PREFIX = b"\x00\x11"


@st.composite
def _rewrites(draw):
    body = draw(st.binary(min_size=2, max_size=62).map(
        lambda b: b if len(b) % 2 == 0 else b + b"\x00"
    ))
    data = _PREFIX + body
    # A 16-bit-aligned region inside the body (never the prefix word).
    words = len(body) // 2
    start = draw(st.integers(min_value=0, max_value=words - 1))
    length = draw(st.integers(min_value=1, max_value=words - start))
    offset = 2 + 2 * start
    new = draw(st.binary(min_size=2 * length, max_size=2 * length))
    return data, offset, new


class TestDeltaChecksumProperty:
    @given(_rewrites())
    @settings(max_examples=300)
    def test_delta_equals_full_recompute(self, rewrite):
        data, offset, new = rewrite
        old = data[offset : offset + len(new)]
        patched = _patch(data, offset, new)
        assert delta_checksum(internet_checksum(data), old, new) == (
            internet_checksum(patched)
        )

    @given(_rewrites())
    @settings(max_examples=100)
    def test_delta_is_invertible(self, rewrite):
        """Applying a rewrite and then undoing it restores the checksum."""
        data, offset, new = rewrite
        old = data[offset : offset + len(new)]
        forward = delta_checksum(internet_checksum(data), old, new)
        assert delta_checksum(forward, new, old) == internet_checksum(data)

    @given(st.binary(min_size=2, max_size=32).map(
        lambda b: b if len(b) % 2 == 0 else b + b"\x00"
    ))
    def test_identity_rewrite_preserves_checksum(self, body):
        data = _PREFIX + body
        checksum = internet_checksum(data)
        assert delta_checksum(checksum, body, body) == checksum


class TestCarryWraparound:
    """Vectors engineered so the incremental sum overflows 16 bits."""

    def test_all_ones_region_to_zero(self):
        data = _PREFIX + b"\xff\xff" * 4
        patched = _patch(data, 2, b"\x00\x00")
        assert delta_checksum(internet_checksum(data), b"\xff\xff", b"\x00\x00") == (
            internet_checksum(patched)
        )

    def test_zero_region_to_all_ones(self):
        data = _PREFIX + b"\x00\x00" * 4
        patched = _patch(data, 2, b"\xff\xff\xff\xff")
        assert delta_checksum(
            internet_checksum(data), b"\x00\x00\x00\x00", b"\xff\xff\xff\xff"
        ) == internet_checksum(patched)

    def test_repeated_fold(self):
        # Long all-ones rewrite: the unfolded total exceeds 2^16 several
        # times over, exercising the fold-until-fits loop.
        data = _PREFIX + b"\x00\x00" * 16
        new = b"\xff\xfe" * 16
        patched = _patch(data, 2, new)
        assert delta_checksum(internet_checksum(data), b"\x00\x00" * 16, new) == (
            internet_checksum(patched)
        )

    def test_all_zero_datagram_is_the_documented_divergence(self):
        """The one case RFC 1624 cannot distinguish: a datagram whose
        one's-complement sum is +0 (all-zero bytes). Real pseudo-headers
        never hit it (the protocol word is non-zero)."""
        data = b"\x00\x00" * 4
        delta = delta_checksum(internet_checksum(data), b"\x00\x00", b"\x00\x00")
        assert delta in (0x0000, 0xFFFF)  # -0 vs +0 representation


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            delta_checksum(0, b"\x00\x00", b"\x00\x00\x00\x00")

    def test_rejects_unaligned_regions(self):
        with pytest.raises(ValueError):
            delta_checksum(0, b"\x00", b"\x01")


# ---------------------------------------------------------------------------
# Serializer-level properties: the patched wire image of a mutated packet
# must be byte-identical to a from-scratch serialization.


def _fresh_tcp(sport, dport, seq, ack, flags, window, urgptr, load):
    segment = TCP(
        sport=sport, dport=dport, seq=seq, ack=ack,
        flags=flags, window=window, urgptr=urgptr, load=load,
    )
    return segment


_FLAGS = st.sampled_from(["S", "A", "SA", "R", "F", "PA", "RA", "FA"])


class TestTCPWirePatch:
    @given(
        field=st.sampled_from(["sport", "dport", "seq", "ack", "window", "urgptr"]),
        value=st.integers(min_value=0, max_value=0xFFFF),
        load=st.binary(max_size=32),
    )
    @settings(max_examples=200)
    def test_scalar_mutation_patches_exactly(self, field, value, load):
        segment = _fresh_tcp(1234, 25, 100, 200, "PA", 8192, 0, load)
        first = segment.serialize("10.0.0.1", "10.0.0.2")
        setattr(segment, field, value)
        patched = segment.serialize("10.0.0.1", "10.0.0.2")
        fresh = _fresh_tcp(
            segment.sport, segment.dport, segment.seq, segment.ack,
            segment.flags, segment.window, segment.urgptr, load,
        ).serialize("10.0.0.1", "10.0.0.2")
        assert patched == fresh
        assert len(patched) == len(first)

    @given(old=_FLAGS, new=_FLAGS, load=st.binary(max_size=16))
    @settings(max_examples=100)
    def test_flag_mutation_patches_exactly(self, old, new, load):
        segment = _fresh_tcp(1234, 25, 100, 200, old, 8192, 0, load)
        segment.serialize("10.0.0.1", "10.0.0.2")
        segment.flags = new
        patched = segment.serialize("10.0.0.1", "10.0.0.2")
        fresh = _fresh_tcp(1234, 25, 100, 200, new, 8192, 0, load)
        assert patched == fresh.serialize("10.0.0.1", "10.0.0.2")

    @given(
        values=st.lists(
            st.tuples(
                st.sampled_from(["sport", "dport", "seq", "ack", "window"]),
                st.integers(min_value=0, max_value=0xFFFF),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=100)
    def test_mutation_chains_stay_exact(self, values):
        """Repeated patch-on-patch cycles never drift from a full build."""
        segment = _fresh_tcp(1, 2, 3, 4, "S", 5, 0, b"hello")
        segment.serialize("10.0.0.1", "10.0.0.2")
        for field, value in values:
            setattr(segment, field, value)
            patched = segment.serialize("10.0.0.1", "10.0.0.2")
            fresh = _fresh_tcp(
                segment.sport, segment.dport, segment.seq, segment.ack,
                segment.flags, segment.window, segment.urgptr, b"hello",
            )
            assert patched == fresh.serialize("10.0.0.1", "10.0.0.2")

    @given(value=st.integers(min_value=0, max_value=0xFFFF))
    def test_patched_checksum_verifies(self, value):
        """The delta-updated checksum passes the receiver's validation."""
        segment = _fresh_tcp(1234, 25, 100, 200, "PA", 8192, 0, b"payload")
        segment.serialize("10.0.0.1", "10.0.0.2")
        segment.window = value
        wire = segment.serialize("10.0.0.1", "10.0.0.2")
        parsed = TCP.parse(wire, "10.0.0.1", "10.0.0.2")
        assert parsed.chksum_override is None  # checksum recognized as valid
        assert parsed.checksum_ok("10.0.0.1", "10.0.0.2")


class TestIPv4WirePatch:
    @given(
        field=st.sampled_from(["ttl", "tos", "ident", "frag"]),
        value=st.integers(min_value=0, max_value=0xFF),
        payload=st.binary(max_size=32),
    )
    @settings(max_examples=200)
    def test_scalar_mutation_patches_exactly(self, field, value, payload):
        header = IPv4(src="10.0.0.1", dst="10.0.0.2", ttl=64)
        header.serialize(payload)
        setattr(header, field, value)
        patched = header.serialize(payload)
        fresh = IPv4(
            src="10.0.0.1", dst="10.0.0.2", ttl=header.ttl,
            ident=header.ident, tos=header.tos,
            flags=header.flags, frag=header.frag,
        )
        assert patched == fresh.serialize(payload)

    @given(value=st.integers(min_value=1, max_value=0xFF))
    def test_patched_header_checksum_verifies(self, value):
        header = IPv4(src="10.0.0.1", dst="10.0.0.2", ttl=64)
        header.serialize(b"x" * 8)
        header.ttl = value
        wire = header.serialize(b"x" * 8)
        # RFC 1071: summing a header over its own checksum yields zero.
        assert internet_checksum(wire[:20]) == 0
        parsed, payload = IPv4.parse(wire)
        assert parsed.ttl == value
        assert payload == b"x" * 8


class TestIPv6WirePatch:
    @given(
        field=st.sampled_from(["hop_limit", "proto", "traffic_class"]),
        value=st.integers(min_value=0, max_value=0xFF),
        payload=st.binary(max_size=32),
    )
    @settings(max_examples=150)
    def test_scalar_mutation_patches_exactly(self, field, value, payload):
        header = IPv6(src="2001:db8::1", dst="2001:db8::2")
        header.serialize(payload)
        setattr(header, field, value)
        patched = header.serialize(payload)
        fresh = IPv6(
            src="2001:db8::1", dst="2001:db8::2",
            hop_limit=header.hop_limit, proto=header.proto,
            traffic_class=header.traffic_class, flow_label=header.flow_label,
        )
        assert patched == fresh.serialize(payload)

    @given(value=st.integers(min_value=0, max_value=0xFFFFF))
    def test_flow_label_patch(self, value):
        header = IPv6(src="2001:db8::1", dst="2001:db8::2")
        header.serialize(b"payload!")
        header.flow_label = value
        wire = header.serialize(b"payload!")
        parsed, _ = IPv6.parse(wire)
        assert parsed.flow_label == value


class TestZeroChecksumUDP:
    """RFC 768: a computed checksum of zero is transmitted as 0xFFFF."""

    @staticmethod
    def _zero_checksum_load(sport, dport, src, dst):
        """Craft a payload whose UDP checksum computes to exactly zero.

        Appending the complemented fold of a datagram as its final word
        makes the total sum verify to zero — but the length fields shift
        when the load grows, so solve with the final length fixed.
        """
        base = b"\x00\x00"  # placeholder for the compensating word
        datagram = UDP(sport=sport, dport=dport, load=b"dns-query\x00" + base)
        length = 8 + len(datagram.load)
        from repro.packets.checksum import pseudo_header

        head = struct.pack("!HHHH", sport, dport, length, 0) + b"dns-query\x00"
        pseudo = pseudo_header(src, dst, 17, length)
        fixup = internet_checksum(pseudo + head + base)
        datagram.load = b"dns-query\x00" + struct.pack("!H", fixup)
        return datagram

    def test_zero_computes_as_ffff_on_the_wire(self):
        datagram = self._zero_checksum_load(53, 53, "10.0.0.1", "10.0.0.2")
        wire = datagram.serialize("10.0.0.1", "10.0.0.2")
        (chksum,) = struct.unpack("!H", wire[6:8])
        assert chksum == 0xFFFF

    def test_delta_agrees_with_substituted_recompute(self):
        """When a rewrite lands the sum on zero, ``delta_checksum`` returns
        the same 0 the full recompute does, so callers applying the RFC 768
        substitution afterwards agree with a from-scratch serialization."""
        datagram = self._zero_checksum_load(53, 53, "10.0.0.1", "10.0.0.2")
        from repro.packets.checksum import pseudo_header

        length = 8 + len(datagram.load)
        pseudo = pseudo_header("10.0.0.1", "10.0.0.2", 17, length)
        zeroed = struct.pack("!HHHH", 53, 53, length, 0) + datagram.load
        full = internet_checksum(pseudo + zeroed)
        assert full == 0
        # Reach the same datagram by delta-updating from a sibling that
        # differs in one payload word.
        other = zeroed[:-2] + b"\x12\x34"
        start = internet_checksum(pseudo + other)
        assert delta_checksum(start, b"\x12\x34", zeroed[-2:]) == full

    def test_round_trip_preserves_validity(self):
        datagram = self._zero_checksum_load(53, 53, "10.0.0.1", "10.0.0.2")
        wire = datagram.serialize("10.0.0.1", "10.0.0.2")
        parsed = UDP.parse(wire, "10.0.0.1", "10.0.0.2")
        assert parsed.chksum_override is None
        assert parsed.load == datagram.load
