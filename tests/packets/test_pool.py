"""Pool hygiene: a re-acquired packet carries no prior state, and the
arena stays bounded no matter how many trials run through it.

``repro.packets.pool`` promises hygiene *by construction*: every acquire
re-initializes every slot of the trio. These tests enumerate the slots
(so a field added to ``Packet``/``IPv4``/``TCP`` without a matching
re-init line fails here, not in a flaky trial), dirty a packet as hard as
the strategy engine can, and check the next acquire is pristine.
"""

import pytest

from repro.packets import IPv4, TCP, make_tcp_packet
from repro.packets.packet import Packet
from repro.packets import pool
from repro.packets.pool import PacketArena, active_arena, pooled


# The slots each acquire must re-initialize. Kept in sync with the
# classes by the enumeration tests below.
IP_SLOTS = {
    "version", "ihl", "tos", "ident", "flags", "frag", "ttl", "proto",
    "src", "dst", "len_override", "chksum_override", "_wire", "_wire_key",
}
TCP_SLOTS = {
    "sport", "dport", "seq", "ack", "flags", "window", "urgptr",
    "options", "load", "chksum_override", "dataofs_override",
    "_wire", "_wire_key",
}


def _dirty(packet):
    """Smear every mutable field the strategy engine can touch."""
    ip = packet.ip
    ip.tos = 0xA5
    ip.ident = 0xBEEF
    ip.flags = 7
    ip.frag = 123
    ip.ttl = 3
    ip.len_override = 9999
    ip.chksum_override = 0x1234
    tcp = packet.tcp
    tcp.seq = 0xDEADBEEF
    tcp.ack = 0xCAFEBABE
    tcp.flags = "FSRPAU"
    tcp.window = 1
    tcp.urgptr = 77
    tcp.options = [("mss", 1460), ("nop", None)]
    tcp.load = b"X" * 1400
    tcp.chksum_override = 0xFFFF
    tcp.dataofs_override = 15
    # Populate the wire caches so stale images could leak.
    tcp.chksum_override = None
    ip.chksum_override = None
    packet.serialize()
    assert tcp._wire is not None and ip._wire is not None


class TestSlotEnumeration:
    """If a slot is added to a pooled class, these fail until the pool's
    acquire paths (and the sets above) learn about it."""

    def test_ipv4_slots_match(self):
        assert set(IPv4.__slots__) == IP_SLOTS

    def test_tcp_slots_match(self):
        assert set(TCP.__slots__) == TCP_SLOTS

    def test_packet_slots_match(self):
        assert set(Packet.__slots__) == {"ip", "tcp", "udp"}


class TestAcquireHygiene:
    def test_reacquired_packet_is_pristine(self):
        arena = PacketArena()
        first = arena.acquire_tcp("10.0.0.1", "10.0.0.2", 1234, 25)
        _dirty(first)
        arena.reclaim()

        packet = arena.acquire_tcp("10.1.1.1", "10.1.1.2", 4321, 80)
        assert arena.reused == 1  # actually recycled, not freshly built
        reference = make_tcp_packet("10.1.1.1", "10.1.1.2", 4321, 80)
        for slot in IP_SLOTS:
            assert getattr(packet.ip, slot) == getattr(reference.ip, slot), slot
        for slot in TCP_SLOTS:
            assert getattr(packet.tcp, slot) == getattr(reference.tcp, slot), slot
        assert packet.udp is None

    def test_reacquired_packet_serializes_identically(self):
        arena = PacketArena()
        dirty = arena.acquire_tcp("10.0.0.1", "10.0.0.2", 1234, 25, load=b"old")
        _dirty(dirty)
        arena.reclaim()
        packet = arena.acquire_tcp("10.0.0.9", "10.0.0.8", 1111, 53, load=b"new")
        fresh = make_tcp_packet("10.0.0.9", "10.0.0.8", 1111, 53, load=b"new")
        assert packet.serialize() == fresh.serialize()

    def test_acquire_copy_matches_slow_copy(self):
        arena = PacketArena()
        source = make_tcp_packet(
            "10.0.0.1", "10.0.0.2", 1234, 25,
            flags="PA", seq=42, ack=43, load=b"MAIL FROM",
            options=[("mss", 1460)],
        )
        source.serialize()
        clone = arena.acquire_copy(source)
        for slot in IP_SLOTS:
            assert getattr(clone.ip, slot) == getattr(source.ip, slot), slot
        for slot in TCP_SLOTS:
            assert getattr(clone.tcp, slot) == getattr(source.tcp, slot), slot
        # Deep where it must be: mutating the clone's options leaves the
        # source untouched.
        clone.tcp.options.append(("nop", None))
        assert len(source.tcp.options) == 1

    def test_options_list_not_shared_between_acquires(self):
        arena = PacketArena()
        shared = [("mss", 1460)]
        first = arena.acquire_tcp("1.1.1.1", "2.2.2.2", 1, 2, options=shared)
        first.tcp.options.append(("nop", None))
        assert shared == [("mss", 1460)]
        arena.reclaim()
        second = arena.acquire_tcp("1.1.1.1", "2.2.2.2", 1, 2)
        assert second.tcp.options == []


class TestReclaimBounds:
    def test_free_list_is_bounded(self):
        arena = PacketArena(max_free=8)
        for _ in range(3):
            for _ in range(50):
                arena.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
            arena.reclaim()
            assert len(arena) <= 8

    def test_reclaim_drops_payload_references(self):
        arena = PacketArena()
        packet = arena.acquire_tcp(
            "10.0.0.1", "10.0.0.2", 1, 2, load=b"Z" * 4096
        )
        packet.serialize()
        arena.reclaim()
        recycled = arena._free[-1]
        assert recycled.tcp.load == b""
        assert recycled.tcp.options == []
        assert recycled.tcp._wire is None
        assert recycled.ip._wire is None

    def test_abandon_discards_live_set(self):
        arena = PacketArena()
        arena.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
        arena.abandon()
        assert len(arena) == 0
        arena.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
        assert arena.reused == 0  # abandoned trio was not recycled

    def test_pool_stays_bounded_over_many_trials(self):
        """10k pooled trials never grow the process-wide free list past
        its bound (the leak test from the issue checklist)."""
        before_free = len(pool._ARENA)
        for _ in range(10_000):
            with pooled() as arena:
                make_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 25)
                make_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 25).copy()
        assert len(pool._ARENA) <= pool._ARENA.max_free
        assert len(pool._ARENA._live) == 0
        assert len(pool._ARENA) >= min(before_free, pool._ARENA.max_free)


class TestMixedIPVersions:
    """Arena reuse cannot leak header fields between flows with differing
    IP versions: IPv6 trios never enter the pool, and an IPv4 trio
    re-acquired after an IPv6 flow ran through the same arena is pristine."""

    def test_ipv6_packets_bypass_active_arena(self):
        from repro.packets.ipv6 import IPv6

        with pooled() as arena:
            before = arena.created + arena.reused
            packet = make_tcp_packet("2001:db8::1", "2001:db8::2", 1, 2)
            assert isinstance(packet.ip, IPv6)
            assert arena.created + arena.reused == before
            assert not arena._live

    def test_ipv6_copy_bypasses_active_arena(self):
        packet = make_tcp_packet("2001:db8::1", "2001:db8::2", 1, 2, load=b"x")
        with pooled() as arena:
            before = arena.created + arena.reused
            clone = packet.copy()
            assert arena.created + arena.reused == before
        assert clone.ip.src == packet.ip.src
        assert clone.tcp.load == b"x"

    def test_ipv4_trio_pristine_after_ipv6_flow(self):
        """An IPv4 flow, then an IPv6 flow, then IPv4 again on leases of
        one shared arena — the recycled trio matches a fresh build
        field-for-field (the fleet mixed-version regression)."""
        parent = PacketArena()

        first = parent.lease()
        dirty = first.acquire_tcp(
            "10.0.0.1", "10.0.0.2", 1234, 80, load=b"GET /"
        )
        _dirty(dirty)
        first.reclaim()
        assert len(parent) == 1

        second = parent.lease()
        v6 = make_tcp_packet("2001:db8::1", "2001:db8::2", 5, 6, load=b"v6")
        v6.copy()
        second.reclaim()
        assert len(parent) == 1  # the IPv6 trio never touched the pool

        third = parent.lease()
        packet = third.acquire_tcp("10.9.9.9", "10.8.8.8", 4321, 443)
        assert parent.reused == 1
        reference = make_tcp_packet("10.9.9.9", "10.8.8.8", 4321, 443)
        assert type(packet.ip) is IPv4
        for slot in IP_SLOTS:
            assert getattr(packet.ip, slot) == getattr(reference.ip, slot), slot
        for slot in TCP_SLOTS:
            assert getattr(packet.tcp, slot) == getattr(reference.tcp, slot), slot
        assert packet.serialize() == reference.serialize()


class TestArenaLease:
    def test_lease_shares_free_list_with_parent(self):
        parent = PacketArena()
        lease = parent.lease()
        lease.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
        lease.reclaim()
        assert len(parent) == 1
        # The parent (or any sibling lease) reuses the reclaimed trio.
        parent.acquire_tcp("10.0.0.3", "10.0.0.4", 3, 4)
        assert parent.reused == 1

    def test_lease_live_sets_are_independent(self):
        parent = PacketArena()
        a, b = parent.lease(), parent.lease()
        a.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
        b.acquire_tcp("10.0.0.5", "10.0.0.6", 5, 6)
        a.reclaim()  # flow A quiesces; flow B's packet stays live
        assert len(a._live) == 0
        assert len(b._live) == 1
        assert len(parent) == 1

    def test_lease_counters_mirror_to_parent(self):
        parent = PacketArena()
        lease = parent.lease()
        lease.acquire_tcp("10.0.0.1", "10.0.0.2", 1, 2)
        assert parent.created == 1
        lease.reclaim()
        other = parent.lease()
        other.acquire_tcp("10.0.0.3", "10.0.0.4", 3, 4)
        assert parent.reused == 1


class TestActivation:
    def test_inactive_by_default(self):
        assert active_arena() is None
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        assert isinstance(packet, Packet)

    def test_pooled_activates_and_deactivates(self):
        with pooled() as arena:
            assert active_arena() is arena
        assert active_arena() is None

    def test_nested_pooled_is_a_noop(self):
        with pooled() as outer:
            created = outer.created
            with pooled() as inner:
                assert inner is outer
                make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
            # Inner exit must not reclaim: the trio is still live.
            assert outer._live
            assert outer.created == created + 1 or outer.reused > 0
        assert active_arena() is None

    def test_exception_abandons_live_packets(self):
        with pytest.raises(RuntimeError):
            with pooled():
                make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
                raise RuntimeError("trial blew up")
        assert active_arena() is None
        assert len(pool._ARENA._live) == 0

    def test_copy_uses_arena_only_when_active(self):
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        with pooled() as arena:
            before = arena.created + arena.reused
            packet.copy()
            assert arena.created + arena.reused == before + 1
        outside = packet.copy()
        assert isinstance(outside, Packet)
