"""Tests for the IPv4 header layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import IPv4, internet_checksum


class TestSerialization:
    def test_header_length_default(self):
        assert IPv4().header_length() == 20

    def test_round_trip_basic(self):
        ip = IPv4(src="192.168.1.10", dst="8.8.8.8", ttl=37, proto=6, ident=555)
        raw = ip.serialize(b"payload")
        parsed, payload = IPv4.parse(raw)
        assert parsed.src == "192.168.1.10"
        assert parsed.dst == "8.8.8.8"
        assert parsed.ttl == 37
        assert parsed.proto == 6
        assert parsed.ident == 555
        assert payload == b"payload"

    def test_checksum_valid_on_wire(self):
        raw = IPv4(src="1.2.3.4", dst="4.3.2.1").serialize(b"")
        assert internet_checksum(raw[:20]) == 0

    def test_total_length_field(self):
        raw = IPv4().serialize(b"x" * 13)
        total_len = int.from_bytes(raw[2:4], "big")
        assert total_len == 33

    def test_len_override_survives(self):
        ip = IPv4()
        ip.len_override = 9999
        raw = ip.serialize(b"abc")
        assert int.from_bytes(raw[2:4], "big") == 9999

    def test_corrupted_checksum_round_trips(self):
        ip = IPv4(src="1.1.1.1", dst="2.2.2.2")
        ip.chksum_override = 0xDEAD
        raw = ip.serialize(b"")
        parsed, _ = IPv4.parse(raw)
        assert parsed.chksum_override == 0xDEAD

    def test_valid_checksum_parses_without_override(self):
        raw = IPv4(src="1.1.1.1", dst="2.2.2.2").serialize(b"")
        parsed, _ = IPv4.parse(raw)
        assert parsed.chksum_override is None

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            IPv4.parse(b"\x45" * 10)

    @given(
        src=st.tuples(*[st.integers(0, 255)] * 4),
        dst=st.tuples(*[st.integers(0, 255)] * 4),
        ttl=st.integers(1, 255),
        ident=st.integers(0, 0xFFFF),
        payload=st.binary(max_size=64),
    )
    def test_round_trip_property(self, src, dst, ttl, ident, payload):
        ip = IPv4(
            src=".".join(map(str, src)),
            dst=".".join(map(str, dst)),
            ttl=ttl,
            ident=ident,
        )
        parsed, parsed_payload = IPv4.parse(ip.serialize(payload))
        assert (parsed.src, parsed.dst) == (ip.src, ip.dst)
        assert (parsed.ttl, parsed.ident) == (ttl, ident)
        assert parsed_payload == payload


class TestFields:
    def test_copy_is_independent(self):
        ip = IPv4(ttl=10)
        clone = ip.copy()
        clone.ttl = 99
        assert ip.ttl == 10

    def test_field_registry_get_set(self):
        ip = IPv4(ttl=64)
        spec = IPv4.FIELDS["ttl"]
        assert spec.get(ip) == 64
        spec.set(ip, 300)  # masked to 8 bits
        assert ip.ttl == 300 & 0xFF

    def test_src_dst_fields(self):
        ip = IPv4()
        IPv4.FIELDS["src"].set(ip, "9.9.9.9")
        assert ip.src == "9.9.9.9"

    def test_repr_contains_addresses(self):
        assert "1.2.3.4" in repr(IPv4(src="1.2.3.4"))
