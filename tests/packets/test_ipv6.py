"""Tests for the IPv6 layer and dual-stack packet handling."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import Packet, make_tcp_packet, tcp_checksum
from repro.packets.ipv6 import (
    IPv6,
    bytes_to_v6,
    canonical_ip,
    compress_v6,
    expand_v6,
    v6_to_bytes,
)


class TestAddressCodec:
    def test_expand_double_colon(self):
        assert expand_v6("2001:db8::1") == "2001:db8:0:0:0:0:0:1"
        assert expand_v6("::") == "0:0:0:0:0:0:0:0"
        assert expand_v6("::1") == "0:0:0:0:0:0:0:1"
        assert expand_v6("fe80::") == "fe80:0:0:0:0:0:0:0"

    def test_compress(self):
        assert compress_v6("2001:db8:0:0:0:0:0:1") == "2001:db8::1"
        assert compress_v6("0:0:0:0:0:0:0:1") == "::1"
        assert compress_v6("1:2:3:4:5:6:7:8") == "1:2:3:4:5:6:7:8"

    def test_bytes_round_trip(self):
        raw = v6_to_bytes("2001:db8::beef")
        assert len(raw) == 16
        assert bytes_to_v6(raw) == "2001:db8:0:0:0:0:0:beef"

    def test_invalid_addresses_rejected(self):
        for bad in ("2001:::1", "1:2:3", "1:2:3:4:5:6:7:8:9", "g::1"):
            with pytest.raises(ValueError):
                v6_to_bytes(bad)

    def test_canonical_ip_both_families(self):
        assert canonical_ip("10.0.0.1") == "10.0.0.1"
        assert canonical_ip("2001:db8::1") == "2001:db8:0:0:0:0:0:1"

    @given(st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8))
    def test_expand_compress_round_trip(self, groups):
        address = ":".join(f"{g:x}" for g in groups)
        assert expand_v6(compress_v6(address)) == expand_v6(address)


class TestHeader:
    def test_serialize_parse_round_trip(self):
        ip = IPv6(src="2001:db8::2", dst="2001:db8::10", hop_limit=33, flow_label=0xABCDE)
        parsed, payload = IPv6.parse(ip.serialize(b"payload"))
        assert parsed.src == expand_v6("2001:db8::2")
        assert parsed.hop_limit == 33
        assert parsed.flow_label == 0xABCDE
        assert payload == b"payload"

    def test_ttl_alias(self):
        ip = IPv6(hop_limit=7)
        assert ip.ttl == 7
        ip.ttl = 3
        assert ip.hop_limit == 3

    def test_no_header_checksum(self):
        ip = IPv6()
        assert ip.chksum_override is None
        assert ip.checksum_ok(b"anything")

    def test_version_check_on_parse(self):
        with pytest.raises(ValueError):
            IPv6.parse(b"\x45" + b"\x00" * 60)  # an IPv4 header

    def test_field_registry(self):
        ip = IPv6()
        IPv6.FIELDS["ttl"].set(ip, 9)
        assert ip.hop_limit == 9
        IPv6.FIELDS["fl"].set(ip, 0x12345)
        assert ip.flow_label == 0x12345


class TestDualStackPackets:
    def test_make_tcp_packet_selects_family(self):
        v6 = make_tcp_packet("2001:db8::2", "2001:db8::10", 1, 2)
        v4 = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        assert isinstance(v6.ip, IPv6)
        assert not isinstance(v4.ip, IPv6)

    def test_v6_wire_round_trip(self):
        packet = make_tcp_packet(
            "2001:db8::2", "2001:db8::10", 4000, 80, flags="PA", seq=5, ack=6,
            load=b"GET / HTTP/1.1\r\n\r\n",
        )
        parsed = Packet.parse(packet.serialize())
        assert isinstance(parsed.ip, IPv6)
        assert parsed.load == b"GET / HTTP/1.1\r\n\r\n"
        assert parsed.checksums_ok()

    def test_v6_checksum_differs_from_v4(self):
        segment = b"\x00" * 20
        v4 = tcp_checksum("10.0.0.1", "10.0.0.2", segment)
        v6 = tcp_checksum("2001:db8::1", "2001:db8::2", segment)
        assert v4 != v6

    def test_geneva_tamper_on_v6(self, rng):
        packet = make_tcp_packet("2001:db8::2", "2001:db8::10", 1, 2, flags="SA")
        packet.replace_field("IP", "ttl", "5")
        assert packet.ip.hop_limit == 5
        packet.corrupt_field("IP", "src", rng)
        assert ":" in packet.ip.src  # corruption stays in-family

    def test_v6_udp(self):
        from repro.packets import make_udp_packet

        packet = make_udp_packet("2001:db8::2", "2001:db8::10", 5353, 53, load=b"q")
        parsed = Packet.parse(packet.serialize())
        assert parsed.is_udp and parsed.load == b"q"


class TestV6EndToEnd:
    def test_http_exchange_over_v6(self, linked_hosts):
        """The whole stack is address-family agnostic."""
        import random as _random

        from repro.netsim import Network, Scheduler
        from repro.apps import HTTPClient, HTTPServer
        from repro.tcpstack import Host, personality

        sched = Scheduler()
        client = Host("client", "2001:db8::2", sched, _random.Random(2),
                      personality("ubuntu-18.04.1"))
        server = Host("server", "2001:db8:beef::10", sched, _random.Random(3))
        net = Network(sched, client, server)
        client.attach(net)
        server.attach(net)
        HTTPServer(server, 80).install()
        app = HTTPClient(client, "2001:db8:beef::10", 80, path="/?q=v6")
        app.start()
        sched.run(until=15)
        assert app.outcome == "success"

    def test_server_strategy_over_v6(self):
        """Geneva strategies apply unchanged to IPv6 traffic."""
        import random as _random

        from repro.core import deployed_strategy, install_strategy
        from repro.netsim import Network, Scheduler
        from repro.apps import HTTPClient, HTTPServer
        from repro.tcpstack import Host, personality

        sched = Scheduler()
        client = Host("client", "2001:db8::2", sched, _random.Random(2),
                      personality("ubuntu-18.04.1"))
        server = Host("server", "2001:db8:beef::10", sched, _random.Random(3))
        net = Network(sched, client, server)
        client.attach(net)
        server.attach(net)
        install_strategy(server, deployed_strategy(1), _random.Random(9))
        HTTPServer(server, 80).install()
        app = HTTPClient(client, "2001:db8:beef::10", 80)
        app.start()
        sched.run(until=15)
        assert app.outcome == "success"  # sim-open handshake over v6
