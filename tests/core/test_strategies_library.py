"""Tests for the canonical strategy library (the paper's 11 strategies)."""

import random

import pytest

from repro.core import (
    CLIENT_SIDE_STRATEGIES,
    NO_EVASION,
    PAPER_STRATEGY_NUMBERS,
    SERVER_STRATEGIES,
    client_side_strategy,
    compat_strategy,
    deployed_strategy,
    server_side_analogs,
    strategy,
)
from repro.packets import make_tcp_packet


@pytest.fixture
def synack():
    return make_tcp_packet(
        "10.0.0.2", "10.0.0.1", 80, 4000, flags="SA", seq=1000, ack=2001,
        options=[("mss", 1460), ("wscale", 7)],
    )


class TestLibrary:
    def test_library_numbering(self):
        assert sorted(SERVER_STRATEGIES) == list(range(1, 16))
        assert PAPER_STRATEGY_NUMBERS == tuple(range(1, 12))

    def test_no_evasion_is_noop(self):
        assert NO_EVASION.is_noop()

    def test_countries_assignment(self):
        for number in range(1, 8):
            assert SERVER_STRATEGIES[number].countries == ("china",)
        assert "india" in SERVER_STRATEGIES[8].countries
        for number in (9, 10, 11):
            assert SERVER_STRATEGIES[number].countries == ("kazakhstan",)

    def test_simultaneous_open_flags(self):
        assert SERVER_STRATEGIES[1].uses_simultaneous_open
        assert SERVER_STRATEGIES[2].uses_simultaneous_open
        assert SERVER_STRATEGIES[3].uses_simultaneous_open
        assert not SERVER_STRATEGIES[4].uses_simultaneous_open

    def test_synack_payload_flags(self):
        assert {n for n, r in SERVER_STRATEGIES.items() if r.synack_payload} == {5, 9, 10}


class TestWireEffects:
    """Each strategy must emit exactly the paper's packet sequence."""

    def apply(self, number, synack, deployed=False):
        rng = random.Random(7)
        s = deployed_strategy(number) if deployed else strategy(number)
        return s.apply_outbound(synack, rng)

    def test_strategy_1_rst_then_syn(self, synack):
        out = self.apply(1, synack)
        assert [p.flags for p in out] == ["R", "S"]
        assert out[1].tcp.seq == 1000  # SYN keeps the SYN+ACK's seq

    def test_strategy_2_syn_then_syn_with_load(self, synack):
        out = self.apply(2, synack)
        assert [p.flags for p in out] == ["S", "S"]
        assert not out[0].load and out[1].load

    def test_strategy_3_corrupt_ack_then_syn(self, synack):
        out = self.apply(3, synack)
        assert out[0].flags == "SA" and out[0].tcp.ack != 2001
        assert out[1].flags == "S"

    def test_strategy_4_corrupt_ack_then_original(self, synack):
        out = self.apply(4, synack)
        assert [p.flags for p in out] == ["SA", "SA"]
        assert out[0].tcp.ack != 2001
        assert out[1].tcp.ack == 2001

    def test_strategy_5_corrupt_ack_then_load(self, synack):
        out = self.apply(5, synack)
        assert out[0].tcp.ack != 2001 and not out[0].load
        assert out[1].tcp.ack == 2001 and out[1].load

    def test_strategy_6_fin_load_corrupt_ack_original(self, synack):
        out = self.apply(6, synack)
        assert [p.flags for p in out] == ["F", "SA", "SA"]
        assert out[0].load
        assert out[1].tcp.ack != 2001
        assert out[2].tcp.ack == 2001

    def test_strategy_7_rst_corrupt_ack_original(self, synack):
        out = self.apply(7, synack)
        assert [p.flags for p in out] == ["R", "SA", "SA"]
        assert out[1].tcp.ack != 2001
        assert out[2].tcp.ack == 2001

    def test_strategy_8_window_and_wscale(self, synack):
        out = self.apply(8, synack)
        assert len(out) == 1
        assert out[0].tcp.window == 10
        assert out[0].tcp.get_option("wscale") is None

    def test_strategy_9_three_loads(self, synack):
        out = self.apply(9, synack)
        assert len(out) == 3
        assert all(p.load for p in out)
        assert len({bytes(p.load) for p in out}) == 1

    def test_strategy_10_double_get(self, synack):
        out = self.apply(10, synack)
        assert len(out) == 2
        assert all(bytes(p.load) == b"GET / HTTP1." for p in out)

    def test_strategy_11_null_flags_then_original(self, synack):
        out = self.apply(11, synack)
        assert [p.flags for p in out] == ["", "SA"]

    def test_compat_variants_use_bad_checksums(self, synack):
        for number in (5, 9, 10):
            out = compat_strategy(number).apply_outbound(synack.copy(), random.Random(3))
            payload_packets = [p for p in out if p.load]
            assert payload_packets, f"strategy {number} compat lost its payloads"
            assert all(not p.checksums_ok() for p in payload_packets)
            # The original, valid SYN+ACK is still sent.
            clean = [p for p in out if p.flags == "SA" and not p.load]
            assert any(p.checksums_ok() for p in clean)


class TestClientSideCorpus:
    def test_corpus_nonempty(self):
        assert len(CLIENT_SIDE_STRATEGIES) == 8

    def test_each_has_two_analogs(self):
        for name in CLIENT_SIDE_STRATEGIES:
            analogs = server_side_analogs(name)
            assert len(analogs) == 2
            assert analogs[0].name.endswith("server-before")
            assert analogs[1].name.endswith("server-after")

    def test_ttl_strategy_limits_ttl(self):
        s = client_side_strategy("teardown-r-ttl-on-a")
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 4000, 80, flags="A", ttl=64)
        out = s.apply_outbound(packet, random.Random(1))
        assert len(out) == 2
        assert out[0].flags == "R" and out[0].ip.ttl == 5
        assert out[1].flags == "A" and out[1].ip.ttl == 64

    def test_chksum_strategy_corrupts_checksum(self):
        s = client_side_strategy("teardown-ra-chksum-on-pa")
        packet = make_tcp_packet(
            "10.0.0.1", "10.0.0.2", 4000, 80, flags="PA", load=b"GET"
        )
        out = s.apply_outbound(packet, random.Random(1))
        assert out[0].flags == "RA" and not out[0].checksums_ok()
        assert out[1].checksums_ok()
