"""Tests for post-discovery strategy minimization."""

from repro.core import Strategy
from repro.core.evolution import CensorTrialEvaluator, candidate_reductions, minimize


def size_evaluator(strategy):
    """Deterministic stand-in: anything with a null-flags tamper 'works'."""
    works = "tamper{TCP:flags:replace:}" in str(strategy)
    return 100.0 - strategy.tree_size() if works else -50.0


class TestCandidates:
    def test_tree_removal_candidates(self):
        strategy = Strategy.parse("[TCP:flags:SA]-duplicate-| [TCP:flags:A]-drop-| \\/")
        candidates = candidate_reductions(strategy)
        assert any(len(c.outbound) == 1 for c in candidates)

    def test_node_promotion_candidates(self):
        strategy = Strategy.parse(
            "[TCP:flags:SA]-tamper{TCP:flags:replace:R}(tamper{TCP:ack:corrupt},)-| \\/"
        )
        candidates = candidate_reductions(strategy)
        texts = {str(c) for c in candidates}
        assert "[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/" in texts

    def test_no_duplicates_or_self(self):
        strategy = Strategy.parse("[TCP:flags:SA]-duplicate-| \\/")
        candidates = candidate_reductions(strategy)
        texts = [str(c) for c in candidates]
        assert str(strategy) not in texts
        assert len(texts) == len(set(texts))


class TestMinimize:
    def test_preserves_working_core(self):
        bloated = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:}"
            "(tamper{TCP:urgptr:replace:7},),duplicate(,))-| \\/"
        )
        minimal, fitness = minimize(bloated, size_evaluator)
        assert "tamper{TCP:flags:replace:}" in str(minimal)
        assert minimal.tree_size() < bloated.tree_size()
        assert fitness > 90

    def test_recovers_canonical_strategy_11(self):
        """Against the real Kazakhstan censor, a bloated null-flags
        strategy minimizes to the paper's canonical form."""
        bloated = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:}"
            "(tamper{TCP:urgptr:replace:7},),duplicate(,))-|"
            " [TCP:flags:A]-duplicate-| \\/"
        )
        evaluator = CensorTrialEvaluator("kazakhstan", "http", trials=3, seed=5)
        minimal, fitness = minimize(bloated, evaluator)
        assert str(minimal) == "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/"
        assert fitness > 90

    def test_already_minimal_unchanged(self):
        minimal = Strategy.parse("[TCP:flags:SA]-tamper{TCP:flags:replace:}-| \\/")
        result, _ = minimize(minimal, size_evaluator)
        assert str(result) == str(minimal)

    def test_broken_strategy_minimizes_to_cheapest_failure(self):
        strategy = Strategy.parse(
            "[TCP:flags:SA]-duplicate(drop,tamper{TCP:seq:corrupt})-| \\/"
        )
        result, fitness = minimize(strategy, size_evaluator)
        assert fitness == -50.0
        assert result.tree_size() <= strategy.tree_size()
