"""Property tests: canonicalization is semantics-preserving, and the
batched GA is worker-count independent.

The contract canonicalization must honour is *trace equality*: for any
genome ``s``, ``simulate(s)`` and ``simulate(canonical(s))`` produce
byte-identical event traces (compared via :meth:`Trace.digest`) against
every censor model and protocol. Random genomes are drawn from the GA's
own gene pool and then wrapped in the redundancy patterns the rewrite
rules target — dead trees, aliased trigger spellings, ``duplicate`` with
a dropped branch, zero-count wrappers, dead-store tampers — so the rules
are exercised, not just tiptoed around.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Strategy, canonical_strategy
from repro.core.dsl import (
    DropAction,
    DuplicateAction,
    FragmentAction,
    RecordSplitAction,
    SendAction,
    StallAction,
    TamperAction,
    Trigger,
)
from repro.core.evolution import server_side_pool
from repro.eval.matrix import ALL_PROTOCOLS, TABLE1_MATRIX

COUNTRIES = sorted(TABLE1_MATRIX)

_TRIGGERS = [
    Trigger("TCP", "flags", "SA"),
    Trigger("TCP", "flags", "A"),
    Trigger("TCP", "flags", "PA"),
]


def _respell(trigger: Trigger, rng: random.Random) -> Trigger:
    """An aliased spelling of the same predicate (AS for SA, 010 for 10)."""
    if trigger.field == "flags" and len(trigger.value) > 1:
        letters = list(trigger.value)
        rng.shuffle(letters)
        return Trigger(trigger.protocol, trigger.field, "".join(letters))
    return trigger


def _inject_redundancy(action, rng: random.Random):
    """Wrap an action in a behaviour-preserving layer of noise."""
    wrappers = [
        lambda a: DuplicateAction(a, DropAction()),
        lambda a: DuplicateAction(DropAction(), a),
        lambda a: StallAction(0, a),
        lambda a: RecordSplitAction(0, a),
        lambda a: FragmentAction("tcp", 0, True, a, SendAction()),
        lambda a: TamperAction(
            "TCP", "window", "replace", "99",
            TamperAction("TCP", "window", "replace", "010", a),
        ),
        lambda a: a,
    ]
    return rng.choice(wrappers)(action)


def random_redundant_strategy(seed: int) -> Strategy:
    """A random server-side genome with canonicalizable noise layered in."""
    rng = random.Random(seed)
    pool = server_side_pool()
    forest = []
    used = []
    for trigger in rng.sample(_TRIGGERS, rng.randint(1, 2)):
        action = _inject_redundancy(pool.random_action(rng), rng)
        forest.append((_respell(trigger, rng), action))
        used.append(trigger)
    if rng.random() < 0.5:
        # Dead tree: repeats an earlier (respelled) trigger, so the
        # first-match-wins walk can never reach it.
        forest.append((_respell(rng.choice(used), rng), pool.random_action(rng)))
    if rng.random() < 0.5:
        # Dead tree: a trigger that matches no packet at all.
        forest.append((Trigger("TCP", "bogus", "1"), pool.random_action(rng)))
    if rng.random() < 0.5:
        forest.append((Trigger("IP", "ttl", "200"), SendAction()))
    return Strategy(forest, [])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_trace_identical_everywhere(seed):
    from repro.eval.runner import run_trial

    raw = random_redundant_strategy(seed)
    canon = canonical_strategy(raw)
    for country in COUNTRIES:
        for protocol in ALL_PROTOCOLS:
            a = run_trial(country, protocol, raw, seed=seed % 1000)
            b = run_trial(country, protocol, canon, seed=seed % 1000)
            assert a.outcome == b.outcome, (country, protocol, str(raw))
            assert a.trace.digest() == b.trace.digest(), (
                country, protocol, str(raw), str(canon),
            )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_idempotent(seed):
    once = canonical_strategy(random_redundant_strategy(seed))
    assert str(canonical_strategy(once)) == str(once)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_never_grows(seed):
    raw = random_redundant_strategy(seed)
    assert canonical_strategy(raw).tree_size() <= raw.tree_size()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_text_round_trips(seed):
    # Canonical text reparses to the same canonical form — required for
    # the persistent result cache, which is keyed on the text.
    canon = canonical_strategy(random_redundant_strategy(seed))
    assert str(canonical_strategy(Strategy.parse(str(canon)))) == str(canon)


def _ga_result(workers: int):
    from repro.core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
    from repro.runtime import TrialExecutor

    executor = TrialExecutor(workers=workers)
    evaluator = CensorTrialEvaluator(
        country="kazakhstan", protocol="http", trials=2, seed=7,
        executor=executor,
    )
    algorithm = GeneticAlgorithm(
        evaluator, config=GAConfig(population_size=12, generations=4, seed=13),
    )
    return algorithm.run()


def test_ga_worker_count_invariance():
    """GAResult is bit-identical at 1 worker and 4 workers.

    Trial seeds are derived from the canonical genome text and trial
    index — never from submission order or worker assignment — so the
    whole search (history, best, hall of fame) must not depend on the
    degree of parallelism.
    """
    serial = _ga_result(1)
    parallel = _ga_result(4)
    assert str(serial.best) == str(parallel.best)
    assert serial.best_fitness == parallel.best_fitness
    assert serial.history == parallel.history
    assert serial.generations_run == parallel.generations_run
    assert [(str(s), f) for s, f in serial.hall_of_fame] == [
        (str(s), f) for s, f in parallel.hall_of_fame
    ]
