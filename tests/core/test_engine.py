"""Tests for the strategy engine at a host's wire boundary."""

import random

from repro.core import Strategy, StrategyEngine, install_strategy
from repro.packets import make_tcp_packet


class TestEngine:
    def test_outbound_transformation_on_wire(self, linked_hosts):
        pair = linked_hosts()
        strategy = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},"
            "tamper{TCP:flags:replace:S})-| \\/"
        )
        install_strategy(pair.server, strategy, random.Random(1))
        pair.server.listen(80, lambda ep: None)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        trace = pair.run(until=0.3)
        server_sends = [
            e.packet.flags
            for e in trace.events
            if e.kind == "send" and e.location == "server"
        ]
        assert server_sends[:2] == ["R", "S"]

    def test_non_matching_packets_untouched(self, linked_hosts):
        pair = linked_hosts()
        strategy = Strategy.parse("[TCP:flags:SA]-drop-| \\/")
        engine = install_strategy(pair.client, strategy, random.Random(1))
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=0.05)
        assert engine.packets_intercepted == 0

    def test_intercept_counter(self, linked_hosts):
        pair = linked_hosts()
        strategy = Strategy.parse("[TCP:flags:SA]-duplicate-| \\/")
        engine = install_strategy(pair.server, strategy, random.Random(1))
        pair.server.listen(80, lambda ep: None)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=0.3)
        assert engine.packets_intercepted >= 1

    def test_inbound_strategy_applied(self, linked_hosts):
        """An inbound drop on the client acts like a local firewall."""
        pair = linked_hosts()
        strategy = Strategy(inbound=Strategy.parse("[TCP:flags:SA]-drop-| \\/").outbound)
        install_strategy(pair.client, strategy, random.Random(1))
        pair.server.listen(80, lambda ep: None)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=1.0)
        assert not ep.established  # every SYN+ACK eaten on ingress

    def test_engine_rng_determinism(self):
        strategy = Strategy.parse("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA", ack=7)
        out_a = StrategyEngine(strategy, random.Random(42)).outbound_filter(packet.copy())
        out_b = StrategyEngine(strategy, random.Random(42)).outbound_filter(packet.copy())
        assert out_a[0].tcp.ack == out_b[0].tcp.ack
