"""Tests for Geneva's action building blocks."""

import random

import pytest

from repro.core import (
    DropAction,
    DuplicateAction,
    FragmentAction,
    SendAction,
    TamperAction,
)
from repro.packets import make_tcp_packet


@pytest.fixture
def synack():
    return make_tcp_packet(
        "10.0.0.2", "10.0.0.1", 80, 4000, flags="SA", seq=1000, ack=2001,
        options=[("mss", 1460), ("wscale", 7)],
    )


class TestLeaves:
    def test_send_passes_through(self, synack, rng):
        assert SendAction().apply(synack, rng) == [synack]

    def test_drop_discards(self, synack, rng):
        assert DropAction().apply(synack, rng) == []

    def test_leaf_strings(self):
        assert str(SendAction()) == "send"
        assert str(DropAction()) == "drop"


class TestDuplicate:
    def test_two_independent_copies(self, synack, rng):
        out = DuplicateAction().apply(synack, rng)
        assert len(out) == 2
        out[0].tcp.seq = 1
        assert out[1].tcp.seq == 1000

    def test_children_applied_in_order(self, synack, rng):
        action = DuplicateAction(
            TamperAction("TCP", "flags", "replace", "R"),
            TamperAction("TCP", "flags", "replace", "S"),
        )
        out = action.apply(synack, rng)
        assert [p.flags for p in out] == ["R", "S"]

    def test_nested_duplicate_three_copies(self, synack, rng):
        action = TamperAction(
            "TCP", "load", "corrupt", child=DuplicateAction(DuplicateAction(), SendAction())
        )
        out = action.apply(synack, rng)
        assert len(out) == 3
        loads = {bytes(p.load) for p in out}
        assert len(loads) == 1 and b"" not in loads  # same random payload on all

    def test_string_forms(self):
        assert str(DuplicateAction()) == "duplicate"
        assert (
            str(DuplicateAction(TamperAction("TCP", "ack", "corrupt"), SendAction()))
            == "duplicate(tamper{TCP:ack:corrupt},)"
        )
        assert (
            str(DuplicateAction(SendAction(), DropAction())) == "duplicate(,drop)"
        )


class TestTamper:
    def test_replace_flags(self, synack, rng):
        out = TamperAction("TCP", "flags", "replace", "S").apply(synack, rng)
        assert out[0].flags == "S"

    def test_replace_preserves_seq(self, synack, rng):
        out = TamperAction("TCP", "flags", "replace", "S").apply(synack, rng)
        assert out[0].tcp.seq == 1000  # sim-open SYN keeps the SYN+ACK's seq

    def test_corrupt_ack(self, synack, rng):
        out = TamperAction("TCP", "ack", "corrupt").apply(synack, rng)
        assert out[0].tcp.ack != 2001

    def test_corrupt_load_adds_payload(self, synack, rng):
        out = TamperAction("TCP", "load", "corrupt").apply(synack, rng)
        assert out[0].load

    def test_chained_tampers(self, synack, rng):
        action = TamperAction(
            "TCP", "window", "replace", "10",
            child=TamperAction("TCP", "options-wscale", "replace", ""),
        )
        out = action.apply(synack, rng)
        assert out[0].tcp.window == 10
        assert out[0].tcp.get_option("wscale") is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TamperAction("TCP", "flags", "mangle")

    def test_string_form(self):
        assert (
            str(TamperAction("TCP", "window", "replace", "10"))
            == "tamper{TCP:window:replace:10}"
        )
        assert str(TamperAction("TCP", "ack", "corrupt")) == "tamper{TCP:ack:corrupt}"

    def test_tamper_chksum_makes_insertion_packet(self, synack, rng):
        out = TamperAction("TCP", "chksum", "corrupt").apply(synack, rng)
        assert not out[0].checksums_ok()


class TestFragment:
    def test_splits_payload(self, rng):
        packet = make_tcp_packet(
            "1.1.1.1", "2.2.2.2", 1, 2, flags="PA", seq=100, load=b"abcdefgh"
        )
        out = FragmentAction("tcp", offset=3).apply(packet, rng)
        assert [bytes(p.load) for p in out] == [b"abc", b"defgh"]
        assert out[0].tcp.seq == 100
        assert out[1].tcp.seq == 103

    def test_out_of_order_delivery(self, rng):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="PA", load=b"abcdef")
        out = FragmentAction("tcp", offset=2, in_order=False).apply(packet, rng)
        assert bytes(out[0].load) == b"cdef"
        assert bytes(out[1].load) == b"ab"

    def test_empty_payload_noop(self, synack, rng):
        out = FragmentAction("tcp", offset=4).apply(synack, rng)
        assert len(out) == 1

    def test_tree_size(self):
        action = DuplicateAction(
            TamperAction("TCP", "flags", "replace", "R"),
            TamperAction("TCP", "flags", "replace", "S"),
        )
        assert action.tree_size() == 5  # dup + 2 tampers + 2 send leaves
