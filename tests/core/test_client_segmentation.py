"""Tests for the client-side segmentation species (fragment end-to-end).

These are the classic client-side strategies Strategy 8 translates into a
server-side form: India/Kazakhstan cannot reassemble at all, China's FTP
box reassembles only about half the time, and China's HTTP box (which
re-learned reassembly in 2013, killing brdgrd) catches in-order segments.
"""

import pytest

from repro.core import Strategy
from repro.core.strategies import CLIENT_SEGMENTATION_STRATEGIES
from repro.eval import run_trial


def seg(name):
    return Strategy.parse(CLIENT_SEGMENTATION_STRATEGIES[name], name=name)


class TestSegmentationSpecies:
    def test_corpus_contents(self):
        assert set(CLIENT_SEGMENTATION_STRATEGIES) == {
            "segmentation-8",
            "segmentation-4",
            "segmentation-8-ooo",
        }

    @pytest.mark.parametrize("name", sorted(CLIENT_SEGMENTATION_STRATEGIES))
    def test_defeats_india(self, name):
        result = run_trial("india", "http", None, client_strategy=seg(name), seed=1)
        assert result.succeeded

    @pytest.mark.parametrize("name", sorted(CLIENT_SEGMENTATION_STRATEGIES))
    def test_defeats_kazakhstan(self, name):
        result = run_trial(
            "kazakhstan", "http", None, client_strategy=seg(name), seed=1
        )
        assert result.succeeded

    def test_in_order_fails_against_china_http(self):
        """The GFW's HTTP box reassembles in-order segments (post-2013)."""
        wins = sum(
            run_trial(
                "china", "http", None, client_strategy=seg("segmentation-8"),
                seed=10 + i,
            ).succeeded
            for i in range(15)
        )
        assert wins <= 3  # at the baseline miss rate

    def test_partially_works_against_china_ftp(self):
        """The FTP box fails to reassemble roughly half the time."""
        wins = sum(
            run_trial(
                "china", "ftp", None, client_strategy=seg("segmentation-8"),
                seed=40 + i * 7919,
            ).succeeded
            for i in range(40)
        )
        assert 10 <= wins <= 30

    def test_segments_visible_on_wire(self):
        result = run_trial(
            "india", "http", None, client_strategy=seg("segmentation-4"), seed=2
        )
        client_data = [
            e.packet
            for e in result.trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert len(client_data) >= 2
        assert len(client_data[0].load) == 4

    def test_out_of_order_delivery_order(self):
        result = run_trial(
            "india", "http", None, client_strategy=seg("segmentation-8-ooo"), seed=2
        )
        client_data = [
            e.packet
            for e in result.trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        # The later-sequence segment is transmitted first.
        assert client_data[0].tcp.seq > client_data[1].tcp.seq
        assert result.succeeded  # the server stack reorders
