"""Tests for island-model evolution."""

from repro.core.evolution import (
    CensorTrialEvaluator,
    GAConfig,
    IslandConfig,
    run_islands,
)


class TestIslands:
    def test_returns_best_across_islands(self):
        # Deterministic fitness: favour exactly-three-node strategies.
        def evaluator(strategy):
            return -abs(strategy.tree_size() - 3)

        result = run_islands(
            evaluator,
            config=IslandConfig(
                islands=3,
                epochs=2,
                generations_per_epoch=4,
                base=GAConfig(population_size=8, seed=1),
            ),
        )
        assert result.best_fitness == 0  # a three-node strategy exists
        assert result.best.tree_size() == 3
        assert result.generations_run >= 3 * 2  # all islands ran

    def test_history_accumulates(self):
        result = run_islands(
            lambda s: 0.0,
            config=IslandConfig(
                islands=2, epochs=2, generations_per_epoch=3,
                base=GAConfig(population_size=6, seed=2),
            ),
        )
        assert len(result.history) >= 6
        assert result.hall_of_fame

    def test_discovers_kazakhstan_strategy(self):
        evaluator = CensorTrialEvaluator("kazakhstan", "http", trials=2, seed=5)
        result = run_islands(
            evaluator,
            config=IslandConfig(
                islands=4,
                epochs=3,
                generations_per_epoch=8,
                base=GAConfig(population_size=16, seed=2),
            ),
        )
        assert result.best_fitness > 50
        from repro.eval import run_trial

        assert run_trial("kazakhstan", "http", result.best, seed=500).succeeded

    def test_migration_spreads_champions(self):
        """After one epoch the champion is injected into the neighbour's
        population; fitness never regresses across epochs."""
        evaluator = CensorTrialEvaluator("kazakhstan", "http", trials=1, seed=5)
        one_epoch = run_islands(
            evaluator,
            config=IslandConfig(
                islands=3, epochs=1, generations_per_epoch=5,
                base=GAConfig(population_size=10, seed=7),
            ),
        )
        three_epochs = run_islands(
            evaluator,
            config=IslandConfig(
                islands=3, epochs=3, generations_per_epoch=5,
                base=GAConfig(population_size=10, seed=7),
            ),
        )
        assert three_epochs.best_fitness >= one_epoch.best_fitness
