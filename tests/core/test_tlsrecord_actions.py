"""The record-level DSL primitives (recordsplit / stall) and their toolkit.

Covers the SNI-era additions to the strategy DSL: parse/print round
trips, the stateful-copy contract the engine relies on, the packet-level
transforms, and the :mod:`repro.strategies.tlsrecord` convenience layer's
alignment with library strategies 12-15.
"""

import random

import pytest

from repro.apps.tls import (
    SCAN_COMPLETE,
    SCAN_NEEDS_MORE,
    build_server_hello,
    scan_tls_handshake,
)
from repro.core import SERVER_STRATEGIES, Strategy, deployed_strategy
from repro.core.dsl import RecordSplitAction, StallAction
from repro.packets import make_tcp_packet
from repro.strategies import (
    SNI_STRATEGY_NUMBERS,
    install_migration,
    migration_strategy,
    record_split_strategy,
    segmentation_strategy,
)

RNG = random.Random(0)


def payload_packet(load, flags="PA"):
    return make_tcp_packet(
        "192.0.2.10", "10.0.0.2", 443, 40000, flags=flags, seq=1, ack=1, load=load
    )


class TestDslRoundTrip:
    @pytest.mark.parametrize("text", [
        "[TCP:flags:PA]-recordsplit{2}-| \\/",
        "[TCP:flags:PA]-recordsplit{7}-| \\/",
        "[TCP:flags:SA]-stall{2}-| \\/",
        "[TCP:flags:SA]-stall{3}-| \\/",
    ])
    def test_parse_print_round_trip(self, text):
        assert str(Strategy.parse(text)) == text

    def test_library_numbers_parse(self):
        for number in SNI_STRATEGY_NUMBERS:
            strategy = deployed_strategy(number)
            assert str(strategy) == SERVER_STRATEGIES[number].dsl.strip()

    def test_statefulness_flags(self):
        split = Strategy.parse("[TCP:flags:PA]-recordsplit{2}-| \\/")
        stall = Strategy.parse("[TCP:flags:SA]-stall{3}-| \\/")
        assert not split.is_stateful()
        assert stall.is_stateful()


class TestStallAction:
    def test_drops_first_n_then_passes(self):
        action = StallAction(2)
        p = payload_packet(b"", flags="SA")
        assert action.apply(p, RNG) == []
        assert action.apply(p, RNG) == []
        assert action.apply(p, RNG) != []

    def test_copy_resets_counter(self):
        action = StallAction(1)
        action.apply(payload_packet(b"", flags="SA"), RNG)
        fresh = action.copy()
        assert fresh.dropped == 0
        assert fresh.apply(payload_packet(b"", flags="SA"), RNG) == []

    def test_engine_installs_a_private_copy(self):
        """Stateful strategies are copied at install time, so two engines
        sharing one Strategy object stall independently."""
        from repro.core.engine import StrategyEngine

        shared = Strategy.parse("[TCP:flags:SA]-stall{1}-| \\/")
        a = StrategyEngine(shared, random.Random(1))
        b = StrategyEngine(shared, random.Random(1))
        assert a.strategy is not shared
        assert a.strategy is not b.strategy

    def test_stateless_strategy_not_copied(self):
        from repro.core.engine import StrategyEngine

        shared = Strategy.parse("[TCP:flags:PA]-recordsplit{2}-| \\/")
        assert StrategyEngine(shared, random.Random(1)).strategy is shared


class TestRecordSplitAction:
    def test_splits_handshake_preserving_length(self):
        hello = build_server_hello("example.org")
        packet = payload_packet(hello)
        out = RecordSplitAction(2).apply(packet, RNG)
        assert len(out) == 1
        assert out[0].load != hello
        assert len(out[0].load) == len(hello)  # no TCP-level desync
        # One-shot parsers can no longer complete the ServerHello...
        assert scan_tls_handshake(out[0].load).status == SCAN_NEEDS_MORE
        # ...but the original parsed fine.
        assert scan_tls_handshake(hello).status == SCAN_COMPLETE

    def test_non_handshake_payload_untouched(self):
        packet = payload_packet(b"HTTP/1.1 200 OK\r\n\r\n")
        out = RecordSplitAction(2).apply(packet, RNG)
        assert out[0].load == b"HTTP/1.1 200 OK\r\n\r\n"


class TestToolkit:
    def test_defaults_align_with_library(self):
        assert str(record_split_strategy()) == SERVER_STRATEGIES[12].dsl.strip()
        assert str(segmentation_strategy()) == SERVER_STRATEGIES[13].dsl.strip()
        assert str(migration_strategy(2)) == SERVER_STRATEGIES[14].dsl.strip()
        assert str(migration_strategy(3)) == SERVER_STRATEGIES[15].dsl.strip()

    @pytest.mark.parametrize("factory,bad", [
        (record_split_strategy, 0),
        (segmentation_strategy, -1),
        (migration_strategy, 0),
    ])
    def test_argument_validation(self, factory, bad):
        with pytest.raises(ValueError):
            factory(bad)

    def test_install_migration_rejects_zero_delay(self):
        from repro.netsim import Scheduler
        from repro.tcpstack import Host

        host = Host("srv", "10.0.0.1", Scheduler(), random.Random(0))
        with pytest.raises(ValueError):
            install_migration(host, 0.0)
        assert not host.accept_hooks
