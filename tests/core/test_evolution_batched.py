"""Integration tests for the generation-batched, dedup-aware GA engine.

Covers the invariants the batching refactor must hold:

- the batched evaluator reproduces the legacy per-individual trajectory
  bit-for-bit (fitness memo semantics, complexity tax on the raw
  spelling, tie-breaking, hall of fame);
- islands run in lockstep against one shared memo without perturbing
  the per-island trajectories;
- a persistent :class:`~repro.runtime.ResultCache` makes a *second*
  evolution run executor-warm (zero trials re-executed);
- ``minimize`` takes the same reduction path batched as serial;
- the ``repro_ga_*`` metrics and :class:`EvalStats` counters are
  deterministic and worker-count independent.
"""

import pytest

from repro.core import Strategy
from repro.core.evolution import (
    CensorTrialEvaluator,
    GAConfig,
    GeneticAlgorithm,
    IslandConfig,
    minimize,
    run_islands,
)
from repro.runtime import ResultCache, TrialExecutor

COUNTRY, PROTOCOL = "kazakhstan", "http"


def make_evaluator(**overrides):
    kwargs = dict(country=COUNTRY, protocol=PROTOCOL, trials=2, seed=7)
    kwargs.update(overrides)
    return CensorTrialEvaluator(**kwargs)


def run_ga(evaluator, *, population_size=14, generations=5, seed=3, **cfg):
    config = GAConfig(
        population_size=population_size, generations=generations, seed=seed, **cfg
    )
    return GeneticAlgorithm(evaluator, config=config).run()


def result_fields(result):
    return (
        str(result.best),
        result.best_fitness,
        result.history,
        result.generations_run,
        [(str(s), f) for s, f in result.hall_of_fame],
    )


class TestBatchedParity:
    def test_batched_matches_legacy_per_individual(self):
        # The legacy arm: a plain callable, so the GA falls back to one
        # evaluator call per individual with no canonical dedup.
        legacy_eval = make_evaluator(canonicalize=False)
        legacy = run_ga(lambda s: legacy_eval(s))
        batched = run_ga(make_evaluator())
        assert result_fields(legacy) == result_fields(batched)

    def test_worker_count_does_not_change_result(self):
        results = [
            run_ga(make_evaluator(executor=TrialExecutor(workers=workers)))
            for workers in (1, 4)
        ]
        assert result_fields(results[0]) == result_fields(results[1])

    def test_dedup_reduces_executor_work(self):
        executor = TrialExecutor()
        evaluator = make_evaluator(executor=executor)
        run_ga(evaluator)
        stats = evaluator.stats
        assert stats.submitted == stats.evaluated + stats.evals_avoided
        assert stats.evals_avoided > 0
        assert stats.trials == stats.evaluated * evaluator.trials
        assert executor.total_stats.requested == stats.trials
        # One dispatch per generation that had anything new to score.
        assert stats.batches <= 5

    def test_stats_format_line(self):
        evaluator = make_evaluator()
        evaluator.evaluate([Strategy.parse(r"\/")])
        line = evaluator.stats.format()
        assert line.startswith("ga: submitted=1 evaluated=1")
        assert "batches=1" in line


class TestCrossRunCache:
    def test_second_run_is_executor_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "fitness-cache")

        first_executor = TrialExecutor(cache=cache)
        first = run_ga(make_evaluator(executor=first_executor))
        assert first_executor.total_stats.executed > 0

        # Fresh evaluator + executor, same persistent cache: the entire
        # run is answered content-addressed, nothing re-executes.
        second_executor = TrialExecutor(cache=cache)
        second = run_ga(make_evaluator(executor=second_executor))
        assert second_executor.total_stats.executed == 0
        assert second_executor.total_stats.cache_hits == (
            second_executor.total_stats.requested
        )
        assert result_fields(first) == result_fields(second)

    def test_canonical_spellings_share_evaluation(self):
        executor = TrialExecutor()
        evaluator = make_evaluator(executor=executor)
        plain = Strategy.parse(r"[TCP:flags:SA]-duplicate-| \/")
        bloated = Strategy.parse(r"[TCP:flags:AS]-duplicate(duplicate,drop)-| \/")
        assert plain.canonical_key() == bloated.canonical_key()
        a = evaluator(plain)
        executed_before = executor.total_stats.executed
        b = evaluator(bloated)
        # Different spelling, same canonical text: answered from the
        # evaluator memo without dispatching a single trial.
        assert executor.total_stats.executed == executed_before
        assert evaluator.stats.memo_hits == 1
        # Same pre-tax score; only the complexity tax differs.
        assert a - b == pytest.approx(bloated.tree_size() - plain.tree_size())


class TestIslands:
    @staticmethod
    def _config():
        return IslandConfig(
            islands=3,
            epochs=2,
            generations_per_epoch=3,
            base=GAConfig(population_size=10, seed=5),
        )

    def test_lockstep_matches_serial_evaluator(self):
        # Serial arm: plain-callable evaluator, islands run with no
        # cross-island batching or memo sharing.
        serial_eval = make_evaluator(canonicalize=False)
        serial = run_islands(lambda s: serial_eval(s), config=self._config())
        batched = run_islands(make_evaluator(), config=self._config())
        assert result_fields(serial) == result_fields(batched)

    def test_memo_is_shared_across_islands(self):
        evaluator = make_evaluator()
        run_islands(evaluator, config=self._config())
        stats = evaluator.stats
        # With three islands breeding from one gene pool, a large share
        # of genomes repeat across islands and epochs; the shared memo
        # must absorb them.
        assert stats.memo_hits > stats.evaluated


class TestMinimize:
    def test_batched_matches_serial(self):
        bloated = Strategy.parse(
            r"[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},duplicate)-| \/"
        )
        serial_eval = make_evaluator(canonicalize=False)
        serial = minimize(bloated, lambda s: serial_eval(s))
        batched = minimize(bloated, make_evaluator())
        assert str(serial[0]) == str(batched[0])
        assert serial[1] == batched[1]


class TestMetrics:
    def test_ga_metrics_deterministic_across_workers(self):
        from repro.obs.metrics import collecting

        def collect(workers):
            executor = TrialExecutor(workers=workers, collect_metrics=True)
            with collecting(executor.metrics):
                run_ga(make_evaluator(executor=executor))
            snapshot = executor.metrics_snapshot()
            return {
                name: value
                for name, value in snapshot.items()
                if name.startswith("repro_ga_")
            }

        one, four = collect(1), collect(4)
        assert one == four
        batches = sum(one["repro_ga_batches_total"]["samples"].values())
        dedup = one["repro_ga_dedup_total"]["samples"]
        avoided = sum(one["repro_ga_evals_avoided_total"]["samples"].values())
        assert batches > 0
        assert dedup["source=evaluated"] > 0
        assert avoided == dedup.get("source=memoized", 0) + dedup.get(
            "source=duplicate", 0
        )
        assert "repro_ga_batch_genomes" in one
