"""Co-evolution engine: determinism, batching discipline, the frontier."""

import json

import pytest

from repro.core.evolution import (
    CoevolveConfig,
    PairEvaluator,
    run_coevolution,
)
from repro.censors.adaptive import CensorGenome
from repro.runtime import TrialExecutor

SMOKE = CoevolveConfig(
    epochs=2,
    strategy_population=8,
    censor_population=4,
    trials=1,
    frontier_trials=4,
    seed=1,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_coevolution("china", config=SMOKE, workers=1)


class TestDeterminism:
    def test_repeat_runs_identical(self, smoke_result):
        again = run_coevolution("china", config=SMOKE, workers=1)
        assert json.dumps(again.as_dict(), sort_keys=True) == json.dumps(
            smoke_result.as_dict(), sort_keys=True
        )

    def test_worker_count_invariant(self, smoke_result):
        """The trajectory is bit-identical for 1 vs 4 workers."""
        executor = TrialExecutor(workers=4)
        parallel = run_coevolution("china", config=SMOKE, executor=executor)
        assert json.dumps(parallel.as_dict(), sort_keys=True) == json.dumps(
            smoke_result.as_dict(), sort_keys=True
        )

    def test_seed_changes_trajectory(self, smoke_result):
        import dataclasses

        other = run_coevolution(
            "china", config=dataclasses.replace(SMOKE, seed=99), workers=1
        )
        assert (
            other.epochs[-1].censor_hof != smoke_result.epochs[-1].censor_hof
            or other.epochs[-1].strategy_hof != smoke_result.epochs[-1].strategy_hof
        )


class TestBatching:
    def test_one_dispatch_per_epoch_plus_frontier(self, smoke_result):
        # Each epoch's full pair grid goes out as a single run_batch, and
        # the frontier pass adds exactly one more.
        assert smoke_result.stats.batches == SMOKE.epochs + 1

    def test_memo_avoids_rework(self, smoke_result):
        stats = smoke_result.stats
        assert stats.memo_hits > 0
        assert stats.evaluated + stats.memo_hits + stats.duplicates == stats.submitted


class TestFrontier:
    def test_frontier_covers_paper_strategies(self, smoke_result):
        from repro.core.evolution import paper_strategy_numbers

        assert [e.number for e in smoke_result.frontier] == paper_strategy_numbers(
            "china"
        )

    def test_acceptance_run_degrades_a_paper_strategy(self):
        """The ISSUE acceptance invocation: seed 1, 3 epochs, default scale."""
        result = run_coevolution(
            "china", config=CoevolveConfig(epochs=3, seed=1), workers=1
        )
        assert any(
            entry.status in ("degraded", "collapsed") for entry in result.frontier
        )
        degraded = [
            entry
            for entry in result.frontier
            if entry.status in ("degraded", "collapsed")
        ]
        for entry in degraded:
            assert entry.static_rate - entry.adapted_rate >= 0.25

    def test_statuses_valid(self, smoke_result):
        for entry in smoke_result.frontier:
            assert entry.status in ("survived", "degraded", "collapsed")
            assert 0.0 <= entry.static_rate <= 1.0
            assert 0.0 <= entry.adapted_rate <= 1.0

    def test_result_dict_is_json_roundtrippable(self, smoke_result):
        payload = json.loads(json.dumps(smoke_result.as_dict()))
        assert payload["country"] == "china"
        assert payload["protocol"] == "http"
        assert len(payload["epochs"]) == SMOKE.epochs


class TestPairEvaluator:
    def test_baseline_pairs_share_specs_with_plain_runs(self):
        """Baseline genomes omit censor_params, sharing the trial cache."""
        from repro.runtime import TrialSpec, trial_seed

        ev = PairEvaluator("china", "http", trials=1, seed=5)
        specs = ev._specs_for("\\/", CensorGenome.baseline("china"))
        plain = TrialSpec.build("china", "http", "\\/", seed=trial_seed(5, 0))
        assert specs[0].canonical_key() == plain.canonical_key()

    def test_adapted_pairs_key_on_genome(self):
        ev = PairEvaluator("china", "http", trials=1, seed=5)
        base = CensorGenome.baseline("china")
        hard = CensorGenome("china", {**base.params, "resync_scale": 0.0})
        assert ev._pair_key("\\/", base) != ev._pair_key("\\/", hard)

    def test_outcome_counts_sum_to_trials(self):
        ev = PairEvaluator("china", "http", trials=3, seed=5)
        out = ev.outcome("\\/", CensorGenome.baseline("china"))
        assert out.successes + out.censored + out.broken == out.trials == 3
        assert ev.stats.batches == 1
