"""Tests for the strategy DSL parser: all paper strategies must parse and
round-trip."""

import pytest

from repro.core import (
    SERVER_STRATEGIES,
    DuplicateAction,
    Strategy,
    TamperAction,
    Trigger,
    parse_action,
    parse_strategy,
)


class TestTriggers:
    def test_parse(self):
        trigger = Trigger.parse("TCP:flags:SA")
        assert (trigger.protocol, trigger.field, trigger.value) == ("TCP", "flags", "SA")

    def test_str_round_trip(self):
        assert str(Trigger.parse("TCP:flags:SA")) == "[TCP:flags:SA]"

    def test_exact_match_semantics(self):
        from repro.packets import make_tcp_packet

        trigger = Trigger("TCP", "flags", "S")
        assert trigger.matches(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="S"))
        assert not trigger.matches(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA"))

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Trigger.parse("TCP:flags")


class TestActionParsing:
    def test_paper_strategy_1_structure(self):
        action = parse_action(
            "duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})"
        )
        assert isinstance(action, DuplicateAction)
        assert isinstance(action.first, TamperAction)
        assert action.first.value == "R"
        assert action.second.value == "S"

    def test_empty_child_is_send(self):
        action = parse_action("duplicate(tamper{TCP:ack:corrupt},)")
        assert str(action.second) == "send"

    def test_value_with_spaces_and_slash(self):
        action = parse_action("tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)")
        assert action.value == "GET / HTTP1."

    def test_empty_replace_value(self):
        action = parse_action("tamper{TCP:flags:replace:}")
        assert action.value == ""

    def test_fragment_parsing(self):
        action = parse_action("fragment{tcp:8:True}(,)")
        assert action.offset == 8 and action.in_order

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            parse_action("explode")

    def test_tamper_with_two_children_rejected(self):
        with pytest.raises(ValueError):
            parse_action("tamper{TCP:ack:corrupt}(send,send)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_action("send send")


class TestStrategyParsing:
    def test_outbound_inbound_split(self):
        strategy = parse_strategy(
            "[TCP:flags:SA]-duplicate-| \\/ [TCP:flags:A]-drop-|"
        )
        assert len(strategy.outbound) == 1
        assert len(strategy.inbound) == 1
        assert str(strategy.inbound[0][1]) == "drop"

    def test_no_inbound_section(self):
        strategy = parse_strategy("[TCP:flags:SA]-duplicate-|")
        assert len(strategy.outbound) == 1
        assert strategy.inbound == []

    def test_empty_strategy(self):
        strategy = parse_strategy(" \\/ ")
        assert strategy.is_noop()

    def test_multiple_outbound_trees(self):
        strategy = parse_strategy(
            "[TCP:flags:SA]-duplicate-| [TCP:flags:A]-drop-| \\/"
        )
        assert len(strategy.outbound) == 2

    def test_all_eleven_paper_strategies_parse_and_round_trip(self):
        for record in SERVER_STRATEGIES.values():
            for text in (record.dsl, record.deployed_dsl, record.compat_dsl):
                if text is None:
                    continue
                strategy = Strategy.parse(text)
                assert not strategy.is_noop()
                reparsed = Strategy.parse(str(strategy))
                assert str(reparsed) == str(strategy)

    def test_apply_unmatched_passes_through(self, rng):
        from repro.packets import make_tcp_packet

        strategy = Strategy.parse("[TCP:flags:SA]-drop-| \\/")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="S")
        assert strategy.apply_outbound(packet, rng) == [packet]

    def test_apply_matched_runs_tree(self, rng):
        from repro.packets import make_tcp_packet

        strategy = Strategy.parse("[TCP:flags:SA]-drop-| \\/")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
        assert strategy.apply_outbound(packet, rng) == []

    def test_apply_does_not_mutate_original(self, rng):
        from repro.packets import make_tcp_packet

        strategy = Strategy.parse("[TCP:flags:SA]-tamper{TCP:flags:replace:R}-| \\/")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
        out = strategy.apply_outbound(packet, rng)
        assert out[0].flags == "R"
        assert packet.flags == "SA"

    def test_copy_equality_and_hash(self):
        strategy = Strategy.parse("[TCP:flags:SA]-duplicate-| \\/")
        clone = strategy.copy()
        assert clone == strategy
        assert hash(clone) == hash(strategy)
        clone.outbound.clear()
        assert clone != strategy
