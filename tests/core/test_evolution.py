"""Tests for the genetic algorithm components."""

import random

import pytest

from repro.core import Strategy, TamperAction
from repro.core.evolution import (
    CensorTrialEvaluator,
    GAConfig,
    GeneticAlgorithm,
    all_nodes,
    client_side_pool,
    crossover,
    mutate,
    replace_node,
    server_side_pool,
)


class TestGenePool:
    def test_server_pool_triggers_synack_only(self):
        pool = server_side_pool()
        assert [str(t) for t in pool.triggers] == ["[TCP:flags:SA]"]

    def test_client_pool_triggers(self):
        pool = client_side_pool()
        assert len(pool.triggers) == 2

    def test_random_actions_within_size_cap(self, rng):
        pool = server_side_pool()
        for _ in range(200):
            action = pool.random_action(rng)
            assert action.tree_size() <= pool.max_tree_size + 4

    def test_random_tamper_valid(self, rng):
        pool = server_side_pool()
        for _ in range(100):
            tamper = pool.random_tamper(rng)
            assert tamper.mode in ("replace", "corrupt")


class TestTreeOps:
    def test_all_nodes_counts(self):
        action = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/"
        ).outbound[0][1]
        assert len(all_nodes(action)) == action.tree_size()

    def test_replace_node_by_identity(self):
        action = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/"
        ).outbound[0][1]
        target = action.first
        replacement = TamperAction("TCP", "seq", "corrupt")
        rebuilt = replace_node(action, target, replacement)
        assert "tamper{TCP:seq:corrupt}" in str(rebuilt)
        assert "tamper{TCP:ack:corrupt}" not in str(rebuilt)

    def test_mutate_returns_new_object(self, rng):
        pool = server_side_pool()
        strategy = Strategy.parse("[TCP:flags:SA]-duplicate-| \\/")
        mutated = mutate(strategy, pool, rng)
        assert mutated is not strategy
        assert str(strategy) == "[TCP:flags:SA]-duplicate-| \\/"  # unchanged

    def test_mutate_never_empties(self, rng):
        pool = server_side_pool()
        strategy = Strategy.parse("[TCP:flags:SA]-send-| \\/")
        for _ in range(100):
            strategy = mutate(strategy, pool, rng)
            assert strategy.outbound

    def test_crossover_swaps_material(self):
        rng = random.Random(0)
        a = Strategy.parse("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/")
        b = Strategy.parse("[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \\/")
        seen = set()
        for _ in range(20):
            child_a, child_b = crossover(a, b, rng)
            seen.add(str(child_a))
        assert any("seq" in text for text in seen)  # material moved at least once


class TestGA:
    def test_fitness_memoized(self):
        calls = []

        def evaluator(strategy):
            calls.append(str(strategy))
            return 1.0

        ga = GeneticAlgorithm(evaluator, config=GAConfig(population_size=4, generations=1))
        s = Strategy.parse("[TCP:flags:SA]-duplicate-| \\/")
        ga.fitness(s)
        ga.fitness(s.copy())
        assert len(calls) == 1

    def test_run_returns_best_and_history(self):
        def evaluator(strategy):
            # Favour small strategies deterministically.
            return -float(strategy.tree_size())

        ga = GeneticAlgorithm(
            evaluator, config=GAConfig(population_size=8, generations=5, seed=1)
        )
        result = ga.run()
        assert result.generations_run >= 1
        assert result.history
        assert result.best is not None
        assert result.hall_of_fame

    def test_convergence_stops_early(self):
        ga = GeneticAlgorithm(
            lambda s: 0.0,
            config=GAConfig(population_size=6, generations=50, seed=2, convergence_patience=3),
        )
        result = ga.run()
        assert result.generations_run < 50

    @pytest.mark.slow
    def test_rediscovers_kazakhstan_strategy(self):
        """Evolution finds a working server-side strategy against the
        (deterministic) Kazakhstan censor — the paper's core capability."""
        evaluator = CensorTrialEvaluator("kazakhstan", "http", trials=2, seed=5)
        ga = GeneticAlgorithm(
            evaluator,
            config=GAConfig(
                population_size=30, generations=30, seed=3, convergence_patience=12
            ),
        )
        result = ga.run()
        assert result.best_fitness > 50  # evades censorship
        # And the evolved strategy really works end-to-end:
        from repro.eval import run_trial

        wins = sum(
            run_trial("kazakhstan", "http", result.best, seed=100 + i).succeeded
            for i in range(5)
        )
        assert wins >= 4
