"""GA / impairment stream isolation.

The impairment layer must not perturb evolution: with impairment off,
GA runs are bit-identical to the pre-impairment code (same specs, same
cache keys, same trajectory), and the fitness evaluator's impairment
option draws from the per-trial net stream — never from the GA's own
mutation RNG.
"""

from repro.core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
from repro.netsim import Impairment
from repro.runtime import TrialSpec

SMALL = dict(population_size=8, generations=3, seed=11, convergence_patience=10)


def run_small_ga(evaluator):
    ga = GeneticAlgorithm(evaluator, config=GAConfig(**SMALL))
    return ga.run()


class TestGAUnchangedWhenImpairmentOff:
    def test_default_and_null_policy_runs_identical(self):
        baseline = run_small_ga(
            CensorTrialEvaluator("india", "http", trials=2, seed=5)
        )
        null = run_small_ga(
            CensorTrialEvaluator(
                "india", "http", trials=2, seed=5, impairment=Impairment.none()
            )
        )
        assert str(null.best) == str(baseline.best)
        assert null.best_fitness == baseline.best_fitness
        assert null.generations_run == baseline.generations_run

    def test_evaluator_specs_keep_pre_impairment_hashes(self):
        """The evaluator's specs (and thus its cache keys) are the same
        objects whether the impairment field is None or a null policy —
        existing GA result caches stay valid."""
        legacy = TrialSpec.build("india", "http", server_strategy=None, seed=1)
        from_default = TrialSpec.build(
            "india", "http", server_strategy=None, seed=1, impairment=None
        )
        from_null = TrialSpec.build(
            "india", "http", server_strategy=None, seed=1, impairment=Impairment.none()
        )
        assert from_default.spec_hash() == legacy.spec_hash()
        assert from_null.spec_hash() == legacy.spec_hash()

    def test_impaired_evaluator_does_not_disturb_fitness_of_off_runs(self):
        """Interleaving impaired evaluations between unimpaired ones
        leaves the unimpaired fitness values untouched — the impairment
        stream is split per trial, not shared mutable state."""
        from repro.core import deployed_strategy

        strategy = deployed_strategy(8)
        plain = CensorTrialEvaluator("india", "http", trials=3, seed=5)
        impaired = CensorTrialEvaluator(
            "india", "http", trials=3, seed=5, impairment={"loss": 0.2}, net_seed=7
        )
        before = plain(strategy)
        impaired(strategy)
        after = plain(strategy)
        assert before == after

    def test_impaired_evaluator_runs_and_differs(self):
        from repro.core import deployed_strategy

        strategy = deployed_strategy(8)
        plain = CensorTrialEvaluator("india", "http", trials=4, seed=5)
        heavy = CensorTrialEvaluator(
            "india", "http", trials=4, seed=5, impairment={"loss": 0.4}, net_seed=7
        )
        # Heavy loss breaks connections the strategy would otherwise
        # save; the evaluator must reflect that in fitness.
        assert heavy(strategy) < plain(strategy)
