"""Tests for strategy analysis (mechanism classification)."""

import pytest

from repro.core import (
    Strategy,
    compat_strategy,
    deployed_strategy,
    explain,
    strategy,
)


class TestMechanismDetection:
    def test_strategy_1(self):
        report = explain(strategy(1))
        assert "simultaneous-open" in report.mechanisms
        assert "injected-rst" in report.mechanisms
        assert not report.breaks_handshake

    def test_strategy_2(self):
        report = explain(strategy(2))
        assert "simultaneous-open" in report.mechanisms
        assert "handshake-payload" in report.mechanisms

    def test_strategy_3(self):
        report = explain(strategy(3))
        assert "corrupt-ack" in report.mechanisms
        assert "simultaneous-open" in report.mechanisms

    def test_strategy_5(self):
        report = explain(strategy(5))
        assert "corrupt-ack" in report.mechanisms
        assert "handshake-payload" in report.mechanisms

    def test_strategy_7(self):
        report = explain(strategy(7))
        assert "injected-rst" in report.mechanisms
        assert "corrupt-ack" in report.mechanisms
        assert not report.breaks_handshake

    def test_strategy_8(self):
        report = explain(strategy(8))
        assert report.mechanisms == ["window-reduction"]

    def test_strategy_11(self):
        report = explain(strategy(11))
        assert "null-flags" in report.mechanisms

    def test_compat_variants_flag_insertion_packets(self):
        for number in (5, 9, 10):
            report = explain(compat_strategy(number))
            assert "insertion-packet" in report.mechanisms, number
            assert not report.breaks_handshake

    def test_noop_strategy(self):
        report = explain(Strategy.parse(" \\/ "))
        assert report.mechanisms == []
        assert len(report.packets) == 1  # the SYN+ACK passes through

    def test_dropping_strategy_flagged_as_broken(self):
        report = explain(Strategy.parse("[TCP:flags:SA]-drop-| \\/"))
        assert report.breaks_handshake
        assert "drops-handshake" in report.mechanisms
        assert report.packets == []

    def test_all_eleven_paper_strategies_do_not_break_handshake(self):
        for number in range(1, 12):
            report = explain(deployed_strategy(number))
            assert not report.breaks_handshake, number


class TestReportRendering:
    def test_render_contains_packets_and_mechanisms(self):
        report = explain(strategy(1))
        text = report.render()
        assert "[R]" in text and "[S]" in text
        assert "simultaneous-open" in text

    def test_packet_summaries(self):
        report = explain(strategy(9))
        assert len(report.packets) == 3
        for packet in report.packets:
            assert "load=" in packet.summary()

    def test_bad_checksum_marked(self):
        report = explain(compat_strategy(9))
        assert any("BAD-CHKSUM" in p.summary() for p in report.packets)


class TestCLIExplain:
    def test_explain_number(self, capsys):
        from repro.cli import main

        assert main(["explain", "1"]) == 0
        out = capsys.readouterr().out
        assert "simultaneous-open" in out

    def test_explain_string(self, capsys):
        from repro.cli import main

        code = main(["explain", "[TCP:flags:SA]-drop-| \\/"])
        assert code == 1  # breaks the handshake
        assert "drops-handshake" in capsys.readouterr().out
