"""The strategy strings exactly as printed in the paper must parse.

The paper typesets strategies across multiple lines with indentation;
the parser must accept that whitespace verbatim.
"""

import pytest

from repro.core import Strategy

#: Verbatim strategy listings from §5 (line breaks as typeset).
PAPER_LISTINGS = {
    1: """[TCP:flags:SA]-
duplicate(
  tamper{TCP:flags:replace:R},
  tamper{TCP:flags:replace:S})-| \\/""",
    2: """[TCP:flags:SA]-
tamper{TCP:flags:replace:S}(
  duplicate(,
    tamper{TCP:load:corrupt}),)-| \\/""",
    3: """[TCP:flags:SA]-
duplicate(
  tamper{TCP:ack:corrupt},
  tamper{TCP:flags:replace:S})-| \\/""",
    4: """[TCP:flags:SA]-
duplicate(
  tamper{TCP:ack:corrupt},)-| \\/""",
    5: """[TCP:flags:SA]-
duplicate(
  tamper{TCP:ack:corrupt},
  tamper{TCP:load:corrupt})-| \\/""",
    6: """[TCP:flags:SA]-
duplicate(
  duplicate(
    tamper{TCP:flags:replace:F}(
      tamper{TCP:load:corrupt},),
    tamper{TCP:ack:corrupt}),)-| \\/""",
    7: """[TCP:flags:SA]-
duplicate(
  duplicate(
    tamper{TCP:flags:replace:R},
    tamper{TCP:ack:corrupt}),)-|""",
    8: """[TCP:flags:SA]-
tamper{TCP:window:replace:10}(
  tamper{TCP:options-wscale:replace:},)-|\\/""",
    9: """[TCP:flags:SA]-
tamper{TCP:load:corrupt}(
  duplicate(
    duplicate,),)-| \\/""",
    10: """[TCP:flags:SA]-
tamper{TCP:load:replace:GET / HTTP1.}(
  duplicate,)-| \\/""",
    11: """[TCP:flags:SA]-
duplicate(
  tamper{TCP:flags:replace:},)-| \\/""",
}


@pytest.mark.parametrize("number", sorted(PAPER_LISTINGS))
def test_verbatim_listing_parses(number):
    strategy = Strategy.parse(PAPER_LISTINGS[number])
    assert len(strategy.outbound) == 1
    assert str(strategy.outbound[0][0]) == "[TCP:flags:SA]"


@pytest.mark.parametrize("number", sorted(PAPER_LISTINGS))
def test_verbatim_equals_canonical(number):
    """The typeset listing and the library's canonical string are the
    same strategy."""
    from repro.core import strategy as canonical

    listing = Strategy.parse(PAPER_LISTINGS[number])
    assert str(listing) == str(canonical(number))


def test_appendix_example_trigger_semantics():
    """Appendix: "TCP:flags:S does not match SYN+ACK packets"."""
    from repro.core import Trigger
    from repro.packets import make_tcp_packet

    trigger = Trigger.parse("TCP:flags:S")
    assert not trigger.matches(
        make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
    )
