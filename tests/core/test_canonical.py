"""Unit tests for semantic strategy canonicalization.

Each rule in :mod:`repro.core.dsl.canonical` gets a direct example, plus
idempotence and the things canonicalization must *not* do (anything that
would change wire behaviour or the RNG draw sequence).
"""

import pytest

from repro.core import Strategy, canonical_key, canonical_strategy
from repro.core.dsl import Trigger, normalize_trigger
from repro.core.evolution import genome_key


def canon(text: str) -> str:
    return canonical_key(Strategy.parse(text))


class TestActionRules:
    def test_duplicate_with_dropped_second_copy(self):
        assert (
            canon(r"[TCP:flags:SA]-duplicate(tamper{TCP:seq:corrupt},drop)-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \/"
        )

    def test_duplicate_with_dropped_first_copy(self):
        assert (
            canon(r"[TCP:flags:SA]-duplicate(drop,tamper{TCP:seq:corrupt})-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \/"
        )

    def test_duplicate_of_two_drops_is_drop(self):
        assert canon(r"[TCP:flags:SA]-duplicate(drop,drop)-| \/") == (
            r"[TCP:flags:SA]-drop-| \/"
        )

    def test_real_duplicate_survives(self):
        assert canon(r"[TCP:flags:SA]-duplicate-| \/") == (
            r"[TCP:flags:SA]-duplicate-| \/"
        )

    def test_fragment_with_nonpositive_offset(self):
        assert (
            canon(r"[TCP:flags:SA]-fragment{tcp:0:True}(tamper{TCP:seq:corrupt},duplicate)-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \/"
        )

    def test_fragment_with_positive_offset_survives(self):
        text = r"[TCP:flags:SA]-fragment{tcp:4:True}-| \/"
        assert canon(text) == text

    def test_stall_zero_unwraps(self):
        assert (
            canon(r"[TCP:flags:SA]-stall{0}(tamper{TCP:window:replace:10},)-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:window:replace:10}-| \/"
        )

    def test_stall_positive_survives(self):
        text = r"[TCP:flags:SA]-stall{2}-| \/"
        assert canon(text) == text

    def test_recordsplit_zero_unwraps(self):
        assert (
            canon(r"[TCP:flags:SA]-recordsplit{0}(duplicate,)-| \/")
            == r"[TCP:flags:SA]-duplicate-| \/"
        )

    def test_dead_store_replace_removed(self):
        assert (
            canon(
                r"[TCP:flags:SA]-tamper{TCP:window:replace:99}"
                r"(tamper{TCP:window:replace:10},)-| \/"
            )
            == r"[TCP:flags:SA]-tamper{TCP:window:replace:10}-| \/"
        )

    def test_dead_store_different_fields_kept(self):
        text = (
            r"[TCP:flags:SA]-tamper{TCP:seq:replace:1}"
            r"(tamper{TCP:window:replace:10},)-| \/"
        )
        assert canon(text) == text

    def test_corrupt_never_removed(self):
        # The corrupt draws from the trial RNG; removing it would shift
        # every later draw. And a bytes-kind corrupt reads the *current*
        # length, so even an overwritten corrupt is live.
        text = (
            r"[TCP:flags:SA]-tamper{TCP:load:replace:x}"
            r"(tamper{TCP:load:corrupt},)-| \/"
        )
        assert canon(text) == text

    def test_corrupt_outer_not_dead_store(self):
        text = (
            r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}"
            r"(tamper{TCP:seq:replace:5},)-| \/"
        )
        assert canon(text) == text

    def test_replace_value_int_respelling(self):
        assert (
            canon(r"[TCP:flags:SA]-tamper{TCP:window:replace:010}-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:window:replace:10}-| \/"
        )

    def test_replace_value_flags_respelling(self):
        assert (
            canon(r"[TCP:flags:SA]-tamper{TCP:flags:replace:as}-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:flags:replace:SA}-| \/"
        )


class TestTriggerRules:
    def test_flags_value_normalized_to_wire_order(self):
        assert canon(r"[TCP:flags:AS]-drop-| \/") == r"[TCP:flags:SA]-drop-| \/"

    def test_int_value_normalized(self):
        assert canon(r"[TCP:window:010]-drop-| \/") == r"[TCP:window:10]-drop-| \/"

    def test_invalid_flag_letter_is_dead(self):
        assert canon(r"[TCP:flags:SAX]-drop-| \/") == r"\/"

    def test_unknown_field_is_dead(self):
        assert canon(r"[TCP:bogus:1]-drop-| \/") == r"\/"

    def test_unparseable_int_is_dead(self):
        assert canon(r"[TCP:window:lots]-drop-| \/") == r"\/"

    def test_normalize_trigger_reports_kind(self):
        trigger, kind = normalize_trigger(Trigger("TCP", "flags", "AS"))
        assert (str(trigger), kind) == ("[TCP:flags:SA]", "flags")
        assert normalize_trigger(Trigger("TCP", "bogus", "1")) is None


class TestForestRules:
    def test_repeated_trigger_second_tree_unreachable(self):
        assert (
            canon(
                r"[TCP:flags:SA]-duplicate(tamper{TCP:seq:corrupt},)-| "
                r"[TCP:flags:SA]-drop-| \/"
            )
            == r"[TCP:flags:SA]-duplicate(tamper{TCP:seq:corrupt},)-| \/"
        )

    def test_aliased_trigger_counts_as_repeat(self):
        assert (
            canon(r"[TCP:flags:SA]-duplicate-| [TCP:flags:AS]-drop-| \/")
            == r"[TCP:flags:SA]-duplicate-| \/"
        )

    def test_trailing_send_tree_removed(self):
        assert (
            canon(r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| [IP:ttl:5]-send-| \/")
            == r"[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \/"
        )

    def test_exclusive_forest_sorted_and_send_dropped(self):
        assert (
            canon(
                r"[TCP:flags:PA]-send-| "
                r"[TCP:flags:SA]-drop-| "
                r"[TCP:flags:A]-duplicate-| \/"
            )
            == r"[TCP:flags:A]-duplicate-| [TCP:flags:SA]-drop-| \/"
        )

    def test_mixed_field_forest_keeps_order_and_mid_send(self):
        # ttl and flags can both match one packet: order is load-bearing
        # and a mid-forest send shadows later trees.
        text = r"[IP:ttl:64]-send-| [TCP:flags:SA]-drop-| \/"
        assert canon(text) == text

    def test_inbound_forest_normalized_too(self):
        assert (
            canon(r"[TCP:flags:SA]-duplicate-| \/ [TCP:flags:AS]-send-|")
            == r"[TCP:flags:SA]-duplicate-| \/"
        )

    def test_all_dead_collapses_to_empty(self):
        strategy = canonical_strategy(Strategy.parse(r"[TCP:flags:SA]-send-| \/"))
        assert strategy.is_noop()


class TestCanonicalContract:
    @pytest.mark.parametrize(
        "text",
        [
            r"[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| [TCP:flags:AS]-drop-| \/",
            r"[TCP:flags:PA]-send-| [TCP:flags:A]-fragment{tcp:0:False}(duplicate,)-| \/",
            r"[TCP:flags:SA]-stall{0}(recordsplit{0}(duplicate(drop,send),),)-| \/",
        ],
    )
    def test_idempotent(self, text):
        once = canonical_strategy(Strategy.parse(text))
        twice = canonical_strategy(once)
        assert str(once) == str(twice)

    def test_genome_key_matches_canonical_key(self):
        strategy = Strategy.parse(r"[TCP:flags:AS]-duplicate(drop,duplicate)-| \/")
        assert genome_key(strategy) == canonical_key(strategy)
        assert genome_key(strategy) == r"[TCP:flags:SA]-duplicate-| \/"

    def test_genome_key_collapses_to_noop(self):
        # duplicate(send, drop) is send, and a lone send-tree is identity.
        strategy = Strategy.parse(r"[TCP:flags:AS]-duplicate(send,drop)-| \/")
        assert genome_key(strategy) == r"\/"

    def test_canonical_preserves_raw_object(self):
        strategy = Strategy.parse(r"[TCP:flags:AS]-duplicate(send,drop)-| \/")
        before = str(strategy)
        strategy.canonical()
        assert str(strategy) == before

    def test_strategy_methods(self):
        strategy = Strategy.parse(r"[TCP:flags:AS]-drop-| \/")
        assert str(strategy.canonical()) == r"[TCP:flags:SA]-drop-| \/"
        assert strategy.canonical_key() == r"[TCP:flags:SA]-drop-| \/"

    def test_library_strategies_round_trip(self):
        # Canonical text must itself be canonical (fixed point), and a
        # deployed strategy must never canonicalize to a no-op.
        from repro.core import SERVER_STRATEGIES, deployed_strategy

        for number in sorted(SERVER_STRATEGIES):
            strategy = deployed_strategy(number)
            key = canonical_key(strategy)
            assert canonical_key(Strategy.parse(key)) == key
            assert not canonical_strategy(strategy).is_noop()
