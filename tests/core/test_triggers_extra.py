"""Extra trigger coverage: IP fields, UDP fields, missing layers."""

import random

from repro.core import Strategy, Trigger
from repro.packets import make_tcp_packet, make_udp_packet


class TestIPTriggers:
    def test_ttl_trigger_exact_match(self):
        trigger = Trigger.parse("IP:ttl:64")
        assert trigger.matches(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=64))
        assert not trigger.matches(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=63))

    def test_src_trigger(self):
        trigger = Trigger.parse("IP:src:10.0.0.1")
        assert trigger.matches(make_tcp_packet("10.0.0.1", "2.2.2.2", 1, 2))
        assert not trigger.matches(make_tcp_packet("10.0.0.9", "2.2.2.2", 1, 2))

    def test_ip_trigger_strategy_applies(self, rng):
        strategy = Strategy.parse("[IP:ttl:64]-tamper{IP:ttl:replace:5}-| \\/")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=64)
        out = strategy.apply_outbound(packet, rng)
        assert out[0].ip.ttl == 5


class TestUDPTriggers:
    def test_udp_dport_trigger(self):
        trigger = Trigger.parse("UDP:dport:53")
        assert trigger.matches(make_udp_packet("1.1.1.1", "2.2.2.2", 40000, 53))
        assert not trigger.matches(make_udp_packet("1.1.1.1", "2.2.2.2", 40000, 5353))

    def test_tcp_trigger_never_matches_udp_packet(self):
        trigger = Trigger.parse("TCP:flags:SA")
        assert not trigger.matches(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 53))

    def test_udp_trigger_never_matches_tcp_packet(self):
        trigger = Trigger.parse("UDP:dport:53")
        assert not trigger.matches(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 53))

    def test_udp_strategy_tamper(self, rng):
        strategy = Strategy.parse("[UDP:dport:53]-tamper{UDP:load:corrupt}-| \\/")
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 40000, 53, load=b"query")
        out = strategy.apply_outbound(packet, rng)
        assert out[0].load != b"query"
        assert len(out[0].load) == 5


class TestMixedForests:
    def test_first_matching_tree_wins(self, rng):
        strategy = Strategy.parse(
            "[TCP:flags:SA]-drop-| [TCP:flags:SA]-duplicate-| \\/"
        )
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
        assert strategy.apply_outbound(packet, rng) == []

    def test_non_matching_tree_skipped(self, rng):
        strategy = Strategy.parse(
            "[TCP:flags:S]-drop-| [TCP:flags:SA]-duplicate-| \\/"
        )
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA")
        assert len(strategy.apply_outbound(packet, rng)) == 2
