"""Property-based tests: every generatable strategy round-trips through
its string form, and action application never corrupts unrelated packets."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Strategy, parse_strategy
from repro.core.evolution import GenePool, server_side_pool
from repro.packets import make_tcp_packet


def random_strategy(seed: int) -> Strategy:
    pool = server_side_pool()
    rng = random.Random(seed)
    trees = [
        (pool.random_trigger(rng), pool.random_action(rng))
        for _ in range(rng.randint(1, 2))
    ]
    return Strategy(trees)


@given(st.integers(0, 10_000))
@settings(max_examples=200)
def test_random_strategy_string_round_trip(seed):
    strategy = random_strategy(seed)
    text = str(strategy)
    reparsed = parse_strategy(text)
    assert str(reparsed) == text


@given(st.integers(0, 10_000))
@settings(max_examples=100)
def test_random_strategy_application_is_safe(seed):
    """Applying any generatable strategy to a SYN+ACK never raises and
    never mutates the input packet."""
    strategy = random_strategy(seed)
    packet = make_tcp_packet(
        "10.0.0.2", "10.0.0.1", 80, 4000, flags="SA", seq=1, ack=2,
        options=[("mss", 1460), ("wscale", 7)],
    )
    out = strategy.apply_outbound(packet, random.Random(seed))
    assert isinstance(out, list)
    assert packet.flags == "SA"
    assert packet.tcp.seq == 1
    for item in out:
        item.serialize()  # must always be serializable


@given(st.integers(0, 10_000))
@settings(max_examples=100)
def test_mutation_preserves_parseability(seed):
    from repro.core.evolution import mutate

    pool = server_side_pool()
    rng = random.Random(seed)
    strategy = random_strategy(seed)
    for _ in range(5):
        strategy = mutate(strategy, pool, rng)
        assert str(parse_strategy(str(strategy))) == str(strategy)
        for _, action in strategy.outbound:
            assert action.tree_size() <= pool.max_tree_size + 4


@given(st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=60)
def test_crossover_children_parse(seed_a, seed_b):
    from repro.core.evolution import crossover

    rng = random.Random(seed_a ^ seed_b)
    a, b = random_strategy(seed_a), random_strategy(seed_b)
    child_a, child_b = crossover(a, b, rng)
    for child in (child_a, child_b):
        assert str(parse_strategy(str(child))) == str(child)
