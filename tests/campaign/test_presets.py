"""Preset campaigns reproduce the evaluation drivers bit-for-bit."""

import pytest

from repro.campaign import CampaignLedger, run_campaign
from repro.campaign.presets import (
    PRESETS,
    coevolve_campaign,
    matrix_campaign,
    robustness_campaign,
    table2_campaign,
    table2_china_campaign,
)
from repro.core import deployed_strategy
from repro.eval import success_rate
from repro.eval.table2 import CHINA_STRATEGY_NUMBERS


class TestRegistry:
    def test_all_presets_registered(self):
        assert sorted(PRESETS) == [
            "coevolve", "matrix", "robustness", "sni", "table2", "table2-china",
        ]

    def test_every_preset_expands(self):
        for name, factory in PRESETS.items():
            spec = factory()
            assert spec.total_trials > 0, name
            assert spec.shards(), name

    def test_preset_hashes_are_stable(self):
        for factory in PRESETS.values():
            assert factory().campaign_hash() == factory().campaign_hash()


class TestSeedDerivations:
    def test_table2_china_seeds_follow_generate_table2(self):
        spec = table2_china_campaign(trials=3, seed=10)
        by_label = {(c.label, c.protocol): c for c in spec.cells}
        for number in CHINA_STRATEGY_NUMBERS:
            cell = by_label[(f"strategy-{number}", "http")]
            assert cell.seed == 10 + number * 1_000_003
            assert cell.trials == 3

    def test_table2_other_rows_use_reduced_trials(self):
        spec = table2_campaign(trials=150)
        other = [c for c in spec.cells if c.country != "china"]
        assert other
        assert all(c.trials == 30 for c in other)
        assert {c.country for c in other} <= {"india", "iran", "kazakhstan"}

    def test_robustness_grid_has_loss_labels(self):
        spec = robustness_campaign(trials=2)
        labels = {c.label for c in spec.cells}
        assert "loss-0" in labels
        assert any(label.startswith("loss-0.0") for label in labels)

    def test_matrix_cells_carry_workloads(self):
        spec = matrix_campaign(trials=1)
        assert all("workload" in c.options for c in spec.cells)

    def test_coevolve_preset_rebuilds_identically(self):
        """Resume-safety: the seeded search regenerates the same cells."""
        first = coevolve_campaign(trials=2, seed=1)
        second = coevolve_campaign(trials=2, seed=1)
        assert first.campaign_hash() == second.campaign_hash()

    def test_coevolve_cells_pair_paper_strategies_with_censors(self):
        spec = coevolve_campaign(trials=2, seed=1)
        baseline = [c for c in spec.cells if c.label.endswith("-baseline")]
        adapted = [c for c in spec.cells if "-adapted-" in c.label]
        assert baseline and adapted
        assert all("censor_params" not in c.options for c in baseline)
        assert all("censor_params" in c.options for c in adapted)
        # Every adapted cell must expand into runnable trial specs.
        assert adapted[0].trial_specs()


class TestTable2ChinaAcceptance:
    """The ISSUE acceptance: the preset reproduces Table 2's China column."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("table2") / "camp"
        spec = table2_china_campaign(trials=2, shard_size=10, protocols=("http",))
        result = run_campaign(spec, out)
        assert result.finalized
        return spec, result

    def test_rates_equal_direct_success_rate(self, report):
        spec, result = report
        for cell_spec, cell in zip(spec.cells, result.cells):
            number = int(cell_spec.label.split("-")[1])
            strategy = deployed_strategy(number) if number else None
            expected = success_rate(
                "china", "http", strategy, trials=2, seed=cell_spec.seed
            )
            assert cell.rate == expected, cell_spec.label

    def test_merged_metrics_cover_every_trial(self, report):
        spec, result = report
        outcomes = result.metrics["repro_trial_outcomes_total"]
        assert outcomes["kind"] == "counter"
        total = sum(outcomes["samples"].values())
        assert total == spec.total_trials

    def test_merged_metrics_are_sharding_independent(self, report, tmp_path):
        spec, result = report
        resharded = table2_china_campaign(trials=2, shard_size=3, protocols=("http",))
        again = run_campaign(resharded, tmp_path / "camp")

        # Everything except the executor's batch counter must be identical:
        # batches == shards by construction, so that one family is the only
        # part of the merged view allowed to see the shard size.
        def trial_level(snapshot):
            return {
                k: v for k, v in snapshot.items()
                if k != "repro_executor_batches_total"
            }

        assert trial_level(again.metrics) == trial_level(result.metrics)
        assert (
            again.metrics["repro_executor_batches_total"]
            != result.metrics["repro_executor_batches_total"]
        )
