"""Kill-and-resume integration: SIGKILL the runner mid-campaign, resume,
and require the final ledger to match an uninterrupted golden bit-for-bit.

This is the crash-safety acceptance test from the campaign design: the
content-addressed shard files — not the journal — define completion, so
a hard kill at any instant loses at most the in-flight shard and a
resumed run converges on exactly the artifacts an uninterrupted run
produces.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignLedger, CampaignSpec, run_campaign

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

SPEC = {
    "name": "kill-resume",
    "shard_size": 4,
    "cells": [
        {
            "country": "kazakhstan",
            "protocol": "http",
            "server_strategy": 11,
            "trials": 20,
            "seed": 7,
        },
        {"country": "kazakhstan", "protocol": "http", "trials": 20, "seed": 9},
    ],
}


def write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def ledger_bytes(out_dir):
    ledger = CampaignLedger(out_dir)
    return ledger.results_path.read_bytes(), ledger.report_path.read_bytes()


@pytest.mark.slow
def test_sigkill_then_resume_matches_uninterrupted_golden(tmp_path):
    spec_path = write_spec(tmp_path)
    spec = CampaignSpec.from_file(spec_path)

    golden_dir = tmp_path / "golden"
    golden = run_campaign(spec, golden_dir)
    assert golden.finalized

    out_dir = tmp_path / "killed"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "campaign", "run", str(spec_path), "--out", str(out_dir),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until at least one shard checkpoint landed, then kill hard
        # — with 10 shards in the campaign we land mid-run, mid-shard.
        shards_dir = out_dir / CampaignLedger.SHARDS_DIR
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if shards_dir.is_dir() and any(shards_dir.glob("*.json")):
                break
            time.sleep(0.005)
        else:
            pytest.fail("runner produced no shard checkpoint within 60s")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    ledger = CampaignLedger(out_dir)
    done_before = len(ledger.completed_shards(spec.shards()))
    assert done_before < len(spec.shards()), "campaign finished before the kill"
    assert not ledger.results_path.exists()

    resumed = run_campaign(spec, out_dir, resume=True)
    assert resumed.finalized
    assert resumed.shards_run + resumed.shards_skipped == len(spec.shards())
    assert ledger_bytes(out_dir) == ledger_bytes(golden_dir)
