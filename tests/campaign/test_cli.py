"""CLI surface of the campaign subsystem: parsing, runs, status."""

import json

import pytest

from repro.campaign import CampaignLedger
from repro.cli import build_parser, main, shard_selector


def spec_file(tmp_path, trials=4, shard_size=3):
    """Write a small two-cell campaign spec JSON; returns its path."""
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-unit",
                "shard_size": shard_size,
                "cells": [
                    {
                        "country": "kazakhstan",
                        "protocol": "http",
                        "server_strategy": 11,
                        "trials": trials,
                        "seed": 7,
                    },
                    {
                        "country": "kazakhstan",
                        "protocol": "http",
                        "trials": trials,
                        "seed": 9,
                    },
                ],
            }
        )
    )
    return str(path)


class TestShardSelector:
    def test_accepts_valid_selector(self):
        assert shard_selector("2/4") == (2, 4)
        assert shard_selector("1/1") == (1, 1)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "1/0", "abc", "2-4", "1/", "/4"])
    def test_rejects_bad_selectors(self, text):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            shard_selector(text)

    def test_parser_wires_the_type(self, tmp_path):
        args = build_parser().parse_args(
            ["campaign", "run", "table2-china", "--out", str(tmp_path), "--shard", "2/4"]
        )
        assert args.shard == (2, 4)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "abc"])
    def test_parser_rejects_bad_selectors(self, tmp_path, text):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "x", "--out", str(tmp_path), "--shard", text]
            )


class TestPresetsCommand:
    def test_lists_every_preset(self, capsys):
        assert main(["campaign", "presets"]) == 0
        out = capsys.readouterr().out
        for name in ("matrix", "robustness", "table2", "table2-china"):
            assert name in out


class TestRunCommand:
    def test_spec_file_run_and_status(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        out_dir = str(tmp_path / "camp")
        assert main(["campaign", "run", spec, "--out", out_dir]) == 0
        stdout = capsys.readouterr().out
        assert "campaign complete" in stdout
        assert "report:" in stdout
        assert main(["campaign", "status", out_dir]) == 0
        status = capsys.readouterr().out
        assert "3/3 complete" in status
        assert "8/8 complete" in status

    def test_status_of_partial_run_exits_nonzero(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        out_dir = str(tmp_path / "camp")
        assert main(
            ["campaign", "run", spec, "--out", out_dir, "--max-shards", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["campaign", "status", out_dir]) == 1
        assert "1/3 complete" in capsys.readouterr().out

    def test_rerun_without_resume_fails(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        out_dir = str(tmp_path / "camp")
        main(["campaign", "run", spec, "--out", out_dir])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--resume"):
            main(["campaign", "run", spec, "--out", out_dir])

    def test_resume_finishes_a_partial_run(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        out_dir = str(tmp_path / "camp")
        main(["campaign", "run", spec, "--out", out_dir, "--max-shards", "2"])
        capsys.readouterr()
        assert main(["campaign", "run", spec, "--out", out_dir, "--resume"]) == 0
        assert "campaign complete" in capsys.readouterr().out
        ledger = CampaignLedger(out_dir)
        assert ledger.results_path.exists() and ledger.report_path.exists()

    def test_preset_run_with_trials_override(self, tmp_path, capsys):
        out_dir = str(tmp_path / "camp")
        code = main(
            [
                "campaign", "run", "table2-china",
                "--out", out_dir, "--trials", "1", "--shard-size", "20",
            ]
        )
        assert code == 0
        report = json.loads(CampaignLedger(out_dir).report_path.read_text())
        assert report["name"] == "table2-china"
        assert report["trials"] == 45  # 9 strategies x 5 protocols x 1 trial

    def test_trials_flag_caps_spec_file_cells(self, tmp_path, capsys):
        spec = spec_file(tmp_path, trials=4)
        out_dir = str(tmp_path / "camp")
        assert main(
            ["campaign", "run", spec, "--out", out_dir, "--trials", "2"]
        ) == 0
        report = json.loads(CampaignLedger(out_dir).report_path.read_text())
        assert report["trials"] == 4  # two cells capped at 2 trials each

    def test_missing_spec_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="campaign run"):
            main(
                ["campaign", "run", str(tmp_path / "nope.json"), "--out", str(tmp_path / "c")]
            )

    def test_status_of_uninitialized_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="campaign status"):
            main(["campaign", "status", str(tmp_path / "empty")])
