"""Campaign spec semantics: expansion, hashing, sharding, validation."""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CellSpec,
    DEFAULT_SHARD_SIZE,
)
from repro.core import deployed_strategy
from repro.runtime import trial_seed


def small_spec(shard_size=3):
    return CampaignSpec(
        name="unit",
        cells=[
            CellSpec.build("kazakhstan", "http", 11, trials=4, seed=7),
            CellSpec.build("kazakhstan", "http", None, trials=4, seed=9),
        ],
        shard_size=shard_size,
    )


class TestCellSpec:
    def test_seed_derivation_matches_success_rate(self):
        cell = CellSpec.build("china", "http", 1, trials=5, seed=42)
        specs = cell.trial_specs()
        assert [s.seed for s in specs] == [trial_seed(42, i) for i in range(5)]

    def test_strategy_number_resolves_to_deployed_dsl(self):
        cell = CellSpec.build("china", "http", 1)
        assert cell.server_strategy == str(deployed_strategy(1))

    def test_strategy_zero_and_none_mean_no_evasion(self):
        assert CellSpec.build("china", "http", 0).server_strategy is None
        assert CellSpec.build("china", "http", None).server_strategy is None

    def test_strategy_dsl_string_is_kept_verbatim(self):
        dsl = str(deployed_strategy(9))
        assert CellSpec.build("china", "http", dsl).server_strategy == dsl

    def test_bad_strategy_values_rejected(self):
        with pytest.raises(CampaignError):
            CellSpec.build("china", "http", 99)
        with pytest.raises(CampaignError):
            CellSpec.build("china", "http", "not a strategy [")
        with pytest.raises(CampaignError):
            CellSpec.build("china", "http", True)

    def test_unknown_country_and_protocol_rejected(self):
        with pytest.raises(CampaignError):
            CellSpec.build("narnia", "http")
        with pytest.raises(CampaignError):
            CellSpec.build("china", "gopher")

    def test_none_country_means_uncensored(self):
        cell = CellSpec.build(None, "http", trials=2)
        assert all(s.country is None for s in cell.trial_specs())

    def test_bad_trials_rejected(self):
        for trials in (0, -1, 1.5, True):
            with pytest.raises(CampaignError):
                CellSpec.build("china", "http", trials=trials)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(CampaignError, match="unknown cell keys"):
            CellSpec.from_dict({"protocol": "http", "sharding": 2})

    def test_from_dict_requires_protocol(self):
        with pytest.raises(CampaignError, match="protocol"):
            CellSpec.from_dict({"country": "china"})

    def test_net_seed_fans_out_per_trial(self):
        cell = CellSpec.build(
            "china", "http", 1, trials=3, impairment={"loss": 0.1}, net_seed=5
        )
        seeds = [s.options["net_seed"] for s in cell.trial_specs()]
        assert seeds == [trial_seed(5, i) for i in range(3)]
        assert len(set(seeds)) == 3


class TestCampaignSpec:
    def test_expansion_is_deterministic(self):
        a, b = small_spec(), small_spec()
        assert a.campaign_hash() == b.campaign_hash()
        assert [t.spec.spec_hash() for t in a.expand()] == [
            t.spec.spec_hash() for t in b.expand()
        ]

    def test_expansion_order_and_indices(self):
        trials = small_spec().expand()
        assert [t.index for t in trials] == list(range(8))
        assert [t.cell_index for t in trials] == [0] * 4 + [1] * 4

    def test_shard_chunking(self):
        shards = small_spec(shard_size=3).shards()
        assert [len(s.trials) for s in shards] == [3, 3, 2]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_shard_hashes_are_distinct_and_stable(self):
        first, second = small_spec().shards(), small_spec().shards()
        hashes = [s.shard_hash for s in first]
        assert hashes == [s.shard_hash for s in second]
        assert len(set(hashes)) == len(hashes)

    def test_shard_hash_covers_campaign_identity(self):
        changed = small_spec()
        changed.cells[0].seed += 1
        assert (
            small_spec().shards()[1].shard_hash != changed.shards()[1].shard_hash
        )

    def test_round_trip_preserves_hash(self):
        spec = small_spec()
        again = CampaignSpec.from_dict(spec.as_dict())
        assert again.campaign_hash() == spec.campaign_hash()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_json("{not json")
        with pytest.raises(CampaignError):
            CampaignSpec.from_json('{"name": "x", "cells": []}')
        with pytest.raises(CampaignError, match="unknown campaign keys"):
            CampaignSpec.from_json(
                '{"name": "x", "cells": [{"protocol": "http"}], "shards": 2}'
            )

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignSpec.from_file(tmp_path / "nope.json")

    def test_campaign_level_validation(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="", cells=[CellSpec.build("china", "http")])
        with pytest.raises(CampaignError):
            CampaignSpec(
                name="x", cells=[CellSpec.build("china", "http")], shard_size=0
            )

    def test_default_shard_size(self):
        spec = CampaignSpec(name="x", cells=[CellSpec.build("china", "http")])
        assert spec.shard_size == DEFAULT_SHARD_SIZE


class TestSelectShards:
    def test_round_robin_partition(self):
        spec = small_spec(shard_size=2)
        shards = spec.shards()
        first = spec.select_shards(shards, 1, 2)
        second = spec.select_shards(shards, 2, 2)
        assert [s.index for s in first] == [0, 2]
        assert [s.index for s in second] == [1, 3]
        assert {s.index for s in first} | {s.index for s in second} == {0, 1, 2, 3}

    def test_single_machine_gets_everything(self):
        spec = small_spec()
        shards = spec.shards()
        assert spec.select_shards(shards, 1, 1) == shards

    def test_bad_selectors_rejected(self):
        spec = small_spec()
        shards = spec.shards()
        for index, count in ((0, 4), (5, 4), (1, 0), (-1, 2)):
            with pytest.raises(CampaignError):
                spec.select_shards(shards, index, count)
