"""Tests for the campaign orchestration layer (repro.campaign)."""
