"""Ledger durability: initialization guards, shard verification, journals."""

import json

import pytest

from repro.campaign import CampaignLedger, CampaignSpec, CellSpec, LedgerError


def make_spec(seed=7):
    return CampaignSpec(
        name="ledger-unit",
        cells=[CellSpec.build("kazakhstan", "http", 11, trials=4, seed=seed)],
        shard_size=2,
    )


def fake_results(shard):
    return [
        {"outcome": "success", "succeeded": True, "censored": False}
        for _ in shard.trials
    ]


class TestInitialize:
    def test_fresh_directory_is_stamped(self, tmp_path):
        ledger = CampaignLedger(tmp_path / "camp")
        ledger.initialize(make_spec())
        stored = json.loads(ledger.spec_path.read_text())
        assert stored["campaign_hash"] == make_spec().campaign_hash()
        assert CampaignLedger.load_spec(tmp_path / "camp").name == "ledger-unit"

    def test_reuse_without_resume_refused(self, tmp_path):
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(make_spec())
        with pytest.raises(LedgerError, match="--resume"):
            ledger.initialize(make_spec())

    def test_resume_reopens_same_campaign(self, tmp_path):
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(make_spec())
        ledger.initialize(make_spec(), resume=True)  # no error

    def test_different_campaign_always_refused(self, tmp_path):
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(make_spec(seed=7))
        for resume in (False, True):
            with pytest.raises(LedgerError, match="refusing"):
                ledger.initialize(make_spec(seed=8), resume=resume)

    def test_load_spec_missing_directory(self, tmp_path):
        with pytest.raises(LedgerError):
            CampaignLedger.load_spec(tmp_path / "nowhere")


class TestJournal:
    def test_records_round_trip(self, tmp_path):
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(make_spec())
        ledger.journal("campaign_started", shards=2)
        ledger.journal("shard_done", shard=0)
        events = [r["event"] for r in ledger.journal_records()]
        assert events == ["campaign_started", "shard_done"]
        assert all("wall" in r for r in ledger.journal_records())

    def test_torn_final_line_is_skipped(self, tmp_path):
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(make_spec())
        ledger.journal("shard_done", shard=0)
        with open(ledger.journal_path, "a") as handle:
            handle.write('{"event": "shard_done", "shard"')  # killed mid-append
        records = ledger.journal_records()
        assert [r["event"] for r in records] == ["shard_done"]


class TestShardStorage:
    def test_store_load_round_trip(self, tmp_path):
        spec = make_spec()
        shard = spec.shards()[0]
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        results = fake_results(shard)
        ledger.store_shard(shard, results, {"m": {"kind": "counter"}})
        entry = ledger.load_shard(shard)
        assert entry is not None
        assert entry["results"] == results
        assert entry["metrics"] == {"m": {"kind": "counter"}}
        assert entry["specs"] == shard.spec_hashes
        assert ledger.poisoned == 0

    def test_missing_shard_is_not_done(self, tmp_path):
        spec = make_spec()
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        assert ledger.load_shard(spec.shards()[0]) is None
        assert ledger.poisoned == 0

    def test_corrupt_shard_counts_as_poisoned(self, tmp_path):
        spec = make_spec()
        shard = spec.shards()[0]
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        ledger.store_shard(shard, fake_results(shard), {})
        path = ledger.shard_path(shard)
        path.write_text(path.read_text().replace("success", "crimped"))
        assert ledger.load_shard(shard) is None
        assert ledger.poisoned == 1

    def test_unparseable_shard_counts_as_poisoned(self, tmp_path):
        spec = make_spec()
        shard = spec.shards()[0]
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        ledger.shard_path(shard).write_text("{half a json")
        assert ledger.load_shard(shard) is None
        assert ledger.poisoned == 1

    def test_wrong_result_count_counts_as_poisoned(self, tmp_path):
        spec = make_spec()
        shard = spec.shards()[0]
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        ledger.store_shard(shard, fake_results(shard)[:-1], {})
        assert ledger.load_shard(shard) is None
        assert ledger.poisoned == 1

    def test_completed_shards_mapping(self, tmp_path):
        spec = make_spec()
        shards = spec.shards()
        ledger = CampaignLedger(tmp_path)
        ledger.initialize(spec)
        ledger.store_shard(shards[1], fake_results(shards[1]), {})
        done = ledger.completed_shards(shards)
        assert list(done) == [1]


class TestFinalArtifacts:
    def test_results_and_report_bytes_are_deterministic(self, tmp_path):
        a, b = CampaignLedger(tmp_path / "a"), CampaignLedger(tmp_path / "b")
        lines = [{"seq": 0, "outcome": "success"}, {"seq": 1, "outcome": "censored"}]
        report = {"name": "x", "trials": 2}
        for ledger in (a, b):
            ledger.initialize(make_spec())
            assert ledger.write_results(lines) == 2
            ledger.write_report(report)
        assert a.results_path.read_bytes() == b.results_path.read_bytes()
        assert a.report_path.read_bytes() == b.report_path.read_bytes()
