"""Runner semantics: checkpointing, resume equality, retries, poison recovery."""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignLedger,
    CampaignSpec,
    CellSpec,
    LedgerError,
    run_campaign,
)
from repro.core import deployed_strategy
from repro.eval import success_rate


def small_spec(shard_size=3):
    """8 trials over 3 shards: one evading cell, one censored cell."""
    return CampaignSpec(
        name="runner-unit",
        cells=[
            CellSpec.build("kazakhstan", "http", 11, trials=4, seed=7),
            CellSpec.build("kazakhstan", "http", None, trials=4, seed=9),
        ],
        shard_size=shard_size,
    )


def ledger_bytes(out_dir):
    """The two deterministic final artifacts, as bytes."""
    ledger = CampaignLedger(out_dir)
    return ledger.results_path.read_bytes(), ledger.report_path.read_bytes()


@pytest.fixture(scope="module")
def golden_run(tmp_path_factory):
    """One uninterrupted run of ``small_spec`` — the comparison baseline."""
    out = tmp_path_factory.mktemp("golden") / "camp"
    result = run_campaign(small_spec(), out)
    assert result.finalized
    return out, ledger_bytes(out), result


@pytest.fixture
def golden(golden_run):
    """(directory, deterministic artifact bytes) of the golden run."""
    out, baseline, _result = golden_run
    return out, baseline


class TestFullRun:
    def test_rates_match_direct_measurement(self, golden_run):
        _out, _baseline, result = golden_run
        evading, censored = result.cells
        assert evading.rate == success_rate(
            "kazakhstan", "http", deployed_strategy(11), trials=4, seed=7
        )
        assert censored.rate == success_rate(
            "kazakhstan", "http", None, trials=4, seed=9
        )
        assert evading.trials == censored.trials == 4

    def test_shard_files_exist_per_shard(self, golden):
        out, _ = golden
        shards = small_spec().shards()
        ledger = CampaignLedger(out)
        assert len(shards) == 3
        assert all(ledger.shard_path(s).exists() for s in shards)

    def test_rerun_without_resume_refused(self, golden):
        out, _ = golden
        with pytest.raises(LedgerError, match="--resume"):
            run_campaign(small_spec(), out)

    def test_resume_of_complete_run_is_idempotent(self, golden):
        out, baseline = golden
        result = run_campaign(small_spec(), out, resume=True)
        assert result.shards_run == 0
        assert result.shards_skipped == result.shards_total == 3
        assert result.finalized
        assert ledger_bytes(out) == baseline


class TestResumeEquality:
    @pytest.mark.parametrize("boundary", [1, 2])
    def test_interrupt_at_every_shard_boundary(self, tmp_path, golden, boundary):
        """Stop after ``boundary`` shards, resume: bytes equal uninterrupted."""
        _, baseline = golden
        out = tmp_path / "camp"
        partial = run_campaign(small_spec(), out, max_shards=boundary)
        assert not partial.finalized
        assert partial.shards_run == boundary
        assert not CampaignLedger(out).results_path.exists()
        resumed = run_campaign(small_spec(), out, resume=True)
        assert resumed.finalized
        assert resumed.shards_skipped == boundary
        assert resumed.shards_run == 3 - boundary
        assert ledger_bytes(out) == baseline

    def test_two_machine_split_equals_golden(self, tmp_path, golden):
        _, baseline = golden
        out = tmp_path / "camp"
        first = run_campaign(small_spec(), out, shard=(1, 2))
        assert not first.finalized and first.shards_pending > 0
        second = run_campaign(small_spec(), out, resume=True, shard=(2, 2))
        # Whichever invocation completes the last shard finalizes.
        assert second.finalized
        assert first.shards_run + second.shards_run == 3
        assert ledger_bytes(out) == baseline

    def test_poisoned_shard_is_reexecuted(self, tmp_path, golden):
        _, baseline = golden
        out = tmp_path / "camp"
        run_campaign(small_spec(), out)
        ledger = CampaignLedger(out)
        victim = small_spec().shards()[1]
        path = ledger.shard_path(victim)
        path.write_text(path.read_text()[:-20] + "}")  # break the checksum
        resumed = run_campaign(small_spec(), out, resume=True)
        assert resumed.shards_run == 1
        assert resumed.shards_skipped == 2
        assert ledger_bytes(out) == baseline


class TestRetries:
    def test_retry_budget_exhaustion_aborts(self, tmp_path, monkeypatch):
        from repro.runtime import TrialExecutor

        def boom(self, specs, **kwargs):
            raise RuntimeError("worker died")

        monkeypatch.setattr(TrialExecutor, "run_batch", boom)
        out = tmp_path / "camp"
        with pytest.raises(CampaignError, match="failed after 2 attempt"):
            run_campaign(small_spec(), out, retries=1)
        events = [r["event"] for r in CampaignLedger(out).journal_records()]
        assert events.count("shard_attempt_failed") == 2
        assert events.count("shard_failed") == 1

    def test_flaky_shard_recovers_within_budget(self, tmp_path, monkeypatch, golden):
        _, baseline = golden
        from repro.runtime import TrialExecutor

        real = TrialExecutor.run_batch
        calls = {"n": 0}

        def flaky(self, specs, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(self, specs, **kwargs)

        monkeypatch.setattr(TrialExecutor, "run_batch", flaky)
        out = tmp_path / "camp"
        result = run_campaign(small_spec(), out, retries=2)
        assert result.finalized
        assert ledger_bytes(out) == baseline
        events = [r["event"] for r in CampaignLedger(out).journal_records()]
        assert events.count("shard_attempt_failed") == 1


class TestJournalAudit:
    def test_journal_tells_the_run_story(self, tmp_path):
        out = tmp_path / "camp"
        run_campaign(small_spec(), out, max_shards=1)
        run_campaign(small_spec(), out, resume=True)
        events = [r["event"] for r in CampaignLedger(out).journal_records()]
        assert events.count("campaign_started") == 2
        assert "campaign_paused" in events
        assert events.count("shard_done") == 3
        assert "shard_skipped" in events
        assert events[-1] == "campaign_done"
