"""Tests for the normal TCP three-way handshake and data exchange."""

from repro.tcpstack import states


def open_echo_server(pair, port=80, respond=b"pong"):
    """Listen on the server; respond once to any data, then close."""
    accepted = []

    def on_accept(endpoint):
        accepted.append(endpoint)

        def on_data(data):
            endpoint.send(respond)
            endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(port, on_accept)
    return accepted


class TestHandshake:
    def test_three_way_handshake(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert ep.established
        assert ep.state in (states.ESTABLISHED, states.CLOSE_WAIT)

    def test_handshake_packet_sequence(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        trace = pair.run()
        wire = [
            (e.location, e.packet.flags)
            for e in trace.events
            if e.kind == "send"
        ]
        assert wire[:3] == [("client", "S"), ("server", "SA"), ("client", "A")]

    def test_isn_is_random_per_connection(self, linked_hosts):
        pair = linked_hosts()
        ep1 = pair.client.open_connection("10.0.0.2", 80)
        ep2 = pair.client.open_connection("10.0.0.2", 81)
        ep1.connect()
        ep2.connect()
        assert ep1.iss != ep2.iss

    def test_data_round_trip(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair, respond=b"response-bytes")
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"ping")
        ep.connect()
        pair.run()
        assert bytes(ep.received) == b"response-bytes"

    def test_fin_teardown(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair)
        closed = []
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"x")
        ep.on_remote_close = lambda: closed.append(True)
        ep.connect()
        pair.run()
        assert closed == [True]
        assert ep.state == states.CLOSE_WAIT

    def test_full_close_both_sides(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"x")
        ep.on_remote_close = ep.close
        ep.connect()
        pair.run()
        assert ep.state == states.CLOSED

    def test_options_negotiated(self, linked_hosts):
        pair = linked_hosts()
        open_echo_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert ep.peer_mss == 1460
        assert ep.peer_wscale is not None

    def test_syn_retransmitted_when_lost(self, linked_hosts):
        from repro.netsim import Middlebox

        class DropFirstSyn(Middlebox):
            def __init__(self):
                self.dropped = False

            def process(self, packet, direction, ctx):
                if packet.tcp.is_syn and not self.dropped:
                    self.dropped = True
                    return []
                return [packet]

        pair = linked_hosts(middleboxes=[DropFirstSyn()])
        open_echo_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert ep.established

    def test_connection_fails_when_server_unreachable(self, linked_hosts):
        from repro.netsim import Middlebox

        class BlackHole(Middlebox):
            def process(self, packet, direction, ctx):
                return []

        pair = linked_hosts(middleboxes=[BlackHole()])
        failures = []
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_failure = failures.append
        ep.connect()
        pair.run(until=60)
        assert failures
        assert ep.state == states.CLOSED
