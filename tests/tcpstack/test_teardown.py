"""Tests for connection teardown state transitions."""

from repro.tcpstack import states


def echo_close_server(pair, port=80):
    """Server that answers one request and then closes."""

    def on_accept(endpoint):
        def on_data(data):
            endpoint.send(b"bye")
            endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(port, on_accept)


class TestActiveClose:
    def test_client_initiated_close(self, linked_hosts):
        """Client closes first: FIN_WAIT states, then the server's FIN."""
        pair = linked_hosts()
        accepted = []
        pair.server.listen(80, accepted.append)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=0.2)
        assert ep.established
        ep.close()
        pair.run(until=0.5)
        assert ep.state == states.FIN_WAIT_2  # our FIN acked, peer still open
        server_ep = accepted[0]
        assert server_ep.state == states.CLOSE_WAIT
        server_ep.close()
        pair.run(until=1.0)
        assert ep.state == states.TIME_WAIT
        assert server_ep.state == states.CLOSED

    def test_passive_close_full_cycle(self, linked_hosts):
        """Server closes after responding; client acks and closes back."""
        pair = linked_hosts()
        echo_close_server(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"hi")
        ep.on_remote_close = ep.close
        ep.connect()
        pair.run()
        assert ep.state == states.CLOSED
        assert bytes(ep.received) == b"bye"

    def test_data_before_fin_all_delivered(self, linked_hosts):
        """A FIN following queued data never truncates the stream."""
        pair = linked_hosts()

        def on_accept(endpoint):
            def on_data(data):
                endpoint.send(b"A" * 3000)  # multiple segments
                endpoint.close()

            endpoint.on_data = on_data

        pair.server.listen(80, on_accept)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"go")
        ep.connect()
        pair.run()
        assert bytes(ep.received) == b"A" * 3000

    def test_send_after_close_rejected(self, linked_hosts):
        import pytest

        pair = linked_hosts()
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.close()
        with pytest.raises(RuntimeError):
            ep.send(b"too late")

    def test_abort_sends_rst(self, linked_hosts):
        pair = linked_hosts()
        pair.server.listen(80, lambda endpoint: None)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=0.2)
        ep.abort()
        trace = pair.run(until=0.4)
        rsts = [
            e.packet
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.tcp.is_rst
        ]
        assert rsts
        assert ep.state == states.CLOSED

    def test_fin_retransmitted_if_lost(self, linked_hosts):
        from repro.netsim import Middlebox

        class DropFirstFin(Middlebox):
            def __init__(self):
                self.dropped = False

            def process(self, packet, direction, ctx):
                if packet.tcp.is_fin and not self.dropped:
                    self.dropped = True
                    return []
                return [packet]

        pair = linked_hosts(middleboxes=[DropFirstFin()])
        accepted = []
        pair.server.listen(80, accepted.append)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=0.2)
        ep.close()
        pair.run(until=5.0)
        assert accepted[0].state == states.CLOSE_WAIT  # FIN eventually arrived
