"""Tests for TCP simultaneous open — the behaviour Strategies 1–3 exploit."""

import random

from repro.packets import make_tcp_packet
from repro.tcpstack import Host, TCPEndpoint, personality, states
from repro.netsim import Scheduler, Network


def make_client(seed=1, os_name="ubuntu-18.04.1"):
    sched = Scheduler()
    client = Host("client", "10.0.0.1", sched, random.Random(seed), personality(os_name))
    server = Host("server", "10.0.0.2", sched, random.Random(seed + 1))
    net = Network(sched, client, server)
    client.attach(net)
    server.attach(net)
    return sched, client, server, net


def sent_by(trace, location):
    return [e.packet for e in trace.events if e.kind == "send" and e.location == location]


class TestSimultaneousOpen:
    def test_syn_in_syn_sent_triggers_synack(self):
        sched, client, server, net = make_client()
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        # Server-originated SYN (as Strategy 1 produces).
        syn = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000)
        client.receive(syn)
        sched.run(until=sched.now + 0.2)
        replies = sent_by(net.trace, "client")
        assert replies[-1].flags == "SA"
        assert ep.state == states.SYN_RCVD
        assert ep.simultaneous_open_used

    def test_simopen_synack_reuses_isn(self):
        """The SYN+ACK's sequence number must NOT be incremented — the
        detail that desynchronizes the GFW by one byte."""
        sched, client, server, net = make_client()
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        syn = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000)
        client.receive(syn)
        sched.run(until=sched.now + 0.2)
        synack = sent_by(net.trace, "client")[-1]
        assert synack.tcp.seq == ep.iss  # same as the original SYN
        assert synack.tcp.ack == 5001

    def test_handshake_completes_after_ack(self):
        sched, client, server, net = make_client()
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        client.receive(
            make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000)
        )
        sched.run(until=sched.now + 0.2)
        # Peer ACKs our SYN (ack = iss + 1).
        ack = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="A",
            seq=5001, ack=(ep.iss + 1) % (1 << 32),
        )
        client.receive(ack)
        sched.run(until=sched.now + 0.2)
        assert ep.established

    def test_handshake_completes_on_peer_synack(self):
        """RFC-style sim-open: both sides send SYN+ACK."""
        sched, client, server, net = make_client()
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        client.receive(
            make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000)
        )
        sched.run(until=sched.now + 0.2)
        synack = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA",
            seq=5000, ack=(ep.iss + 1) % (1 << 32),
        )
        client.receive(synack)
        sched.run(until=sched.now + 0.2)
        assert ep.established
        # Client acknowledges so the peer can finish too.
        assert sent_by(net.trace, "client")[-1].flags == "A"

    def test_duplicate_syn_with_payload_is_acked_payload_ignored(self):
        """Strategy 2's second SYN carries a payload; the client ACKs but
        never delivers the bytes to the application."""
        sched, client, server, net = make_client()
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        client.receive(
            make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000)
        )
        sched.run(until=sched.now + 0.2)
        already_sent = len(sent_by(net.trace, "client"))
        dup = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="S", seq=5000,
            load=b"\x99\x88\x77",
        )
        client.receive(dup)
        sched.run(until=sched.now + 0.2)
        assert bytes(ep.received) == b""
        new_packets = sent_by(net.trace, "client")[already_sent:]
        assert any(p.flags == "A" for p in new_packets)

    def test_server_side_simopen_full_exchange(self, linked_hosts):
        """End-to-end: server's SYN+ACK replaced by RST+SYN on the wire
        still yields a working connection (Strategy 1's client view)."""
        from repro.core import deployed_strategy, install_strategy

        pair = linked_hosts()
        install_strategy(pair.server, deployed_strategy(1), random.Random(9))

        def on_accept(endpoint):
            endpoint.on_data = lambda data: (endpoint.send(b"ok"), endpoint.close())

        pair.server.listen(80, on_accept)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"request")
        ep.connect()
        pair.run()
        assert bytes(ep.received) == b"ok"
        assert ep.simultaneous_open_used
