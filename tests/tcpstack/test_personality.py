"""Tests for the §7 OS personality profiles."""

import random

import pytest

from repro.netsim import Network, Scheduler
from repro.packets import make_tcp_packet
from repro.tcpstack import (
    PERSONALITIES,
    Host,
    all_personality_names,
    personality,
)

_MOD = 1 << 32


class TestRegistry:
    def test_seventeen_client_oses(self):
        assert len(PERSONALITIES) == 17

    def test_families_present(self):
        families = {p.family for p in PERSONALITIES.values()}
        assert families == {"windows", "macos", "ios", "android", "linux"}

    def test_eight_windows_versions(self):
        windows = [p for p in PERSONALITIES.values() if p.family == "windows"]
        assert len(windows) == 8

    def test_lookup_by_name(self):
        assert personality("macos-10.15").family == "macos"
        with pytest.raises(ValueError):
            personality("temple-os")

    def test_server_profile_available(self):
        assert personality("ubuntu-18.04.3-server").family == "linux"

    def test_windows_and_macos_consume_synack_payloads(self):
        for p in PERSONALITIES.values():
            if p.family in ("windows", "macos"):
                assert not p.ignores_synack_payload
            else:
                assert p.ignores_synack_payload

    def test_everyone_supports_simultaneous_open(self):
        assert all(p.supports_simultaneous_open for p in PERSONALITIES.values())

    def test_everyone_ignores_bare_rst_in_synsent(self):
        assert all(
            p.ignores_rst_without_ack_in_synsent for p in PERSONALITIES.values()
        )

    def test_stable_name_order(self):
        assert all_personality_names() == sorted(all_personality_names())


class TestSynAckPayloadBehaviour:
    def _deliver_synack_with_payload(self, os_name):
        sched = Scheduler()
        client = Host("client", "10.0.0.1", sched, random.Random(1), personality(os_name))
        server = Host("server", "10.0.0.2", sched, random.Random(2))
        net = Network(sched, client, server)
        client.attach(net)
        server.attach(net)
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        synack = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA",
            seq=9000, ack=(ep.iss + 1) % _MOD, load=b"JUNK",
        )
        client.receive(synack)
        sched.run(until=sched.now + 0.2)
        return ep

    def test_linux_discards_payload(self):
        ep = self._deliver_synack_with_payload("ubuntu-18.04.1")
        assert ep.established
        assert bytes(ep.received) == b""
        assert ep.rcv_nxt == 9001

    def test_windows_consumes_payload(self):
        ep = self._deliver_synack_with_payload("windows-10-enterprise-17134")
        assert ep.established
        assert bytes(ep.received) == b"JUNK"
        assert ep.rcv_nxt == 9001 + 4  # desynchronized from the real server

    def test_macos_consumes_payload(self):
        ep = self._deliver_synack_with_payload("macos-10.15")
        assert bytes(ep.received) == b"JUNK"

    def test_ios_discards_payload(self):
        ep = self._deliver_synack_with_payload("ios-13.3")
        assert bytes(ep.received) == b""
