"""Tests for window-driven segmentation (the mechanism behind Strategy 8)."""

import random

from repro.core import Strategy, install_strategy
from repro.tcpstack import states


def serve_http_like(pair, port=80):
    def on_accept(endpoint):
        def on_data(data):
            if b"\r\n\r\n" in bytes(endpoint.received):
                endpoint.send(b"OK")
                endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(port, on_accept)


WINDOW_10 = Strategy.parse(
    "[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \\/"
)


class TestSegmentation:
    def test_small_window_segments_first_flight(self, linked_hosts):
        pair = linked_hosts()
        install_strategy(pair.server, WINDOW_10, random.Random(1))
        serve_http_like(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        request = b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n"
        ep.on_established = lambda: ep.send(request)
        ep.connect()
        trace = pair.run()
        data_packets = [
            e.packet
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert len(data_packets) >= 2
        assert len(data_packets[0].load) == 10  # clamped to the window
        # The full request still arrives, reassembled, at the server.
        assert bytes(ep.received) == b"OK"

    def test_keyword_split_across_segments(self, linked_hosts):
        pair = linked_hosts()
        install_strategy(pair.server, WINDOW_10, random.Random(1))
        serve_http_like(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        request = b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n"
        ep.on_established = lambda: ep.send(request)
        ep.connect()
        trace = pair.run()
        data_packets = [
            e.packet
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        # No single segment contains the censored keyword.
        assert all(b"ultrasurf" not in p.load for p in data_packets)

    def test_window_scaling_honored_when_present(self, linked_hosts):
        """Without the strategy the request goes out in one segment."""
        pair = linked_hosts()
        serve_http_like(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(b"GET / HTTP/1.1\r\n\r\n")
        ep.connect()
        trace = pair.run()
        data_packets = [
            e.packet
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert len(data_packets) == 1

    def test_wscale_removal_disables_scaling(self, linked_hosts):
        pair = linked_hosts()
        install_strategy(pair.server, WINDOW_10, random.Random(1))
        serve_http_like(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert ep.peer_wscale is None
        assert ep.snd_wnd >= 10  # updated by later ACKs

    def test_mss_limits_segments(self, linked_hosts):
        pair = linked_hosts()
        serve_http_like(pair)
        ep = pair.client.open_connection("10.0.0.2", 80)
        big = b"A" * 4000 + b"\r\n\r\n"
        ep.on_established = lambda: ep.send(big)
        ep.connect()
        trace = pair.run()
        data_packets = [
            e.packet
            for e in trace.events
            if e.kind == "send" and e.location == "client" and e.packet.load
        ]
        assert all(len(p.load) <= 1460 for p in data_packets)
        assert sum(len(p.load) for p in data_packets) >= len(big)

    def test_out_of_order_segments_reassembled(self, linked_hosts):
        """The server stack reorders out-of-order arrivals."""
        from repro.netsim import Middlebox

        class Reorderer(Middlebox):
            def __init__(self):
                self.held = None

            def process(self, packet, direction, ctx):
                if direction == "c2s" and packet.load and self.held is None:
                    self.held = packet
                    return []
                if direction == "c2s" and packet.load and self.held is not None:
                    held, self.held = self.held, None
                    return [packet, held]
                return [packet]

        pair = linked_hosts(middleboxes=[Reorderer()])
        received = []

        def on_accept(endpoint):
            endpoint.on_data = lambda data: received.append(bytes(endpoint.received))

        pair.server.listen(80, on_accept)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: (ep.send(b"A" * 1460), ep.send(b"B" * 100))
        ep.connect()
        pair.run()
        assert received and received[-1] == b"A" * 1460 + b"B" * 100
