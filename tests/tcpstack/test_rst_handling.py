"""Tests for RST handling: ignored RSTs, induced RSTs, valid teardowns."""

import random

from repro.netsim import Network, Scheduler
from repro.packets import make_tcp_packet
from repro.tcpstack import Host, personality, states

_MOD = 1 << 32


def make_pair(seed=1, os_name="ubuntu-18.04.1"):
    sched = Scheduler()
    client = Host("client", "10.0.0.1", sched, random.Random(seed), personality(os_name))
    server = Host("server", "10.0.0.2", sched, random.Random(seed + 1))
    net = Network(sched, client, server)
    client.attach(net)
    server.attach(net)
    return sched, client, server, net


def connect_syn_sent(seed=1):
    sched, client, server, net = make_pair(seed)
    ep = client.open_connection("10.0.0.2", 80)
    ep.connect()
    sched.run(until=sched.now + 0.2)
    return sched, client, net, ep


def client_sends(net):
    return [e.packet for e in net.trace.events if e.kind == "send" and e.location == "client"]


class TestRstInSynSent:
    def test_rst_without_ack_ignored(self):
        """Every modern OS ignores a bare RST in SYN_SENT (Strategy 1)."""
        sched, client, net, ep = connect_syn_sent()
        rst = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="R", seq=1)
        client.receive(rst)
        sched.run(until=sched.now)  # process immediately queued work
        assert ep.state == states.SYN_SENT
        assert not ep.was_reset

    def test_rst_with_valid_ack_resets(self):
        sched, client, net, ep = connect_syn_sent()
        rst = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="RA",
            seq=0, ack=(ep.iss + 1) % _MOD,
        )
        client.receive(rst)
        assert ep.was_reset
        assert ep.state == states.CLOSED

    def test_rst_with_wrong_ack_ignored(self):
        sched, client, net, ep = connect_syn_sent()
        rst = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="RA",
            seq=0, ack=(ep.iss + 999) % _MOD,
        )
        client.receive(rst)
        assert not ep.was_reset


class TestInducedRst:
    def test_bad_synack_ack_induces_rst(self):
        """A SYN+ACK with a wrong ack number elicits RST(seq=ackno) and the
        client stays in SYN_SENT — the mechanism of Strategies 3–7."""
        sched, client, net, ep = connect_syn_sent()
        bad_ack = 0xBADC0DE
        synack = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA", seq=7000, ack=bad_ack
        )
        client.receive(synack)
        sched.run(until=sched.now + 0.2)
        rsts = [p for p in client_sends(net) if p.tcp.is_rst]
        assert len(rsts) == 1
        assert rsts[0].tcp.seq == bad_ack
        assert rsts[0].flags == "R"
        assert ep.state == states.SYN_SENT

    def test_valid_synack_after_induced_rst_completes(self):
        sched, client, net, ep = connect_syn_sent()
        client.receive(
            make_tcp_packet(
                "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA",
                seq=7000, ack=0xBAD,
            )
        )
        client.receive(
            make_tcp_packet(
                "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA",
                seq=7000, ack=(ep.iss + 1) % _MOD,
            )
        )
        sched.run(until=sched.now + 0.2)
        assert ep.established


class TestRstInEstablished:
    def establish(self, seed=3):
        sched, client, server, net = make_pair(seed)
        server.listen(80, lambda endpoint: None)
        ep = client.open_connection("10.0.0.2", 80)
        ep.connect()
        sched.run(until=sched.now + 0.2)
        assert ep.established
        return sched, client, net, ep

    def test_in_window_rst_resets(self):
        sched, client, net, ep = self.establish()
        rst = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="RA",
            seq=ep.rcv_nxt, ack=ep.snd_nxt,
        )
        client.receive(rst)
        assert ep.was_reset

    def test_out_of_window_rst_ignored(self):
        sched, client, net, ep = self.establish()
        rst = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="RA",
            seq=(ep.rcv_nxt + 10_000_000) % _MOD, ack=ep.snd_nxt,
        )
        client.receive(rst)
        assert not ep.was_reset

    def test_reset_reported_to_app(self):
        sched, client, net, ep = self.establish()
        resets = []
        ep.on_reset = lambda: resets.append(True)
        client.receive(
            make_tcp_packet(
                "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="RA",
                seq=ep.rcv_nxt, ack=ep.snd_nxt,
            )
        )
        assert resets == [True]


class TestChecksumValidation:
    def test_bad_checksum_packet_dropped_by_host(self):
        """Checksum-corrupted insertion packets never reach the stack."""
        sched, client, net, ep = connect_syn_sent()
        synack = make_tcp_packet(
            "10.0.0.2", "10.0.0.1", 80, ep.local_port, flags="SA",
            seq=7000, ack=(ep.iss + 1) % _MOD,
        )
        synack.tcp.chksum_override = 0x1234
        client.receive(synack)
        sched.run(until=sched.now)
        assert not ep.established
        drops = [e for e in net.trace.events if e.kind == "drop"]
        assert any("checksum" in e.detail for e in drops)
