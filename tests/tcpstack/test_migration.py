"""Server-side connection migration at the TCP stack level.

The :attr:`TCPEndpoint.accept_delay` knob (set via
:attr:`Host.accept_hooks` / :func:`repro.strategies.tlsrecord.install_migration`)
makes a passive open go dark: the SYN is accepted but the SYN+ACK is
withheld for an exact virtual delay, modelling a server that re-binds its
socket mid-handshake. These tests pin the dark period, the hook wiring,
and the end-to-end effect against a tracking-window censor.
"""

import pytest

from repro.strategies import install_migration

REQUEST = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"
RESPONSE = b"HTTP/1.1 200 OK\r\n\r\nhello"


def serve_and_connect(pair):
    def on_accept(endpoint):
        endpoint.on_data = lambda data: (
            endpoint.send(RESPONSE), endpoint.close()
        ) if bytes(endpoint.received) == REQUEST else None

    pair.server.listen(80, on_accept)
    ep = pair.client.open_connection("10.0.0.2", 80)
    ep.on_established = lambda: ep.send(REQUEST)
    ep.connect()
    return ep


class TestAcceptDelay:
    def test_synack_withheld_for_exact_delay(self, linked_hosts):
        pair = linked_hosts()
        install_migration(pair.server, 1.5)
        ep = serve_and_connect(pair)
        pair.run(until=30.0)
        assert ep.established
        assert bytes(ep.received) == RESPONSE
        synacks = [
            e.time for e in pair.network.trace.filter(kind="send", location="server")
            if e.packet is not None and e.packet.tcp is not None
            and e.packet.flags == "SA"
        ]
        assert synacks, "no SYN+ACK on the wire"
        # The dark period: nothing server-to-client before the delay.
        assert synacks[0] >= 1.5

    def test_zero_delay_is_the_default_path(self, linked_hosts):
        pair = linked_hosts()
        ep = serve_and_connect(pair)
        pair.run(until=30.0)
        first_synack = next(
            e.time for e in pair.network.trace.filter(kind="send", location="server")
            if e.packet is not None and e.packet.tcp is not None
            and e.packet.flags == "SA"
        )
        assert first_synack < 0.1
        assert bytes(ep.received) == RESPONSE

    def test_duplicate_syns_get_no_reply_while_dark(self, linked_hosts):
        """Client SYN retransmissions during the dark period must be met
        with silence — a migrated socket no longer exists to ACK them."""
        pair = linked_hosts()
        install_migration(pair.server, 2.0)
        serve_and_connect(pair)
        pair.run(until=30.0)
        server_sends_before = [
            e for e in pair.network.trace.filter(kind="send", location="server")
            if e.time < 2.0
        ]
        assert server_sends_before == []
        c2s_syns = [
            e.time for e in pair.network.trace.filter(kind="send", location="client")
            if e.packet is not None and e.packet.tcp is not None
            and e.packet.flags == "S" and e.time < 2.0
        ]
        assert len(c2s_syns) > 1  # the client did retransmit into the void

    def test_hooks_apply_to_every_accepted_connection(self, linked_hosts):
        pair = linked_hosts()
        seen = []
        pair.server.accept_hooks.append(lambda ep: seen.append(ep))
        install_migration(pair.server, 0.5)
        ep = serve_and_connect(pair)
        pair.run(until=30.0)
        assert len(seen) == 1
        assert seen[0].accept_delay == 0.5
        assert ep.established


class TestMigrationVsTrackingWindow:
    """End-to-end: the dark period outlasts (or doesn't) the SNI boxes'
    flow-tracking window, anchored at the first SYN."""

    @pytest.mark.parametrize("country,delay,evades", [
        ("southkorea", 1.5, True),   # > 1.0 s window
        ("southkorea", 0.2, False),
        ("russia", 2.5, True),       # > 2.0 s window
        ("russia", 1.5, False),      # outlasts SK's window, not russia's
    ])
    def test_delay_vs_window(self, country, delay, evades):
        from repro.eval.runner import Trial

        trial = Trial(country, "https", None, seed=5)
        install_migration(trial.server_host, delay)
        outcome = trial.run()
        assert outcome.succeeded is evades
