"""Failure-injection tests: the TCP stack under loss, duplication, and
reordering must never deliver corrupted, duplicated, or out-of-order data.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim import Middlebox


class ChaosMiddlebox(Middlebox):
    """Randomly drops, duplicates, and delays (reorders) packets."""

    name = "chaos"

    def __init__(self, seed, drop=0.1, dup=0.1, hold=0.1):
        self.rng = random.Random(seed)
        self.drop = drop
        self.dup = dup
        self.hold = hold
        self._held = None

    def process(self, packet, direction, ctx):
        out = []
        if self._held is not None:
            out.append(self._held)
            self._held = None
        roll = self.rng.random()
        if roll < self.drop:
            return out
        if roll < self.drop + self.dup:
            out.extend([packet, packet.copy()])
            return out
        if roll < self.drop + self.dup + self.hold:
            self._held = packet  # released in front of the next packet
            return out
        out.append(packet)
        return out


REQUEST = b"GET /?payload=" + bytes(range(48, 116)) + b" HTTP/1.1\r\n\r\n"
RESPONSE = b"HTTP/1.1 200 OK\r\n\r\n" + bytes(range(200, 256)) * 30


def run_chaotic_exchange(linked_hosts, seed, drop=0.1):
    pair = linked_hosts(middleboxes=[ChaosMiddlebox(seed, drop=drop)], seed=seed)
    server_received = bytearray()

    def on_accept(endpoint):
        def on_data(data):
            server_received.extend(data)
            if bytes(endpoint.received) == REQUEST:
                endpoint.send(RESPONSE)
                endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(80, on_accept)
    ep = pair.client.open_connection("10.0.0.2", 80)
    ep.on_established = lambda: ep.send(REQUEST)
    ep.connect()
    pair.run(until=120)
    return ep, bytes(server_received)


class TestChaos:
    @pytest.mark.parametrize("seed", range(12))
    def test_streams_never_corrupted(self, linked_hosts, seed):
        """Under 10% loss + dup + reorder: whatever arrives is an exact
        prefix of what was sent — never reordered or duplicated bytes."""
        ep, server_received = run_chaotic_exchange(linked_hosts, seed)
        assert REQUEST.startswith(server_received) or server_received == REQUEST
        client_received = bytes(ep.received)
        assert RESPONSE.startswith(client_received)

    @pytest.mark.parametrize("seed", range(8))
    def test_mild_chaos_usually_completes(self, linked_hosts, seed):
        """With 5% loss the retransmission machinery recovers fully."""
        ep, server_received = run_chaotic_exchange(linked_hosts, seed + 100, drop=0.05)
        assert server_received == REQUEST
        assert bytes(ep.received) == RESPONSE

    def test_pure_duplication_is_harmless(self, linked_hosts):
        class Duplicator(Middlebox):
            def process(self, packet, direction, ctx):
                return [packet, packet.copy()]

        pair = linked_hosts(middleboxes=[Duplicator()])

        def on_accept(endpoint):
            def on_data(data):
                if bytes(endpoint.received) == REQUEST:
                    endpoint.send(RESPONSE)
                    endpoint.close()

            endpoint.on_data = on_data

        pair.server.listen(80, on_accept)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_established = lambda: ep.send(REQUEST)
        ep.connect()
        pair.run()
        assert bytes(ep.received) == RESPONSE

    def test_total_loss_fails_cleanly(self, linked_hosts):
        class BlackHole(Middlebox):
            def process(self, packet, direction, ctx):
                return []

        pair = linked_hosts(middleboxes=[BlackHole()])
        failures = []
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_failure = failures.append
        ep.connect()
        pair.run(until=60)
        assert failures == ["retransmission limit exceeded"]


class TestChaosProperty:
    @given(st.integers(0, 10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_invariant_over_random_seeds(self, linked_hosts, seed):
        """Property form of the prefix invariant over arbitrary chaos.

        The ``linked_hosts`` factory fixture builds fresh state per call,
        so reuse across hypothesis examples is safe.
        """
        ep, server_received = run_chaotic_exchange(linked_hosts, seed)
        assert REQUEST.startswith(server_received)
        assert RESPONSE.startswith(bytes(ep.received))
