"""Property tests: TCP retransmission defeats seeded impairment.

The paper's evasion strategies only matter if unmodified clients still
get their data over real (lossy) paths. These tests pin the stack's
recovery guarantee: for **every** OS personality, under random per-link
loss up to 30%, the handshake completes and the payload is delivered
exactly once, in order.

``derandomize=True`` makes hypothesis draw a fixed example set, so the
suite is deterministic: the seeded simulator either always passes or
always fails a given example — there is no flakiness to tolerate.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim import Impairment
from repro.tcpstack import all_personality_names, personality

REQUEST = b"GET /?q=payload HTTP/1.1\r\nHost: example.com\r\n\r\n"
RESPONSE = b"HTTP/1.1 200 OK\r\n\r\n" + bytes(range(256)) * 4

PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def run_impaired_exchange(linked_hosts, client_os, policy, net_seed):
    pair = linked_hosts(client_os=client_os, impairment=policy, net_seed=net_seed)

    def on_accept(endpoint):
        def on_data(data):
            if bytes(endpoint.received) == REQUEST:
                endpoint.send(RESPONSE)
                endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(80, on_accept)
    ep = pair.client.open_connection("10.0.0.2", 80)
    ep.on_established = lambda: ep.send(REQUEST)
    ep.connect()
    pair.run(until=400)
    return ep


@pytest.mark.parametrize("client_os", all_personality_names())
class TestLossRecoveryProperty:
    @given(
        loss=st.floats(min_value=0.0, max_value=0.3),
        net_seed=st.integers(min_value=0, max_value=10_000),
    )
    @PROPERTY_SETTINGS
    def test_handshake_and_payload_survive_loss(
        self, linked_hosts, client_os, loss, net_seed
    ):
        policy = Impairment(loss=loss) if loss > 0 else None
        ep = run_impaired_exchange(linked_hosts, client_os, policy, net_seed)
        assert ep.established, f"{client_os}: handshake failed at loss={loss}"
        assert bytes(ep.received) == RESPONSE

    @given(net_seed=st.integers(min_value=0, max_value=10_000))
    @PROPERTY_SETTINGS
    def test_combined_impairments_stay_in_order(
        self, linked_hosts, client_os, net_seed
    ):
        """Loss + duplication + reordering together: delivery remains
        exactly-once and in-order (never merely prefix-correct)."""
        policy = Impairment(loss=0.1, dup=0.1, reorder=0.15, jitter=0.004)
        ep = run_impaired_exchange(linked_hosts, client_os, policy, net_seed)
        assert ep.established
        assert bytes(ep.received) == RESPONSE


class TestRetryBudgets:
    def test_personalities_advertise_retry_budgets(self):
        for name in all_personality_names():
            profile = personality(name)
            assert profile.syn_retries >= 4
            assert profile.synack_retries >= 4
            assert profile.data_retries >= 5
            assert profile.rto > 0

    def test_windows_retries_less_than_linux(self):
        assert (
            personality("windows-10-enterprise-17134").syn_retries
            < personality("ubuntu-18.04.1").syn_retries
        )

    def test_duplicate_discard_counter(self, linked_hosts):
        ep = run_impaired_exchange(
            linked_hosts, "ubuntu-18.04.1", Impairment(dup=1.0), net_seed=2
        )
        assert bytes(ep.received) == RESPONSE
        assert ep.dup_segments_discarded > 0

    def test_retransmit_counter(self, linked_hosts):
        ep = run_impaired_exchange(
            linked_hosts, "ubuntu-18.04.1", Impairment(loss=0.3), net_seed=3
        )
        assert ep.retransmits_sent > 0
