"""Tests for host-level demux, filters, and connection management."""

import random

from repro.packets import make_tcp_packet
from repro.tcpstack import states


class TestDemux:
    def test_listener_spawns_endpoint_on_syn(self, linked_hosts):
        pair = linked_hosts()
        accepted = []
        pair.server.listen(80, accepted.append)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert len(accepted) == 1
        assert accepted[0].remote_port == ep.local_port

    def test_synack_to_listener_does_not_spawn(self, linked_hosts):
        pair = linked_hosts()
        accepted = []
        pair.server.listen(80, accepted.append)
        stray = make_tcp_packet("10.0.0.1", "10.0.0.2", 5000, 80, flags="SA", ack=1)
        pair.server.receive(stray)
        assert accepted == []

    def test_packets_for_unknown_flows_ignored(self, linked_hosts):
        pair = linked_hosts()
        stray = make_tcp_packet("10.0.0.1", "10.0.0.2", 5000, 9999, flags="PA", load=b"x")
        pair.server.receive(stray)  # must not raise or reply
        assert pair.server.endpoints() == []

    def test_two_concurrent_connections(self, linked_hosts):
        pair = linked_hosts()

        def on_accept(endpoint):
            endpoint.on_data = lambda d: (endpoint.send(bytes(endpoint.received)), endpoint.close())

        pair.server.listen(80, on_accept)
        ep1 = pair.client.open_connection("10.0.0.2", 80)
        ep2 = pair.client.open_connection("10.0.0.2", 80)
        ep1.on_established = lambda: ep1.send(b"one")
        ep2.on_established = lambda: ep2.send(b"two")
        ep1.connect()
        ep2.connect()
        pair.run()
        assert bytes(ep1.received) == b"one"
        assert bytes(ep2.received) == b"two"

    def test_ephemeral_ports_unique(self, linked_hosts):
        pair = linked_hosts()
        ports = {pair.client.new_port() for _ in range(100)}
        assert len(ports) == 100

    def test_closed_endpoint_forgotten(self, linked_hosts):
        pair = linked_hosts()
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        ep.abort()
        assert ep not in pair.client.endpoints()


class TestFilters:
    def test_outbound_filter_can_duplicate(self, linked_hosts):
        pair = linked_hosts()
        pair.client.outbound_filters.append(lambda p: [p, p.copy()])
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        trace = pair.run(until=0.3)
        syns = [
            e for e in trace.events if e.kind == "send" and e.location == "client"
        ]
        assert len(syns) >= 2

    def test_outbound_filter_can_drop(self, linked_hosts):
        pair = linked_hosts()
        pair.client.outbound_filters.append(lambda p: [])
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        trace = pair.run(until=0.3)
        assert not [e for e in trace.events if e.kind == "send"]

    def test_filters_chain_in_order(self, linked_hosts):
        pair = linked_hosts()
        calls = []
        pair.client.outbound_filters.append(lambda p: (calls.append("a"), [p])[1])
        pair.client.outbound_filters.append(lambda p: (calls.append("b"), [p])[1])
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        assert calls == ["a", "b"]

    def test_inbound_filter_applied(self, linked_hosts):
        pair = linked_hosts()
        seen = []
        pair.server.inbound_filters.append(lambda p: (seen.append(p.flags), [p])[1])
        pair.server.listen(80, lambda endpoint: None)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run()
        assert "S" in seen
