"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Scheduler
from repro.netsim.flows import FlowScheduler


class TestScheduling:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(2.0, lambda: order.append("b"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(3.0, lambda: order.append("c"))
        sched.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_instant(self):
        sched = Scheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, lambda i=i: order.append(i))
        sched.run()
        assert order == list(range(10))

    def test_clock_advances(self):
        sched = Scheduler()
        times = []
        sched.schedule(0.5, lambda: times.append(sched.now))
        sched.schedule(1.5, lambda: times.append(sched.now))
        sched.run()
        assert times == [0.5, 1.5]

    def test_until_bound(self):
        sched = Scheduler()
        ran = []
        sched.schedule(1.0, lambda: ran.append(1))
        sched.schedule(5.0, lambda: ran.append(5))
        sched.run(until=2.0)
        assert ran == [1]
        assert sched.now == 2.0
        sched.run()
        assert ran == [1, 5]

    def test_nested_scheduling(self):
        sched = Scheduler()
        seen = []

        def first():
            seen.append("first")
            sched.schedule(1.0, lambda: seen.append("second"))

        sched.schedule(1.0, first)
        sched.run()
        assert seen == ["first", "second"]
        assert sched.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().schedule(-1, lambda: None)


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sched = Scheduler()
        ran = []
        timer = sched.schedule(1.0, lambda: ran.append(1))
        timer.cancel()
        sched.run()
        assert ran == []

    def test_cancel_mid_run(self):
        sched = Scheduler()
        ran = []
        later = sched.schedule(2.0, lambda: ran.append("later"))
        sched.schedule(1.0, lambda: later.cancel())
        sched.run()
        assert ran == []


class TestOrderingProperty:
    """Event ordering is stable: time-sorted, FIFO within a timestamp,
    regardless of how schedule()/schedule_at()/cancel() interleave."""

    # A few coarse timestamps so thousands of timers collide per instant.
    _timestamps = st.sampled_from([0.0, 0.5, 1.0, 1.0, 1.0, 2.5])

    @given(st.lists(_timestamps, min_size=1000, max_size=1500), st.random_module())
    @settings(max_examples=10, deadline=None)
    def test_fifo_within_timestamp_at_scale(self, whens, rnd):
        import random as _random

        sched = Scheduler()
        fired = []
        cancelled = set()
        rng = _random.Random(rnd.seed)
        for index, when in enumerate(whens):
            # Interleave the two scheduling APIs and sprinkle cancels.
            if index % 3 == 0:
                sched.schedule_at(when, fired.append, (index,))
            else:
                timer = sched.schedule(when, lambda i=index: fired.append(i))
                if rng.random() < 0.1:
                    timer.cancel()
                    cancelled.add(index)
        sched.run()

        expected = [
            index
            for when, index in sorted(
                ((when, index) for index, when in enumerate(whens)),
                key=lambda pair: (pair[0], pair[1]),
            )
            if index not in cancelled
        ]
        assert fired == expected

    @given(st.lists(_timestamps, min_size=1000, max_size=1200))
    @settings(max_examples=5, deadline=None)
    def test_flow_scheduler_orders_identically(self, whens):
        """FlowScheduler's 6-tuple entries sort exactly like the base
        scheduler's — the single-flow-equivalence prerequisite."""
        base, flows = Scheduler(), FlowScheduler()
        base_order, flow_order = [], []
        for index, when in enumerate(whens):
            base.schedule(when, lambda i=index: base_order.append(i))
            flows.schedule(when, lambda i=index: flow_order.append(i))
        base.run()
        flows.run()
        assert flow_order == base_order

    def test_nested_same_instant_events_run_after_queued(self):
        """An event scheduled at the current instant runs behind every
        event already queued for that instant (the deadline-bounce rule)."""
        sched = Scheduler()
        order = []
        sched.schedule(1.0, lambda: (order.append("first"),
                                     sched.schedule_at(1.0, order.append, ("bounced",))))
        sched.schedule(1.0, lambda: order.append("second"))
        sched.run()
        assert order == ["first", "second", "bounced"]


class TestSafety:
    def test_max_events_bounds_runaway(self):
        sched = Scheduler()

        def loop():
            sched.schedule(0.1, loop)

        sched.schedule(0.1, loop)
        executed = sched.run(max_events=50)
        assert executed == 50

    def test_pending_counts_queue(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        assert sched.pending() == 2
