"""Tests for the discrete-event scheduler."""

import pytest

from repro.netsim import Scheduler


class TestScheduling:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(2.0, lambda: order.append("b"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(3.0, lambda: order.append("c"))
        sched.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_instant(self):
        sched = Scheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, lambda i=i: order.append(i))
        sched.run()
        assert order == list(range(10))

    def test_clock_advances(self):
        sched = Scheduler()
        times = []
        sched.schedule(0.5, lambda: times.append(sched.now))
        sched.schedule(1.5, lambda: times.append(sched.now))
        sched.run()
        assert times == [0.5, 1.5]

    def test_until_bound(self):
        sched = Scheduler()
        ran = []
        sched.schedule(1.0, lambda: ran.append(1))
        sched.schedule(5.0, lambda: ran.append(5))
        sched.run(until=2.0)
        assert ran == [1]
        assert sched.now == 2.0
        sched.run()
        assert ran == [1, 5]

    def test_nested_scheduling(self):
        sched = Scheduler()
        seen = []

        def first():
            seen.append("first")
            sched.schedule(1.0, lambda: seen.append("second"))

        sched.schedule(1.0, first)
        sched.run()
        assert seen == ["first", "second"]
        assert sched.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().schedule(-1, lambda: None)


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sched = Scheduler()
        ran = []
        timer = sched.schedule(1.0, lambda: ran.append(1))
        timer.cancel()
        sched.run()
        assert ran == []

    def test_cancel_mid_run(self):
        sched = Scheduler()
        ran = []
        later = sched.schedule(2.0, lambda: ran.append("later"))
        sched.schedule(1.0, lambda: later.cancel())
        sched.run()
        assert ran == []


class TestSafety:
    def test_max_events_bounds_runaway(self):
        sched = Scheduler()

        def loop():
            sched.schedule(0.1, loop)

        sched.schedule(0.1, loop)
        executed = sched.run(max_events=50)
        assert executed == 50

    def test_pending_counts_queue(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        assert sched.pending() == 2
