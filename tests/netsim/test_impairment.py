"""Unit tests for the deterministic network-impairment layer."""

import random

import pytest

from repro.netsim import Impairment, Network, Scheduler
from repro.netsim.impairment import corrupt_payload
from repro.packets import make_tcp_packet

REQUEST = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"
RESPONSE = b"HTTP/1.1 200 OK\r\n\r\nhello world"


def run_exchange(linked_hosts, impairment=None, net_seed=0, until=120):
    """One request/response exchange over an (optionally) impaired link."""
    pair = linked_hosts(impairment=impairment, net_seed=net_seed)

    def on_accept(endpoint):
        def on_data(data):
            if bytes(endpoint.received) == REQUEST:
                endpoint.send(RESPONSE)
                endpoint.close()

        endpoint.on_data = on_data

    pair.server.listen(80, on_accept)
    ep = pair.client.open_connection("10.0.0.2", 80)
    ep.on_established = lambda: ep.send(REQUEST)
    ep.connect()
    trace = pair.run(until=until)
    return ep, trace


class TestPolicyValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            Impairment(loss=1.5)
        with pytest.raises(ValueError):
            Impairment(dup=-0.1)

    def test_delays_must_be_non_negative(self):
        with pytest.raises(ValueError):
            Impairment(jitter=-1.0)

    def test_direction_is_checked(self):
        with pytest.raises(ValueError):
            Impairment(direction="sideways")

    def test_from_dict_rejects_unknown_knobs(self):
        with pytest.raises(ValueError, match="unknown impairment knobs"):
            Impairment.from_dict({"loss": 0.1, "lag": 3})

    def test_from_value_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            Impairment.from_value(0.1)


class TestCanonicalForm:
    def test_null_policy_is_null(self):
        assert Impairment.none().is_null()
        assert Impairment(reorder_delay=0.5).is_null()  # delays alone: no effect
        assert not Impairment(loss=0.01).is_null()

    def test_as_dict_is_minimal(self):
        assert Impairment.none().as_dict() == {}
        assert Impairment(loss=0.1).as_dict() == {"loss": 0.1}

    def test_dict_roundtrip(self):
        policy = Impairment(loss=0.1, dup=0.2, direction="c2s")
        assert Impairment.from_dict(policy.as_dict()) == policy

    def test_direction_scoping(self):
        policy = Impairment(loss=0.5, direction="c2s")
        assert policy.applies("c2s")
        assert not policy.applies("s2c")
        assert Impairment(loss=0.5).applies("s2c")


class TestCorruptPayload:
    def test_flip_is_detectable_and_copy_only(self):
        packet = make_tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80, flags="PA", seq=1, ack=1,
            load=b"forbidden payload",
        )
        corrupted, offset = corrupt_payload(packet, random.Random(5))
        assert 0 <= offset < len(packet.load)
        # Original untouched, copy differs in exactly one byte.
        assert packet.load == b"forbidden payload"
        assert corrupted.load != packet.load
        diff = [i for i, (a, b) in enumerate(zip(packet.load, corrupted.load)) if a != b]
        assert diff == [offset]
        # The pinned (pre-flip) checksum no longer matches: hosts drop it.
        assert packet.checksums_ok()
        assert not corrupted.checksums_ok()

    def test_empty_payload_rejected(self):
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 40000, 80, flags="S", seq=1)
        with pytest.raises(ValueError):
            corrupt_payload(packet, random.Random(0))


class TestNetworkIntegration:
    def test_null_policy_never_draws(self, linked_hosts):
        """A null policy normalizes to no impairment at all."""
        pair = linked_hosts(impairment=Impairment.none())
        assert pair.network.impairment is None
        assert pair.network._net_rng is None

    def test_lossy_exchange_recovers_by_retransmission(self, linked_hosts):
        ep, trace = run_exchange(linked_hosts, Impairment(loss=0.2), net_seed=3)
        losses = [e for e in trace.events if e.kind == "loss"]
        assert losses, "expected at least one loss event at 20% loss"
        assert bytes(ep.received) == RESPONSE

    def test_duplication_is_discarded_by_receivers(self, linked_hosts):
        ep, trace = run_exchange(linked_hosts, Impairment(dup=1.0), net_seed=1)
        assert any(e.kind == "dup" for e in trace.events)
        assert bytes(ep.received) == RESPONSE

    def test_reorder_and_jitter_keep_streams_in_order(self, linked_hosts):
        policy = Impairment(reorder=0.5, jitter=0.01)
        ep, trace = run_exchange(linked_hosts, policy, net_seed=2)
        assert bytes(ep.received) == RESPONSE

    def test_corruption_is_caught_and_retransmitted(self, linked_hosts):
        ep, trace = run_exchange(linked_hosts, Impairment(corrupt=0.3), net_seed=4)
        corrupted = [e for e in trace.events if e.kind == "corrupt"]
        dropped = [
            e for e in trace.events
            if e.kind == "drop" and "bad checksum" in e.detail
        ]
        assert corrupted, "expected corruption events at 30%"
        assert dropped, "hosts must drop checksum-corrupted segments"
        assert bytes(ep.received) == RESPONSE

    def test_same_net_seed_replays_identically(self, linked_hosts):
        policy = Impairment(loss=0.15, dup=0.1, reorder=0.1, jitter=0.004)
        _, trace_a = run_exchange(linked_hosts, policy, net_seed=11)
        _, trace_b = run_exchange(linked_hosts, policy, net_seed=11)
        assert trace_a.digest() == trace_b.digest()

    def test_different_net_seed_diverges(self, linked_hosts):
        policy = Impairment(loss=0.3)
        _, trace_a = run_exchange(linked_hosts, policy, net_seed=11)
        _, trace_b = run_exchange(linked_hosts, policy, net_seed=12)
        assert trace_a.digest() != trace_b.digest()

    def test_direction_scoped_loss(self, linked_hosts):
        """Total c2s loss kills the connection; total s2c loss alone does
        too — but with direction scoping only the scoped side draws."""
        policy = Impairment(loss=1.0, direction="s2c")
        pair = linked_hosts(impairment=policy, net_seed=0)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.connect()
        pair.run(until=5)
        trace = pair.network.trace
        # The client's SYN crossed (c2s unimpaired); nothing came back.
        received = [e for e in trace.events if e.kind == "recv"]
        assert all(e.location == "server" for e in received)

    def test_total_loss_fails_cleanly(self, linked_hosts):
        failures = []
        pair = linked_hosts(impairment=Impairment(loss=1.0), net_seed=0)
        ep = pair.client.open_connection("10.0.0.2", 80)
        ep.on_failure = failures.append
        ep.connect()
        pair.run(until=120)
        assert failures == ["retransmission limit exceeded"]
