"""Unit tests for the middlebox interface and PathContext."""

from repro.netsim import (
    DIRECTION_C2S,
    Middlebox,
    Network,
    Scheduler,
    TransparentTap,
)
from repro.packets import make_tcp_packet


class Sink:
    def __init__(self, name, ip):
        self.name = name
        self.ip = ip
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestBaseMiddlebox:
    def test_default_forwards_everything(self):
        box = Middlebox()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert box.process(packet, DIRECTION_C2S, None) == [packet]

    def test_reset_is_noop(self):
        Middlebox().reset()  # must not raise

    def test_tap_reset_clears(self):
        tap = TransparentTap()
        tap.process(make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2), DIRECTION_C2S, None)
        assert tap.seen
        tap.reset()
        assert tap.seen == []

    def test_tap_records_copies(self):
        tap = TransparentTap()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, seq=5)
        tap.process(packet, DIRECTION_C2S, None)
        packet.tcp.seq = 99
        assert tap.seen[0].tcp.seq == 5


class TestPathContext:
    def build(self, box):
        sched = Scheduler()
        client = Sink("client", "10.0.0.1")
        server = Sink("server", "10.0.0.2")
        net = Network(sched, client, server, [box])
        return sched, client, server, net

    def test_now_tracks_scheduler(self):
        times = []

        class Clock(Middlebox):
            def process(self, packet, direction, ctx):
                times.append(ctx.now)
                return [packet]

        sched, client, server, net = self.build(Clock())
        net.send_from(client, make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sched.run()
        assert times and times[0] > 0

    def test_schedule_from_middlebox(self):
        fired = []

        class Delayer(Middlebox):
            def process(self, packet, direction, ctx):
                ctx.schedule(1.0, lambda: fired.append(ctx.now))
                return [packet]

        sched, client, server, net = self.build(Delayer())
        net.send_from(client, make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sched.run()
        assert len(fired) == 1

    def test_inject_records_trace_event(self):
        class Injector(Middlebox):
            name = "inj"

            def process(self, packet, direction, ctx):
                if direction == DIRECTION_C2S:
                    ctx.inject(
                        make_tcp_packet("10.0.0.2", "10.0.0.1", 2, 1, flags="RA"),
                        toward="client",
                    )
                return [packet]

        sched, client, server, net = self.build(Injector())
        net.send_from(client, make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sched.run()
        injects = net.trace.filter(kind="inject")
        assert len(injects) == 1
        assert injects[0].location == "inj"
        assert "toward client" in injects[0].detail

    def test_inject_invalid_direction_rejected(self):
        import pytest

        class BadInjector(Middlebox):
            def process(self, packet, direction, ctx):
                ctx.inject(packet, toward="sideways")
                return [packet]

        sched, client, server, net = self.build(BadInjector())
        net.send_from(client, make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        with pytest.raises(ValueError):
            sched.run()

    def test_record_custom_event(self):
        class Recorder(Middlebox):
            name = "rec"

            def process(self, packet, direction, ctx):
                ctx.record("censor", packet, "custom detail")
                return [packet]

        sched, client, server, net = self.build(Recorder())
        net.send_from(client, make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sched.run()
        events = net.trace.filter(kind="censor", location="rec")
        assert len(events) == 1
        assert events[0].detail == "custom detail"
