"""Tests for pcap export/import of packet traces."""

import io
import struct

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial
from repro.netsim.pcap import (
    LINKTYPE_RAW,
    PCAP_MAGIC,
    read_pcap,
    trace_to_pcap_bytes,
    write_pcap,
)


@pytest.fixture
def trace():
    return run_trial("china", "http", deployed_strategy(1), seed=3).trace


class TestExport:
    def test_global_header(self, trace):
        payload = trace_to_pcap_bytes(trace)
        magic, major, minor, _, _, snaplen, network = struct.unpack_from(
            "<IHHiIII", payload, 0
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert network == LINKTYPE_RAW
        assert snaplen == 65535

    def test_round_trip_packets(self, trace):
        payload = trace_to_pcap_bytes(trace)
        packets = read_pcap(payload)
        sent = [e for e in trace.events if e.kind in ("send", "inject") and e.packet]
        assert len(packets) == len(sent)
        for (_, parsed), event in zip(packets, sent):
            assert parsed.flow == event.packet.flow
            assert parsed.tcp.seq == event.packet.tcp.seq
            assert parsed.flags == event.packet.flags
            assert parsed.load == event.packet.load

    def test_timestamps_monotone(self, trace):
        packets = read_pcap(trace_to_pcap_bytes(trace))
        times = [t for t, _ in packets]
        assert times == sorted(times)
        assert times[0] >= 0

    def test_write_to_path(self, trace, tmp_path):
        path = tmp_path / "trial.pcap"
        count = write_pcap(trace, str(path))
        assert count > 0
        assert read_pcap(str(path))

    def test_write_to_stream(self, trace):
        buffer = io.BytesIO()
        count = write_pcap(trace, buffer)
        assert count == len(read_pcap(buffer.getvalue()))

    def test_kind_filter(self, trace):
        only_injected = read_pcap(trace_to_pcap_bytes(trace, kinds=("inject",)))
        everything = read_pcap(trace_to_pcap_bytes(trace))
        assert len(only_injected) < len(everything)


class TestReaderValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(b"\x00" * 24)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(b"\x00" * 5)

    def test_truncated_record_rejected(self, trace):
        payload = trace_to_pcap_bytes(trace)
        with pytest.raises(ValueError):
            read_pcap(payload[:-3])

    def test_wrong_linktype_rejected(self, trace):
        payload = bytearray(trace_to_pcap_bytes(trace))
        struct.pack_into("<I", payload, 20, 1)  # LINKTYPE_ETHERNET
        with pytest.raises(ValueError):
            read_pcap(bytes(payload))


class TestDeterminism:
    def test_serialization_is_pure(self, trace):
        assert trace_to_pcap_bytes(trace) == trace_to_pcap_bytes(trace)

    def test_identical_trials_export_identical_bytes(self):
        """The pcap is a function of the spec: re-running the same seeded
        trial yields byte-identical captures (golden-artifact property)."""
        first = run_trial("china", "http", deployed_strategy(1), seed=3).trace
        second = run_trial("china", "http", deployed_strategy(1), seed=3).trace
        assert trace_to_pcap_bytes(first) == trace_to_pcap_bytes(second)

    def test_different_seeds_export_different_bytes(self):
        first = run_trial("china", "http", deployed_strategy(1), seed=3).trace
        second = run_trial("china", "http", deployed_strategy(1), seed=4).trace
        assert trace_to_pcap_bytes(first) != trace_to_pcap_bytes(second)


class TestUdpRoundTrip:
    def test_udp_packets_survive(self):
        from repro.netsim.trace import Trace
        from repro.packets import make_udp_packet

        trace = Trace()
        query = make_udp_packet("10.0.0.1", "8.8.8.8", 5353, 53, load=b"\x12\x34q")
        reply = make_udp_packet("8.8.8.8", "10.0.0.1", 53, 5353, load=b"\x12\x34r")
        trace.record(0.25, "send", "client", query)
        trace.record(0.75, "inject", "resolver", reply)
        packets = read_pcap(trace_to_pcap_bytes(trace))
        assert [t for t, _ in packets] == [0.25, 0.75]
        for (_, parsed), original in zip(packets, (query, reply)):
            assert parsed.tcp is None
            assert parsed.flow == original.flow
            assert parsed.load == original.load
            assert parsed.checksums_ok()


class TestImpairedTraces:
    @pytest.fixture
    def impaired_trace(self):
        from repro.runtime import TrialSpec

        spec = TrialSpec.build(
            "china", "http", None, seed=3,
            impairment={"loss": 0.15, "dup": 0.1}, net_seed=1,
        )
        return spec.run(keep_trace=True).trace

    def test_round_trip_covers_wire_events_only(self, impaired_trace):
        """Impairment bookkeeping events (loss/dup/...) carry packets but
        are not wire transmissions; the default export skips them."""
        packets = read_pcap(trace_to_pcap_bytes(impaired_trace))
        wire = [
            e for e in impaired_trace.events
            if e.kind in ("send", "inject") and e.packet
        ]
        assert len(packets) == len(wire) > 0
        assert any(e.kind in ("loss", "dup") for e in impaired_trace.events)

    def test_duplicated_packets_can_be_exported_explicitly(self, impaired_trace):
        dups = read_pcap(trace_to_pcap_bytes(impaired_trace, kinds=("dup",)))
        assert len(dups) == len(impaired_trace.filter(kind="dup"))
        assert all(p.checksums_ok() for _, p in dups)


class TestCorruptedChecksumsSurvive:
    def test_insertion_packets_still_corrupt_after_round_trip(self):
        """Checksum-corrupted insertion packets keep their bad checksums
        through pcap export (what a real capture would show)."""
        from repro.core import compat_strategy

        trace = run_trial(None, "http", compat_strategy(9), seed=1).trace
        packets = read_pcap(trace_to_pcap_bytes(trace))
        bad = [p for _, p in packets if not p.checksums_ok()]
        assert len(bad) >= 3  # the three payload copies
