"""Tests for pcap export/import of packet traces."""

import io
import struct

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial
from repro.netsim.pcap import (
    LINKTYPE_RAW,
    PCAP_MAGIC,
    read_pcap,
    trace_to_pcap_bytes,
    write_pcap,
)


@pytest.fixture
def trace():
    return run_trial("china", "http", deployed_strategy(1), seed=3).trace


class TestExport:
    def test_global_header(self, trace):
        payload = trace_to_pcap_bytes(trace)
        magic, major, minor, _, _, snaplen, network = struct.unpack_from(
            "<IHHiIII", payload, 0
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert network == LINKTYPE_RAW
        assert snaplen == 65535

    def test_round_trip_packets(self, trace):
        payload = trace_to_pcap_bytes(trace)
        packets = read_pcap(payload)
        sent = [e for e in trace.events if e.kind in ("send", "inject") and e.packet]
        assert len(packets) == len(sent)
        for (_, parsed), event in zip(packets, sent):
            assert parsed.flow == event.packet.flow
            assert parsed.tcp.seq == event.packet.tcp.seq
            assert parsed.flags == event.packet.flags
            assert parsed.load == event.packet.load

    def test_timestamps_monotone(self, trace):
        packets = read_pcap(trace_to_pcap_bytes(trace))
        times = [t for t, _ in packets]
        assert times == sorted(times)
        assert times[0] >= 0

    def test_write_to_path(self, trace, tmp_path):
        path = tmp_path / "trial.pcap"
        count = write_pcap(trace, str(path))
        assert count > 0
        assert read_pcap(str(path))

    def test_write_to_stream(self, trace):
        buffer = io.BytesIO()
        count = write_pcap(trace, buffer)
        assert count == len(read_pcap(buffer.getvalue()))

    def test_kind_filter(self, trace):
        only_injected = read_pcap(trace_to_pcap_bytes(trace, kinds=("inject",)))
        everything = read_pcap(trace_to_pcap_bytes(trace))
        assert len(only_injected) < len(everything)


class TestReaderValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(b"\x00" * 24)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(b"\x00" * 5)

    def test_truncated_record_rejected(self, trace):
        payload = trace_to_pcap_bytes(trace)
        with pytest.raises(ValueError):
            read_pcap(payload[:-3])

    def test_wrong_linktype_rejected(self, trace):
        payload = bytearray(trace_to_pcap_bytes(trace))
        struct.pack_into("<I", payload, 20, 1)  # LINKTYPE_ETHERNET
        with pytest.raises(ValueError):
            read_pcap(bytes(payload))


class TestCorruptedChecksumsSurvive:
    def test_insertion_packets_still_corrupt_after_round_trip(self):
        """Checksum-corrupted insertion packets keep their bad checksums
        through pcap export (what a real capture would show)."""
        from repro.core import compat_strategy

        trace = run_trial(None, "http", compat_strategy(9), seed=1).trace
        packets = read_pcap(trace_to_pcap_bytes(trace))
        bad = [p for _, p in packets if not p.checksums_ok()]
        assert len(bad) >= 3  # the three payload copies
