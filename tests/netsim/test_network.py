"""Tests for the network path: delivery, middleboxes, TTL, injection."""

from typing import List

import pytest

from repro.netsim import (
    DIRECTION_C2S,
    DIRECTION_S2C,
    Middlebox,
    Network,
    Scheduler,
    TransparentTap,
)
from repro.packets import Packet, make_tcp_packet


class SinkNode:
    """A minimal endpoint recording everything it receives."""

    def __init__(self, name, ip):
        self.name = name
        self.ip = ip
        self.received: List[Packet] = []

    def receive(self, packet):
        self.received.append(packet)


def build(middleboxes=()):
    sched = Scheduler()
    client = SinkNode("client", "10.0.0.1")
    server = SinkNode("server", "10.0.0.2")
    net = Network(sched, client, server, middleboxes)
    return sched, client, server, net


def pkt(src="10.0.0.1", dst="10.0.0.2", ttl=64, flags="S"):
    return make_tcp_packet(src, dst, 1111, 80, flags=flags, ttl=ttl)


class TestDelivery:
    def test_client_to_server(self):
        sched, client, server, net = build()
        net.send_from(client, pkt())
        sched.run()
        assert len(server.received) == 1
        assert server.received[0].flags == "S"

    def test_server_to_client(self):
        sched, client, server, net = build()
        net.send_from(server, pkt(src="10.0.0.2", dst="10.0.0.1", flags="SA"))
        sched.run()
        assert len(client.received) == 1

    def test_fifo_ordering_preserved(self):
        sched, client, server, net = build([Middlebox(), Middlebox()])
        for flags in ("S", "SA", "A"):
            net.send_from(client, pkt(flags=flags))
        sched.run()
        assert [p.flags for p in server.received] == ["S", "SA", "A"]

    def test_unknown_endpoint_rejected(self):
        sched, client, server, net = build()
        stranger = SinkNode("x", "9.9.9.9")
        with pytest.raises(ValueError):
            net.send_from(stranger, pkt())


class TestMiddleboxes:
    def test_tap_sees_both_directions(self):
        tap = TransparentTap()
        sched, client, server, net = build([tap])
        net.send_from(client, pkt())
        net.send_from(server, pkt(src="10.0.0.2", dst="10.0.0.1", flags="SA"))
        sched.run()
        assert len(tap.seen) == 2

    def test_in_path_drop(self):
        class Dropper(Middlebox):
            def process(self, packet, direction, ctx):
                return []

        sched, client, server, net = build([Dropper()])
        net.send_from(client, pkt())
        sched.run()
        assert server.received == []
        assert any(e.kind == "drop" for e in net.trace.events)

    def test_modification_in_path(self):
        class Rewriter(Middlebox):
            def process(self, packet, direction, ctx):
                packet.tcp.window = 10
                return [packet]

        sched, client, server, net = build([Rewriter()])
        net.send_from(client, pkt())
        sched.run()
        assert server.received[0].tcp.window == 10

    def test_injection_toward_client(self):
        class Injector(Middlebox):
            name = "injector"

            def process(self, packet, direction, ctx):
                if direction == DIRECTION_C2S:
                    rst = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1111, flags="RA")
                    ctx.inject(rst, toward="client")
                return [packet]

        sched, client, server, net = build([Injector()])
        net.send_from(client, pkt())
        sched.run()
        assert len(server.received) == 1  # original forwarded
        assert len(client.received) == 1  # injected RST
        assert client.received[0].flags == "RA"


class TestTTL:
    def test_ttl_reaches_middlebox_not_server(self):
        tap = TransparentTap()
        sched, client, server, net = build([Middlebox(), Middlebox(), tap, Middlebox()])
        # tap is at index 2 (hop 3); server at hop 5.
        net.send_from(client, pkt(ttl=3))
        sched.run()
        assert len(tap.seen) == 1
        assert server.received == []

    def test_ttl_expires_before_middlebox(self):
        tap = TransparentTap()
        sched, client, server, net = build([Middlebox(), Middlebox(), tap])
        net.send_from(client, pkt(ttl=2))
        sched.run()
        assert tap.seen == []

    def test_full_ttl_reaches_server(self):
        sched, client, server, net = build([Middlebox() for _ in range(9)])
        net.send_from(client, pkt(ttl=64))
        sched.run()
        assert len(server.received) == 1

    def test_exact_ttl_boundary_for_server(self):
        sched, client, server, net = build([Middlebox()])
        net.send_from(client, pkt(ttl=2))
        sched.run()
        assert len(server.received) == 1
        server.received.clear()
        net.send_from(client, pkt(ttl=1))
        sched.run()
        assert server.received == []


class TestTrace:
    def test_send_and_recv_events_recorded(self):
        sched, client, server, net = build()
        net.send_from(client, pkt())
        sched.run()
        kinds = [e.kind for e in net.trace.events]
        assert kinds == ["send", "recv"]
        assert net.trace.events[0].location == "client"
        assert net.trace.events[1].location == "server"

    def test_trace_packets_are_copies(self):
        sched, client, server, net = build()
        original = pkt()
        net.send_from(client, original)
        original.tcp.seq = 424242
        sched.run()
        assert net.trace.events[0].packet.tcp.seq != 424242
