"""Tests for trace recording and filtering."""

from repro.netsim import Trace
from repro.packets import make_tcp_packet


def test_record_and_filter():
    trace = Trace()
    pkt = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    trace.record(0.0, "send", "client", pkt)
    trace.record(0.1, "recv", "server", pkt)
    trace.record(0.2, "censor", "gfw", pkt, "keyword")
    assert len(trace) == 3
    assert len(trace.filter(kind="send")) == 1
    assert len(trace.filter(location="server")) == 1
    assert len(trace.filter(kind="censor", location="gfw")) == 1
    assert trace.filter(kind="drop") == []


def test_summary_and_dump():
    trace = Trace()
    trace.record(1.5, "drop", "hop3", None, "ttl expired")
    text = trace.dump()
    assert "drop" in text and "ttl expired" in text and "1.5" in text


def test_recorded_packet_is_a_copy():
    trace = Trace()
    pkt = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, seq=5)
    trace.record(0.0, "send", "client", pkt)
    pkt.tcp.seq = 99
    assert trace.events[0].packet.tcp.seq == 5
