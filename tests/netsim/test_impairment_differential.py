"""Differential harness: the impairment layer must be invisible when off.

Two guarantees, checked over every (country, protocol) pair the paper
evaluates:

1. **Null-policy bit-identity** — a trial run with ``Impairment.none()``
   (or its dict form ``{}``) produces a trace byte-identical to a trial
   that never heard of impairment. The unimpaired simulator is the
   pre-impairment simulator, not merely statistically similar to it.
2. **Seeded replay** — an impaired trial is a pure function of
   ``(seed, policy, net_seed)``: running it twice yields byte-identical
   traces, censorship decisions included.
"""

import pytest

from repro.core import deployed_strategy
from repro.eval.runner import COUNTRY_PROTOCOLS, run_trial
from repro.netsim import Impairment

ALL_PAIRS = [
    (country, protocol)
    for country, protocols in sorted(COUNTRY_PROTOCOLS.items())
    for protocol in protocols
]

#: A working strategy per country, so the differential also covers the
#: strategy engines' interaction with the network layer.
STRATEGY_BY_COUNTRY = {"china": 1, "india": 8, "iran": 8, "kazakhstan": 11}


def _digest(country, protocol, seed, **kwargs):
    result = run_trial(country, protocol, None, seed=seed, **kwargs)
    return result.trace.digest(), result.outcome


@pytest.mark.parametrize("country,protocol", ALL_PAIRS)
class TestNullPolicyBitIdentity:
    def test_none_policy_matches_no_policy(self, country, protocol):
        base_digest, base_outcome = _digest(country, protocol, seed=5)
        null_digest, null_outcome = _digest(
            country, protocol, seed=5, impairment=Impairment.none()
        )
        assert null_digest == base_digest
        assert null_outcome == base_outcome

    def test_empty_dict_matches_no_policy(self, country, protocol):
        base_digest, _ = _digest(country, protocol, seed=6)
        dict_digest, _ = _digest(country, protocol, seed=6, impairment={})
        assert dict_digest == base_digest

    def test_zero_knobs_match_no_policy(self, country, protocol):
        """Explicit zeros (what a CLI invocation without flags builds)
        are the null policy too."""
        base_digest, _ = _digest(country, protocol, seed=7)
        zeros_digest, _ = _digest(
            country,
            protocol,
            seed=7,
            impairment=Impairment(loss=0.0, dup=0.0, reorder=0.0),
        )
        assert zeros_digest == base_digest


@pytest.mark.parametrize("country,protocol", ALL_PAIRS)
class TestImpairedReplay:
    def test_same_net_seed_reproduces_trace(self, country, protocol):
        policy = {"loss": 0.08, "dup": 0.05, "reorder": 0.05}
        first = run_trial(
            country, protocol, None, seed=5, impairment=policy, net_seed=1
        )
        second = run_trial(
            country, protocol, None, seed=5, impairment=policy, net_seed=1
        )
        assert first.trace.digest() == second.trace.digest()
        assert first.outcome == second.outcome
        assert first.censored == second.censored

    def test_default_net_stream_is_deterministic_too(self, country, protocol):
        """Without an explicit net_seed the stream splits from the trial
        seed — still a pure function of the spec."""
        policy = {"loss": 0.08}
        first = run_trial(country, protocol, None, seed=9, impairment=policy)
        second = run_trial(country, protocol, None, seed=9, impairment=policy)
        assert first.trace.digest() == second.trace.digest()


@pytest.mark.parametrize("country", sorted(STRATEGY_BY_COUNTRY))
class TestStrategiesUnderNullPolicy:
    def test_strategy_trial_bit_identical(self, country):
        number = STRATEGY_BY_COUNTRY[country]
        protocol = "https" if country == "iran" else "http"
        strategy = deployed_strategy(number)
        base = run_trial(country, protocol, strategy, seed=3)
        null = run_trial(
            country, protocol, strategy, seed=3, impairment=Impairment.none()
        )
        assert null.trace.digest() == base.trace.digest()
        assert null.succeeded == base.succeeded
