"""End-to-end integration scenarios across the whole stack."""

import random

import pytest

import repro
from repro import Strategy, deployed_strategy, run_trial, success_rate


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet(self):
        """The README quickstart must actually work."""
        result = run_trial("china", "http", deployed_strategy(1), seed=1)
        assert result.outcome in ("success", "reset", "timeout")

    def test_strategy_accessors(self):
        assert not repro.strategy(1).is_noop()
        assert not repro.compat_strategy(9).is_noop()
        assert repro.NO_EVASION.is_noop()
        assert len(repro.SERVER_STRATEGIES) == 15
        assert repro.PAPER_STRATEGY_NUMBERS == tuple(range(1, 12))


class TestEndToEndEvasion:
    """One representative working strategy per (country, protocol)."""

    @pytest.mark.parametrize(
        "country,protocol,number,min_rate",
        [
            ("china", "http", 1, 0.3),
            ("china", "http", 2, 0.3),
            ("china", "dns", 1, 0.6),
            ("china", "ftp", 5, 0.85),
            ("china", "https", 2, 0.3),
            ("china", "smtp", 8, 0.95),
            ("india", "http", 8, 0.95),
            ("iran", "http", 8, 0.95),
            ("iran", "https", 8, 0.95),
            ("kazakhstan", "http", 9, 0.95),
            ("kazakhstan", "http", 10, 0.95),
            ("kazakhstan", "http", 11, 0.95),
        ],
    )
    def test_strategy_evades(self, country, protocol, number, min_rate):
        rate = success_rate(
            country, protocol, deployed_strategy(number), trials=30, seed=77
        )
        assert rate >= min_rate

    @pytest.mark.parametrize(
        "country,protocol",
        [
            ("china", "http"),
            ("china", "dns"),
            ("india", "http"),
            ("iran", "https"),
            ("kazakhstan", "http"),
        ],
    )
    def test_no_evasion_mostly_censored(self, country, protocol):
        rate = success_rate(country, protocol, None, trials=20, seed=78)
        assert rate <= 0.2


class TestStrategyStringPipeline:
    def test_user_supplied_strategy_string(self):
        """A downstream user can paste a strategy string and run it."""
        text = "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/"
        result = run_trial("kazakhstan", "http", Strategy.parse(text), seed=5)
        assert result.succeeded

    def test_broken_strategy_breaks_connection_not_library(self):
        """Dropping every SYN+ACK: the trial fails gracefully."""
        text = "[TCP:flags:SA]-drop-| \\/"
        result = run_trial("china", "http", Strategy.parse(text), seed=5)
        assert result.outcome == "timeout"
        assert not result.censored

    def test_evolved_strategy_round_trips_into_runner(self):
        from repro.core.evolution import GenePool, server_side_pool

        pool = server_side_pool()
        rng = random.Random(12)
        strategy = Strategy([(pool.random_trigger(rng), pool.random_action(rng))])
        result = run_trial("china", "http", Strategy.parse(str(strategy)), seed=5)
        assert result.outcome in ("success", "reset", "timeout", "garbled", "blockpage")


class TestCrossCountryIsolation:
    def test_kz_strategies_do_not_help_in_china(self):
        """Strategies 9–11 target Kazakhstan's handshake model; China's
        HTTP box is indifferent to them."""
        rate = success_rate("china", "http", deployed_strategy(11), trials=30, seed=80)
        assert rate <= 0.2

    def test_simopen_strategies_do_not_help_in_kazakhstan(self):
        rate = success_rate(
            "kazakhstan", "http", deployed_strategy(4), trials=10, seed=81
        )
        assert rate == 0.0
