"""Unit tests for the fleet world: recycling, routing, traces, stats."""

from __future__ import annotations

import json

import pytest

from repro import fastpath
from repro.fleet import (
    DEFAULT_MIX,
    FleetMixEntry,
    FleetSpec,
    FleetStats,
    FleetWorld,
    flow_client_ip,
    percentile,
    run_fleet,
)
from repro.netsim import RingTrace
from repro.obs.metrics import collecting


def small_world(**overrides):
    defaults = dict(clients=6, seed=2, spacing=0.5)
    defaults.update(overrides)
    return FleetWorld(FleetSpec(**defaults))


class TestRecycling:
    def test_all_flows_recycled_after_run(self):
        world = small_world()
        world.run()
        assert world.recycled == 6
        assert world.active_flows == 0
        assert len(world.router) == 0
        assert world.engine.decisions == {}
        assert world.server_host.endpoints() == []

    def test_overlapping_flows_coexist(self):
        """With arrivals much closer than max_time, flows pile up live."""
        peak = 0

        def watch(world, record):
            nonlocal peak
            peak = max(peak, world.active_flows)

        result = run_fleet(
            FleetSpec(clients=8, seed=2, spacing=0.5), on_flow_done=watch
        )
        assert len(result.records) == 8
        assert peak > 1

    def test_arena_lease_reuse_across_flows(self):
        if not fastpath.enabled():
            pytest.skip("leases only activate on the fast path")
        # Sequential flows (spacing > max_time): each flow quiesces and
        # reclaims its lease before the next arrives, so later flows draw
        # recycled trios from the shared free list instead of allocating.
        world = small_world(trace="none", spacing=4.0, max_time=3.0)
        assert world._use_leases
        world.run()
        assert world.arena.reused > 0
        assert world.arena.created > 0
        assert len(world.arena._live) == 0

    def test_overlapping_flows_reclaim_to_shared_free_list(self):
        if not fastpath.enabled():
            pytest.skip("leases only activate on the fast path")
        world = small_world(trace="none")
        assert world._use_leases
        world.run()
        # Flows overlap for the whole run here, so trios are reclaimed
        # only as flows quiesce — but all of them land back on the arena.
        assert world.arena.created > 0
        assert len(world.arena) == world.arena.created
        assert len(world.arena._live) == 0

    def test_no_leases_when_tracing(self):
        world = small_world(trace="full")
        assert not world._use_leases
        world.run()
        assert world.arena.created == 0


class TestTraceModes:
    def test_ring_trace_bounded(self):
        world = FleetWorld(
            FleetSpec(clients=3, seed=2, spacing=0.5, trace="ring", ring_events=16),
            keep_traces=True,
        )
        world.run()
        assert world.traces
        for trace in world.traces.values():
            assert isinstance(trace, RingTrace)
            assert len(trace.events) <= 16
            assert trace.dropped > 0  # a full trial has far more events

    def test_full_trace_digest_present(self):
        world = small_world(trace="full")
        records = world.run()
        assert all(r["trace_digest"] for r in records)

    def test_no_trace_means_no_digest(self):
        records = small_world(trace="none").run()
        assert all(r["trace_digest"] is None for r in records)


class TestRecords:
    def test_records_sorted_and_complete(self):
        records = small_world().run()
        assert [r["flow"] for r in records] == list(range(6))
        for record in records:
            assert record["client_ip"] == flow_client_ip(
                None if record["country"] == "none" else record["country"],
                record["flow"],
            )
            assert record["outcome"]

    def test_uncensored_cohort_never_marked_censored(self):
        spec = FleetSpec(clients=5, seed=1, mix=(FleetMixEntry(None, "http"),))
        records = FleetWorld(spec).run()
        assert all(not r["censored"] for r in records)
        assert all(r["strategy"] is None for r in records)

    def test_metrics_emitted_under_collection(self):
        with collecting() as registry:
            run_fleet(FleetSpec(clients=4, seed=2, spacing=0.5))
        names = set(registry.snapshot())
        assert "repro_fleet_flows_total" in names
        assert "repro_fleet_recycled_total" in names
        assert "repro_fleet_flow_latency_seconds" in names


class TestStats:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.90) == 90.0
        assert percentile(values, 0.99) == 99.0

    def test_json_artifact_shape(self):
        result = run_fleet(FleetSpec(clients=6, seed=2, spacing=0.5))
        payload = json.loads(result.stats.to_json())
        assert payload["flows"] == 6
        assert payload["spec"]["clients"] == 6
        assert set(payload["throughput"]) == {
            "virtual_seconds",
            "flows_per_virtual_second",
        }
        assert len(payload["flow_records"]) == 6
        compact = json.loads(result.stats.to_json(include_flows=False))
        assert "flow_records" not in compact

    def test_report_and_status_render(self):
        result = run_fleet(FleetSpec(clients=6, seed=2, spacing=0.5), keep_world=True)
        report = result.stats.format_report()
        assert "flows" in report and "evaded" in report
        status = result.stats.format_status(result.world)
        assert "admitted 6/6" in status

    def test_stats_empty_records(self):
        stats = FleetStats(FleetSpec(clients=1), [])
        assert stats.flows == 0
        assert stats.latency_p50 is None
        assert stats.flows_per_virtual_second is None


class TestDefaultMix:
    def test_default_mix_covers_all_censored_pairs(self):
        pairs = {(e.country, e.protocol) for e in DEFAULT_MIX if e.country}
        assert pairs == {
            ("china", "http"),
            ("china", "https"),
            ("china", "dns"),
            ("china", "ftp"),
            ("china", "smtp"),
            ("india", "http"),
            ("iran", "http"),
            ("iran", "https"),
            ("kazakhstan", "http"),
            ("southkorea", "https"),
            ("russia", "https"),
        }

    def test_default_mix_includes_uncensored(self):
        assert any(e.country is None for e in DEFAULT_MIX)
