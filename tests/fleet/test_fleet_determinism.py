"""Determinism properties of fleet runs.

Same seed ⇒ byte-identical :class:`FleetStats` JSON artifact, no matter
how the run is executed: repeated, sharded across worker counts, or with
``REPRO_FASTPATH`` flipped. Plus hypothesis properties for flow-table
isolation: any subset of a run's flow plans, simulated alone, reproduces
exactly the per-flow records those flows had in the full world.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.fleet import FleetMixEntry, FleetSpec, FleetWorld, run_fleet

SMALL_SPEC = FleetSpec(clients=24, seed=5, spacing=0.3)


@pytest.fixture(scope="module")
def small_run():
    return run_fleet(SMALL_SPEC)


class TestArtifactDeterminism:
    def test_repeat_is_byte_identical(self, small_run):
        again = run_fleet(SMALL_SPEC)
        assert again.stats.to_json() == small_run.stats.to_json()

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_is_byte_identical(self, small_run, workers):
        sharded = run_fleet(SMALL_SPEC, workers=workers)
        assert sharded.stats.to_json() == small_run.stats.to_json()

    def test_fastpath_toggle_is_byte_identical(self, small_run):
        with fastpath.disabled():
            slow = run_fleet(SMALL_SPEC)
        assert slow.stats.to_json() == small_run.stats.to_json()

    def test_poisson_arrivals_deterministic(self):
        spec = FleetSpec(clients=12, seed=3, rate=5.0)
        first = run_fleet(spec)
        second = run_fleet(spec)
        assert first.stats.to_json() == second.stats.to_json()
        arrivals = [r["arrival"] for r in first.records]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)

    def test_different_seeds_differ(self, small_run):
        other = run_fleet(FleetSpec(clients=24, seed=6, spacing=0.3))
        assert other.stats.to_json() != small_run.stats.to_json()


class TestFlowIsolation:
    """A flow's record is a pure function of its plan."""

    @given(st.sets(st.integers(0, 23), min_size=1, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_subset_world_reproduces_records(self, indices):
        full = run_fleet(SMALL_SPEC)
        plans = SMALL_SPEC.flow_plans()
        subset = [plans[i] for i in sorted(indices)]
        world = FleetWorld(SMALL_SPEC, plans=subset)
        records = world.run()
        expected = [full.records[i] for i in sorted(indices)]
        assert records == expected

    @given(st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=8, deadline=None)
    def test_spacing_only_shifts_arrivals(self, spacing):
        """Arrival interleaving never changes a flow's verdict."""
        spec = FleetSpec(clients=8, seed=5, spacing=spacing)
        baseline = FleetSpec(clients=8, seed=5, spacing=0.3)

        def strip(record):
            clean = dict(record)
            clean.pop("arrival")
            return clean

        got = [strip(r) for r in run_fleet(spec).records]
        want = [strip(r) for r in run_fleet(baseline).records]
        assert got == want


class TestSpecValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            FleetSpec(clients=0)

    def test_rejects_unknown_country(self):
        with pytest.raises(ValueError):
            FleetSpec(mix=(FleetMixEntry("atlantis", "http"),))

    def test_rejects_uncensored_pair(self):
        with pytest.raises(ValueError):
            FleetSpec(mix=(FleetMixEntry("india", "smtp"),))

    def test_rejects_bad_trace_mode(self):
        with pytest.raises(ValueError):
            FleetSpec(trace="pcap")

    def test_client_ips_unique_across_run(self):
        plans = FleetSpec(clients=600, spacing=0.0).flow_plans()
        ips = [plan.client_ip for plan in plans]
        assert len(set(ips)) == len(ips)
