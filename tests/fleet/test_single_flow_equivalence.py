"""Differential harness: a one-flow fleet world == the classic Trial path.

The fleet layer's design contract is that for a world containing exactly
one flow arriving at t=0, every event — timestamps, RNG draws, verdicts,
and the full wire-level trace digest — is bit-identical to running
``Trial(country, protocol, None, seed=...)`` with the same per-client
strategy engine installed on its dedicated server. This suite pins that
for every (country, protocol) pair from Table 1 plus the uncensored
cohort, under both fast-path settings.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.deploy import install_per_client
from repro.eval.runner import COUNTRY_PROTOCOLS, Trial
from repro.fleet import (
    FleetMixEntry,
    FleetSpec,
    FleetWorld,
    derive_flow_rngs,
    fleet_selector,
    flow_client_ip,
)
from repro.runtime import trial_seed

ALL_PAIRS = [
    (country, protocol)
    for country in sorted(COUNTRY_PROTOCOLS)
    for protocol in COUNTRY_PROTOCOLS[country]
] + [(None, "http"), (None, "https")]

FLEET_SEED = 1234


def run_fleet_single(country, protocol, fleet_seed=FLEET_SEED):
    """One-client fleet world with full trace capture; returns its record."""
    spec = FleetSpec(
        clients=1,
        seed=fleet_seed,
        mix=(FleetMixEntry(country, protocol),),
        trace="full",
    )
    world = FleetWorld(spec)
    records = world.run()
    assert len(records) == 1
    return records[0]


def run_trial_baseline(country, protocol, fleet_seed=FLEET_SEED):
    """The classic per-connection path for fleet flow 0 of the same seed."""
    seed = trial_seed(fleet_seed, 0)
    rngs = derive_flow_rngs(seed)
    trial = Trial(
        country,
        protocol,
        None,
        seed=seed,
        client_ip=flow_client_ip(country, 0),
        capture_trace=True,
    )
    install_per_client(trial.server_host, fleet_selector(), protocol, rngs.strategy)
    return trial.run()


@pytest.mark.parametrize(
    "country,protocol", ALL_PAIRS, ids=[f"{c or 'none'}-{p}" for c, p in ALL_PAIRS]
)
def test_single_flow_matches_trial(country, protocol):
    record = run_fleet_single(country, protocol)
    result = run_trial_baseline(country, protocol)

    assert record["outcome"] == result.outcome
    assert record["succeeded"] == result.succeeded
    assert record["censored"] == result.censored
    assert record["trace_digest"] == result.trace.digest()


@pytest.mark.parametrize("country,protocol", [("china", "http"), ("iran", "https")])
def test_single_flow_matches_trial_without_fastpath(country, protocol):
    with fastpath.disabled():
        record = run_fleet_single(country, protocol)
        result = run_trial_baseline(country, protocol)
    assert record["outcome"] == result.outcome
    assert record["trace_digest"] == result.trace.digest()


@pytest.mark.parametrize("country,protocol", [("china", "https"), ("kazakhstan", "http")])
def test_single_flow_digest_fastpath_invariant(country, protocol):
    """The fleet trace digest itself is identical with the fast path off."""
    on = run_fleet_single(country, protocol)
    with fastpath.disabled():
        off = run_fleet_single(country, protocol)
    assert on == off


def test_single_flow_equivalence_across_seeds():
    """Equivalence is not a one-seed fluke: spot-check several seeds."""
    for fleet_seed in (0, 7, 99):
        record = run_fleet_single("china", "http", fleet_seed=fleet_seed)
        result = run_trial_baseline("china", "http", fleet_seed=fleet_seed)
        assert record["trace_digest"] == result.trace.digest()
        assert record["outcome"] == result.outcome
