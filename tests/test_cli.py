"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trial_arguments(self):
        args = build_parser().parse_args(
            ["trial", "china", "http", "--strategy", "1", "--seed", "3"]
        )
        assert args.command == "trial"
        assert args.strategy == "1"

    def test_rejects_unknown_country(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trial", "narnia", "http"])


class TestCommands:
    def test_strategies_listing(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "Sim. Open, Injected RST" in out
        assert "[TCP:flags:SA]" in out
        assert out.count("\n") >= 22  # 11 strategies, two lines each

    def test_trial_success_exit_code(self, capsys):
        code = main(["trial", "kazakhstan", "http", "--strategy", "11", "--seed", "1"])
        assert code == 0
        assert "evaded:   True" in capsys.readouterr().out

    def test_trial_censored_exit_code(self, capsys):
        code = main(["trial", "kazakhstan", "http", "--seed", "1"])
        assert code == 1
        assert "censored: True" in capsys.readouterr().out

    def test_trial_with_waterfall(self, capsys):
        main(["trial", "china", "http", "--strategy", "1", "--seed", "3", "--waterfall"])
        out = capsys.readouterr().out
        assert "--->" in out

    def test_rates_command(self, capsys):
        assert main(["rates", "kazakhstan", "http", "--strategy", "9", "--trials", "5"]) == 0
        assert "100.0%" in capsys.readouterr().out

    def test_strategy_string_accepted(self, capsys):
        code = main([
            "trial", "kazakhstan", "http", "--seed", "1",
            "--strategy", "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/",
        ])
        assert code == 0

    def test_invalid_strategy_number(self):
        with pytest.raises(SystemExit):
            main(["trial", "china", "http", "--strategy", "99"])

    def test_waterfall_command(self, capsys):
        assert main(["waterfall", "china", "ftp", "--strategy", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "outcome:" in out

    def test_matrix_command(self, capsys):
        assert main(["matrix"]) == 0
        assert "china" in capsys.readouterr().out

    def test_none_country(self, capsys):
        assert main(["trial", "none", "http", "--seed", "1"]) == 0

    def test_evolve_command(self, capsys):
        code = main([
            "evolve", "kazakhstan", "http",
            "--population", "8", "--generations", "3", "--seed", "1", "--trials", "1",
        ])
        assert code == 0
        assert "best strategy" in capsys.readouterr().out

    def test_client_os_option(self, capsys):
        code = main([
            "trial", "none", "http", "--seed", "1",
            "--client-os", "windows-10-enterprise-17134",
        ])
        assert code == 0


class TestPcapOption:
    def test_trial_writes_pcap(self, tmp_path, capsys):
        path = tmp_path / "trial.pcap"
        code = main([
            "trial", "china", "http", "--strategy", "1", "--seed", "3",
            "--pcap", str(path),
        ])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        from repro.netsim import read_pcap

        packets = read_pcap(str(path))
        assert len(packets) > 5

    def test_evolve_minimize_flag(self, capsys):
        code = main([
            "evolve", "kazakhstan", "http",
            "--population", "16", "--generations", "10", "--seed", "3",
            "--trials", "2", "--minimize",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimized:" in out


class TestRuntimeFlags:
    def test_rates_with_workers_matches_serial(self, capsys):
        assert main(["rates", "china", "http", "--strategy", "1",
                     "--trials", "10", "--seed", "4"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["rates", "china", "http", "--strategy", "1",
                     "--trials", "10", "--seed", "4", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out.splitlines()[0] == parallel_out.splitlines()[0]

    def test_rates_stats_line(self, capsys):
        assert main(["rates", "kazakhstan", "http", "--strategy", "11",
                     "--trials", "4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "stats:" in out
        assert "executed=4" in out

    def test_rates_cache_dir_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["rates", "kazakhstan", "http", "--strategy", "11",
                "--trials", "4", "--cache-dir", cache, "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "executed=4" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second
        assert "cache_hits=4" in second
        assert first.splitlines()[0] == second.splitlines()[0]

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["rates", "kazakhstan", "http", "--strategy", "11",
                "--trials", "2", "--cache-dir", cache, "--no-cache", "--stats"]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=2" in out
        assert not (tmp_path / "cache").exists()

    def test_matrix_accepts_runtime_flags(self, capsys):
        assert main(["matrix", "--workers", "2", "--no-cache"]) == 0
        assert "china" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_metrics_json_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(["rates", "kazakhstan", "http", "--strategy", "11",
                     "--trials", "4", "--metrics-json", str(path)]) == 0
        assert "wrote metrics" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        samples = snapshot["repro_trial_outcomes_total"]["samples"]
        assert sum(samples.values()) == 4

    def test_telemetry_tree_written(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "tele"
        assert main(["rates", "kazakhstan", "http", "--strategy", "11",
                     "--trials", "4", "--stats", "--telemetry", str(out_dir),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "telemetry artifacts" in out
        assert "cache:" in out  # --stats now reports cache health too
        for name in ("run.json", "metrics.json", "metrics.deterministic.json",
                     "metrics.prom", "runlog.jsonl"):
            assert (out_dir / name).exists(), name
        run = json.loads((out_dir / "run.json").read_text())
        assert run["command"] == "rates"
        assert run["run_stats"]["requested"] == 4
        assert len((out_dir / "runlog.jsonl").read_text().splitlines()) == 4

    def test_telemetry_deterministic_across_worker_counts(self, tmp_path, capsys):
        def run(workers, out_dir):
            assert main(["rates", "china", "http", "--strategy", "1",
                         "--trials", "6", "--seed", "4", "--workers", workers,
                         "--no-cache", "--telemetry", str(out_dir)]) == 0
            capsys.readouterr()
            return (out_dir / "metrics.deterministic.json").read_text()

        assert run("1", tmp_path / "serial") == run("2", tmp_path / "parallel")

    def test_off_by_default(self, tmp_path, capsys):
        assert main(["rates", "kazakhstan", "http", "--strategy", "11",
                     "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert "metrics" not in out


class TestProfileCommand:
    def test_profile_breakdown(self, capsys):
        assert main(["profile", "--country", "china", "--protocol", "http",
                     "--trials", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "simulate" in out
        assert "trial total" in out
        assert "phase coverage:" in out
        coverage = float(out.split("phase coverage:")[1].split("%")[0])
        assert coverage >= 90.0

    def test_profile_metrics_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "profile.json"
        assert main(["profile", "--trials", "2", "--metrics-json", str(path)]) == 0
        capsys.readouterr()
        snapshot = json.loads(path.read_text())
        assert "repro_span_seconds_total" in snapshot

    def test_profile_rejects_bad_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--protocol", "gopher"])


class TestImpairmentFlags:
    def test_rates_accepts_impairment_flags(self, capsys):
        assert main([
            "rates", "china", "http", "--strategy", "1", "--trials", "4",
            "--loss", "0.05", "--net-seed", "1",
        ]) == 0
        assert "%" in capsys.readouterr().out

    def test_loss_flag_range_checked(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rates", "china", "http", "--loss", "1.5"])

    def test_robustness_json_deterministic(self, capsys):
        argv = [
            "robustness", "--trials", "2", "--loss-rates", "0.05",
            "--net-seed", "1", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        import json

        payload = json.loads(first)
        assert sorted(payload) == [
            "china", "india", "iran", "kazakhstan", "russia", "southkorea",
        ]

    def test_robustness_table_output(self, capsys):
        assert main([
            "robustness", "--trials", "2", "--countries", "india",
            "--loss-rates", "0", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "india" in out

    def test_matrix_accepts_impairment_flags(self, capsys):
        assert main(["matrix", "--loss", "0.02", "--net-seed", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_report_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code = main([
            "fleet", "--clients", "8", "--seed", "4", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "flows" in text and "evaded" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["flows"] == 8
        assert len(payload["flow_records"]) == 8

    def test_fleet_artifact_identical_across_worker_counts(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main(["fleet", "--clients", "8", "--seed", "4", "--json", str(serial)]) == 0
        assert main([
            "fleet", "--clients", "8", "--seed", "4", "--workers", "2",
            "--json", str(sharded),
        ]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == sharded.read_bytes()

    def test_fleet_status_lines(self, capsys):
        assert main(["fleet", "--clients", "4", "--seed", "2", "--status"]) == 0
        out = capsys.readouterr().out
        assert "admitted 4/4" in out

    def test_fleet_country_filter(self, capsys):
        assert main(["fleet", "--clients", "5", "--seed", "1", "--countries", "iran"]) == 0
        out = capsys.readouterr().out
        assert "iran/" in out
        assert "china/" not in out

    def test_fleet_empty_filter_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--clients", "5", "--countries"])  # empty list

    def test_fleet_metrics_json(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main([
            "fleet", "--clients", "4", "--seed", "2", "--metrics-json", str(metrics),
        ]) == 0
        capsys.readouterr()
        import json

        payload = json.loads(metrics.read_text())
        assert any("repro_fleet" in name for name in payload)


class TestEvolveFlags:
    ARGS = [
        "evolve", "kazakhstan", "http",
        "--population", "10", "--generations", "3", "--seed", "2", "--trials", "1",
    ]

    def test_json_deterministic_across_worker_counts(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--json", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        payload = json.loads(serial)
        assert payload["country"] == "kazakhstan"
        assert payload["config"]["population"] == 10
        assert len(payload["history"]) == payload["generations_run"]
        assert payload["hall_of_fame"]
        assert payload["best_fitness"] == payload["hall_of_fame"][0][1]

    def test_stats_reports_ga_and_executor_lines(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "stats: ga: submitted=" in out
        assert "evals_avoided=" in out
        assert "stats: trials=" in out  # executor line rides along
        assert "executed=" in out

    def test_cache_dir_makes_second_run_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = self.ARGS + ["--cache-dir", cache, "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache_hits=0" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second
        assert first.split("stats:")[0] == second.split("stats:")[0]

    def test_telemetry_includes_ga_metrics(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "tele"
        assert main(self.ARGS + ["--telemetry", str(out_dir)]) == 0
        capsys.readouterr()
        snapshot = json.loads((out_dir / "metrics.json").read_text())
        assert "repro_ga_batches_total" in snapshot
        assert "repro_ga_dedup_total" in snapshot
        deterministic = json.loads(
            (out_dir / "metrics.deterministic.json").read_text()
        )
        assert "repro_ga_dedup_total" in deterministic

    def test_help_shows_strategy_range(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--help"])
        out = capsys.readouterr().out
        from repro.core import SERVER_STRATEGIES

        expected = f"{min(SERVER_STRATEGIES)}-{max(SERVER_STRATEGIES)}"
        assert expected in out


class TestCoevolveCommand:
    ARGS = [
        "coevolve", "china",
        "--epochs", "2", "--strategy-population", "8",
        "--censor-population", "4", "--trials", "1",
        "--frontier-trials", "4", "--seed", "1",
    ]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "china/http: 2 epochs of censor adaptation" in out
        assert "status" in out
        assert "strongest adapted censor" in out

    def test_json_deterministic_across_worker_counts(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--json", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        payload = json.loads(serial)
        assert payload["country"] == "china"
        assert payload["config"]["epochs"] == 2
        assert len(payload["frontier"]) == 8

    def test_default_country_and_protocol(self, capsys):
        assert main([
            "coevolve", "--epochs", "1", "--strategy-population", "6",
            "--censor-population", "3", "--trials", "1",
            "--frontier-trials", "2",
        ]) == 0
        assert "china/http" in capsys.readouterr().out

    def test_stats_flag(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "stats: coevolve: pairs=" in out
        assert "batches=" in out

    def test_telemetry_includes_coevolve_metrics(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "tele"
        assert main(self.ARGS + ["--telemetry", str(out_dir)]) == 0
        capsys.readouterr()
        snapshot = json.loads((out_dir / "metrics.json").read_text())
        assert "repro_coevolve_epochs_total" in snapshot
        assert "repro_coevolve_pairs_total" in snapshot
        assert "repro_coevolve_batches_total" in snapshot


class TestDeterministicJSONGuard:
    def test_nan_payload_rejected(self):
        from repro.cli import _dump_deterministic_json

        with pytest.raises(SystemExit, match="non-standard JSON"):
            _dump_deterministic_json({"fitness": float("nan")}, "evolve --json")

    def test_infinity_payload_rejected(self):
        from repro.cli import _dump_deterministic_json

        with pytest.raises(SystemExit, match="non-standard JSON"):
            _dump_deterministic_json({"fitness": float("inf")}, "coevolve --json")

    def test_clean_payload_sorted_and_indented(self):
        from repro.cli import _dump_deterministic_json

        out = _dump_deterministic_json({"b": 1, "a": 2}, "test")
        assert out.index('"a"') < out.index('"b"')
