"""Span timing: gating, wall/virtual clocks, and the phase hierarchy."""

from repro.obs import metrics, spans


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestGating:
    def test_disabled_by_default(self):
        assert not spans.enabled()

    def test_disabled_span_records_nothing(self):
        with metrics.collecting() as reg:
            with spans.span("test/phase"):
                pass
        assert reg.snapshot() == {}

    def test_profiling_scope_restores_prior_state(self):
        assert not spans.enabled()
        with spans.profiling():
            assert spans.enabled()
            with spans.profiling():
                assert spans.enabled()
            assert spans.enabled()
        assert not spans.enabled()

    def test_enable_toggle(self):
        spans.enable(True)
        try:
            assert spans.enabled()
        finally:
            spans.enable(False)
        assert not spans.enabled()


class TestRecording:
    def test_span_records_wall_and_calls(self):
        with metrics.collecting() as reg, spans.profiling():
            with spans.span("test/phase"):
                pass
            with spans.span("test/phase"):
                pass
        assert reg.value("repro_span_calls_total", span="test/phase") == 2
        assert reg.value("repro_span_seconds_total", span="test/phase") >= 0.0

    def test_span_records_virtual_time(self):
        clock = FakeClock()
        with metrics.collecting() as reg, spans.profiling():
            with spans.span("test/sim", clock=clock):
                clock.now = 12.5
        assert reg.value("repro_span_vtime_seconds_total", span="test/sim") == 12.5

    def test_span_records_on_exception(self):
        with metrics.collecting() as reg, spans.profiling():
            try:
                with spans.span("test/raises"):
                    raise ValueError("boom")
            except ValueError:
                pass
        assert reg.value("repro_span_calls_total", span="test/raises") == 1

    def test_add_accumulates_inline_measurements(self):
        with metrics.collecting() as reg, spans.profiling():
            spans.add("test/inline", 0.25, vtime=1.0)
            spans.add("test/inline", 0.25, vtime=2.0, calls=3)
        assert reg.value("repro_span_seconds_total", span="test/inline") == 0.5
        assert reg.value("repro_span_vtime_seconds_total", span="test/inline") == 3.0
        assert reg.value("repro_span_calls_total", span="test/inline") == 4

    def test_nested_spans_are_inclusive(self):
        with metrics.collecting() as reg, spans.profiling():
            with spans.span("test/parent"):
                with spans.span("test/child"):
                    pass
        parent = reg.value("repro_span_seconds_total", span="test/parent")
        child = reg.value("repro_span_seconds_total", span="test/child")
        assert parent >= child >= 0.0
