"""Metric registry semantics: labels, kinds, and the merge algebra.

The load-bearing property is that snapshot merging is associative and
commutative — the executor's run-level view must be identical whatever
the worker count or completion order. The hypothesis tests state that
directly: any partition of an event stream into "workers", merged in
any order, equals the serial registry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSchemaError,
    MetricsRegistry,
    active_registry,
    collecting,
    is_collecting,
    merge_snapshots,
    parse_label_key,
)

# Families for these tests (schemas are process-global; re-declaring
# identically is idempotent, so module-level declaration is safe).
EVENTS = Counter("test_events_total", "events", ("kind",))
PLAIN = Counter("test_plain_total", "unlabeled")
PEAK = Gauge("test_peak", "peak value", agg="max")
LOW = Gauge("test_low", "low watermark", agg="min")
TOTAL_G = Gauge("test_total_gauge", "summed gauge", agg="sum")
SIZES = Histogram("test_sizes", "sizes", buckets=(1.0, 10.0, 100.0))


class TestRecording:
    def test_counter_labels_and_amounts(self):
        with collecting() as reg:
            EVENTS.inc(kind="a")
            EVENTS.inc(3, kind="a")
            EVENTS.inc(kind="b")
        assert reg.value("test_events_total", kind="a") == 4
        assert reg.value("test_events_total", kind="b") == 1

    def test_unlabeled_counter(self):
        with collecting() as reg:
            PLAIN.inc()
            PLAIN.inc(2)
        assert reg.value("test_plain_total") == 3

    def test_missing_label_rejected(self):
        with collecting():
            with pytest.raises(MetricSchemaError):
                EVENTS.inc()

    def test_unexpected_label_rejected(self):
        with collecting():
            with pytest.raises(MetricSchemaError):
                PLAIN.inc(kind="nope")

    def test_label_values_sanitized(self):
        with collecting() as reg:
            EVENTS.inc(kind="a,b=c\nd")
        snapshot = reg.snapshot()
        (key,) = snapshot["test_events_total"]["samples"]
        assert parse_label_key(key) == [("kind", "a_b_c_d")]

    def test_bound_counter_matches_unbound(self):
        bound = EVENTS.labels(kind="hot")
        with collecting() as reg:
            bound.inc()
            bound.inc(4)
            EVENTS.inc(2, kind="hot")
        assert reg.value("test_events_total", kind="hot") == 7

    def test_gauge_aggregations(self):
        with collecting() as reg:
            for value in (3, 9, 1):
                PEAK.set(value)
                LOW.set(value)
                TOTAL_G.set(value)
        assert reg.value("test_peak") == 9
        assert reg.value("test_low") == 1
        assert reg.value("test_total_gauge") == 13

    def test_histogram_buckets(self):
        with collecting() as reg:
            for value in (0.5, 5.0, 50.0, 500.0):
                SIZES.observe(value)
        cell = reg.value("test_sizes")
        assert cell["buckets"] == [1, 1, 1, 1]  # one overflow past 100.0
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(555.5)

    def test_schema_conflict_rejected(self):
        with pytest.raises(MetricSchemaError):
            Counter("test_events_total", "events", ("other_label",))
        with pytest.raises(MetricSchemaError):
            Gauge("test_peak", "peak value", agg="sum")

    def test_bad_gauge_agg_rejected(self):
        with pytest.raises(MetricSchemaError):
            Gauge("test_bad_agg", "x", agg="mean")


class TestGating:
    """Recording is armed only inside a collecting() scope."""

    def test_dropped_outside_scope(self):
        assert not is_collecting()
        before = active_registry().snapshot()
        EVENTS.inc(kind="outside")
        EVENTS.labels(kind="outside").inc()
        PEAK.set(99)
        SIZES.observe(1.0)
        assert active_registry().snapshot() == before

    def test_nested_scopes_shadow(self):
        with collecting() as outer:
            EVENTS.inc(kind="outer")
            with collecting() as inner:
                EVENTS.inc(kind="inner")
            EVENTS.inc(kind="outer")
        assert outer.value("test_events_total", kind="outer") == 2
        assert outer.value("test_events_total", kind="inner") is None
        assert inner.value("test_events_total", kind="inner") == 1

    def test_scope_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert not is_collecting()


class TestSnapshots:
    def test_snapshot_is_self_describing(self):
        with collecting() as reg:
            EVENTS.inc(kind="a")
            SIZES.observe(2.0)
        snapshot = reg.snapshot()
        assert snapshot["test_events_total"]["kind"] == "counter"
        assert snapshot["test_events_total"]["labelnames"] == ["kind"]
        assert snapshot["test_sizes"]["buckets"] == [1.0, 10.0, 100.0]

    def test_snapshot_is_a_copy(self):
        with collecting() as reg:
            SIZES.observe(2.0)
            snapshot = reg.snapshot()
            SIZES.observe(2.0)
        assert snapshot["test_sizes"]["samples"][""]["count"] == 1
        assert reg.value("test_sizes")["count"] == 2

    def test_snapshot_survives_pickle_and_json(self):
        import json
        import pickle

        with collecting() as reg:
            EVENTS.inc(kind="a")
            SIZES.observe(2.0)
        snapshot = reg.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adopts_unknown_family_schema(self):
        snapshot = {
            "test_adopted_total": {
                "kind": "counter",
                "help": "from another process",
                "labelnames": ["x"],
                "deterministic": True,
                "samples": {"x=1": 5},
            }
        }
        merged = merge_snapshots(snapshot, snapshot)
        assert merged["test_adopted_total"]["samples"]["x=1"] == 10


# ---------------------------------------------------------------------------
# The merge algebra, stated as properties.

#: One simulated event: (metric, label/value, amount-or-observation).
_event = st.one_of(
    st.tuples(
        st.just("counter"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=5),
    ),
    st.tuples(
        st.just("gauge-max"), st.just(""), st.integers(min_value=-10, max_value=10)
    ),
    st.tuples(
        st.just("gauge-min"), st.just(""), st.integers(min_value=-10, max_value=10)
    ),
    st.tuples(
        st.just("hist"),
        st.just(""),
        # Integral values keep float sums exact, so the algebra holds as
        # literal equality rather than approximately.
        st.integers(min_value=0, max_value=1000).map(float),
    ),
)


def _replay(events):
    """Run an event stream into a fresh registry; return its snapshot."""
    with collecting() as reg:
        for metric, label, value in events:
            if metric == "counter":
                EVENTS.inc(value, kind=label)
            elif metric == "gauge-max":
                PEAK.set(value)
            elif metric == "gauge-min":
                LOW.set(value)
            else:
                SIZES.observe(value)
    return reg.snapshot()


@st.composite
def _events_and_split(draw):
    events = draw(st.lists(_event, max_size=30))
    # A partition of the stream into contiguous "worker" shards.
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=len(events)), max_size=4)
    )
    bounds = sorted(set(cuts) | {0, len(events)})
    shards = [events[a:b] for a, b in zip(bounds, bounds[1:])]
    return events, shards


class TestMergeAlgebra:
    @given(_events_and_split())
    @settings(max_examples=60, deadline=None)
    def test_any_worker_split_equals_serial(self, case):
        """Sharding events across workers never changes merged totals."""
        events, shards = case
        serial = _replay(events)
        merged = merge_snapshots(*[_replay(shard) for shard in shards])
        assert merged == serial

    @given(_events_and_split())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, case):
        _, shards = case
        snaps = [_replay(shard) for shard in shards]
        assert merge_snapshots(*snaps) == merge_snapshots(*reversed(snaps))

    @given(st.lists(st.lists(_event, max_size=10), min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, streams):
        a, b, c = [_replay(stream) for stream in streams]
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @given(st.lists(_event, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_merge_into_registry_matches_pure_merge(self, events):
        """MetricsRegistry.merge_snapshot is the same fold as
        merge_snapshots."""
        serial = _replay(events)
        reg = MetricsRegistry()
        reg.merge_snapshot(serial)
        reg.merge_snapshot(serial)
        assert reg.snapshot() == merge_snapshots(serial, serial)

    def test_histogram_bucket_mismatch_rejected(self):
        snap = {
            "test_bad_hist": {
                "kind": "histogram",
                "help": "",
                "labelnames": [],
                "deterministic": True,
                "buckets": [1.0],
                "samples": {"": {"buckets": [1, 1], "sum": 1.0, "count": 2}},
            }
        }
        reg = MetricsRegistry()
        reg.merge_snapshot(snap)
        bad = {
            "test_bad_hist": {
                "kind": "histogram",
                "samples": {"": {"buckets": [1, 1, 1], "sum": 1.0, "count": 3}},
            }
        }
        with pytest.raises(MetricSchemaError):
            reg.merge_snapshot(bad)
