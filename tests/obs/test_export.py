"""Exposition: deterministic views, Prometheus text, the artifact tree."""

import json

from repro.obs import (
    RunLog,
    deterministic_view,
    snapshot_to_prometheus,
    write_metrics_json,
    write_telemetry,
)
from repro.obs.metrics import Counter, Gauge, Histogram, collecting

DET = Counter("test_export_det_total", "deterministic counter", ("kind",))
WALL = Counter("test_export_wall_seconds", "wall seconds", deterministic=False)
GAUGE = Gauge("test_export_gauge", "a gauge", agg="max")
HIST = Histogram("test_export_hist", "a histogram", buckets=(1.0, 2.0))


def _sample_snapshot():
    with collecting() as reg:
        DET.inc(kind="a")
        DET.inc(2, kind="b")
        WALL.inc(1.5)
        GAUGE.set(7)
        for v in (0.5, 1.5, 9.0):
            HIST.observe(v)
    return reg.snapshot()


class TestDeterministicView:
    def test_filters_nondeterministic_families(self):
        view = deterministic_view(_sample_snapshot())
        assert "test_export_det_total" in view
        assert "test_export_wall_seconds" not in view

    def test_view_is_stable_across_runs(self):
        a = json.dumps(deterministic_view(_sample_snapshot()), sort_keys=True)
        b = json.dumps(deterministic_view(_sample_snapshot()), sort_keys=True)
        assert a == b


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = snapshot_to_prometheus(_sample_snapshot())
        assert '# TYPE test_export_det_total counter' in text
        assert 'test_export_det_total{kind="a"} 1' in text
        assert 'test_export_det_total{kind="b"} 2' in text
        assert '# TYPE test_export_gauge gauge' in text
        assert "test_export_gauge 7" in text

    def test_histogram_expansion_is_cumulative(self):
        text = snapshot_to_prometheus(_sample_snapshot())
        assert 'test_export_hist_bucket{le="1.0"} 1' in text
        assert 'test_export_hist_bucket{le="2.0"} 2' in text
        assert 'test_export_hist_bucket{le="+Inf"} 3' in text
        assert "test_export_hist_count 3" in text
        assert "test_export_hist_sum 11.0" in text

    def test_help_escaping(self):
        snap = {
            "test_export_esc": {
                "kind": "counter",
                "help": 'line\nbreak "quoted" back\\slash',
                "labelnames": ["v"],
                "deterministic": True,
                "samples": {'v=x': 1},
            }
        }
        text = snapshot_to_prometheus(snap)
        assert "# HELP test_export_esc line\\nbreak" in text
        assert 'test_export_esc{v="x"} 1' in text

    def test_output_is_sorted_and_deterministic(self):
        a = snapshot_to_prometheus(_sample_snapshot())
        b = snapshot_to_prometheus(_sample_snapshot())
        assert a == b
        families = [
            line.split()[2] for line in a.splitlines() if line.startswith("# TYPE")
        ]
        assert families == sorted(families)

    def test_empty_snapshot(self):
        assert snapshot_to_prometheus({}) == ""


class TestArtifactTree:
    def test_write_metrics_json_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        snapshot = _sample_snapshot()
        write_metrics_json(path, snapshot)
        assert json.loads(path.read_text()) == snapshot

    def test_full_tree(self, tmp_path):
        from repro.runtime import TrialSpec

        log = RunLog()
        spec = TrialSpec.build("china", "http", seed=1)
        log.record_trial(0, spec, spec.run())
        written = write_telemetry(
            tmp_path / "tele",
            _sample_snapshot(),
            runlog=log,
            run_meta={"command": "test"},
        )
        assert set(written) == {
            "run.json",
            "metrics.json",
            "metrics.deterministic.json",
            "metrics.prom",
            "runlog.jsonl",
        }
        run = json.loads((tmp_path / "tele" / "run.json").read_text())
        assert run["command"] == "test"
        assert run["run_id"] == log.run_id
        assert run["trials_logged"] == 1
        assert run["anomalies"] == 0
        det = json.loads(
            (tmp_path / "tele" / "metrics.deterministic.json").read_text()
        )
        assert "test_export_wall_seconds" not in det

    def test_tree_without_runlog(self, tmp_path):
        written = write_telemetry(tmp_path / "tele", _sample_snapshot())
        assert "runlog.jsonl" not in written
        assert (tmp_path / "tele" / "metrics.prom").exists()
