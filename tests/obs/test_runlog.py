"""Run-log semantics: content-derived run ids, byte-deterministic JSONL,
and flight-recorder dumps on anomalies."""

import json

import pytest

from repro.obs.runlog import (
    FLIGHT_RING_SIZE,
    FlightRecorder,
    RunLog,
    activate,
    active_runlog,
    run_id_for,
    trace_tail,
)
from repro.runtime import TrialSpec, trial_seed


def _specs(n=4):
    return [
        TrialSpec.build("china", "http", seed=trial_seed(0, i)) for i in range(n)
    ]


def _run_and_log(specs):
    log = RunLog()
    for i, spec in enumerate(specs):
        log.record_trial(i, spec, spec.run())
    return log


class TestRunId:
    def test_depends_only_on_spec_set(self):
        hashes = [s.spec_hash() for s in _specs()]
        assert run_id_for(hashes) == run_id_for(list(reversed(hashes)))
        assert run_id_for(hashes) == run_id_for(hashes + hashes[:1])  # set, not list

    def test_different_specs_different_id(self):
        a = [TrialSpec.build("china", "http", seed=1).spec_hash()]
        b = [TrialSpec.build("iran", "http", seed=1).spec_hash()]
        assert run_id_for(a) != run_id_for(b)

    def test_runlog_exposes_content_id(self):
        specs = _specs()
        log = _run_and_log(specs)
        assert log.run_id == run_id_for([s.spec_hash() for s in specs])


class TestDeterminism:
    def test_identical_runs_are_byte_identical_modulo_wall(self):
        """Two executions of the same specs serialize identically except
        for the one wall-clock field per record."""
        first = list(_run_and_log(_specs()).lines())
        second = list(_run_and_log(_specs()).lines())
        assert len(first) == len(second)
        for a, b in zip(first, second):
            ra, rb = json.loads(a), json.loads(b)
            ra.pop("wall"), rb.pop("wall")
            assert ra == rb

    def test_byte_identical_with_pinned_clock(self):
        first = list(_run_and_log(_specs()).lines(wall_clock=lambda: 0.0))
        second = list(_run_and_log(_specs()).lines(wall_clock=lambda: 0.0))
        assert first == second

    def test_wall_is_the_only_volatile_field(self):
        (line,) = _run_and_log(_specs(1)).lines(wall_clock=lambda: 123.0)
        record = json.loads(line)
        assert record["wall"] == 123.0
        assert record["event"] == "trial"
        assert set(record) == {
            "event", "seq", "spec", "country", "protocol", "seed",
            "outcome", "succeeded", "censored", "cached", "run", "wall",
        }

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "runlog.jsonl"
        log = _run_and_log(_specs())
        count = log.write(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4
        assert all(json.loads(line)["run"] == log.run_id for line in lines)


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        ring = FlightRecorder(size=3)
        for i in range(10):
            ring.push({"t": i})
        assert len(ring) == 3
        assert [e["t"] for e in ring.dump()] == [7, 8, 9]

    def test_trace_tail_summarizes_events(self):
        result = TrialSpec.build("china", "http", seed=1).run(keep_trace=True)
        tail = trace_tail(result.trace)
        assert 0 < len(tail) <= FLIGHT_RING_SIZE
        assert all({"t", "kind", "at"} <= set(e) for e in tail)
        # Summaries are JSON-able (they go straight into the log).
        json.dumps(tail)

    def test_dump_on_trial_exception(self, monkeypatch):
        """A censor blowing up mid-trial flight-dumps the trace tail."""
        from repro.censors.gfw.box import ProtocolBox

        def explode(self, packet, direction, ctx, key=None):
            raise RuntimeError("censor crashed")

        monkeypatch.setattr(ProtocolBox, "observe", explode)
        log = RunLog()
        spec = TrialSpec.build("china", "http", seed=1)
        with activate(log):
            with pytest.raises(RuntimeError, match="censor crashed"):
                spec.run()
        assert log.anomalies == 1
        (record,) = [json.loads(l) for l in log.lines(wall_clock=lambda: 0.0)]
        assert record["event"] == "flight_dump"
        assert record["reason"] == "trial raised"
        assert record["spec"] == spec.spec_hash()
        assert "RuntimeError" in record["error"]
        assert record["events"]  # the trace tail made it into the dump

    def test_no_dump_without_active_runlog(self, monkeypatch):
        from repro.censors.gfw.box import ProtocolBox

        def explode(self, packet, direction, ctx, key=None):
            raise RuntimeError("censor crashed")

        monkeypatch.setattr(ProtocolBox, "observe", explode)
        assert active_runlog() is None
        with pytest.raises(RuntimeError):
            TrialSpec.build("china", "http", seed=1).run()


class TestGoldenCheck:
    def test_agreement_returns_true_and_logs_nothing(self):
        spec = TrialSpec.build("china", "http", seed=1)
        result = spec.run()
        log = RunLog()
        assert log.check_golden(spec, result, expected_censored=result.censored)
        assert log.anomalies == 0
        assert list(log.lines()) == []

    def test_disagreement_flight_dumps(self):
        spec = TrialSpec.build("china", "http", seed=1)
        result = spec.run(keep_trace=True)
        log = RunLog()
        ok = log.check_golden(
            spec, result, expected_censored=not result.censored, trace=result.trace
        )
        assert not ok
        assert log.anomalies == 1
        (record,) = [json.loads(l) for l in log.lines(wall_clock=lambda: 0.0)]
        assert record["event"] == "flight_dump"
        assert record["expected_censored"] == (not result.censored)
        assert record["observed_censored"] == result.censored
        assert record["events"]
