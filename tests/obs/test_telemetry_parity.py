"""Cross-worker telemetry parity.

The acceptance bar for the obs subsystem: a run's merged metric view on
its deterministic families must be identical whatever the worker count,
and per-worker accounting must be keyed by stable ordinals rather than
raw pids.
"""

import json

import pytest

from repro.obs import deterministic_view
from repro.runtime import TrialExecutor, TrialSpec, trial_seed
from repro.runtime.executor import RunStats


def _specs(n=6):
    return [
        TrialSpec.build("china", "http", seed=trial_seed(7, i)) for i in range(n)
    ]


def _run(workers, specs):
    with TrialExecutor(workers=workers, collect_metrics=True) as executor:
        results = executor.run_batch(specs)
        return results, executor.metrics_snapshot(), executor.total_stats


class TestWorkerCountParity:
    def test_two_workers_match_serial_on_deterministic_families(self):
        specs = _specs()
        results1, snap1, _ = _run(1, specs)
        results2, snap2, _ = _run(2, specs)
        assert [r.censored for r in results1] == [r.censored for r in results2]
        det1, det2 = deterministic_view(snap1), deterministic_view(snap2)
        assert det1  # trial outcome + censor + network counters present
        assert json.dumps(det1, sort_keys=True) == json.dumps(det2, sort_keys=True)

    def test_trial_outcome_counts_cover_the_batch(self):
        specs = _specs(4)
        _, snapshot, _ = _run(1, specs)
        samples = snapshot["repro_trial_outcomes_total"]["samples"]
        assert sum(samples.values()) == 4
        assert all("country=china" in key for key in samples)

    def test_snapshot_empty_without_collect_metrics(self):
        with TrialExecutor(workers=1) as executor:
            executor.run_batch(_specs(2))
            assert executor.metrics_snapshot() == {}


class TestWorkerOrdinals:
    def test_serial_run_attributes_everything_to_w0(self):
        _, _, stats = _run(1, _specs(3))
        assert stats.per_worker == {"w0": 3}

    def test_parallel_run_uses_stable_ordinal_keys(self):
        _, snapshot, stats = _run(2, _specs(8))
        assert stats.executed == 8
        assert set(stats.per_worker) <= {"w0", "w1"}
        assert sum(stats.per_worker.values()) == 8
        # The metric keeps the pid, but only as an informational label.
        samples = snapshot["repro_worker_trials_total"]["samples"]
        for key in samples:
            assert key.startswith("worker=w")
            assert "pid=" in key

    def test_ordinals_are_first_seen_and_never_reused(self):
        executor = TrialExecutor(workers=1)
        assert executor._worker_ordinal("111") == "w0"
        assert executor._worker_ordinal("222") == "w1"
        assert executor._worker_ordinal("111") == "w0"
        assert executor._worker_ordinal("333") == "w2"

    def test_per_worker_merge_is_associative(self):
        a = RunStats(executed=2, per_worker={"w0": 2})
        b = RunStats(executed=3, per_worker={"w0": 1, "w1": 2})
        c = RunStats(executed=1, per_worker={"w1": 1})
        left = RunStats.merged([RunStats.merged([a, b]), c])
        right = RunStats.merged([a, RunStats.merged([b, c])])
        assert left.per_worker == right.per_worker == {"w0": 3, "w1": 3}
        assert left.executed == right.executed == 6


class TestDispatchTelemetryParity:
    """Cold/warm and batched/single accounting is a property of the batch
    composition, never of the worker count. The dispatch counter is a
    non-deterministic family (batch *splits* legitimately reshape it), so
    worker-count parity is pinned explicitly here instead of by the
    deterministic-view diff."""

    @staticmethod
    def _mixed_batch():
        # Two shardable groups (same spec shape, different seeds) plus
        # two one-off specs: 7 batched + 2 single dispatches.
        group_a = [
            TrialSpec.build("china", "http", seed=trial_seed(31, i))
            for i in range(4)
        ]
        group_b = [
            TrialSpec.build("china", "smtp", seed=trial_seed(31, i))
            for i in range(3)
        ]
        singles = [
            TrialSpec.build("iran", "http", seed=trial_seed(31, 0)),
            TrialSpec.build("china", "https", seed=trial_seed(31, 0)),
        ]
        return group_a + singles[:1] + group_b + singles[1:]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_batched_single_split_is_worker_count_independent(self, workers):
        specs = self._mixed_batch()
        _, snapshot, stats = _run(workers, specs)
        assert stats.batched == 7
        assert stats.single == 2
        samples = snapshot["repro_executor_dispatch_total"]["samples"]
        assert samples == {"mode=batched": 7, "mode=single": 2}

    def test_cold_warm_counts_across_worker_counts(self, tmp_path):
        specs = self._mixed_batch()

        def run(workers, cache_dir):
            with TrialExecutor(
                workers=workers, cache=str(cache_dir), collect_metrics=True
            ) as executor:
                executor.run_batch(specs)   # everything cold
                executor.run_batch(specs)   # everything warm
                return executor.total_stats

        one = run(1, tmp_path / "one")
        two = run(2, tmp_path / "two")
        for stats in (one, two):
            assert stats.cold == len(specs)
            assert stats.warm == len(specs)
            assert stats.batched == 7
            assert stats.single == 2
        assert one.as_dict()["cold"] == two.as_dict()["cold"]
        assert one.as_dict()["batched"] == two.as_dict()["batched"]

    def test_stats_format_reports_dispatch_and_temperature(self):
        specs = self._mixed_batch()
        _, _, stats = _run(1, specs)
        line = stats.format()
        assert "cold=9" in line
        assert "warm=0" in line
        assert "batched=7" in line
        assert "single=2" in line


class TestExecutorRunlog:
    def test_records_in_submission_order_across_batches(self):
        from repro.obs import RunLog

        specs = _specs(4)
        log = RunLog()
        with TrialExecutor(workers=1, runlog=log) as executor:
            executor.run_batch(specs[:2])
            executor.run_batch(specs[2:])
        records = [json.loads(l) for l in log.lines(wall_clock=lambda: 0.0)]
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert [r["spec"] for r in records] == [s.spec_hash() for s in specs]
        assert not any(r["cached"] for r in records)

    def test_cache_hits_are_logged_as_cached(self, tmp_path):
        from repro.obs import RunLog

        specs = _specs(3)
        log = RunLog()
        with TrialExecutor(workers=1, cache=str(tmp_path), runlog=log) as ex:
            ex.run_batch(specs)
            ex.run_batch(specs)
        records = [json.loads(l) for l in log.lines(wall_clock=lambda: 0.0)]
        assert [r["cached"] for r in records] == [False] * 3 + [True] * 3
        # Cached replays still agree with the executed outcomes.
        for first, second in zip(records[:3], records[3:]):
            assert first["censored"] == second["censored"]
            assert first["spec"] == second["spec"]

    def test_runlog_parity_across_worker_counts(self):
        from repro.obs import RunLog

        def run(workers):
            log = RunLog()
            with TrialExecutor(workers=workers, runlog=log) as executor:
                executor.run_batch(_specs(6))
            return list(log.lines(wall_clock=lambda: 0.0))

        assert run(1) == run(2)
