"""The SNI evaluation matrix: expected shape, determinism, formatting.

The acceptance grid for the SNI-era subsystem: at least one
record-splitting strategy AND at least one segmentation strategy defeat
the lenient reassembling censor, while the strict variant shows residual
blocking (only deep connection migration gets through).
"""

import pytest

from repro.eval.sni_matrix import (
    SNI_COLUMNS,
    SNI_COUNTRIES,
    esni_workload,
    format_sni_matrix,
    sni_matrix,
)


@pytest.fixture(scope="module")
def grid():
    cells = sni_matrix(trials=5, seed=0)
    return {(c.country, c.column): c.measured for c in cells}


class TestExpectedShape:
    def test_baselines_fully_blocked(self, grid):
        for country in SNI_COUNTRIES:
            assert grid[(country, "baseline")] == 0.0, country

    def test_record_split_defeats_lenient_box(self, grid):
        assert grid[("southkorea", "12")] == 1.0

    def test_segmentation_defeats_lenient_box(self, grid):
        assert grid[("southkorea", "13")] == 1.0

    def test_migration_defeats_lenient_box(self, grid):
        assert grid[("southkorea", "14")] == 1.0
        assert grid[("southkorea", "15")] == 1.0

    def test_esni_defeats_lenient_box(self, grid):
        assert grid[("southkorea", "esni")] == 1.0

    def test_strict_box_shows_residual_blocking(self, grid):
        """Russia's in-path box fires on the ClientHello itself, so
        server-flight transforms and ESNI all still lose."""
        for column in ("12", "13", "14", "esni"):
            assert grid[("russia", column)] == 0.0, column

    def test_only_deep_migration_beats_strict_box(self, grid):
        assert grid[("russia", "15")] == 1.0

    def test_grid_is_complete(self, grid):
        assert set(grid) == {
            (country, column)
            for country in SNI_COUNTRIES
            for column in SNI_COLUMNS
        }


class TestDeterminism:
    def test_repeat_runs_identical(self):
        a = sni_matrix(trials=3, seed=2)
        b = sni_matrix(trials=3, seed=2)
        assert [(c.country, c.column, c.measured) for c in a] == [
            (c.country, c.column, c.measured) for c in b
        ]

    def test_worker_count_does_not_change_rates(self):
        serial = sni_matrix(trials=4, seed=1, workers=1)
        pooled = sni_matrix(trials=4, seed=1, workers=4)
        assert [(c.country, c.column, c.measured) for c in serial] == [
            (c.country, c.column, c.measured) for c in pooled
        ]

    def test_country_filter_preserves_cell_values(self):
        full = {
            (c.country, c.column): c.measured
            for c in sni_matrix(trials=3, seed=4)
        }
        only_russia = sni_matrix(trials=3, seed=4, countries=["russia"])
        assert only_russia
        for cell in only_russia:
            assert cell.country == "russia"
            assert cell.measured == full[(cell.country, cell.column)]


class TestWorkloadsAndFormat:
    def test_esni_workload_carries_the_censored_name(self):
        workload = esni_workload("russia")
        assert workload["encrypted_sni"] is True
        assert workload["server_name"] == "blocked.example.ru"

    def test_format_lists_every_column(self, grid):
        from repro.eval.sni_matrix import SNIMatrixCell

        cells = [
            SNIMatrixCell(country, column, rate)
            for (country, column), rate in sorted(grid.items())
        ]
        text = format_sni_matrix(cells)
        assert "southkorea" in text and "russia" in text
        assert "No evasion" in text
        assert "Encrypted SNI (no strategy)" in text
