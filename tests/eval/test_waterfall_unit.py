"""Unit tests for the waterfall renderer itself."""

from repro.eval.waterfall import packet_label, render_waterfall
from repro.netsim import Trace
from repro.packets import make_tcp_packet, make_udp_packet


class TestPacketLabel:
    def test_basic_flag_names(self):
        cases = {
            "S": "SYN",
            "SA": "SYN/ACK",
            "A": "ACK",
            "PA": "PSH/ACK",
            "FA": "FIN/ACK",
            "R": "RST",
            "": "(no flags)",
        }
        for flags, expected in cases.items():
            packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags=flags)
            assert packet_label(packet, None) == expected

    def test_load_annotation(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="PA", load=b"\x01\x02")
        assert "w/ load" in packet_label(packet, None)

    def test_get_load_annotation(self):
        packet = make_tcp_packet(
            "1.1.1.1", "2.2.2.2", 1, 2, flags="SA", load=b"GET / HTTP1."
        )
        assert "w/ GET load" in packet_label(packet, None)

    def test_bad_ackno_server_only(self):
        packet = make_tcp_packet(
            "1.1.1.1", "2.2.2.2", 1, 2, flags="SA", ack=999
        )
        assert "bad ackno" in packet_label(packet, client_isn=100, from_server=True)
        assert "bad ackno" not in packet_label(packet, client_isn=100, from_server=False)

    def test_small_window_annotation(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA", window=10, ack=101)
        assert "small window" in packet_label(packet, client_isn=100)

    def test_bad_checksum_annotation(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, flags="SA", ack=101)
        packet.tcp.chksum_override = 0xBAD
        assert "bad chksum" in packet_label(packet, client_isn=100)

    def test_udp_label(self):
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 53, load=b"abc")
        assert packet_label(packet, None) == "UDP (3B)"


class TestRenderWaterfall:
    def build_trace(self):
        trace = Trace()
        syn = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, flags="S", seq=100)
        synack = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1, flags="SA", seq=200, ack=101)
        rst = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1, flags="RA", seq=201, ack=101)
        trace.record(0.0, "send", "client", syn)
        trace.record(0.1, "send", "server", synack)
        trace.record(0.2, "inject", "gfw", rst, "toward client")
        trace.record(0.2, "censor", "gfw", syn, "http keyword")
        return trace

    def test_render_structure(self):
        text = render_waterfall(self.build_trace(), title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Client" in lines[1] and "Server" in lines[1]
        assert any("SYN" in line and "--->" in line for line in lines)
        assert any("SYN/ACK" in line and "<---" in line for line in lines)

    def test_injected_packets_marked(self):
        text = render_waterfall(self.build_trace())
        assert "RST/ACK *" in text
        assert "[gfw]" in text

    def test_censor_action_line(self):
        text = render_waterfall(self.build_trace())
        assert "!! censor action: http keyword" in text

    def test_client_isn_learned_from_first_syn(self):
        trace = Trace()
        syn = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, flags="S", seq=100)
        bad = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1, flags="SA", seq=200, ack=999)
        trace.record(0.0, "send", "client", syn)
        trace.record(0.1, "send", "server", bad)
        assert "bad ackno" in render_waterfall(trace)
