"""Tests for the trial runner."""

import pytest

from repro.core import deployed_strategy
from repro.eval import (
    COUNTRY_PROTOCOLS,
    Trial,
    benign_workload,
    censored_workload,
    default_port,
    run_trial,
    success_rate,
)


class TestConfiguration:
    def test_country_protocol_table(self):
        assert COUNTRY_PROTOCOLS["china"] == ["dns", "ftp", "http", "https", "smtp"]
        assert COUNTRY_PROTOCOLS["india"] == ["http"]
        assert COUNTRY_PROTOCOLS["iran"] == ["http", "https"]
        assert COUNTRY_PROTOCOLS["kazakhstan"] == ["http"]

    def test_default_ports(self):
        assert default_port("http") == 80
        assert default_port("dns") == 53

    def test_workloads_available(self):
        for country, protocols in COUNTRY_PROTOCOLS.items():
            for protocol in protocols:
                assert censored_workload(country, protocol)
        for protocol in ("http", "https", "dns", "ftp", "smtp"):
            assert benign_workload(protocol)

    def test_unknown_country_rejected(self):
        with pytest.raises(ValueError):
            run_trial("atlantis", "http", None)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = run_trial("china", "http", deployed_strategy(1), seed=5)
        b = run_trial("china", "http", deployed_strategy(1), seed=5)
        assert a.outcome == b.outcome
        assert len(a.trace) == len(b.trace)

    def test_different_seeds_vary(self):
        outcomes = {
            run_trial("china", "http", deployed_strategy(1), seed=s).outcome
            for s in range(12)
        }
        assert len(outcomes) > 1  # ~50% strategy: both outcomes appear

    def test_success_rate_bounds(self):
        rate = success_rate("kazakhstan", "http", deployed_strategy(11), trials=5)
        assert rate == 1.0
        rate = success_rate("kazakhstan", "http", None, trials=5)
        assert rate == 0.0


class TestTrialAnatomy:
    def test_no_censor_mode(self):
        result = run_trial(None, "http", None, seed=1)
        assert result.succeeded
        assert not result.censored

    def test_trace_attached(self):
        result = run_trial("china", "http", None, seed=1)
        assert result.trace is not None
        assert result.trace.filter(kind="censor")

    def test_censor_exposed_on_trial(self):
        trial = Trial("china", "http", None, seed=1)
        trial.run()
        assert trial.censor.censorship_events == 1

    def test_client_os_selectable(self):
        trial = Trial(None, "http", None, seed=1, client_os="windows-10-enterprise-17134")
        assert trial.client_host.personality.family == "windows"

    def test_topology_hop_counts(self):
        trial = Trial("china", "http", None, seed=1)
        # censor at index 2 (hop 3), server at hop 10.
        assert trial.network.middleboxes[2] is trial.censor
        assert len(trial.network.middleboxes) == 9
