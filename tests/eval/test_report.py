"""Tests for the one-shot reproduction driver."""

import pytest

from repro.eval.report import EXPERIMENTS, reproduce_all


class TestReproduceAll:
    def test_known_experiments(self):
        assert {"table1", "table2", "figure1", "figure2", "figure3"} <= set(EXPERIMENTS)

    def test_writes_selected_artifacts(self, tmp_path):
        written = reproduce_all(
            str(tmp_path), trials=10, only=["table1", "figure2"], echo=lambda s: None
        )
        assert len(written) == 2
        table1 = (tmp_path / "table1.txt").read_text()
        assert "china" in table1
        figure2 = (tmp_path / "figure2.txt").read_text()
        assert "Strategy 9" in figure2 and "outcome: success" in figure2

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            reproduce_all(str(tmp_path), only=["table99"], echo=lambda s: None)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        reproduce_all(str(target), trials=5, only=["figure2"], echo=lambda s: None)
        assert (target / "figure2.txt").exists()

    def test_cli_reproduce(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "reproduce", "--out", str(tmp_path), "--trials", "5",
            "--only", "figure2",
        ])
        assert code == 0
        assert "wrote 1 artifacts" in capsys.readouterr().out
