"""Tests for the experiment drivers (small-scale versions of each)."""

import pytest

from repro.core import deployed_strategy
from repro.eval.client_compat import (
    EXPECTED_OS_FAILURES,
    run_network_matrix,
    run_os_matrix,
)
from repro.eval.dns_retries import analytic_curve, measure_retry_curve
from repro.eval.followups import (
    drop_client_rst_probe,
    kz_get_prefix_sweep,
    kz_injection_probe,
    kz_payload_count_sweep,
    kz_payload_size_sweep,
    rst_seq_match_probe,
    seq_offset_probe,
)
from repro.eval.generalization import run_generalization
from repro.eval.matrix import format_matrix, measure_censorship_matrix
from repro.eval.multibox import (
    forbidden_payload,
    localize_boxes,
    protocol_dependence,
    single_box_profiles,
)
from repro.eval.reference import paper_rate
from repro.eval.residual import residual_probe
from repro.eval.table2 import generate_table2, format_table2
from repro.eval.waterfall import waterfall_for_trial
from repro.tcpstack import PERSONALITIES


class TestReference:
    def test_china_rates(self):
        assert paper_rate("china", 1, "http") == 54
        assert paper_rate("china", 5, "ftp") == 97
        assert paper_rate("china", 0, "smtp") == 26

    def test_other_country_rates(self):
        assert paper_rate("kazakhstan", 9, "http") == 100
        assert paper_rate("india", 8, "http") == 100
        assert paper_rate("iran", 1, "http") is None  # dash in Table 2


class TestMatrix:
    def test_measured_matrix_matches_table1(self):
        entries = measure_censorship_matrix(seed=3)
        for entry in entries:
            assert entry.censored == entry.expected, (entry.country, entry.protocol)
        assert "china" in format_matrix(entries)


class TestTable2:
    def test_small_scale_generation(self):
        cells = generate_table2(trials=20, seed=9, countries=["kazakhstan"])
        assert cells
        for cell in cells:
            assert cell.paper is not None
            assert abs(cell.measured_pct - cell.paper) <= 10
        assert "Kazakhstan" in format_table2(cells) or "kazakhstan" in format_table2(cells).lower()

    def test_china_cells_have_paper_values(self):
        cells = generate_table2(trials=10, seed=9, countries=["china"],
                                china_protocols=("http",))
        assert all(cell.paper is not None for cell in cells)


class TestWaterfalls:
    def test_strategy_1_waterfall_contains_simopen(self):
        text = waterfall_for_trial("china", "http", deployed_strategy(1), seed=3)
        assert "RST" in text and "SYN" in text
        assert "--->" in text and "<---" in text

    def test_censorship_shown_when_it_happens(self):
        text = waterfall_for_trial("china", "http", None, seed=3)
        assert "censor action" in text

    def test_kazakhstan_strategy_9(self):
        text = waterfall_for_trial("kazakhstan", "http", deployed_strategy(9), seed=3)
        assert text.count("w/ load") >= 3


class TestMultibox:
    def test_protocol_dependence_spread(self):
        multi = protocol_dependence(7, trials=40, seed=2, protocols=("ftp", "https"))
        assert multi["ftp"] - multi["https"] > 0.4

    def test_single_box_ablation_uniform(self):
        profiles = single_box_profiles("http")
        single = protocol_dependence(
            7, trials=40, seed=2, profiles=profiles, protocols=("ftp", "https")
        )
        assert abs(single["ftp"] - single["https"]) < 0.25

    def test_localization_colocated(self):
        hops = localize_boxes(protocols=("http", "ftp"), max_ttl=5, seed=1)
        assert hops["http"] == 3
        assert hops["ftp"] == 3

    def test_forbidden_payloads_defined(self):
        for protocol in ("dns", "ftp", "http", "https", "smtp"):
            assert forbidden_payload(protocol)
        with pytest.raises(ValueError):
            forbidden_payload("gopher")


class TestGeneralization:
    @pytest.mark.slow
    def test_client_side_works_server_analogs_fail(self):
        result = run_generalization(trials=12, seed=4)
        assert result.client_working_count == len(result.client_side_working)
        assert result.analogs_working_count == 0


class TestDNSRetries:
    def test_analytic_curve(self):
        curve = analytic_curve(0.5, 3)
        assert curve[1] == 0.5
        assert abs(curve[3] - 0.875) < 1e-9

    @pytest.mark.slow
    def test_measured_tracks_analytic(self):
        curve = measure_retry_curve(strategy_number=1, max_tries=3, trials=60, seed=2)
        assert 0.3 < curve.per_try_rate < 0.7
        for tries in (2, 3):
            assert abs(curve.measured[tries] - curve.analytic[tries]) < 0.2
        assert curve.measured[3] > curve.measured[1]


class TestFollowups:
    def test_seq_probe_with_strategy_restores_censorship(self):
        censored = seq_offset_probe(1, offset=-1, trials=24, seed=3)
        assert 0.25 < censored < 0.75  # ~the resync-entry probability

    def test_seq_probe_without_strategy_never_censored(self):
        assert seq_offset_probe(None, offset=-1, trials=10, seed=3) == 0.0

    def test_rst_drop_kills_strategy5_not_strategy6(self):
        assert drop_client_rst_probe(5, "ftp", trials=24, seed=3) < 0.25
        assert drop_client_rst_probe(6, "ftp", trials=24, seed=3) > 0.3

    def test_rst_seq_match_restores_censorship(self):
        assert rst_seq_match_probe(7, trials=24, seed=3) > 0.25

    def test_kz_payload_count_threshold(self):
        sweep = kz_payload_count_sweep(max_copies=4, seed=1)
        assert sweep == {1: False, 2: False, 3: True, 4: True}

    def test_kz_payload_size_irrelevant(self):
        assert all(kz_payload_size_sweep(seed=1).values())

    def test_kz_get_prefix_rules(self):
        sweep = kz_get_prefix_sweep(seed=1)
        assert sweep["GET / HTTP1."] is True
        assert sweep["GET / HTTP1"] is False
        assert sweep["GET /index.html HTTP1."] is True
        assert sweep["HELLO"] is False

    def test_kz_injection_probe(self):
        probe = kz_injection_probe(seed=1)
        assert probe["double forbidden GET"] is True
        assert probe["single forbidden GET"] is False
        assert probe["sim-open + forbidden GET"] is True
        assert probe["forbidden then benign GET"] is False


class TestResidual:
    def test_http_residual_within_window(self):
        probe = residual_probe("http", delay=30.0, seed=1)
        assert not probe.second_succeeded

    def test_http_residual_expires(self):
        probe = residual_probe("http", delay=120.0, seed=1)
        assert probe.second_succeeded

    def test_ftp_no_residual(self):
        probe = residual_probe("ftp", delay=1.0, seed=1)
        assert probe.second_succeeded

    def test_dns_no_residual(self):
        probe = residual_probe("dns", delay=1.0, seed=1)
        assert probe.second_succeeded


class TestClientCompat:
    @pytest.mark.slow
    def test_os_matrix_matches_paper(self):
        matrix = run_os_matrix(strategy_numbers=(1, 5, 8, 9, 10, 11), seed=2)
        for (number, os_name), works in matrix.works.items():
            family = PERSONALITIES[os_name].family
            expected_failure = (number, family) in EXPECTED_OS_FAILURES
            assert works != expected_failure, (number, os_name)

    @pytest.mark.slow
    def test_compat_variants_fix_all_oses(self):
        matrix = run_os_matrix(strategy_numbers=(5, 9, 10), seed=2)
        assert all(matrix.compat_works.values())

    def test_network_matrix_pattern(self):
        results = run_network_matrix(strategy_numbers=(1, 2, 3, 4), seed=2)
        assert results["wifi"] == {1: True, 2: True, 3: True, 4: True}
        assert results["t-mobile"] == {1: False, 2: True, 3: False, 4: True}
        assert results["att"] == {1: False, 2: False, 3: False, 4: True}


class TestDNSClientProfiles:
    def test_profiles_from_paper(self):
        from repro.apps.dns import DNS_CLIENT_PROFILES

        assert DNS_CLIENT_PROFILES["python-dns"] == 3
        assert DNS_CLIENT_PROFILES["chrome-windows"] == 5

    def test_more_retries_more_success(self):
        from repro.eval.dns_retries import measure_client_profiles

        rates = measure_client_profiles(strategy_number=1, trials=60, seed=9)
        assert rates["chrome-windows"] >= rates["dig-minimal"]
        assert rates["dig-minimal"] >= 0.6   # two tries of a ~50% strategy
        assert rates["chrome-windows"] >= 0.85
