"""Tests for the Table 2 -> box profile inversion.

The key property: inverting the paper's Table 2 recovers (within the
rounding noise of the published percentages) the very profiles the censor
models ship with — the calibration is a derivation, not hand-tuning.
"""

import pytest

from repro.censors import CHINA_PROFILES
from repro.censors.gfw.profiles import (
    EVENT_CORRUPT_ACK,
    EVENT_PAYLOAD_OTHER,
    EVENT_PAYLOAD_SYN,
    EVENT_RST,
    EVENT_SYN,
    EVENT_SYNACK_PAYLOAD,
)
from repro.eval.calibration import calibrate_box, invert_rate, per_try_rate
from repro.eval.reference import TABLE2_CHINA


def paper_column(protocol):
    return {number: TABLE2_CHINA[number][protocol] / 100 for number in range(0, 9)}


class TestHelpers:
    def test_per_try_rate_identity(self):
        assert per_try_rate(0.5, 1) == 0.5

    def test_per_try_rate_inverts_retries(self):
        assert per_try_rate(0.875, 3) == pytest.approx(0.5)

    def test_per_try_validation(self):
        with pytest.raises(ValueError):
            per_try_rate(1.5)
        with pytest.raises(ValueError):
            per_try_rate(0.5, 0)

    def test_invert_rate(self):
        assert invert_rate(0.54, 0.03) == pytest.approx((0.54 - 0.03) / 0.97)
        assert invert_rate(0.01, 0.03) == 0.0  # clamped
        assert invert_rate(0.5, 1.0) == 0.0


class TestRecoverShippedProfiles:
    """Inverting the paper's numbers reproduces the shipped constants."""

    @pytest.mark.parametrize(
        "protocol,tries", [("ftp", 1), ("http", 1), ("smtp", 1), ("dns", 3)]
    )
    def test_miss_prob(self, protocol, tries):
        inferred = calibrate_box(protocol, paper_column(protocol), tries)
        assert inferred.miss_prob == pytest.approx(
            CHINA_PROFILES[protocol].miss_prob, abs=0.02
        )

    @pytest.mark.parametrize(
        "protocol,tries,tolerance",
        [("ftp", 1, 0.06), ("http", 1, 0.06), ("smtp", 1, 0.1), ("dns", 3, 0.08)],
    )
    def test_primary_event_probs(self, protocol, tries, tolerance):
        inferred = calibrate_box(protocol, paper_column(protocol), tries)
        shipped = CHINA_PROFILES[protocol].event_probs
        for event in (EVENT_RST, EVENT_PAYLOAD_SYN, EVENT_PAYLOAD_OTHER):
            assert inferred.event_probs[event] == pytest.approx(
                shipped.get(event, 0.0), abs=tolerance
            ), (protocol, event)

    def test_ftp_corrupt_ack_rule(self):
        inferred = calibrate_box("ftp", paper_column("ftp"))
        assert inferred.event_probs[EVENT_CORRUPT_ACK] == pytest.approx(0.31, abs=0.03)

    def test_ftp_combos(self):
        inferred = calibrate_box("ftp", paper_column("ftp"))
        shipped = CHINA_PROFILES["ftp"].combo_probs
        assert inferred.combo_probs[(EVENT_CORRUPT_ACK, EVENT_SYN)] == pytest.approx(
            shipped[(EVENT_CORRUPT_ACK, EVENT_SYN)], abs=0.06
        )
        assert inferred.combo_probs[
            (EVENT_CORRUPT_ACK, EVENT_SYNACK_PAYLOAD)
        ] == pytest.approx(shipped[(EVENT_CORRUPT_ACK, EVENT_SYNACK_PAYLOAD)], abs=0.05)
        assert inferred.combo_probs[(EVENT_RST, EVENT_CORRUPT_ACK)] == pytest.approx(
            shipped[(EVENT_RST, EVENT_CORRUPT_ACK)], abs=0.12
        )

    def test_reassembly_failure(self):
        assert calibrate_box("ftp", paper_column("ftp")).reassembly_fail_prob == pytest.approx(
            CHINA_PROFILES["ftp"].reassembly_fail_prob, abs=0.03
        )
        assert calibrate_box("smtp", paper_column("smtp")).reassembly_fail_prob == 1.0
        assert calibrate_box("http", paper_column("http")).reassembly_fail_prob <= 0.02

    def test_https_has_no_rst_rule(self):
        inferred = calibrate_box("https", paper_column("https"))
        # Strategy 7 sits at baseline -> no RST resync for HTTPS (rule 2).
        assert inferred.event_probs[EVENT_RST] <= 0.12
        # But the payload rules are alive and ~50%.
        assert 0.4 <= inferred.event_probs[EVENT_PAYLOAD_SYN] <= 0.65


class TestRoundTripWithMeasuredTable:
    def test_calibrating_from_a_measured_column_is_stable(self):
        """Measure a column from the simulator, invert it, and land near
        the profile that generated it (closing the loop)."""
        from repro.core import deployed_strategy
        from repro.eval import success_rate

        column = {}
        for number in range(0, 9):
            strategy = None if number == 0 else deployed_strategy(number)
            column[number] = success_rate(
                "china", "ftp", strategy, trials=120, seed=number * 37 + 5
            )
        inferred = calibrate_box("ftp", column)
        shipped = CHINA_PROFILES["ftp"]
        assert inferred.event_probs[EVENT_RST] == pytest.approx(
            shipped.event_probs[EVENT_RST], abs=0.12
        )
        assert inferred.event_probs[EVENT_CORRUPT_ACK] == pytest.approx(
            shipped.event_probs[EVENT_CORRUPT_ACK], abs=0.12
        )
        assert inferred.reassembly_fail_prob == pytest.approx(
            shipped.reassembly_fail_prob, abs=0.12
        )
