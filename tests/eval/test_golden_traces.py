"""Golden-trace regression tests for trial wire behaviour.

For one representative evading strategy per country, the full packet-
trace summary of a fixed-seed trial — every endpoint send (direction,
flags, payload size), every censor injection, every censor verdict, and
every censor drop — is pinned byte-for-byte in ``tests/golden/``. Any
refactor of the executor, TCP stack, engine, or censors that changes
wire behaviour trips these tests instead of silently shifting results.

Regenerate deliberately with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/eval/test_golden_traces.py

and review the diff like any other code change.
"""

import json
import os
import pathlib

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"

#: (name, country, protocol, strategy number, seed) — one per country.
CASES = [
    ("china_http_strategy1", "china", "http", 1, 3),
    ("india_http_strategy8", "india", "http", 8, 1),
    ("iran_https_strategy8", "iran", "https", 8, 1),
    ("kazakhstan_http_strategy11", "kazakhstan", "http", 11, 1),
]

#: The SNI-era boxes are pinned at *baseline* (no strategy): the golden
#: is the censorship itself — reassembly, verdict, RST injection — so a
#: censor regression that weakens blocking trips the trace diff.
BASELINE_CASES = [
    ("southkorea_https_baseline", "southkorea", "https", None, 1),
    ("russia_https_baseline", "russia", "https", None, 1),
]


def summarize(result) -> dict:
    """Deterministic, JSON-able summary of a trial's wire behaviour."""
    events = []
    for event in result.trace.events:
        packet = event.packet
        if event.kind == "send" and event.location in ("client", "server"):
            events.append(
                {
                    "kind": "send",
                    "from": event.location,
                    "flags": packet.flags if not packet.is_udp else "UDP",
                    "len": len(packet.load),
                }
            )
        elif event.kind == "inject":
            events.append(
                {
                    "kind": "inject",
                    "at": event.location,
                    "flags": packet.flags if not packet.is_udp else "UDP",
                    "len": len(packet.load),
                    "toward_client": "toward client" in event.detail,
                }
            )
        elif event.kind == "censor":
            events.append(
                {"kind": "censor", "at": event.location, "verdict": event.detail}
            )
        elif event.kind == "drop" and packet is not None:
            events.append(
                {
                    "kind": "drop",
                    "at": event.location,
                    "flags": packet.flags if not packet.is_udp else "UDP",
                    "detail": event.detail,
                }
            )
    return {
        "outcome": result.outcome,
        "succeeded": result.succeeded,
        "censored": result.censored,
        "events": events,
    }


def run_case(country, protocol, number, seed):
    strategy = deployed_strategy(number) if number is not None else None
    return run_trial(country, protocol, strategy, seed=seed)


@pytest.mark.parametrize("name,country,protocol,number,seed", CASES + BASELINE_CASES)
def test_golden_trace(name, country, protocol, number, seed):
    summary = summarize(run_case(country, protocol, number, seed))
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    golden = json.loads(path.read_text())
    assert summary == golden, (
        f"wire behaviour of {name} changed; if intentional, regenerate "
        f"with REPRO_UPDATE_GOLDENS=1 and review the diff"
    )


@pytest.mark.parametrize("name,country,protocol,number,seed", CASES)
def test_golden_cases_still_evade(name, country, protocol, number, seed):
    """The pinned cases are all *successful* evasions — a golden that
    stops succeeding is a behaviour change even if the trace matches."""
    assert run_case(country, protocol, number, seed).succeeded


@pytest.mark.parametrize("name,country,protocol,number,seed", BASELINE_CASES)
def test_golden_baselines_are_censored(name, country, protocol, number, seed):
    """The pinned SNI baselines are *blocked* connections — a golden
    whose censorship disappears is a censor regression even if the
    trace matches."""
    result = run_case(country, protocol, number, seed)
    assert result.censored
    assert not result.succeeded


def test_goldens_are_committed():
    missing = [
        name
        for name, *_ in CASES + BASELINE_CASES
        if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    assert not missing, f"golden files missing: {missing}"
