"""Unit tests for the overhead and vantage experiment drivers."""

from repro.eval.overhead import format_overhead, measure_overhead
from repro.eval.vantage import (
    VANTAGE_POINTS,
    VantagePoint,
    format_vantages,
    measure_across_vantages,
)


class TestOverhead:
    def test_strategy_1_two_extra_packets(self):
        report = measure_overhead(1, protocol="http", seed=1)
        # One SYN+ACK becomes RST+SYN, plus the sim-open completion ACK.
        assert report.extra_packets == 2
        assert report.extra_bytes > 0

    def test_strategy_11_one_extra_packet(self):
        report = measure_overhead(11, protocol="http", seed=1)
        assert report.extra_packets == 1

    def test_baseline_consistency(self):
        a = measure_overhead(1, protocol="http", seed=1)
        b = measure_overhead(11, protocol="http", seed=1)
        assert a.baseline_packets == b.baseline_packets
        assert a.baseline_bytes == b.baseline_bytes

    def test_format(self):
        reports = {1: measure_overhead(1, seed=1)}
        text = format_overhead(reports)
        assert "extra packets" in text and "1" in text


class TestVantage:
    def test_default_vantage_points(self):
        assert len(VANTAGE_POINTS) == 4
        names = {v.name for v in VANTAGE_POINTS}
        assert "beijing->us" in names

    def test_custom_vantage(self):
        custom = (
            VantagePoint("a", censor_hop=2, server_hop=6),
            VantagePoint("b", censor_hop=3, server_hop=9),
        )
        rates = measure_across_vantages(
            strategy_number=11, protocol="http", country="kazakhstan",
            trials=4, vantages=custom,
        )
        assert rates == {"a": 1.0, "b": 1.0}

    def test_format(self):
        text = format_vantages({"x": 0.5, "y": 0.52})
        assert "spread" in text and "x" in text
