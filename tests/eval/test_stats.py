"""Tests for the statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.stats import (
    Proportion,
    rates_consistent,
    two_proportion_z,
    wilson_interval,
)


class TestWilson:
    def test_known_value(self):
        # 50/100 at 95%: Wilson interval ≈ (0.4038, 0.5962).
        low, high = wilson_interval(50, 100)
        assert low == pytest.approx(0.4038, abs=0.001)
        assert high == pytest.approx(0.5962, abs=0.001)

    def test_zero_successes_positive_upper(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0 < high < 0.25

    def test_all_successes(self):
        low, high = wilson_interval(20, 20)
        assert high == 1.0
        assert 0.75 < low < 1.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)

    @given(st.integers(0, 200), st.integers(1, 200))
    def test_interval_contains_estimate(self, successes, trials):
        successes = min(successes, trials)
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    @given(st.integers(1, 50))
    def test_interval_shrinks_with_samples(self, successes):
        low_small, high_small = wilson_interval(successes, 50)
        low_big, high_big = wilson_interval(successes * 10, 500)
        assert (high_big - low_big) < (high_small - low_small)


class TestProportion:
    def test_rate_and_str(self):
        p = Proportion(54, 100)
        assert p.rate == 0.54
        assert "54.0%" in str(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            Proportion(5, 0)
        with pytest.raises(ValueError):
            Proportion(11, 10)


class TestZTest:
    def test_identical_rates_z_zero(self):
        a = Proportion(50, 100)
        b = Proportion(500, 1000)
        assert two_proportion_z(a, b) == pytest.approx(0.0)

    def test_clearly_different_rates(self):
        a = Proportion(90, 100)
        b = Proportion(10, 100)
        assert abs(two_proportion_z(a, b)) > 5

    def test_degenerate_pool(self):
        assert two_proportion_z(Proportion(0, 10), Proportion(0, 10)) == 0.0

    def test_rates_consistent_accepts_close(self):
        assert rates_consistent(Proportion(104, 200), 54)

    def test_rates_consistent_rejects_far(self):
        assert not rates_consistent(Proportion(30, 200), 54)
