"""Tests for IPv6 evaluation trials (the censors are family-agnostic)."""

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial


class TestV6Trials:
    def test_invalid_ip_version_rejected(self):
        with pytest.raises(ValueError):
            run_trial("china", "http", None, seed=1, ip_version=5)

    def test_china_censors_over_v6(self):
        result = run_trial("china", "http", None, seed=1, ip_version=6)
        assert not result.succeeded
        assert result.censored

    def test_strategy_1_works_over_v6(self):
        wins = sum(
            run_trial(
                "china", "http", deployed_strategy(1), seed=30 + i, ip_version=6
            ).succeeded
            for i in range(20)
        )
        assert wins >= 5  # the ~50% strategy, unchanged by the family

    def test_kazakhstan_over_v6(self):
        censored = run_trial("kazakhstan", "http", None, seed=1, ip_version=6)
        assert censored.outcome == "blockpage"
        evaded = run_trial(
            "kazakhstan", "http", deployed_strategy(11), seed=1, ip_version=6
        )
        assert evaded.succeeded

    def test_v6_packets_on_the_wire(self):
        from repro.packets.ipv6 import IPv6

        result = run_trial("china", "http", None, seed=1, ip_version=6)
        sends = [e.packet for e in result.trace.events if e.kind == "send"]
        assert sends
        assert all(isinstance(p.ip, IPv6) for p in sends)

    def test_benign_v6_exchange(self):
        result = run_trial(
            "china", "http", None, seed=1, ip_version=6,
            workload={"path": "/", "host_header": "benign.example.com"},
        )
        assert result.succeeded
