"""Golden-trace regression tests.

Each paper strategy's on-wire packet sequence for a fixed seed is pinned
as a golden flag sequence: any change to the packet model, TCP stack,
engine, or censor that alters the wire behaviour trips these tests. The
goldens encode the paper's Figure 1/2 packet patterns.
"""

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial


def wire_flags(result, location):
    """Flag sequence of packets sent by one endpoint."""
    return [
        event.packet.flags
        for event in result.trace.events
        if event.kind == "send" and event.location == location and event.packet
    ]


class TestChinaGoldens:
    def test_strategy_1_wire_sequence(self):
        result = run_trial("china", "http", deployed_strategy(1), seed=3)
        assert result.succeeded
        # Server: RST+SYN replace the SYN+ACK, then the handshake ACK,
        # then response data and teardown.
        server = wire_flags(result, "server")
        assert server[:3] == ["R", "S", "A"]
        # Client: SYN, sim-open SYN/ACK, request, ACKs.
        client = wire_flags(result, "client")
        assert client[0] == "S"
        assert client[1] == "SA"
        assert "PA" in client

    def test_strategy_6_wire_sequence(self):
        result = run_trial("china", "http", deployed_strategy(6), seed=23)
        server = wire_flags(result, "server")
        assert server[:3] == ["F", "SA", "SA"]
        client = wire_flags(result, "client")
        # Induced RST (from the corrupted ack) then the handshake ACK.
        assert client[0] == "S"
        assert "R" in client[1:3]

    def test_strategy_7_wire_sequence(self):
        result = run_trial("china", "http", deployed_strategy(7), seed=23)
        server = wire_flags(result, "server")
        assert server[:3] == ["R", "SA", "SA"]

    def test_strategy_8_segments(self):
        result = run_trial("china", "smtp", deployed_strategy(8), seed=1)
        assert result.succeeded
        client_loads = [
            len(event.packet.load)
            for event in result.trace.events
            if event.kind == "send"
            and event.location == "client"
            and event.packet.load
        ]
        assert client_loads and max(client_loads) <= 10

    def test_no_evasion_censorship_artifacts(self):
        result = run_trial("china", "http", None, seed=42)
        assert not result.succeeded
        injected = [
            event.packet.flags
            for event in result.trace.events
            if event.kind == "inject"
        ]
        assert injected == ["RA", "RA"]  # teardown RSTs to both ends


class TestKazakhstanGoldens:
    def test_strategy_9_wire_sequence(self):
        result = run_trial("kazakhstan", "http", deployed_strategy(9), seed=3)
        server = wire_flags(result, "server")
        assert server[:3] == ["SA", "SA", "SA"]
        client = wire_flags(result, "client")
        # Figure 2: the client answers the duplicate SYN+ACKs with ACKs
        # (the request may interleave with the challenge ACKs).
        assert client[:2] == ["S", "A"]
        assert client[:6].count("A") >= 3

    def test_strategy_11_wire_sequence(self):
        result = run_trial("kazakhstan", "http", deployed_strategy(11), seed=3)
        server = wire_flags(result, "server")
        assert server[0] == ""  # the null-flags packet
        assert server[1] == "SA"

    def test_blockpage_golden(self):
        result = run_trial("kazakhstan", "http", None, seed=3)
        injected = [
            event.packet
            for event in result.trace.events
            if event.kind == "inject"
        ]
        assert len(injected) == 1
        assert injected[0].flags == "FPA"
        assert b"blocked" in injected[0].load


class TestDeterminismGolden:
    @pytest.mark.parametrize("number", [1, 2, 6, 7, 8, 9, 10, 11])
    def test_trace_bit_for_bit_reproducible(self, number):
        country = "kazakhstan" if number in (9, 10, 11) else "china"
        a = run_trial(country, "http", deployed_strategy(number), seed=7)
        b = run_trial(country, "http", deployed_strategy(number), seed=7)
        wire_a = [
            (e.kind, e.location, e.packet.serialize())
            for e in a.trace.events
            if e.packet is not None
        ]
        wire_b = [
            (e.kind, e.location, e.packet.serialize())
            for e in b.trace.events
            if e.packet is not None
        ]
        assert wire_a == wire_b
