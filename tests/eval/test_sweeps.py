"""Tests for parameter sweeps (operating envelopes and crossovers)."""

from repro.eval.sweeps import (
    format_sweep,
    mitm_retry_sweep,
    resync_probability_sweep,
    window_reduction_strategy,
    window_size_sweep,
)


class TestWindowSweep:
    def test_small_windows_evade_large_ones_fail(self):
        rates = window_size_sweep(windows=(5, 10, 200), trials=4, seed=1)
        assert rates[5] == 1.0
        assert rates[10] == 1.0
        assert rates[200] == 0.0

    def test_crossover_is_monotone(self):
        rates = window_size_sweep(windows=(5, 20, 40, 100), trials=4, seed=2)
        values = [rates[w] for w in (5, 20, 40, 100)]
        assert values == sorted(values, reverse=True)

    def test_parameterised_strategy_parses(self):
        strategy = window_reduction_strategy(17)
        assert "replace:17" in str(strategy)


class TestMitmSweep:
    def test_fifteen_second_window(self):
        results = mitm_retry_sweep(delays=(1.0, 14.0, 16.0, 30.0))
        assert results[1.0] is False
        assert results[14.0] is False
        assert results[16.0] is True
        assert results[30.0] is True


class TestResyncSweep:
    def test_success_tracks_probability(self):
        rates = resync_probability_sweep(
            probabilities=(0.0, 0.5, 1.0), trials=60, seed=3
        )
        assert rates[0.0] <= 0.1
        assert 0.3 <= rates[0.5] <= 0.7
        assert rates[1.0] >= 0.9
        assert rates[0.0] < rates[0.5] < rates[1.0]


class TestCensorHopSweep:
    def test_placement_invariance(self):
        from repro.eval.sweeps import censor_hop_sweep

        rates = censor_hop_sweep(hops=(1, 4, 8), trials=40, seed=5)
        values = list(rates.values())
        assert max(values) - min(values) <= 0.2
        assert all(0.3 <= value <= 0.75 for value in values)


class TestZeroWindow:
    def test_zero_window_trickles_and_evades(self):
        """A zero advertised window degrades to one-byte persist probes —
        the most extreme segmentation; the exchange still completes."""
        rates = window_size_sweep(windows=(0, 1), trials=3, seed=9)
        assert rates[0] == 1.0
        assert rates[1] == 1.0


class TestFormatting:
    def test_format_sweep(self):
        text = format_sweep("demo", {1: 0.5, 2: True})
        assert "demo" in text and "50%" in text and "True" in text


class TestImpairmentRobustnessSweep:
    def test_sweep_covers_all_countries_and_rates(self):
        from repro.eval.sweeps import impairment_robustness_sweep

        curves = impairment_robustness_sweep(
            loss_rates=(0.0, 0.05), trials=4, seed=0, net_seed=1
        )
        assert sorted(curves) == [
            "china", "india", "iran", "kazakhstan", "russia", "southkorea",
        ]
        for curve in curves.values():
            assert sorted(curve) == [0.0, 0.05]
            for rate in curve.values():
                assert 0.0 <= rate <= 1.0

    def test_sweep_is_deterministic(self):
        from repro.eval.sweeps import impairment_robustness_sweep

        kwargs = dict(loss_rates=(0.05,), trials=4, seed=3, net_seed=1)
        assert impairment_robustness_sweep(**kwargs) == impairment_robustness_sweep(
            **kwargs
        )

    def test_zero_loss_matches_unimpaired_measurement(self):
        """The 0.0 point of every curve is the plain success_rate — the
        sweep's baseline is the pre-impairment measurement, not a
        degenerate impaired one."""
        from repro.core import deployed_strategy
        from repro.eval.runner import success_rate
        from repro.eval.sweeps import ROBUSTNESS_CASES, impairment_robustness_sweep

        curves = impairment_robustness_sweep(
            loss_rates=(0.0,), countries=("india",), trials=5, seed=2
        )
        protocol, number = ROBUSTNESS_CASES["india"]
        direct = success_rate(
            "india", protocol, deployed_strategy(number), trials=5, seed=2
        )
        assert curves["india"][0.0] == direct

    def test_format_robustness(self):
        from repro.eval.sweeps import format_robustness

        text = format_robustness({"india": {0.0: 1.0, 0.05: 0.5}})
        assert "india" in text
        assert "5.0%" in text
