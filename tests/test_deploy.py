"""Tests for §8 deployment: mid-path strategies and per-client selection."""

import random

import pytest

from repro.core import deployed_strategy
from repro.deploy import (
    RECOMMENDED_STRATEGIES,
    GeoStrategySelector,
    StrategyMiddlebox,
    install_per_client,
    parse_cidr,
)
from repro.eval import run_trial
from repro.eval.runner import Trial


class TestCIDR:
    def test_parse_basic(self):
        network, mask = parse_cidr("10.0.0.0/8")
        assert network == 10 << 24
        assert mask == 0xFF000000

    def test_host_route(self):
        network, mask = parse_cidr("1.2.3.4")
        assert mask == 0xFFFFFFFF

    def test_network_bits_masked(self):
        network, _ = parse_cidr("10.1.2.3/16")
        assert network == (10 << 24) | (1 << 16)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            parse_cidr("10.0.0.0/40")
        with pytest.raises(ValueError):
            parse_cidr("300.0.0.0/8")


class TestSelector:
    def make(self):
        selector = GeoStrategySelector()
        selector.add_prefix("10.1.0.0/16", "china")
        selector.add_prefix("10.2.0.0/16", "kazakhstan")
        return selector

    def test_country_lookup(self):
        selector = self.make()
        assert selector.country_for("10.1.0.2") == "china"
        assert selector.country_for("10.2.9.9") == "kazakhstan"
        assert selector.country_for("8.8.8.8") is None

    def test_longest_prefix_wins(self):
        selector = self.make()
        selector.add_prefix("10.1.5.0/24", "iran")
        assert selector.country_for("10.1.5.1") == "iran"
        assert selector.country_for("10.1.6.1") == "china"

    def test_strategy_choice(self):
        selector = self.make()
        strategy = selector.strategy_for("10.1.0.2", "ftp")
        assert strategy is not None
        assert str(strategy) == str(deployed_strategy(RECOMMENDED_STRATEGIES[("china", "ftp")]))
        assert selector.strategy_for("8.8.8.8", "ftp") is None

    def test_recommended_table_covers_every_censored_pair(self):
        from repro.eval import COUNTRY_PROTOCOLS

        for country, protocols in COUNTRY_PROTOCOLS.items():
            for protocol in protocols:
                assert (country, protocol) in RECOMMENDED_STRATEGIES


class TestMidPathDeployment:
    def test_strategy_at_middlebox_evades(self):
        """Strategy 11 deployed at hop 6 (between GFW hop 3 and server)."""
        result = run_trial(
            "kazakhstan", "http", deployed_strategy(11), seed=1, strategy_at_hop=6
        )
        assert result.succeeded

    def test_china_strategy_at_middlebox(self):
        wins = sum(
            run_trial(
                "china", "http", deployed_strategy(1), seed=50 + i, strategy_at_hop=6
            ).succeeded
            for i in range(20)
        )
        assert wins >= 5  # ~50% strategy works from the middle of the path

    def test_invalid_hop_rejected(self):
        with pytest.raises(ValueError):
            run_trial(
                "china", "http", deployed_strategy(1), seed=1, strategy_at_hop=2
            )  # in front of the censor: the censor would see vanilla packets

    def test_rewrite_counter(self):
        trial = Trial(
            "kazakhstan", "http", deployed_strategy(11), seed=1, strategy_at_hop=6
        )
        trial.run()
        assert isinstance(trial.server_engine, StrategyMiddlebox)
        assert trial.server_engine.packets_rewritten >= 1

    def test_client_traffic_untouched(self):
        box = StrategyMiddlebox(deployed_strategy(11), random.Random(1))
        from repro.packets import make_tcp_packet

        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, flags="SA")
        assert box.process(packet, "c2s", None) == [packet]


class TestPerClientEngine:
    def run_with_selector(self, client_ip, seed=1):
        selector = GeoStrategySelector()
        selector.add_prefix("10.2.0.0/16", "kazakhstan")
        trial = Trial("kazakhstan", "http", None, seed=seed, client_ip=client_ip)
        engine = install_per_client(
            trial.server_host, selector, "http", random.Random(seed)
        )
        result = trial.run()
        return engine, result

    def test_censored_prefix_gets_strategy(self):
        engine, result = self.run_with_selector("10.2.0.7")
        assert result.succeeded
        assert any(engine.decisions.values())

    def test_other_clients_get_vanilla_tcp(self):
        """A client outside censored prefixes: no strategy applied (and the
        Kazakhstan censor still blocks it — it really was unprotected)."""
        engine, result = self.run_with_selector("10.1.0.7")
        assert list(engine.decisions.values()) == [None]
        assert not result.succeeded

    def test_two_concurrent_clients_different_countries(self):
        """One engine, one run, two overlapping clients behind different
        censors: each gets its own country's strategy, keyed by address."""
        from repro.fleet import (
            FleetMixEntry,
            FleetSpec,
            FleetWorld,
            flow_client_ip,
        )

        spec = FleetSpec(
            clients=2,
            seed=9,
            spacing=0.2,  # arrivals overlap well inside max_time
            mix=(
                FleetMixEntry("kazakhstan", "http"),
                FleetMixEntry("iran", "http"),
            ),
        )
        plans = spec.flow_plans()
        # Pin one client per country regardless of the weighted draw.
        plans = [
            plans[0].__class__(
                **{
                    **plans[0].__dict__,
                    "country": "kazakhstan",
                    "client_ip": flow_client_ip("kazakhstan", 0),
                }
            ),
            plans[1].__class__(
                **{
                    **plans[1].__dict__,
                    "country": "iran",
                    "client_ip": flow_client_ip("iran", 1),
                }
            ),
        ]
        world = FleetWorld(spec, plans=plans)
        records = world.run()

        assert [r["country"] for r in records] == ["kazakhstan", "iran"]
        assert all(r["succeeded"] for r in records)
        assert records[0]["strategy"] != records[1]["strategy"]
        by_country = {r["country"]: r for r in records}
        assert by_country["kazakhstan"]["client_ip"].startswith("10.2.")
        assert by_country["iran"]["client_ip"].startswith("10.4.")
