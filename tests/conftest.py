"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.netsim import Network, Scheduler
from repro.tcpstack import Host, SERVER_PERSONALITY, personality


class LinkedHosts:
    """A client/server pair wired through a Network, ready to exchange."""

    def __init__(
        self,
        middleboxes=(),
        client_os="ubuntu-18.04.1",
        seed=7,
        impairment=None,
        net_seed=0,
    ):
        self.scheduler = Scheduler()
        self.client = Host(
            "client", "10.0.0.1", self.scheduler, random.Random(seed), personality(client_os)
        )
        self.server = Host(
            "server", "10.0.0.2", self.scheduler, random.Random(seed + 1), SERVER_PERSONALITY
        )
        self.network = Network(
            self.scheduler,
            self.client,
            self.server,
            middleboxes,
            impairment=impairment,
            net_rng=random.Random(net_seed) if impairment is not None else None,
        )
        self.client.attach(self.network)
        self.server.attach(self.network)

    def run(self, until=30.0):
        """Drain the simulation."""
        self.network.run(until=until)
        return self.network.trace


@pytest.fixture
def linked_hosts():
    """Factory fixture building a wired client/server pair."""

    def build(middleboxes=(), client_os="ubuntu-18.04.1", seed=7, **kwargs):
        return LinkedHosts(
            middleboxes=middleboxes, client_os=client_os, seed=seed, **kwargs
        )

    return build


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return random.Random(1234)
