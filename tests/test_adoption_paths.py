"""Adoption-path integration tests: what a deploying operator would run.

Exercises the recommended per-(country, protocol) strategies end-to-end,
the Table2Cell reporting surface, and consistency between the reference
tables, workloads, and strategy library — the invariants a downstream
deployment depends on.
"""

import pytest

from repro.core import SERVER_STRATEGIES, deployed_strategy
from repro.deploy import RECOMMENDED_STRATEGIES
from repro.eval import (
    COUNTRY_PROTOCOLS,
    censored_workload,
    run_trial,
    success_rate,
)
from repro.eval.reference import TABLE2_CHINA, paper_rate
from repro.eval.table2 import Table2Cell


class TestRecommendedStrategies:
    @pytest.mark.parametrize(
        "country,protocol",
        [(c, p) for c, ps in COUNTRY_PROTOCOLS.items() for p in ps],
    )
    def test_recommendation_beats_baseline(self, country, protocol):
        """Every recommended strategy decisively beats no evasion."""
        number = RECOMMENDED_STRATEGIES[(country, protocol)]
        trials = 30
        recommended = success_rate(
            country, protocol, deployed_strategy(number), trials=trials, seed=4242
        )
        baseline = success_rate(country, protocol, None, trials=10, seed=4242)
        assert recommended >= baseline + 0.3, (country, protocol, number)

    def test_recommendations_reference_table2_winners(self):
        """Each recommendation's paper rate is the column maximum among
        the strategies Table 2 lists for that country. The SNI-era boxes
        (southkorea, russia) postdate the paper and have no Table 2 row;
        their grid lives in eval/sni_matrix.py."""
        for (country, protocol), number in RECOMMENDED_STRATEGIES.items():
            if country in ("southkorea", "russia"):
                continue
            chosen = paper_rate(country, number, protocol)
            assert chosen is not None, (country, protocol)
            if country == "china":
                best = max(TABLE2_CHINA[n][protocol] for n in range(1, 9))
                assert chosen >= best - 1, (country, protocol)


class TestReferenceConsistency:
    def test_every_censored_pair_has_workload(self):
        for country, protocols in COUNTRY_PROTOCOLS.items():
            for protocol in protocols:
                workload = censored_workload(country, protocol)
                assert workload, (country, protocol)

    def test_table2_china_rows_complete(self):
        for number, row in TABLE2_CHINA.items():
            assert set(row) == {"dns", "ftp", "http", "https", "smtp"}, number

    def test_strategy_numbers_match_library(self):
        assert set(TABLE2_CHINA) - {0} <= set(SERVER_STRATEGIES)

    def test_workloads_actually_trigger_censorship(self):
        """Each censored workload trips its censor (5 seeds, any hit)."""
        for country, protocols in COUNTRY_PROTOCOLS.items():
            for protocol in protocols:
                hit = any(
                    run_trial(country, protocol, None, seed=s).censored
                    for s in range(5)
                )
                assert hit, (country, protocol)


class TestTable2Cell:
    def test_percentage_and_delta(self):
        cell = Table2Cell("china", 1, "http", measured=0.515, paper=54)
        assert cell.measured_pct == 52
        assert cell.delta == -2

    def test_missing_paper_value(self):
        cell = Table2Cell("iran", 1, "http", measured=0.5, paper=None)
        assert cell.delta is None


class TestStrategyRecordSurface:
    def test_every_record_builds_three_variants(self):
        for number, record in SERVER_STRATEGIES.items():
            assert not record.strategy().is_noop()
            assert not record.deployed().is_noop()
            assert not record.compat().is_noop()

    def test_variant_names_identify_strategy(self):
        record = SERVER_STRATEGIES[5]
        assert record.strategy().name == "strategy-5"
        assert record.compat().name == "strategy-5-compat"

    def test_deployed_defaults_to_printed_form(self):
        record = SERVER_STRATEGIES[1]
        assert str(record.deployed()) == str(record.strategy())

    def test_strategy8_deployed_differs(self):
        record = SERVER_STRATEGIES[8]
        assert str(record.deployed()) != str(record.strategy())
        assert str(record.deployed()).count("tamper{TCP:window:replace:10}") == 4
