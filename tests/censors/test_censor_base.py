"""Unit tests for shared censor plumbing."""

from repro.censors import Censor, client_oriented_key, flow_key
from repro.packets import make_tcp_packet


class TestFlowKeys:
    def test_direction_independent(self):
        c2s = make_tcp_packet("10.0.0.1", "10.0.0.2", 4000, 80)
        s2c = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 4000)
        assert flow_key(c2s) == flow_key(s2c)

    def test_distinct_flows_distinct_keys(self):
        a = make_tcp_packet("10.0.0.1", "10.0.0.2", 4000, 80)
        b = make_tcp_packet("10.0.0.1", "10.0.0.2", 4001, 80)
        assert flow_key(a) != flow_key(b)

    def test_client_oriented_key_matches_packet_key(self):
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 4000, 80)
        assert client_oriented_key("10.0.0.1", 4000, "10.0.0.2", 80) == flow_key(packet)
        assert client_oriented_key("10.0.0.2", 80, "10.0.0.1", 4000) == flow_key(packet)


class TestInjectionHelpers:
    class Ctx:
        now = 0.0

        def __init__(self):
            self.injected = []
            self.records = []

        def inject(self, packet, toward):
            self.injected.append((packet, toward))

        def record(self, kind, packet=None, detail=""):
            self.records.append((kind, detail))

    def test_inject_rst_pair_addresses(self):
        censor = Censor()
        ctx = self.Ctx()
        censor.inject_rst_pair(
            ctx,
            client_ip="10.1.0.2",
            client_port=4000,
            server_ip="192.0.2.10",
            server_port=80,
            seq_to_client=111,
            seq_to_server=222,
        )
        assert len(ctx.injected) == 2
        to_client = next(p for p, t in ctx.injected if t == "client")
        to_server = next(p for p, t in ctx.injected if t == "server")
        assert to_client.src == "192.0.2.10" and to_client.dst == "10.1.0.2"
        assert to_client.tcp.seq == 111 and to_client.flags == "RA"
        assert to_server.src == "10.1.0.2" and to_server.dst == "192.0.2.10"
        assert to_server.tcp.seq == 222

    def test_record_censorship_counts(self):
        censor = Censor()
        ctx = self.Ctx()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        censor.record_censorship(ctx, packet, "why")
        censor.record_censorship(ctx, packet, "again")
        assert censor.censorship_events == 2
        assert ("censor", "why") in ctx.records

    def test_direction_helper(self):
        assert Censor.is_client_to_server("c2s")
        assert not Censor.is_client_to_server("s2c")
