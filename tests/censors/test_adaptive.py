"""Adaptive censor genomes: baseline fidelity, knob effects, validation."""

import pickle
import random

import pytest

from repro.censors.adaptive import (
    ADAPTIVE_COUNTRIES,
    CENSOR_PARAM_SPECS,
    CensorGenome,
    axis_probe_genomes,
    build_censor,
    seeded_censor_population,
)
from repro.eval.runner import Trial


def _trace_digest(trace):
    return [
        (ev.time, ev.kind, ev.location, str(ev.packet), ev.detail)
        for ev in trace.events
    ]


class TestBaselineFidelity:
    """A baseline genome must reproduce the calibrated censor exactly."""

    @pytest.mark.parametrize("country", ADAPTIVE_COUNTRIES)
    def test_baseline_trial_matches_default_censor(self, country):
        protocol = "https" if country in ("southkorea", "russia") else "http"
        for seed in (1, 2, 3):
            plain = Trial(country, protocol, seed=seed, capture_trace=True).run()
            adaptive = Trial(
                country,
                protocol,
                seed=seed,
                capture_trace=True,
                censor_params=CensorGenome.baseline(country).params,
            ).run()
            assert plain.outcome == adaptive.outcome
            assert plain.succeeded == adaptive.succeeded
            assert plain.censored == adaptive.censored
            assert _trace_digest(plain.trace) == _trace_digest(adaptive.trace)

    @pytest.mark.parametrize("country", ADAPTIVE_COUNTRIES)
    def test_baseline_flag(self, country):
        base = CensorGenome.baseline(country)
        assert base.is_baseline
        mutant = base.mutate(random.Random(1))
        assert not mutant.is_baseline


class TestKnobEffects:
    """Each decisive knob must actually change censor behaviour."""

    def test_resync_scale_zero_defeats_strategy_1(self):
        from repro.core import deployed_strategy

        strategy = deployed_strategy(1)
        params = {**CensorGenome.baseline("china").params, "resync_scale": 0.0}
        evaded = sum(
            Trial(
                "china", "http", server_strategy=strategy, seed=seed,
                censor_params=params,
            ).run().succeeded
            for seed in range(10)
        )
        baseline = sum(
            Trial("china", "http", server_strategy=strategy, seed=seed).run().succeeded
            for seed in range(10)
        )
        # Without resynchronization rules, the injected-RST desync never
        # happens and the forbidden request is seen in-stream.
        assert evaded == 0
        assert baseline > 0

    def test_payload_threshold_defeats_strategy_9(self):
        from repro.core import deployed_strategy

        strategy = deployed_strategy(9)
        base = Trial(
            "kazakhstan", "http", server_strategy=strategy, seed=1
        ).run()
        assert base.succeeded
        params = {
            **CensorGenome.baseline("kazakhstan").params,
            "payload_ignore_threshold": 8,
        }
        adapted = Trial(
            "kazakhstan", "http", server_strategy=strategy, seed=1,
            censor_params=params,
        ).run()
        # Three handshake payloads no longer convince the censor to give
        # up on the flow; the real GET is still matched.
        assert not adapted.succeeded

    def test_confirm_server_hello_off_defeats_strategy_12(self):
        from repro.core import deployed_strategy

        strategy = deployed_strategy(12)
        base = Trial(
            "southkorea", "https", server_strategy=strategy, seed=1
        ).run()
        assert base.succeeded
        params = {
            **CensorGenome.baseline("southkorea").params,
            "confirm_server_hello": False,
        }
        adapted = Trial(
            "southkorea", "https", server_strategy=strategy, seed=1,
            censor_params=params,
        ).run()
        assert not adapted.succeeded


class TestGenomeValidation:
    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            CensorGenome("china", {"no_such_knob": 1.0})

    def test_unknown_country_rejected(self):
        with pytest.raises(ValueError):
            CensorGenome.baseline("atlantis")

    def test_values_clamped_to_bounds(self):
        genome = CensorGenome("iran", {"blackhole_duration": 1e9})
        spec = {s.name: s for s in CENSOR_PARAM_SPECS["iran"]}
        assert genome.params["blackhole_duration"] == spec["blackhole_duration"].hi

    def test_canonical_key_is_sorted_json(self):
        genome = CensorGenome.baseline("india")
        key = genome.canonical_key()
        assert key.startswith('{"country": "india"') or '"india"' in key
        assert CensorGenome.from_dict(genome.as_dict()).canonical_key() == key

    def test_build_censor_unknown_country(self):
        with pytest.raises(ValueError):
            build_censor("atlantis")


class TestPopulationSeeding:
    @pytest.mark.parametrize("country", ADAPTIVE_COUNTRIES)
    def test_axis_probes_cover_every_param(self, country):
        probes = axis_probe_genomes(country)
        touched = set()
        base = CensorGenome.baseline(country)
        for probe in probes:
            changed = [
                name for name, value in probe.params.items()
                if value != base.params[name]
            ]
            assert len(changed) == 1  # one knob per probe
            touched.add(changed[0])
        assert touched == set(base.params)

    def test_seeded_population_starts_with_baseline(self):
        pop = seeded_censor_population("china", 6, random.Random(0))
        assert len(pop) == 6
        assert pop[0].is_baseline
        assert not any(p.is_baseline for p in pop[1:])

    def test_seeded_population_fills_with_mutants(self):
        probes = len(axis_probe_genomes("iran"))
        pop = seeded_censor_population("iran", probes + 5, random.Random(0))
        assert len(pop) == probes + 5

    def test_population_is_picklable(self):
        pop = seeded_censor_population("russia", 4, random.Random(0))
        clone = pickle.loads(pickle.dumps(pop))
        assert [g.canonical_key() for g in clone] == [
            g.canonical_key() for g in pop
        ]
