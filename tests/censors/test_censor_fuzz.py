"""Fuzz tests: censors must survive arbitrary generated strategies.

Geneva is "in essence a network fuzzer" (§2.2) — during evolution the
censor models see thousands of weird packet sequences. Whatever a random
strategy does, a trial must terminate with a valid outcome and the censor
must never crash or corrupt its own state.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Strategy
from repro.core.evolution import client_side_pool, server_side_pool
from repro.eval import run_trial

VALID_OUTCOMES = {"success", "reset", "blockpage", "garbled", "timeout"}


def random_strategy(seed: int, pool_factory=server_side_pool) -> Strategy:
    pool = pool_factory()
    rng = random.Random(seed)
    trees = [
        (pool.random_trigger(rng), pool.random_action(rng))
        for _ in range(rng.randint(1, 2))
    ]
    return Strategy(trees)


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_gfw_survives_random_server_strategies(seed):
    result = run_trial("china", "http", random_strategy(seed), seed=seed)
    assert result.outcome in VALID_OUTCOMES


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_kazakhstan_survives_random_server_strategies(seed):
    result = run_trial("kazakhstan", "http", random_strategy(seed), seed=seed)
    assert result.outcome in VALID_OUTCOMES


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_iran_survives_random_server_strategies(seed):
    result = run_trial("iran", "https", random_strategy(seed), seed=seed)
    assert result.outcome in VALID_OUTCOMES


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_india_survives_random_client_strategies(seed):
    result = run_trial(
        "india",
        "http",
        None,
        client_strategy=random_strategy(seed, client_side_pool),
        seed=seed,
    )
    assert result.outcome in VALID_OUTCOMES


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_gfw_ftp_box_survives_random_strategies(seed):
    """The FTP box has the most anomaly rules; fuzz it specifically."""
    result = run_trial("china", "ftp", random_strategy(seed), seed=seed)
    assert result.outcome in VALID_OUTCOMES


@given(st.integers(0, 100_000))
@settings(max_examples=15, deadline=None)
def test_censor_state_is_bounded(seed):
    """Per-trial flow tables never grow beyond the connections created."""
    from repro.eval.runner import Trial

    trial = Trial("china", "dns", random_strategy(seed), seed=seed)
    trial.run()
    for box in trial.censor.boxes.values():
        assert len(box.flows) <= 3  # at most the DNS retries
