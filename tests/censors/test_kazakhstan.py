"""Tests for Kazakhstan's in-path MITM censor model."""

from repro.core import Strategy, deployed_strategy
from repro.eval import run_trial


class TestCensorship:
    def test_forbidden_host_gets_blockpage(self):
        result = run_trial("kazakhstan", "http", None, seed=1)
        assert result.outcome == "blockpage"
        assert result.censored

    def test_request_intercepted_not_forwarded(self):
        """MITM: the forbidden request never reaches the server."""
        result = run_trial("kazakhstan", "http", None, seed=1)
        server_data = [
            e.packet
            for e in result.trace.events
            if e.kind == "recv" and e.location == "server" and e.packet.load
        ]
        assert server_data == []

    def test_benign_host_untouched(self):
        result = run_trial(
            "kazakhstan", "http", None, seed=1,
            workload={"path": "/", "host_header": "benign.example.com"},
        )
        assert result.succeeded

    def test_https_not_censored(self):
        """Kazakhstan's HTTPS interception is inactive (Table 2 note)."""
        result = run_trial("kazakhstan", "https", None, seed=1)
        assert result.succeeded

    def test_port_80_only(self):
        result = run_trial("kazakhstan", "http", None, seed=1, server_port=8080)
        assert result.succeeded


class TestEvasionStrategies:
    def test_strategy_8_window_reduction(self):
        assert run_trial("kazakhstan", "http", deployed_strategy(8), seed=2).succeeded

    def test_strategy_9_triple_load(self):
        assert run_trial("kazakhstan", "http", deployed_strategy(9), seed=2).succeeded

    def test_strategy_10_double_get(self):
        assert run_trial("kazakhstan", "http", deployed_strategy(10), seed=2).succeeded

    def test_strategy_11_null_flags(self):
        assert run_trial("kazakhstan", "http", deployed_strategy(11), seed=2).succeeded

    def test_two_loads_insufficient(self):
        """Strategy 9 needs exactly three payload copies (§5.3)."""
        two = Strategy.parse(
            "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate,)-| \\/"
        )
        assert not run_trial("kazakhstan", "http", two, seed=3).succeeded

    def test_four_loads_still_work(self):
        four = Strategy.parse(
            "[TCP:flags:SA]-tamper{TCP:load:corrupt}"
            "(duplicate(duplicate(duplicate,),),)-| \\/"
        )
        assert run_trial("kazakhstan", "http", four, seed=3).succeeded

    def test_single_get_insufficient(self):
        one = Strategy.parse(
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}-| \\/"
        )
        assert not run_trial("kazakhstan", "http", one, seed=3).succeeded

    def test_get_without_dot_fails(self):
        broken = Strategy.parse(
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1}(duplicate,)-| \\/"
        )
        assert not run_trial("kazakhstan", "http", broken, seed=3).succeeded

    def test_null_flags_variant_with_push_only(self):
        """§5.3: any flag combination avoiding FIN/RST/SYN/ACK works."""
        push_only = Strategy.parse(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/"
        )
        assert run_trial("kazakhstan", "http", push_only, seed=4).succeeded

    def test_mitm_duration_expires(self):
        """After ~15s the MITM interception lapses."""
        from repro.eval.runner import Trial, SERVER_IP
        from repro.apps import HTTPClient

        trial = Trial("kazakhstan", "http", None, seed=5)
        trial.client_app.start()
        trial.network.run(until=20.0)  # censorship + MITM window passes
        retry = HTTPClient(
            trial.client_host, SERVER_IP, 80,
            path="/", host_header="benign.example.com",
        )
        retry.start()
        trial.network.run(until=40.0)
        assert retry.succeeded
