"""Cross-segment ClientHello reassembly in the SNI censor boxes.

Drives :class:`repro.censors.sni.SNICensor` packet-by-packet through a
stub path context (the same idiom as the base-censor tests), covering the
reassembly paths the end-to-end trials can't isolate: one-byte segments,
reordered arrival, window expiry, the byte budget, RST purges, and the
strict/lenient split on ESNI and malformed hellos.
"""

import pytest

from repro.apps.tls import build_client_hello, build_server_hello
from repro.censors import (
    RUSSIA_KEYWORDS,
    SOUTHKOREA_KEYWORDS,
    SNICensor,
    russia_censor,
    southkorea_censor,
)
from repro.packets import make_tcp_packet

CLIENT = "10.5.0.2"
SERVER = "192.0.2.10"
CPORT = 40000

BLOCKED_KR = "blocked.example.kr"
BLOCKED_RU = "blocked.example.ru"


class Ctx:
    def __init__(self):
        self.now = 0.0
        self.injected = []
        self.records = []

    def inject(self, packet, toward):
        self.injected.append((packet, toward))

    def record(self, kind, packet=None, detail=""):
        self.records.append((kind, detail))

    def schedule(self, delay, callback):  # pragma: no cover - unused stub
        raise AssertionError("SNICensor must not schedule callbacks")


def syn(seq=100):
    return make_tcp_packet(CLIENT, SERVER, CPORT, 443, flags="S", seq=seq)


def c2s(seq, load):
    return make_tcp_packet(
        CLIENT, SERVER, CPORT, 443, flags="PA", seq=seq, ack=1, load=load
    )


def s2c(load, seq=1, ack=100):
    return make_tcp_packet(
        SERVER, CLIENT, 443, CPORT, flags="PA", seq=seq, ack=ack, load=load
    )


def feed_hello(censor, ctx, hello, chunk):
    """Send the SYN then the hello in ``chunk``-byte segments; return the
    per-segment forwarding decisions (True = passed)."""
    censor.process(syn(), "c2s", ctx)
    passed = []
    for start in range(0, len(hello), chunk):
        out = censor.process(c2s(101 + start, hello[start : start + chunk]), "c2s", ctx)
        passed.append(bool(out))
    return passed


class TestReassembly:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 64, 4096])
    def test_one_byte_segments_still_reassemble(self, chunk):
        """Client-side segmentation alone no longer evades: the box
        reassembles down to one-byte segments and fires on the full SNI."""
        censor = russia_censor()
        ctx = Ctx()
        passed = feed_hello(censor, ctx, build_client_hello(BLOCKED_RU), chunk)
        assert passed[-1] is False  # the completing segment is dropped
        assert censor.censorship_events == 1
        assert ("censor", "blocked-sni") in ctx.records

    def test_reordered_segments_reassemble(self):
        """Out-of-order arrival: the verdict fires only once the
        contiguous prefix covers the whole hello."""
        censor = russia_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_RU)
        censor.process(syn(), "c2s", ctx)
        mid = len(hello) // 2
        # Second half first: a gap, so the scan stays needs_more.
        assert censor.process(c2s(101 + mid, hello[mid:]), "c2s", ctx)
        assert censor.censorship_events == 0
        # First half completes the prefix: verdict.
        assert censor.process(c2s(101, hello[:mid]), "c2s", ctx) == []
        assert censor.censorship_events == 1

    def test_overlapping_retransmits_do_not_inflate_budget(self):
        censor = russia_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_RU)
        censor.process(syn(), "c2s", ctx)
        for _ in range(50):  # same segment retransmitted
            censor.process(c2s(101, hello[:10]), "c2s", ctx)
        state = next(iter(censor.flows.values()))
        assert state.buffered == 10
        assert censor.process(c2s(111, hello[10:]), "c2s", ctx) == []
        assert censor.censorship_events == 1

    def test_benign_sni_releases_the_flow(self):
        censor = russia_censor()
        ctx = Ctx()
        passed = feed_hello(censor, ctx, build_client_hello("example.org"), 7)
        assert all(passed)
        assert censor.censorship_events == 0
        assert not censor.flows  # state released on the benign verdict

    def test_window_expiry_evicts_state(self):
        """The tracking window anchors at the first SYN and never
        refreshes — bytes arriving after it lapses pass uninspected."""
        censor = russia_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_RU)
        censor.process(syn(), "c2s", ctx)
        ctx.now = censor.tracking_window + 0.1
        assert censor.process(c2s(101, hello), "c2s", ctx)
        assert censor.censorship_events == 0
        assert not censor.flows

    def test_reassembly_budget_overflow(self):
        censor = SNICensor(RUSSIA_KEYWORDS, reassembly_bytes=64, strict=False)
        ctx = Ctx()
        censor.process(syn(), "c2s", ctx)
        filler = bytes(128)
        assert censor.process(c2s(101, filler), "c2s", ctx)
        assert not censor.flows  # gave up, flow ignored from here on
        assert censor.censorship_events == 0


class TestStrictness:
    def test_strict_drops_esni_hello(self):
        """Russia's box: a complete hello with no plaintext SNI is
        dropped and the flow blackholed."""
        censor = russia_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_RU, encrypted_sni=True)
        passed = feed_hello(censor, ctx, hello, 64)
        assert passed[-1] is False
        assert ("censor", "strict-drop:esni") in ctx.records
        # Blackhole swallows the retransmission too.
        assert censor.process(c2s(101, hello[:64]), "c2s", ctx) == []

    def test_lenient_passes_esni_hello(self):
        censor = southkorea_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_KR, encrypted_sni=True)
        passed = feed_hello(censor, ctx, hello, 64)
        assert all(passed)
        assert censor.censorship_events == 0

    def test_strict_drops_garbage_on_tls_port(self):
        censor = russia_censor()
        ctx = Ctx()
        censor.process(syn(), "c2s", ctx)
        assert censor.process(c2s(101, b"GET / HTTP/1.1\r\n"), "c2s", ctx) == []
        assert ("censor", "strict-drop:invalid") in ctx.records

    def test_lenient_passes_garbage_on_tls_port(self):
        censor = southkorea_censor()
        ctx = Ctx()
        censor.process(syn(), "c2s", ctx)
        assert censor.process(c2s(101, b"GET / HTTP/1.1\r\n"), "c2s", ctx)
        assert censor.censorship_events == 0

    def test_blackhole_expires(self):
        censor = russia_censor()
        ctx = Ctx()
        feed_hello(censor, ctx, build_client_hello(BLOCKED_RU), 64)
        assert censor.process(c2s(101, b"x"), "c2s", ctx) == []
        ctx.now = censor.blackhole_duration + 1.0
        assert censor.process(syn(seq=900), "c2s", ctx)


class TestSouthKoreaConfirmation:
    def arm(self, censor, ctx):
        feed_hello(censor, ctx, build_client_hello(BLOCKED_KR), 64)
        assert censor.censorship_events == 0  # holds fire until confirmed
        state = next(iter(censor.flows.values()))
        assert state.armed

    def test_confirmed_serverhello_triggers_client_rst_burst(self):
        censor = southkorea_censor()
        ctx = Ctx()
        self.arm(censor, ctx)
        out = censor.process(s2c(build_server_hello(BLOCKED_KR)), "s2c", ctx)
        assert out == []  # the confirming ServerHello never arrives
        assert censor.censorship_events == 1
        assert len(ctx.injected) == censor.rst_count
        assert all(toward == "client" for _, toward in ctx.injected)
        assert all(p.flags == "RA" for p, _ in ctx.injected)

    def test_unparseable_serverhello_stands_down(self):
        """Record-split/segmented ServerHello: the one-shot confirmation
        parse fails and the box forgets the flow for good."""
        censor = southkorea_censor()
        ctx = Ctx()
        self.arm(censor, ctx)
        partial = build_server_hello(BLOCKED_KR)[:20]
        assert censor.process(s2c(partial), "s2c", ctx)
        assert censor.censorship_events == 0
        assert not censor.flows
        # Even a later, complete ServerHello is now ignored.
        assert censor.process(s2c(build_server_hello(BLOCKED_KR)), "s2c", ctx)
        assert censor.censorship_events == 0

    def test_rst_teardown_purges_flow_state(self):
        """The box trusts wire RSTs without checksum validation — an
        insertion RST (which the endpoints discard) clears its state."""
        censor = southkorea_censor()
        ctx = Ctx()
        self.arm(censor, ctx)
        rst = make_tcp_packet(CLIENT, SERVER, CPORT, 443, flags="RA", seq=500)
        assert censor.process(rst, "c2s", ctx)  # the RST itself is forwarded
        assert not censor.flows
        assert censor.process(s2c(build_server_hello(BLOCKED_KR)), "s2c", ctx)
        assert censor.censorship_events == 0

    def test_russia_ignores_rst_teardown(self):
        censor = russia_censor()
        ctx = Ctx()
        hello = build_client_hello(BLOCKED_RU)
        censor.process(syn(), "c2s", ctx)
        censor.process(c2s(101, hello[:40]), "c2s", ctx)
        rst = make_tcp_packet(CLIENT, SERVER, CPORT, 443, flags="RA", seq=500)
        censor.process(rst, "c2s", ctx)
        assert censor.flows  # state survives the insertion RST
        assert censor.process(c2s(141, hello[40:]), "c2s", ctx) == []
        assert censor.censorship_events == 1


class TestNonTlsTraffic:
    def test_other_ports_ignored(self):
        censor = russia_censor()
        ctx = Ctx()
        p = make_tcp_packet(CLIENT, SERVER, CPORT, 80, flags="S", seq=100)
        censor.process(p, "c2s", ctx)
        assert not censor.flows

    def test_non_tcp_passes(self):
        from repro.packets import make_udp_packet

        censor = russia_censor()
        ctx = Ctx()
        p = make_udp_packet(CLIENT, SERVER, CPORT, 443, load=b"quic?")
        assert censor.process(p, "c2s", ctx) == [p]
