"""Unit tests for the GFW's UDP DNS forged-response injector."""

import random

from repro.apps.dns import build_query
from repro.censors import CHINA_KEYWORDS, Censor
from repro.censors.gfw.dnsudp import DNSUDPInjector, LEMON_ADDRESS
from repro.packets import make_udp_packet


class FakeCtx:
    now = 0.0

    def __init__(self):
        self.injected = []

    def inject(self, packet, toward):
        self.injected.append((packet, toward))

    def record(self, *args, **kwargs):
        pass


def make_injector(miss_prob=0.0):
    return DNSUDPInjector(
        CHINA_KEYWORDS, censor=Censor(), rng=random.Random(1), miss_prob=miss_prob
    ), FakeCtx()


def udp_query(qname, txid=0x1234, dport=53):
    payload = build_query(qname, txid)[2:]  # strip the TCP length prefix
    return make_udp_packet("10.1.0.2", "8.8.8.8", 40000, dport, load=payload)


class TestInjector:
    def test_forbidden_query_injected(self):
        injector, ctx = make_injector()
        injector.observe(udp_query("www.wikipedia.org"), "c2s", ctx)
        assert injector.injections == 1
        packet, toward = ctx.injected[0]
        assert toward == "client"
        assert packet.is_udp and packet.sport == 53

    def test_forged_response_carries_query_txid(self):
        injector, ctx = make_injector()
        injector.observe(udp_query("www.wikipedia.org", txid=0xBEEF), "c2s", ctx)
        packet, _ = ctx.injected[0]
        assert int.from_bytes(packet.load[:2], "big") == 0xBEEF

    def test_forged_answer_is_lemon(self):
        from repro.apps.dns import parse_answer_address

        injector, ctx = make_injector()
        injector.observe(udp_query("www.wikipedia.org"), "c2s", ctx)
        packet, _ = ctx.injected[0]
        framed = len(packet.load).to_bytes(2, "big") + packet.load
        assert parse_answer_address(framed) == LEMON_ADDRESS

    def test_benign_query_ignored(self):
        injector, ctx = make_injector()
        injector.observe(udp_query("benign.example.com"), "c2s", ctx)
        assert injector.injections == 0

    def test_non_dns_port_ignored(self):
        injector, ctx = make_injector()
        injector.observe(udp_query("www.wikipedia.org", dport=5353), "c2s", ctx)
        assert injector.injections == 0

    def test_server_direction_ignored(self):
        injector, ctx = make_injector()
        injector.observe(udp_query("www.wikipedia.org"), "s2c", ctx)
        assert injector.injections == 0

    def test_garbage_payload_ignored(self):
        injector, ctx = make_injector()
        garbage = make_udp_packet("10.1.0.2", "8.8.8.8", 40000, 53, load=b"\x01\x02")
        injector.observe(garbage, "c2s", ctx)
        assert injector.injections == 0

    def test_miss_probability(self):
        injector, ctx = make_injector(miss_prob=1.0)
        injector.observe(udp_query("www.wikipedia.org"), "c2s", ctx)
        assert injector.injections == 0
