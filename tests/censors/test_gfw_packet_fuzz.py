"""Property test: GFW boxes survive arbitrary packet sequences.

The real GFW processes adversarial traffic continuously; the model must
never raise or leak unbounded state regardless of the flag/seq/payload
soup thrown at it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.censors import CHINA_KEYWORDS, Censor, match_http
from repro.censors.gfw.box import ProtocolBox
from repro.censors.gfw.profiles import CHINA_PROFILES
from repro.packets import bits_to_flags, make_tcp_packet

CLIENT = "10.1.0.2"
SERVER = "192.0.2.10"


class FuzzCtx:
    now = 0.0

    def __init__(self):
        self.injections = 0

    def inject(self, packet, toward):
        self.injections += 1

    def record(self, *args, **kwargs):
        pass


packet_strategy = st.tuples(
    st.booleans(),                      # direction: client -> server?
    st.integers(0, 255),                # flag bits
    st.integers(0, 2**32 - 1),          # seq
    st.integers(0, 2**32 - 1),          # ack
    st.binary(max_size=40),             # payload
)


@given(st.lists(packet_strategy, min_size=1, max_size=25), st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_box_never_crashes_on_arbitrary_sequences(packets, seed):
    box = ProtocolBox(
        CHINA_PROFILES["http"],
        CHINA_KEYWORDS,
        match_http,
        random.Random(seed),
        Censor(),
    )
    ctx = FuzzCtx()
    for from_client, flag_bits, seq, ack, load in packets:
        if from_client:
            packet = make_tcp_packet(
                CLIENT, SERVER, 41000, 80,
                flags=bits_to_flags(flag_bits), seq=seq, ack=ack, load=load,
            )
            box.observe(packet, "c2s", ctx)
        else:
            packet = make_tcp_packet(
                SERVER, CLIENT, 80, 41000,
                flags=bits_to_flags(flag_bits), seq=seq, ack=ack, load=load,
            )
            box.observe(packet, "s2c", ctx)
    # One 4-tuple in play: at most one TCB, and injections come in pairs.
    assert len(box.flows) <= 1
    assert ctx.injections % 2 == 0


@given(st.lists(packet_strategy, min_size=1, max_size=15), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_all_five_boxes_survive_via_gfw(packets, seed):
    from repro.censors import GreatFirewall

    gfw = GreatFirewall(rng=random.Random(seed))
    ctx = FuzzCtx()
    for from_client, flag_bits, seq, ack, load in packets:
        if from_client:
            packet = make_tcp_packet(
                CLIENT, SERVER, 41000, 80,
                flags=bits_to_flags(flag_bits), seq=seq, ack=ack, load=load,
            )
            out = gfw.process(packet, "c2s", ctx)
        else:
            packet = make_tcp_packet(
                SERVER, CLIENT, 80, 41000,
                flags=bits_to_flags(flag_bits), seq=seq, ack=ack, load=load,
            )
            out = gfw.process(packet, "s2c", ctx)
        assert out == [packet]  # on-path: always forwards
