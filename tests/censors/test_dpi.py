"""Tests for the DPI classifiers shared by the censor models."""

from repro.apps.dns import build_query
from repro.apps.tls import build_client_hello
from repro.censors import (
    CHINA_KEYWORDS,
    INDIA_KEYWORDS,
    looks_like_http_get,
    match_dns,
    match_ftp,
    match_http,
    match_https,
    match_smtp,
)


class TestHTTP:
    def test_keyword_in_url_forbidden(self):
        data = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n"
        assert match_http(data, CHINA_KEYWORDS) is True

    def test_benign_get(self):
        data = b"GET /?q=kittens HTTP/1.1\r\nHost: benign.example\r\n\r\n"
        assert match_http(data, CHINA_KEYWORDS) is False

    def test_forbidden_host_header(self):
        data = b"GET / HTTP/1.1\r\nHost: blocked.example.in\r\n\r\n"
        assert match_http(data, INDIA_KEYWORDS) is True

    def test_not_http_returns_none(self):
        assert match_http(b"\x16\x03\x03...", CHINA_KEYWORDS) is None
        assert match_http(b"RETR file\r\n", CHINA_KEYWORDS) is None

    def test_segmented_request_unrecognized(self):
        """The first 10 bytes of a request have no complete request line."""
        data = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"
        assert match_http(data[:10], CHINA_KEYWORDS) is None
        assert match_http(data[10:], CHINA_KEYWORDS) is None

    def test_get_prefix_matcher(self):
        assert looks_like_http_get(b"GET / HTTP1.")
        assert looks_like_http_get(b"GET / HTTP/1.1\r\n")
        assert not looks_like_http_get(b"GET / HTTP1")  # missing "."
        assert not looks_like_http_get(b"POST / HTTP/1.1")
        assert not looks_like_http_get(b"\x99\x88random")


class TestHTTPS:
    def test_forbidden_sni(self):
        hello = build_client_hello("www.wikipedia.org")
        assert match_https(hello, CHINA_KEYWORDS) is True

    def test_benign_sni(self):
        hello = build_client_hello("benign.example.com")
        assert match_https(hello, CHINA_KEYWORDS) is False

    def test_truncated_hello_none(self):
        hello = build_client_hello("www.wikipedia.org")
        assert match_https(hello[:15], CHINA_KEYWORDS) is None

    def test_non_tls_none(self):
        assert match_https(b"GET / HTTP/1.1", CHINA_KEYWORDS) is None


class TestDNS:
    def test_forbidden_qname(self):
        assert match_dns(build_query("www.wikipedia.org", 9), CHINA_KEYWORDS) is True

    def test_benign_qname(self):
        assert match_dns(build_query("benign.example.com", 9), CHINA_KEYWORDS) is False

    def test_segment_none(self):
        query = build_query("www.wikipedia.org", 9)
        assert match_dns(query[:8], CHINA_KEYWORDS) is None


class TestFTP:
    def test_forbidden_retr(self):
        assert match_ftp(b"RETR ultrasurf.txt\r\n", CHINA_KEYWORDS) is True

    def test_benign_commands(self):
        assert match_ftp(b"USER anonymous\r\n", CHINA_KEYWORDS) is False
        assert match_ftp(b"RETR notes.txt\r\n", CHINA_KEYWORDS) is False

    def test_segmented_retr_not_matched(self):
        assert match_ftp(b"RETR ultra", CHINA_KEYWORDS) is False  # arg incomplete
        assert match_ftp(b"surf.txt\r\n", CHINA_KEYWORDS) is None  # no verb

    def test_non_ftp_none(self):
        assert match_ftp(b"GARBAGE LINE\r\n", CHINA_KEYWORDS) is None


class TestSMTP:
    def test_forbidden_recipient(self):
        assert match_smtp(b"RCPT TO:<xiazai@upup.info>\r\n", CHINA_KEYWORDS) is True

    def test_case_insensitive_recipient(self):
        assert match_smtp(b"RCPT TO:<XIAZAI@UPUP.INFO>\r\n", CHINA_KEYWORDS) is True

    def test_benign_recipient(self):
        assert match_smtp(b"RCPT TO:<friend@example.org>\r\n", CHINA_KEYWORDS) is False

    def test_other_commands_benign(self):
        assert match_smtp(b"HELO me\r\nMAIL FROM:<a@b.c>\r\n", CHINA_KEYWORDS) is False

    def test_non_smtp_none(self):
        assert match_smtp(b"???\r\n", CHINA_KEYWORDS) is None
