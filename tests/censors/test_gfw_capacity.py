"""Tests for the GFW's bounded flow table (scale shortcuts, §2.1)."""

import random

from repro.censors import CHINA_KEYWORDS, Censor, match_http
from repro.censors.gfw.box import ProtocolBox
from repro.censors.gfw.profiles import BoxProfile
from repro.packets import make_tcp_packet

FORBIDDEN = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"


class FakeCtx:
    now = 0.0

    def __init__(self):
        self.injected = []

    def inject(self, packet, toward):
        self.injected.append((packet, toward))

    def record(self, *args, **kwargs):
        pass


def make_box(max_flows=None):
    profile = BoxProfile(protocol="http", miss_prob=0.0)
    box = ProtocolBox(
        profile, CHINA_KEYWORDS, match_http, random.Random(1), Censor(),
        max_flows=max_flows,
    )
    return box, FakeCtx()


def open_flow(box, ctx, client_port, seq=1000):
    syn = make_tcp_packet("10.1.0.2", "192.0.2.10", client_port, 80, flags="S", seq=seq)
    box.observe(syn, "c2s", ctx)
    synack = make_tcp_packet("192.0.2.10", "10.1.0.2", 80, client_port, flags="SA",
                             seq=5000, ack=seq + 1)
    box.observe(synack, "s2c", ctx)
    ack = make_tcp_packet("10.1.0.2", "192.0.2.10", client_port, 80, flags="A",
                          seq=seq + 1, ack=5001)
    box.observe(ack, "c2s", ctx)


class TestCapacity:
    def test_unbounded_by_default(self):
        box, ctx = make_box()
        for port in range(40000, 40100):
            open_flow(box, ctx, port)
        assert len(box.flows) == 100
        assert box.evictions == 0

    def test_oldest_flow_evicted(self):
        box, ctx = make_box(max_flows=10)
        for port in range(40000, 40020):
            open_flow(box, ctx, port)
        assert len(box.flows) == 10
        assert box.evictions == 10

    def test_state_exhaustion_enables_evasion(self):
        """Flooding the box with SYNs evicts a real flow's TCB; the
        subsequent forbidden request sails through (the box fails open)."""
        box, ctx = make_box(max_flows=8)
        open_flow(box, ctx, 41000, seq=9000)
        # SYN flood from other "connections".
        for port in range(42000, 42020):
            syn = make_tcp_packet("10.1.0.9", "192.0.2.10", port, 80, flags="S", seq=1)
            box.observe(syn, "c2s", ctx)
        # The original flow's TCB is gone; DPI never fires.
        data = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA",
            seq=9001, ack=5001, load=FORBIDDEN,
        )
        box.observe(data, "c2s", ctx)
        assert ctx.injected == []

    def test_without_flood_same_request_is_censored(self):
        box, ctx = make_box(max_flows=8)
        open_flow(box, ctx, 41000, seq=9000)
        data = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA",
            seq=9001, ack=5001, load=FORBIDDEN,
        )
        box.observe(data, "c2s", ctx)
        assert len(ctx.injected) == 2
