"""Tests for Iran's blackholing censor model."""

from repro.core import deployed_strategy
from repro.eval import run_trial


class TestIran:
    def test_http_blackholed(self):
        result = run_trial("iran", "http", None, seed=1)
        assert not result.succeeded
        assert result.outcome == "timeout"  # blackhole: client just times out
        assert result.censored

    def test_https_blackholed_by_sni(self):
        result = run_trial("iran", "https", None, seed=1)
        assert not result.succeeded
        assert result.censored

    def test_benign_traffic_untouched(self):
        result = run_trial(
            "iran", "http", None, seed=1,
            workload={"path": "/", "host_header": "benign.example.com"},
        )
        assert result.succeeded

    def test_default_ports_only(self):
        result = run_trial("iran", "http", None, seed=1, server_port=8080)
        assert result.succeeded
        result = run_trial("iran", "https", None, seed=1, server_port=8443)
        assert result.succeeded

    def test_offending_packet_dropped_in_path(self):
        """In-path censor: the forbidden request never reaches the server."""
        result = run_trial("iran", "http", None, seed=2)
        server_received = [
            e.packet
            for e in result.trace.events
            if e.kind == "recv" and e.location == "server" and e.packet.load
        ]
        assert server_received == []

    def test_subsequent_packets_blackholed(self):
        result = run_trial("iran", "http", None, seed=3)
        drops = [
            e for e in result.trace.events
            if e.kind == "drop" and "blackholed" in e.detail
        ]
        assert drops  # retransmissions eaten too

    def test_dns_over_tcp_not_censored(self):
        """Contrary to 2013 findings, Iran no longer censors DNS-over-TCP."""
        result = run_trial(
            "iran", "dns", None, seed=4, workload={"qname": "youtube.com"}
        )
        assert result.succeeded

    def test_window_reduction_evades_http_and_https(self):
        for protocol in ("http", "https"):
            result = run_trial("iran", protocol, deployed_strategy(8), seed=5)
            assert result.succeeded, protocol


class TestBlackholeExpiry:
    def test_blackhole_expires_after_sixty_seconds(self):
        """Unit-level: packets on a blackholed flow pass once 60s elapse."""
        from repro.censors import IranCensor
        from repro.packets import make_tcp_packet

        class Ctx:
            now = 0.0

            def inject(self, packet, toward):
                raise AssertionError("iran never injects")

            def record(self, *args, **kwargs):
                pass

        censor = IranCensor()
        ctx = Ctx()
        forbidden = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA", seq=1, ack=1,
            load=b"GET / HTTP/1.1\r\nHost: youtube.com\r\n\r\n",
        )
        assert censor.process(forbidden, "c2s", ctx) == []
        benign = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA", seq=50, ack=1,
            load=b"GET /ok HTTP/1.1\r\nHost: benign.example.com\r\n\r\n",
        )
        ctx.now = 30.0
        assert censor.process(benign, "c2s", ctx) == []  # still blackholed
        ctx.now = 61.0
        assert censor.process(benign, "c2s", ctx) == [benign]

    def test_server_direction_never_blackholed(self):
        from repro.censors import IranCensor
        from repro.packets import make_tcp_packet

        class Ctx:
            now = 0.0

            def inject(self, packet, toward):
                pass

            def record(self, *args, **kwargs):
                pass

        censor = IranCensor()
        ctx = Ctx()
        forbidden = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA", seq=1, ack=1,
            load=b"GET / HTTP/1.1\r\nHost: youtube.com\r\n\r\n",
        )
        censor.process(forbidden, "c2s", ctx)
        response = make_tcp_packet(
            "192.0.2.10", "10.1.0.2", 80, 41000, flags="PA", seq=1, ack=40,
            load=b"HTTP/1.1 200 OK\r\n\r\n",
        )
        assert censor.process(response, "s2c", ctx) == [response]
