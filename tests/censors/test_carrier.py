"""Tests for the cellular carrier middlebox models (§7)."""

from repro.censors.carrier import att_box, tmobile_box, wifi_box
from repro.core import deployed_strategy
from repro.eval import run_trial


def compat(strategy_number, box):
    boxes = [box] if box is not None else []
    return run_trial(
        None, "http", deployed_strategy(strategy_number), seed=2,
        client_side_boxes=boxes,
    ).succeeded


class TestWifi:
    def test_all_simopen_strategies_work(self):
        for number in (1, 2, 3):
            assert compat(number, wifi_box()), number


class TestTMobile:
    def test_breaks_strategies_1_and_3(self):
        assert not compat(1, tmobile_box())
        assert not compat(3, tmobile_box())

    def test_strategy_2_survives(self):
        """T-Mobile only filters bare SYNs; the payload SYN passes."""
        assert compat(2, tmobile_box())

    def test_non_simopen_strategies_survive(self):
        for number in (4, 6, 7, 8):
            assert compat(number, tmobile_box()), number

    def test_drop_counter(self):
        box = tmobile_box()
        compat(1, box)
        assert box.dropped >= 1


class TestATT:
    def test_breaks_all_simopen_strategies(self):
        for number in (1, 2, 3):
            assert not compat(number, att_box()), number

    def test_non_simopen_strategies_survive(self):
        for number in (4, 6, 7, 8, 11):
            assert compat(number, att_box()), number

    def test_reset_clears_counter(self):
        box = att_box()
        compat(1, box)
        assert box.dropped > 0
        box.reset()
        assert box.dropped == 0
