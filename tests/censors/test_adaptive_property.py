"""Property tests: genome operators stay canonical, bounded, picklable."""

import pickle
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.censors.adaptive import (
    ADAPTIVE_COUNTRIES,
    CensorGenome,
    _spec_map,
)

countries = st.sampled_from(ADAPTIVE_COUNTRIES)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _random_genome(country, seed):
    rng = random.Random(seed)
    genome = CensorGenome.baseline(country)
    for _ in range(rng.randrange(4)):
        genome = genome.mutate(rng)
    return genome


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(country=countries, seed=seeds)
def test_mutate_crossover_roundtrip_pickle_and_canonical(country, seed):
    """mutate/crossover products survive pickle with identical canonical keys."""
    rng = random.Random(seed)
    a = _random_genome(country, seed)
    b = _random_genome(country, seed ^ 0x5DEECE66D)
    for genome in (a, b, a.mutate(rng), a.crossover(b, rng)):
        clone = pickle.loads(pickle.dumps(genome))
        assert clone.canonical_key() == genome.canonical_key()
        assert clone.params == genome.params
        assert clone.is_baseline == genome.is_baseline


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(country=countries, seed=seeds)
def test_canonical_key_independent_of_param_order(country, seed):
    """Reversed-order param dicts canonicalize to the same key."""
    genome = _random_genome(country, seed)
    shuffled = dict(reversed(list(genome.params.items())))
    assert CensorGenome(country, shuffled).canonical_key() == genome.canonical_key()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(country=countries, seed=seeds, operations=st.integers(min_value=1, max_value=5))
def test_mutation_stays_in_bounds(country, seed, operations):
    genome = CensorGenome.baseline(country).mutate(
        random.Random(seed), operations=operations
    )
    for name, spec in _spec_map(country).items():
        value = genome.params[name]
        if spec.kind == "bool":
            assert isinstance(value, bool)
        else:
            assert spec.lo <= value <= spec.hi


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(country=countries, seed=seeds)
def test_crossover_takes_every_param_from_a_parent(country, seed):
    rng = random.Random(seed)
    a = _random_genome(country, seed)
    b = _random_genome(country, seed ^ 0xDEADBEEF)
    child = a.crossover(b, rng)
    for name, value in child.params.items():
        assert value in (a.params[name], b.params[name])


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(country=countries, seed=seeds)
def test_same_seed_same_mutation(country, seed):
    """Genome operators are pure functions of the RNG stream."""
    base = CensorGenome.baseline(country)
    first = base.mutate(random.Random(seed))
    second = base.mutate(random.Random(seed))
    assert first.canonical_key() == second.canonical_key()
