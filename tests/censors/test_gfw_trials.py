"""Trial-level GFW behaviour: per-protocol boxes, rules 1–3, Table 2 shape.

Statistical assertions use generous tolerances; the exact Table 2 numbers
are regenerated (with more trials) by the benchmark suite.
"""

import pytest

from repro.core import deployed_strategy
from repro.eval import run_trial, success_rate


def rate(protocol, number, trials=80, seed=0, **kwargs):
    strategy = None if number == 0 else deployed_strategy(number)
    return success_rate("china", protocol, strategy, trials=trials, seed=seed, **kwargs)


class TestBaselines:
    def test_all_protocols_censored_without_evasion(self):
        for protocol in ("dns", "ftp", "http", "https"):
            assert rate(protocol, 0, trials=30, seed=11) <= 0.15, protocol

    def test_smtp_censorship_is_flaky(self):
        """The GFW's SMTP box misses roughly a quarter of requests."""
        measured = rate("smtp", 0, trials=120, seed=11)
        assert 0.12 <= measured <= 0.40

    def test_benign_requests_unaffected(self):
        for protocol in ("http", "https", "dns", "ftp", "smtp"):
            result = run_trial(
                "china", protocol, None, seed=13,
                workload=__import__("repro.eval", fromlist=["benign_workload"]).benign_workload(protocol),
            )
            assert result.succeeded, protocol

    def test_censorship_not_port_specific(self):
        """The GFW censors regardless of the server port (§6)."""
        result = run_trial("china", "http", None, seed=14, server_port=8080)
        assert not result.succeeded
        assert result.censored


class TestResyncRules:
    @pytest.mark.slow
    def test_rule2_rst_resync_not_for_https(self):
        """Strategy 7 (RST-based) works for HTTP but not HTTPS."""
        assert rate("http", 7, seed=21) > 0.35
        assert rate("https", 7, seed=21) < 0.15

    @pytest.mark.slow
    def test_rule1_payload_resync_works_for_https(self):
        """Strategy 6 (payload-based) works even for HTTPS."""
        assert rate("https", 6, seed=22) > 0.35

    @pytest.mark.slow
    def test_rule3_corrupt_ack_is_ftp_only(self):
        """Strategy 4 helps FTP but not HTTP/HTTPS."""
        assert rate("ftp", 4, seed=23) > 0.18
        assert rate("http", 4, seed=23) < 0.15
        assert rate("https", 4, seed=23) < 0.15

    @pytest.mark.slow
    def test_strategy5_ftp_nearly_always_works(self):
        assert rate("ftp", 5, seed=24) > 0.85

    @pytest.mark.slow
    def test_dns_retries_amplify(self):
        single = rate("dns", 1, seed=25, dns_tries=1)
        tripled = rate("dns", 1, seed=25, dns_tries=3)
        assert tripled > single + 0.2


class TestSegmentation:
    @pytest.mark.slow
    def test_http_box_reassembles(self):
        assert rate("http", 8, seed=31) < 0.15

    @pytest.mark.slow
    def test_smtp_box_cannot_reassemble(self):
        assert rate("smtp", 8, seed=31) > 0.9

    @pytest.mark.slow
    def test_ftp_box_flaky_reassembly(self):
        measured = rate("ftp", 8, seed=31, trials=120)
        assert 0.3 <= measured <= 0.65


class TestMultiBox:
    def test_boxes_fail_open(self):
        """A flow the GFW never saw a SYN for is never censored."""
        import random

        from repro.censors import GreatFirewall
        from repro.netsim import PathContext
        from repro.packets import make_tcp_packet

        class Ctx:
            now = 0.0

            def inject(self, packet, toward):
                raise AssertionError("must not inject")

            def record(self, *a, **k):
                pass

        gfw = GreatFirewall(rng=random.Random(1))
        data = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 5555, 80, flags="PA", seq=1, ack=1,
            load=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        gfw.process(data, "c2s", Ctx())
        assert gfw.censorship_events == 0

    def test_only_matching_box_censors(self):
        """An HTTP request trips the HTTP box; the other boxes stay quiet."""
        from repro.eval.runner import Trial

        trial = Trial("china", "http", None, seed=41)
        trial.run()
        gfw = trial.censor
        assert gfw.box("http").censor_count == 1
        for protocol in ("dns", "ftp", "https", "smtp"):
            assert gfw.box(protocol).censor_count == 0, protocol

    def test_every_box_tracks_every_flow(self):
        from repro.eval.runner import Trial

        trial = Trial("china", "http", None, seed=42)
        trial.run()
        for protocol in ("dns", "ftp", "http", "https", "smtp"):
            assert len(trial.censor.box(protocol).flows) == 1, protocol
