"""Regression tests: retransmitted packets must not double-trigger censors.

The impairment layer makes retransmission routine, so every censor model
now sees duplicate copies of trigger packets on ordinary trials. The
paper's models already imply the right behaviour — the GFW advances its
tracked sequence number past the trigger (making the retransmission
invisible / the flow ignored), and Iran's blackhole drops without
re-recording — but nothing pinned it. These tests do.
"""

import random

from repro.censors import CHINA_KEYWORDS, Censor, IranCensor, match_http
from repro.censors.gfw.box import MODE_IGNORED, MODE_RESYNC, MODE_TRACKING, ProtocolBox
from repro.censors.gfw.profiles import EVENT_RST, BoxProfile
from repro.eval.runner import Trial
from repro.packets import make_tcp_packet

CLIENT = "10.1.0.2"
SERVER = "192.0.2.10"
CPORT = 40000

FORBIDDEN_HTTP = b"GET / HTTP/1.1\r\nHost: youtube.com\r\n\r\n"
FORBIDDEN_GFW = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"


class FakeCtx:
    def __init__(self):
        self.now = 0.0
        self.injected = []
        self.recorded = []

    def inject(self, packet, toward):
        self.injected.append((packet, toward))

    def record(self, kind, packet=None, detail=""):
        self.recorded.append((kind, detail))


def make_box(**profile_overrides):
    profile_overrides.setdefault("miss_prob", 0.0)
    profile = BoxProfile(
        protocol="http",
        event_probs=profile_overrides.pop("event_probs", {}),
        combo_probs=profile_overrides.pop("combo_probs", {}),
        **profile_overrides,
    )
    censor = Censor()
    box = ProtocolBox(profile, CHINA_KEYWORDS, match_http, random.Random(1), censor)
    return box, FakeCtx()


def c2s(flags="A", seq=1001, ack=5001, load=b"", sport=CPORT, dport=80):
    return make_tcp_packet(CLIENT, SERVER, sport, dport, flags=flags, seq=seq, ack=ack, load=load)


def s2c(flags="SA", seq=5000, ack=1001, load=b""):
    return make_tcp_packet(SERVER, CLIENT, 80, CPORT, flags=flags, seq=seq, ack=ack, load=load)


def handshake(box, ctx):
    box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
    box.observe(s2c("SA"), "s2c", ctx)
    box.observe(c2s("A"), "c2s", ctx)
    return list(box.flows.values())[0]


class TestGFWRetransmittedTrigger:
    def test_trigger_retransmission_censors_once(self):
        box, ctx = make_box()
        tcb = handshake(box, ctx)
        trigger = c2s("PA", load=FORBIDDEN_GFW)
        box.observe(trigger, "c2s", ctx)
        assert box.censor_count == 1
        assert tcb.mode == MODE_IGNORED
        injected_before = len(ctx.injected)
        # An unmodified client never saw the censor's RSTs in time and
        # retransmits the request byte-for-byte.
        box.observe(c2s("PA", load=FORBIDDEN_GFW), "c2s", ctx)
        assert box.censor_count == 1
        assert len(ctx.injected) == injected_before

    def test_uncensored_retransmission_stays_invisible(self):
        """A benign data packet retransmitted after its bytes were
        tracked is desynced from client_next and never re-inspected —
        retransmission cannot make previously-clean bytes trigger."""
        box, ctx = make_box(reassembly_fail_prob=1.0)
        tcb = handshake(box, ctx)
        benign = b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n"
        box.observe(c2s("PA", load=benign), "c2s", ctx)
        tracked = tcb.client_next
        box.observe(c2s("PA", load=benign), "c2s", ctx)  # dup: seq < client_next
        assert tcb.client_next == tracked
        assert box.censor_count == 0

    def test_retransmitted_server_rst_does_not_reenter_resync(self):
        """After resync capture on a client packet, a *duplicate* of the
        server RST that originally triggered resync must not flip the box
        back into resync against the now-tracked flow."""
        box, ctx = make_box(event_probs={EVENT_RST: 1.0})
        tcb = handshake(box, ctx)
        rst = s2c("R", seq=5001, ack=0)
        box.observe(rst, "s2c", ctx)
        assert tcb.mode == MODE_RESYNC
        # Client data captures the resync and is inspected (benign here).
        box.observe(c2s("PA", load=b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n"), "c2s", ctx)
        assert tcb.mode == MODE_TRACKING
        synced = tcb.client_next
        # The RST retransmission fires the anomaly again -> resync again,
        # but the next client packet re-captures at the same sequence:
        # the tracked position cannot drift from duplicate anomalies.
        box.observe(rst.copy(), "s2c", ctx)
        next_seq = synced
        box.observe(c2s("A", seq=next_seq, ack=5001), "c2s", ctx)
        assert tcb.mode == MODE_TRACKING
        assert tcb.client_next == synced
        assert box.censor_count == 0


class TestIranBlackholeRetransmission:
    def test_blackholed_retransmissions_not_recounted(self):
        censor = IranCensor()
        ctx = FakeCtx()
        syn = c2s("S", seq=1000, ack=0)
        assert censor.process(syn, "c2s", ctx) == [syn]
        trigger = c2s("PA", load=FORBIDDEN_HTTP)
        assert censor.process(trigger, "c2s", ctx) == []
        assert censor.censorship_events == 1
        # The client's retransmissions of the same request are dropped by
        # the blackhole but never counted as fresh censorship events.
        for _ in range(4):
            assert censor.process(c2s("PA", load=FORBIDDEN_HTTP), "c2s", ctx) == []
        assert censor.censorship_events == 1
        drops = [d for d in ctx.recorded if d == ("drop", "blackholed")]
        assert len(drops) == 4

    def test_impaired_trial_counts_one_event(self):
        """End-to-end: under loss the trigger request is retransmitted,
        yet a censored trial still records exactly one censorship event.
        (Some net seeds lose the trigger before the censor ever sees it —
        those trials legitimately record zero.)"""
        censored_runs = 0
        for net_seed in (1, 2, 3, 4):
            trial = Trial(
                "iran", "http", None, seed=2,
                impairment={"loss": 0.1}, net_seed=net_seed,
            )
            result = trial.run()
            if result.censored:
                censored_runs += 1
                assert trial.censor.censorship_events == 1
        assert censored_runs >= 2


class TestGFWImpairedTrial:
    def test_impaired_trial_rst_pairs_once_per_censor_event(self):
        """Under loss, each GFW censorship decision still injects exactly
        one RST pair (2 injections per event, not per retransmission)."""
        censored_runs = 0
        for net_seed in (2, 3, 4):
            trial = Trial(
                "china", "http", None, seed=3,
                impairment={"loss": 0.1}, net_seed=net_seed,
            )
            result = trial.run()
            events = trial.censor.censorship_events
            censored_runs += events > 0
            injections = [
                e for e in result.trace.events if e.kind == "inject"
            ]
            assert len(injections) == 2 * events
        assert censored_runs >= 2
