"""Tests for India's Airtel censor model."""

from repro.core import deployed_strategy
from repro.eval import run_trial


class TestAirtel:
    def test_forbidden_host_blockpage(self):
        result = run_trial("india", "http", None, seed=1)
        assert result.outcome == "blockpage"
        assert result.censored

    def test_benign_host_untouched(self):
        result = run_trial(
            "india", "http", None, seed=1,
            workload={"path": "/", "host_header": "benign.example.com"},
        )
        assert result.succeeded

    def test_only_port_80_censored(self):
        """Hosting on any other port defeats censorship completely (§5.2)."""
        result = run_trial("india", "http", None, seed=1, server_port=8080)
        assert result.succeeded

    def test_stateless_no_handshake_needed(self):
        """A forbidden request without a 3WHS still elicits censorship."""
        from repro.censors import AirtelCensor
        from repro.netsim import PathContext
        from repro.packets import make_tcp_packet

        class Ctx:
            now = 0.0
            injected = []

            def inject(self, packet, toward):
                Ctx.injected.append((packet, toward))

            def record(self, *a, **k):
                pass

        censor = AirtelCensor()
        raw = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 5555, 80, flags="PA", seq=1, ack=1,
            load=b"GET / HTTP/1.1\r\nHost: blocked.example.in\r\n\r\n",
        )
        out = censor.process(raw, "c2s", Ctx())
        assert out == [raw]  # on-path: still forwarded
        assert censor.censorship_events == 1
        assert len(Ctx.injected) == 2  # block page + follow-up RST

    def test_block_page_then_rst(self):
        result = run_trial("india", "http", None, seed=2)
        injected = [e for e in result.trace.events if e.kind == "inject"]
        assert injected[0].packet.flags == "FPA"
        assert injected[0].packet.load
        assert injected[1].packet.flags == "RA"

    def test_window_reduction_evades(self):
        """Strategy 8: Airtel cannot reassemble segments."""
        result = run_trial("india", "http", deployed_strategy(8), seed=3)
        assert result.succeeded
        assert not result.censored

    def test_other_protocols_uncensored(self):
        for protocol in ("dns", "ftp", "https", "smtp"):
            result = run_trial("india", protocol, None, seed=4)
            assert result.succeeded, protocol
