"""Unit tests for one GFW protocol box: TCB, resync rules, DPI, teardown.

Deterministic profiles (event probabilities of 0 or 1) isolate each rule.
"""

import random

import pytest

from repro.censors import CHINA_KEYWORDS, Censor, match_http
from repro.censors.gfw.box import (
    MODE_IGNORED,
    MODE_RESYNC,
    MODE_TRACKING,
    ProtocolBox,
)
from repro.censors.gfw.profiles import (
    EVENT_CORRUPT_ACK,
    EVENT_RST,
    BoxProfile,
)
from repro.packets import make_tcp_packet

CLIENT = "10.1.0.2"
SERVER = "192.0.2.10"
CPORT = 40000
SPORT = 80


class FakeCtx:
    """Minimal PathContext stand-in collecting injections."""

    def __init__(self):
        self.now = 0.0
        self.injected = []

    def inject(self, packet, toward):
        self.injected.append((packet, toward))

    def record(self, kind, packet=None, detail=""):
        pass

    def schedule(self, delay, callback):
        raise AssertionError("boxes do not schedule")


def make_box(**profile_overrides):
    profile_overrides.setdefault("miss_prob", 0.0)
    profile = BoxProfile(
        protocol="http",
        event_probs=profile_overrides.pop("event_probs", {}),
        combo_probs=profile_overrides.pop("combo_probs", {}),
        **profile_overrides,
    )
    censor = Censor()
    return ProtocolBox(profile, CHINA_KEYWORDS, match_http, random.Random(1), censor), FakeCtx()


def c2s(flags="A", seq=1001, ack=5001, load=b""):
    return make_tcp_packet(CLIENT, SERVER, CPORT, SPORT, flags=flags, seq=seq, ack=ack, load=load)


def s2c(flags="SA", seq=5000, ack=1001, load=b""):
    return make_tcp_packet(SERVER, CLIENT, SPORT, CPORT, flags=flags, seq=seq, ack=ack, load=load)


FORBIDDEN = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"


def handshake(box, ctx):
    box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
    box.observe(s2c("SA"), "s2c", ctx)
    box.observe(c2s("A"), "c2s", ctx)
    return list(box.flows.values())[0]


class TestTracking:
    def test_tcb_created_on_syn(self):
        box, ctx = make_box()
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        tcb = list(box.flows.values())[0]
        assert tcb.client_isn == 1000
        assert tcb.client_next == 1001
        assert tcb.mode == MODE_TRACKING

    def test_fails_open_without_tcb(self):
        """No SYN seen: the forbidden request passes uninspected (§6)."""
        box, ctx = make_box()
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert ctx.injected == []

    def test_censors_forbidden_request(self):
        box, ctx = make_box()
        tcb = handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert len(ctx.injected) == 2
        towards = {toward for _, toward in ctx.injected}
        assert towards == {"client", "server"}
        assert tcb.mode == MODE_IGNORED

    def test_injected_rst_seq_numbers(self):
        box, ctx = make_box()
        handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        to_client = next(p for p, t in ctx.injected if t == "client")
        to_server = next(p for p, t in ctx.injected if t == "server")
        assert to_client.tcp.seq == 5001  # server's next sequence number
        assert to_server.tcp.seq == 1001 + len(FORBIDDEN)

    def test_benign_request_passes(self):
        box, ctx = make_box()
        handshake(box, ctx)
        box.observe(c2s("PA", load=b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n"), "c2s", ctx)
        assert ctx.injected == []

    def test_desynced_data_invisible(self):
        """Strict sequence matching: off-by-one data is never inspected."""
        box, ctx = make_box()
        handshake(box, ctx)
        box.observe(c2s("PA", seq=1000, load=FORBIDDEN), "c2s", ctx)  # seq off by -1
        assert ctx.injected == []

    def test_miss_probability_flow_never_censored(self):
        box, ctx = make_box(miss_prob=1.0)
        handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert ctx.injected == []

    def test_reassembly_catches_split_keyword(self):
        box, ctx = make_box()
        handshake(box, ctx)
        box.observe(c2s("PA", seq=1001, load=FORBIDDEN[:10]), "c2s", ctx)
        box.observe(c2s("PA", seq=1011, load=FORBIDDEN[10:]), "c2s", ctx)
        assert len(ctx.injected) == 2  # reassembled and censored

    def test_no_reassembly_misses_split_keyword(self):
        box, ctx = make_box(reassembly_fail_prob=1.0)
        handshake(box, ctx)
        box.observe(c2s("PA", seq=1001, load=FORBIDDEN[:10]), "c2s", ctx)
        box.observe(c2s("PA", seq=1011, load=FORBIDDEN[10:]), "c2s", ctx)
        assert ctx.injected == []


class TestTeardown:
    def test_valid_client_rst_deletes_tcb(self):
        box, ctx = make_box()
        tcb = handshake(box, ctx)
        box.observe(c2s("R", seq=1001, ack=0), "c2s", ctx)
        assert tcb.mode == MODE_IGNORED
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert ctx.injected == []

    def test_out_of_window_client_rst_ignored(self):
        box, ctx = make_box()
        tcb = handshake(box, ctx)
        box.observe(c2s("R", seq=999_999_999, ack=0), "c2s", ctx)
        assert tcb.mode == MODE_TRACKING

    def test_server_rst_does_not_delete_tcb(self):
        """§3's core finding: server packets are processed differently."""
        box, ctx = make_box()  # rst resync prob 0: nothing happens at all
        tcb = handshake(box, ctx)
        box.observe(s2c("R", seq=5001), "s2c", ctx)
        assert tcb.mode == MODE_TRACKING
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert len(ctx.injected) == 2  # still censored


class TestResync:
    def test_rst_triggers_resync_on_next_client_packet(self):
        box, ctx = make_box(event_probs={EVENT_RST: 1.0})
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        box.observe(s2c("R"), "s2c", ctx)
        tcb = list(box.flows.values())[0]
        assert tcb.mode == MODE_RESYNC
        # Client's simultaneous-open SYN+ACK reuses seq 1000: the box
        # resynchronizes one byte behind the real stream.
        box.observe(c2s("SA", seq=1000, ack=9001), "c2s", ctx)
        assert tcb.mode == MODE_TRACKING
        assert tcb.client_next == 1000
        box.observe(c2s("PA", seq=1001, load=FORBIDDEN), "c2s", ctx)
        assert ctx.injected == []  # desynchronized: not censored

    def test_resync_capture_on_rst_is_not_teardown(self):
        """Strategy 7's probe: the box syncs onto the induced RST."""
        box, ctx = make_box(event_probs={EVENT_RST: 1.0})
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        box.observe(s2c("R"), "s2c", ctx)
        tcb = list(box.flows.values())[0]
        box.observe(c2s("R", seq=777_777, ack=0), "c2s", ctx)  # induced RST
        assert tcb.mode == MODE_TRACKING
        assert tcb.client_next == 777_777
        # Re-sequencing the request onto the RST restores censorship.
        box.observe(c2s("PA", seq=777_777, load=FORBIDDEN), "c2s", ctx)
        assert len(ctx.injected) == 2

    def test_payload_rule_resyncs_on_server_synack(self):
        """Rule 1 + Strategy 6: capture from the corrupted SYN+ACK's ack."""
        from repro.censors.gfw.profiles import EVENT_PAYLOAD_OTHER

        box, ctx = make_box(event_probs={EVENT_PAYLOAD_OTHER: 1.0})
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        box.observe(s2c("F", load=b"\x01\x02\x03"), "s2c", ctx)
        tcb = list(box.flows.values())[0]
        assert tcb.mode == MODE_RESYNC
        box.observe(s2c("SA", ack=0xBAD), "s2c", ctx)
        assert tcb.mode == MODE_TRACKING
        assert tcb.client_next == 0xBAD

    def test_corrupt_ack_rule(self):
        box, ctx = make_box(event_probs={EVENT_CORRUPT_ACK: 1.0})
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        box.observe(s2c("SA", ack=0xBAD), "s2c", ctx)
        tcb = list(box.flows.values())[0]
        assert tcb.mode == MODE_RESYNC

    def test_combo_probability_applies(self):
        from repro.censors.gfw.profiles import EVENT_SYN

        box, ctx = make_box(
            event_probs={},
            combo_probs={(EVENT_CORRUPT_ACK, EVENT_SYN): 1.0},
        )
        box.observe(c2s("S", seq=1000, ack=0), "c2s", ctx)
        box.observe(s2c("SA", ack=0xBAD), "s2c", ctx)  # records corrupt_ack
        tcb = list(box.flows.values())[0]
        assert tcb.mode == MODE_TRACKING  # base prob 0
        box.observe(s2c("S", seq=5000, ack=0), "s2c", ctx)  # combo fires
        assert tcb.mode == MODE_RESYNC

    def test_post_handshake_server_data_is_not_an_anomaly(self):
        """FTP/SMTP banners after the handshake must not re-trigger resync."""
        from repro.censors.gfw.profiles import EVENT_PAYLOAD_OTHER

        box, ctx = make_box(event_probs={EVENT_PAYLOAD_OTHER: 1.0})
        tcb = handshake(box, ctx)
        box.observe(s2c("PA", seq=5001, load=b"220 hello\r\n"), "s2c", ctx)
        assert tcb.mode == MODE_TRACKING


class TestResidual:
    def test_residual_kill_after_censorship(self):
        box, ctx = make_box(residual_duration=90.0)
        handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        assert len(ctx.injected) == 2
        ctx.injected.clear()
        ctx.now = 30.0
        # Fresh connection (new client port) to the same server:port.
        syn = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="S", seq=2000)
        box.observe(syn, "c2s", ctx)
        ack = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="A", seq=2001, ack=1)
        box.observe(ack, "c2s", ctx)
        assert len(ctx.injected) == 2  # torn down right after the handshake

    def test_residual_expires(self):
        box, ctx = make_box(residual_duration=90.0)
        handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        ctx.injected.clear()
        ctx.now = 120.0
        syn = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="S", seq=2000)
        box.observe(syn, "c2s", ctx)
        ack = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="A", seq=2001, ack=1)
        box.observe(ack, "c2s", ctx)
        assert ctx.injected == []

    def test_no_residual_without_configuration(self):
        box, ctx = make_box()  # residual_duration = 0
        handshake(box, ctx)
        box.observe(c2s("PA", load=FORBIDDEN), "c2s", ctx)
        ctx.injected.clear()
        syn = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="S", seq=2000)
        box.observe(syn, "c2s", ctx)
        ack = make_tcp_packet(CLIENT, SERVER, CPORT + 1, SPORT, flags="A", seq=2001, ack=1)
        box.observe(ack, "c2s", ctx)
        assert ctx.injected == []
