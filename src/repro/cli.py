"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``trial``      run one censored request and print the outcome/waterfall;
- ``rates``      measure a strategy's success rate over many trials;
- ``strategies`` list the paper's 11 strategies (with their DSL);
- ``waterfall``  render the packet waterfall for a strategy;
- ``evolve``     run the genetic algorithm against a censor;
- ``coevolve``   co-evolve adaptive censor populations against strategy
  populations and report the strategy-robustness frontier
  (``coevolve china --epochs 3 --json``; see ``docs/coevolve.md``);
- ``matrix``     measure the Table 1 censorship matrix;
- ``robustness`` sweep strategy success against per-link packet loss;
- ``sni``        measure the SNI-era matrix (record-level server-side
  strategies vs the TLS-metadata censors; see ``docs/sni.md``);
- ``profile``    per-phase timing breakdown of a trial batch;
- ``campaign``   sharded, checkpointed, resumable experiment campaigns
  (``campaign run SPEC --out DIR [--resume] [--shard I/N]``,
  ``campaign presets``, ``campaign status DIR``; see
  ``docs/campaigns.md``);
- ``fleet``      long-lived serving simulation: one deployed server,
  thousands of concurrent client flows in a single world
  (``fleet --clients 1000 --workers 4 --json out.json``; see
  ``docs/fleet.md``).

``rates``, ``matrix`` and ``reproduce`` accept network-impairment flags
(``--loss/--dup/--reorder/--net-seed``) to run under a degraded path.

Batch commands accept ``--telemetry DIR`` (full observability artifact
tree: metrics JSON + Prometheus text + structured run log) and
``--metrics-json FILE`` (just the metric snapshot); see
``docs/observability.md``.

Examples::

    python -m repro trial china http --strategy 1 --seed 3
    python -m repro rates kazakhstan http --strategy 9 --trials 50
    python -m repro waterfall china ftp --strategy 5
    python -m repro evolve kazakhstan http --population 30 --generations 30
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import SERVER_STRATEGIES, Strategy, deployed_strategy
from .core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
from .eval import run_trial, success_rate
from .eval.matrix import format_matrix, measure_censorship_matrix
from .eval.waterfall import render_waterfall

__all__ = ["main", "build_parser"]

_COUNTRIES = ["china", "india", "iran", "kazakhstan", "southkorea", "russia", "none"]
_PROTOCOLS = ["dns", "ftp", "http", "https", "smtp"]

#: Library strategy numbers, rendered dynamically so help text tracks
#: additions to the strategy library without edits here.
_STRATEGY_RANGE = f"{min(SERVER_STRATEGIES)}-{max(SERVER_STRATEGIES)}"


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Server-side censorship evasion (SIGCOMM 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_target(p):
        p.add_argument("country", choices=_COUNTRIES, help="censor to run against")
        p.add_argument("protocol", choices=_PROTOCOLS, help="application protocol")
        p.add_argument(
            "--strategy",
            default=None,
            help=f"library strategy number ({_STRATEGY_RANGE}) "
                 "or a full Geneva strategy string",
        )
        p.add_argument("--seed", type=int, default=0, help="deterministic seed")
        p.add_argument(
            "--client-os",
            default="ubuntu-18.04.1",
            help="client OS personality (see repro.tcpstack.PERSONALITIES)",
        )

    p_trial = sub.add_parser("trial", help="run one trial")
    add_target(p_trial)
    p_trial.add_argument(
        "--waterfall", action="store_true", help="print the packet waterfall"
    )
    p_trial.add_argument(
        "--pcap", default=None, metavar="FILE",
        help="write the trial's packets to a pcap file (opens in Wireshark)",
    )

    def positive_workers(text):
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    def add_runtime_flags(p):
        p.add_argument(
            "--workers", type=positive_workers, default=1,
            help="worker processes for the trial batch (1 = serial in-process)",
        )
        p.add_argument(
            "--cache", action="store_true",
            help="enable the on-disk result cache (.repro_cache/)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="enable the on-disk result cache at DIR",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the result cache entirely",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print executor counters (trials run, cache hits, wall time)",
        )
        p.add_argument(
            "--telemetry", default=None, metavar="DIR",
            help="write the observability artifact tree (metrics JSON, "
                 "Prometheus text, structured run log) to DIR",
        )
        p.add_argument(
            "--metrics-json", default=None, metavar="FILE",
            help="write the run's metric snapshot as JSON to FILE",
        )

    def probability(text):
        value = float(text)
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError("must be in [0, 1]")
        return value

    def add_impairment_flags(p):
        p.add_argument(
            "--loss", type=probability, default=0.0, metavar="P",
            help="per-link packet loss probability",
        )
        p.add_argument(
            "--dup", type=probability, default=0.0, metavar="P",
            help="per-link packet duplication probability",
        )
        p.add_argument(
            "--reorder", type=probability, default=0.0, metavar="P",
            help="per-link packet reordering probability",
        )
        p.add_argument(
            "--net-seed", type=int, default=None, metavar="N",
            help="pin the impairment randomness (default: split from each "
                 "trial's own seed)",
        )

    p_rates = sub.add_parser("rates", help="measure a success rate")
    add_target(p_rates)
    p_rates.add_argument("--trials", type=int, default=100)
    add_runtime_flags(p_rates)
    add_impairment_flags(p_rates)

    p_water = sub.add_parser("waterfall", help="render a packet waterfall")
    add_target(p_water)

    sub.add_parser("strategies", help="list the paper's strategies")

    p_explain = sub.add_parser(
        "explain", help="describe what a strategy does on the wire"
    )
    p_explain.add_argument(
        "strategy",
        help=f"library strategy number ({_STRATEGY_RANGE}) "
             "or a Geneva strategy string",
    )
    p_explain.add_argument("--seed", type=int, default=0)

    p_evolve = sub.add_parser("evolve", help="run the genetic algorithm")
    p_evolve.add_argument("country", choices=_COUNTRIES[:-1])
    p_evolve.add_argument("protocol", choices=_PROTOCOLS)
    p_evolve.add_argument("--population", type=int, default=30)
    p_evolve.add_argument("--generations", type=int, default=30)
    p_evolve.add_argument("--seed", type=int, default=3)
    p_evolve.add_argument("--trials", type=int, default=3)
    p_evolve.add_argument(
        "--minimize",
        action="store_true",
        help="prune the winning strategy to its minimal working form",
    )
    p_evolve.add_argument(
        "--json", action="store_true",
        help="emit the GA result as deterministic JSON (identical for any "
             "--workers value)",
    )
    add_runtime_flags(p_evolve)

    p_coevolve = sub.add_parser(
        "coevolve",
        help="co-evolve adaptive censors against strategy populations",
    )
    p_coevolve.add_argument(
        "country", nargs="?", default="china", choices=_COUNTRIES[:-1],
        help="censor country to adapt (default: china)",
    )
    p_coevolve.add_argument(
        "protocol", nargs="?", default=None, choices=_PROTOCOLS,
        help="application protocol (default: the country's paper protocol)",
    )
    p_coevolve.add_argument("--epochs", type=int, default=3)
    p_coevolve.add_argument(
        "--strategy-population", type=int, default=12,
        help="Geneva strategy population size (default: 12)",
    )
    p_coevolve.add_argument(
        "--censor-population", type=int, default=6,
        help="censor genome population size (default: 6)",
    )
    p_coevolve.add_argument(
        "--trials", type=int, default=2,
        help="trials per strategy x censor pair during the search",
    )
    p_coevolve.add_argument(
        "--frontier-trials", type=int, default=10,
        help="trials per pair for the final frontier report",
    )
    p_coevolve.add_argument("--seed", type=int, default=1)
    p_coevolve.add_argument(
        "--json", action="store_true",
        help="emit the robustness frontier as deterministic JSON "
             "(identical for any --workers value)",
    )
    add_runtime_flags(p_coevolve)

    p_matrix = sub.add_parser("matrix", help="measure the censorship matrix")
    p_matrix.add_argument("--seed", type=int, default=0)
    add_runtime_flags(p_matrix)
    add_impairment_flags(p_matrix)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    p_repro.add_argument("--out", default="results", help="output directory")
    p_repro.add_argument("--trials", type=int, default=150)
    p_repro.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments (e.g. table2 figure3)",
    )
    add_runtime_flags(p_repro)
    add_impairment_flags(p_repro)

    p_profile = sub.add_parser(
        "profile", help="per-phase timing breakdown of a trial batch"
    )
    p_profile.add_argument(
        "--country", choices=_COUNTRIES, default="china",
        help="censor to profile against (default: china)",
    )
    p_profile.add_argument(
        "--protocol", choices=_PROTOCOLS, default="http",
        help="application protocol (default: http)",
    )
    p_profile.add_argument(
        "--strategy", default=None,
        help=f"library strategy number ({_STRATEGY_RANGE}) "
             "or a Geneva strategy string",
    )
    p_profile.add_argument("--trials", type=int, default=5)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument(
        "--metrics-json", default=None, metavar="FILE",
        help="also write the profiled run's metric snapshot to FILE",
    )

    p_robust = sub.add_parser(
        "robustness", help="success-vs-loss curves per country"
    )
    p_robust.add_argument(
        "--loss-rates", type=probability, nargs="*", default=None, metavar="P",
        help="per-link loss probabilities to sweep (default: a small grid)",
    )
    p_robust.add_argument(
        "--countries", nargs="*", default=None, choices=_COUNTRIES[:-1],
        help="countries to sweep (default: all four)",
    )
    p_robust.add_argument("--trials", type=int, default=20)
    p_robust.add_argument("--seed", type=int, default=0)
    p_robust.add_argument(
        "--net-seed", type=int, default=None, metavar="N",
        help="pin the impairment randomness",
    )
    p_robust.add_argument(
        "--json", action="store_true",
        help="emit the curves as deterministic JSON instead of a table",
    )
    add_runtime_flags(p_robust)

    p_sni = sub.add_parser(
        "sni", help="measure the SNI-era matrix (SNI censors vs strategies 12-15)"
    )
    p_sni.add_argument("--trials", type=int, default=30)
    p_sni.add_argument("--seed", type=int, default=0)
    p_sni.add_argument(
        "--countries", nargs="*", default=None,
        choices=["southkorea", "russia"],
        help="SNI-censoring countries to measure (default: both)",
    )
    p_sni.add_argument(
        "--json", action="store_true",
        help="emit the grid as deterministic JSON instead of a table",
    )
    add_runtime_flags(p_sni)

    p_campaign = sub.add_parser(
        "campaign", help="sharded, checkpointed, resumable experiment campaigns"
    )
    camp_sub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    c_run = camp_sub.add_parser(
        "run", help="run (or resume) a campaign spec or preset"
    )
    c_run.add_argument(
        "spec",
        help="campaign spec JSON file, or a preset name (see 'campaign presets')",
    )
    c_run.add_argument(
        "--out", required=True, metavar="DIR",
        help="campaign ledger directory (journal, shard checkpoints, report)",
    )
    c_run.add_argument(
        "--resume", action="store_true",
        help="continue an existing ledger; completed shards are skipped",
    )
    c_run.add_argument(
        "--shard", type=shard_selector, default=None, metavar="I/N",
        help="run only this machine's share of the shards (1-based I of N)",
    )
    c_run.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="preset scale override / per-cell trial cap for file specs",
    )
    c_run.add_argument(
        "--seed", type=int, default=None, help="preset base-seed override"
    )
    c_run.add_argument(
        "--shard-size", type=positive_workers, default=None, metavar="N",
        help="trials per shard (the checkpoint granularity)",
    )
    c_run.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="process at most N shards this invocation, then checkpoint "
             "and exit (continue later with --resume)",
    )
    c_run.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts per failing shard before aborting (default 2)",
    )
    c_run.add_argument(
        "--workers", type=positive_workers, default=1,
        help="worker processes for shard execution (1 = serial in-process)",
    )
    c_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="also consult/fill a cross-campaign trial-result cache at DIR",
    )

    camp_sub.add_parser("presets", help="list the canned campaign presets")

    p_fleet = sub.add_parser(
        "fleet", help="one deployed server vs a stream of concurrent client flows"
    )
    p_fleet.add_argument(
        "--clients", type=positive_workers, default=500,
        help="number of client flows in the arrival stream (default 500)",
    )
    p_fleet.add_argument("--seed", type=int, default=0, help="deterministic seed")
    p_fleet.add_argument(
        "--spacing", type=float, default=0.1, metavar="S",
        help="fixed inter-arrival gap in virtual seconds (default 0.1)",
    )
    p_fleet.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="Poisson arrival rate in flows per virtual second "
             "(overrides --spacing)",
    )
    p_fleet.add_argument(
        "--countries", nargs="*", default=None, choices=_COUNTRIES,
        help="restrict the default mix to these countries "
             "('none' keeps the uncensored cohort)",
    )
    p_fleet.add_argument(
        "--max-time", type=float, default=40.0, metavar="T",
        help="per-flow virtual deadline (default 40, the single-trial horizon)",
    )
    p_fleet.add_argument(
        "--trace", choices=["none", "ring", "full"], default="none",
        help="per-flow trace capture (default none; 'none' enables "
             "packet-arena leases)",
    )
    p_fleet.add_argument(
        "--workers", type=positive_workers, default=1,
        help="worker processes (flows shard round-robin; records are "
             "byte-identical for any worker count)",
    )
    p_fleet.add_argument(
        "--status", action="store_true",
        help="print a live status line as flows complete (serial runs only)",
    )
    p_fleet.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the deterministic FleetStats JSON artifact to FILE",
    )
    p_fleet.add_argument(
        "--metrics-json", default=None, metavar="FILE",
        help="write the run's metric snapshot as JSON to FILE",
    )

    c_status = camp_sub.add_parser(
        "status", help="show a campaign ledger's progress"
    )
    c_status.add_argument("dir", help="campaign ledger directory")

    return parser


def shard_selector(text: str):
    """argparse type for ``--shard I/N``: returns ``(I, N)`` validated."""
    import re

    match = re.fullmatch(r"(\d+)/(\d+)", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"must look like I/N (e.g. 2/4), got {text!r}"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or index < 1 or index > count:
        raise argparse.ArgumentTypeError(
            f"need 1 <= I <= N, got {index}/{count}"
        )
    return (index, count)


def _resolve_cache(args, default=None):
    """Turn the --cache/--cache-dir/--no-cache triplet into a cache arg."""
    from .runtime import DEFAULT_CACHE_DIR

    if args.no_cache:
        return None
    if args.cache_dir:
        return args.cache_dir
    if args.cache:
        return DEFAULT_CACHE_DIR
    return default


def _resolve_impairment(args):
    """Build an impairment policy from --loss/--dup/--reorder (or None)."""
    if not (args.loss or args.dup or args.reorder):
        return None
    from .netsim import Impairment

    return Impairment(loss=args.loss, dup=args.dup, reorder=args.reorder)


def _make_executor(args, cache_default=None):
    """Build the command's TrialExecutor, telemetry-enabled if requested.

    Metric collection turns on only when an output was asked for
    (``--telemetry``/``--metrics-json``), so unmeasured runs pay nothing
    for snapshot pickling; a run log is kept only for the full
    ``--telemetry`` tree.
    """
    from .runtime import TrialExecutor

    runlog = None
    if args.telemetry:
        from .obs import RunLog

        runlog = RunLog()
    return TrialExecutor(
        workers=args.workers,
        cache=_resolve_cache(args, default=cache_default),
        collect_metrics=bool(args.telemetry or args.metrics_json),
        runlog=runlog,
    )


def _finish_run(args, executor, command: str) -> None:
    """Shared epilogue for batch commands: --stats and telemetry output."""
    if args.stats:
        for line in executor.format_stats().splitlines():
            print(f"stats: {line}")
    if not (args.telemetry or args.metrics_json):
        return
    from .obs import write_metrics_json, write_telemetry

    snapshot = executor.metrics_snapshot()
    if args.metrics_json:
        write_metrics_json(args.metrics_json, snapshot)
        print(f"wrote metrics to {args.metrics_json}")
    if args.telemetry:
        meta = {
            "command": command,
            "run_stats": executor.total_stats.as_dict(),
        }
        if executor.cache is not None:
            meta["cache_stats"] = executor.cache.stats.as_dict()
        written = write_telemetry(
            args.telemetry, snapshot, runlog=executor.runlog, run_meta=meta
        )
        print(f"wrote {len(written)} telemetry artifacts to {args.telemetry}/")


def _dump_deterministic_json(payload, label: str) -> str:
    """Serialize a ``--json`` payload, refusing NaN/Infinity outright.

    ``json.dumps`` happily emits the non-standard tokens ``NaN`` and
    ``Infinity``, which most consumers (and ``json.loads`` in strict
    mode) reject. A NaN fitness means the run is broken; fail loudly
    instead of emitting JSON that breaks downstream parsers.
    """
    import json as _json

    try:
        return _json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        raise SystemExit(
            f"{label}: refusing to emit non-standard JSON "
            f"(NaN/Infinity in payload): {exc}"
        )


def _resolve_strategy(text: Optional[str]) -> Optional[Strategy]:
    if text is None:
        return None
    if text.isdigit():
        number = int(text)
        if number not in SERVER_STRATEGIES:
            valid = f"{min(SERVER_STRATEGIES)}-{max(SERVER_STRATEGIES)}"
            raise SystemExit(f"unknown strategy number {number} (valid: {valid})")
        return deployed_strategy(number)
    return Strategy.parse(text)


def _country(name: str) -> Optional[str]:
    return None if name == "none" else name


def _load_campaign_spec(args):
    """Resolve the campaign ``spec`` argument: preset name or JSON file."""
    from .campaign import PRESETS, CampaignSpec

    if args.spec in PRESETS:
        overrides = {}
        if args.trials is not None:
            overrides["trials"] = args.trials
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.shard_size is not None:
            overrides["shard_size"] = args.shard_size
        return PRESETS[args.spec](**overrides)
    spec = CampaignSpec.from_file(args.spec)
    if args.trials is not None:
        for cell in spec.cells:
            cell.trials = min(cell.trials, args.trials)
    if args.shard_size is not None:
        spec.shard_size = args.shard_size
    return spec


def _campaign(args) -> int:
    """Dispatch the ``campaign`` subcommands (run / presets / status)."""
    from .campaign import (
        PRESETS,
        CampaignError,
        CampaignLedger,
        LedgerError,
        format_campaign,
        run_campaign,
    )

    if args.campaign_command == "presets":
        for name in sorted(PRESETS):
            spec = PRESETS[name]()
            print(
                f"{name:<14} {len(spec.cells):>3} cells, "
                f"{spec.total_trials:>5} trials  {spec.description}"
            )
        return 0

    if args.campaign_command == "status":
        ledger = CampaignLedger(args.dir)
        try:
            spec = CampaignLedger.load_spec(args.dir)
        except (LedgerError, CampaignError) as exc:
            raise SystemExit(f"campaign status: {exc}")
        shards = spec.shards()
        done = ledger.completed_shards(shards)
        trials_done = sum(len(shards[i].trials) for i in done)
        print(f"campaign:  {spec.name} ({spec.campaign_hash()[:16]})")
        print(f"shards:    {len(done)}/{len(shards)} complete")
        print(f"trials:    {trials_done}/{spec.total_trials} complete")
        if ledger.poisoned:
            print(f"poisoned:  {ledger.poisoned} shard file(s) failed verification")
        print(
            "report:    "
            + ("written" if ledger.report_path.exists() else "pending")
        )
        return 0 if len(done) == len(shards) else 1

    try:
        spec = _load_campaign_spec(args)
        result = run_campaign(
            spec,
            args.out,
            resume=args.resume,
            shard=args.shard,
            workers=args.workers,
            cache=args.cache_dir,
            retries=args.retries,
            max_shards=args.max_shards,
            echo=print,
        )
    except (CampaignError, LedgerError) as exc:
        raise SystemExit(f"campaign run: {exc}")
    print(format_campaign(result))
    return 0


def _fleet(args) -> int:
    """Dispatch the ``fleet`` command."""
    from .fleet import DEFAULT_MIX, FleetSpec, run_fleet

    mix = DEFAULT_MIX
    if args.countries is not None:
        wanted = {None if name == "none" else name for name in args.countries}
        mix = tuple(entry for entry in DEFAULT_MIX if entry.country in wanted)
        if not mix:
            valid = sorted(
                (entry.country or "none") for entry in DEFAULT_MIX
            )
            raise SystemExit(
                "fleet: --countries filtered out the entire mix "
                f"(valid: {', '.join(dict.fromkeys(valid))})"
            )
    spec = FleetSpec(
        clients=args.clients,
        seed=args.seed,
        mix=mix,
        spacing=args.spacing,
        rate=args.rate,
        max_time=args.max_time,
        trace=args.trace,
    )

    on_flow_done = None
    if args.status and args.workers == 1:
        from .fleet import FleetStats

        step = max(1, args.clients // 25)
        status = FleetStats(spec, []).format_status

        def on_flow_done(world, record):
            done = len(world.records)
            if done % step == 0 or done == args.clients:
                print(status(world))

    if args.metrics_json:
        from .obs import write_metrics_json
        from .obs.metrics import collecting

        with collecting() as registry:
            result = run_fleet(spec, workers=args.workers, on_flow_done=on_flow_done)
        write_metrics_json(args.metrics_json, registry.snapshot())
        print(f"wrote metrics to {args.metrics_json}")
    else:
        result = run_fleet(spec, workers=args.workers, on_flow_done=on_flow_done)

    print(result.stats.format_report())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.stats.to_json())
        print(f"wrote fleet artifact to {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "campaign":
        return _campaign(args)

    if args.command == "fleet":
        return _fleet(args)

    if args.command == "strategies":
        for number, record in SERVER_STRATEGIES.items():
            countries = ",".join(record.countries)
            print(f"{number:>2}  {record.name:<28} [{countries}]")
            print(f"    {record.dsl}")
        return 0

    if args.command == "matrix":
        executor = _make_executor(args)
        print(
            format_matrix(
                measure_censorship_matrix(
                    seed=args.seed,
                    executor=executor,
                    impairment=_resolve_impairment(args),
                    net_seed=args.net_seed,
                )
            )
        )
        _finish_run(args, executor, "matrix")
        return 0

    if args.command == "profile":
        from .obs import format_profile, profile_run

        result = profile_run(
            _country(args.country),
            args.protocol,
            strategy=_resolve_strategy(args.strategy),
            trials=args.trials,
            seed=args.seed,
        )
        print(format_profile(result))
        if args.metrics_json:
            from .obs import write_metrics_json

            write_metrics_json(args.metrics_json, result.snapshot)
            print(f"wrote metrics to {args.metrics_json}")
        return 0

    if args.command == "sni":
        from .eval.sni_matrix import format_sni_matrix, sni_matrix

        executor = _make_executor(args)
        cells = sni_matrix(
            trials=args.trials,
            seed=args.seed,
            countries=args.countries,
            executor=executor,
        )
        if args.json:
            import json

            # Sorted dump => byte-identical output for identical
            # invocations (the CI smoke job diffs two runs).
            payload = {}
            for cell in cells:
                payload.setdefault(cell.country, {})[cell.column] = cell.measured
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(format_sni_matrix(cells))
        _finish_run(args, executor, "sni")
        return 0

    if args.command == "robustness":
        from .eval.sweeps import (
            DEFAULT_LOSS_GRID,
            format_robustness,
            impairment_robustness_sweep,
        )

        executor = _make_executor(args)
        curves = impairment_robustness_sweep(
            loss_rates=tuple(args.loss_rates) if args.loss_rates else DEFAULT_LOSS_GRID,
            countries=args.countries,
            trials=args.trials,
            seed=args.seed,
            net_seed=args.net_seed,
            executor=executor,
        )
        if args.json:
            import json

            # String keys + sorted dump => byte-identical output for
            # identical invocations (the CI smoke job diffs two runs).
            payload = {
                country: {f"{loss:g}": rate for loss, rate in curve.items()}
                for country, curve in curves.items()
            }
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(format_robustness(curves))
        _finish_run(args, executor, "robustness")
        return 0

    if args.command == "reproduce":
        from .eval.report import reproduce_all

        # Batch reproduction caches by default (under the output tree) so
        # re-runs only pay for what changed; --no-cache opts out.
        import pathlib

        default_cache = str(pathlib.Path(args.out) / ".repro_cache")
        executor = _make_executor(args, cache_default=default_cache)
        written = reproduce_all(
            args.out,
            trials=args.trials,
            only=args.only,
            impairment=_resolve_impairment(args),
            net_seed=args.net_seed,
            executor=executor,
        )
        print(f"wrote {len(written)} artifacts to {args.out}/")
        _finish_run(args, executor, "reproduce")
        return 0

    if args.command == "explain":
        from .core import explain

        strategy = _resolve_strategy(args.strategy)
        report = explain(strategy, seed=args.seed)
        print(report.render())
        return 1 if report.breaks_handshake else 0

    if args.command == "evolve":
        executor = _make_executor(args)
        evaluator = CensorTrialEvaluator(
            args.country, args.protocol, trials=args.trials, seed=5,
            executor=executor,
        )
        ga = GeneticAlgorithm(
            evaluator,
            config=GAConfig(
                population_size=args.population,
                generations=args.generations,
                seed=args.seed,
                convergence_patience=max(8, args.generations // 3),
            ),
        )
        def _search():
            outcome = ga.run()
            if args.minimize:
                from .core.evolution import minimize

                return outcome, minimize(outcome.best, evaluator)
            return outcome, None

        if executor.metrics is not None:
            # Route the GA's own counters (generations, dedup hits, batch
            # sizes) into the telemetry registry alongside trial metrics.
            from .obs.metrics import collecting

            with collecting(executor.metrics):
                result, minimized = _search()
        else:
            result, minimized = _search()
        if args.json:
            import json as _json

            payload = {
                "country": args.country,
                "protocol": args.protocol,
                "config": {
                    "population": args.population,
                    "generations": args.generations,
                    "seed": args.seed,
                    "trials": args.trials,
                },
                "generations_run": result.generations_run,
                "best_fitness": result.best_fitness,
                "best": str(result.best),
                "history": result.history,
                "hall_of_fame": [
                    [text, fitness] for text, fitness in result.hall_of_fame
                ],
            }
            if minimized is not None:
                payload["minimized"] = {
                    "strategy": str(minimized[0]),
                    "fitness": minimized[1],
                }
            print(_dump_deterministic_json(payload, "evolve --json"))
        else:
            print(f"generations run: {result.generations_run}")
            print(f"best fitness:    {result.best_fitness:.1f}")
            print(f"best strategy:   {result.best}")
            if minimized is not None:
                print(
                    f"minimized:       {minimized[0]} "
                    f"(fitness {minimized[1]:.1f})"
                )
        if args.stats:
            print(f"stats: {evaluator.stats.format()}")
        _finish_run(args, executor, "evolve")
        return 0

    if args.command == "coevolve":
        from .core.evolution import CoevolveConfig, run_coevolution

        executor = _make_executor(args)
        config = CoevolveConfig(
            epochs=args.epochs,
            strategy_population=args.strategy_population,
            censor_population=args.censor_population,
            trials=args.trials,
            frontier_trials=args.frontier_trials,
            seed=args.seed,
        )

        def _race():
            return run_coevolution(
                args.country,
                protocol=args.protocol,
                config=config,
                executor=executor,
            )

        if executor.metrics is not None:
            from .obs.metrics import collecting

            with collecting(executor.metrics):
                result = _race()
        else:
            result = _race()
        if args.json:
            print(_dump_deterministic_json(result.as_dict(), "coevolve --json"))
        else:
            print(
                f"{result.country}/{result.protocol}: "
                f"{len(result.epochs)} epochs of censor adaptation"
            )
            print(f"{'#':>3} {'strategy':<30} {'static':>7} {'adapted':>8}  status")
            for entry in result.frontier:
                print(
                    f"{entry.number:>3} {entry.name[:30]:<30} "
                    f"{entry.static_rate:>7.2f} {entry.adapted_rate:>8.2f}  "
                    f"{entry.status}"
                )
            for novel in result.novel_strategies:
                print(
                    f"novel: {novel['strategy']}  "
                    f"static={novel['static_rate']:.2f} "
                    f"adapted={novel['adapted_rate']:.2f}"
                )
            top = result.final_censor_hof[0]
            print(
                f"strongest adapted censor defeats "
                f"{top['defeat_rate']:.0%} of paper strategies: "
                f"{top['genome']['params']}"
            )
        if args.stats:
            print(f"stats: {result.stats.format()}")
        _finish_run(args, executor, "coevolve")
        return 0

    strategy = _resolve_strategy(args.strategy)
    country = _country(args.country)

    if args.command == "trial":
        result = run_trial(
            country, args.protocol, strategy, seed=args.seed, client_os=args.client_os
        )
        print(f"outcome:  {result.outcome}")
        print(f"evaded:   {result.succeeded}")
        print(f"censored: {result.censored}")
        if args.waterfall:
            print(render_waterfall(result.trace))
        if args.pcap:
            from .netsim import write_pcap

            count = write_pcap(result.trace, args.pcap)
            print(f"wrote {count} packets to {args.pcap}")
        return 0 if result.succeeded else 1

    if args.command == "rates":
        executor = _make_executor(args)
        rate = success_rate(
            country,
            args.protocol,
            strategy,
            trials=args.trials,
            seed=args.seed,
            client_os=args.client_os,
            executor=executor,
            impairment=_resolve_impairment(args),
            net_seed=args.net_seed,
        )
        label = args.strategy if args.strategy else "no evasion"
        print(
            f"{args.country}/{args.protocol} strategy={label}: "
            f"{rate * 100:.1f}% over {args.trials} trials"
        )
        _finish_run(args, executor, "rates")
        return 0

    if args.command == "waterfall":
        result = run_trial(
            country, args.protocol, strategy, seed=args.seed, client_os=args.client_os
        )
        print(render_waterfall(result.trace, title=f"outcome: {result.outcome}"))
        return 0

    raise SystemExit(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
