"""Strategy analysis: explain what a strategy does on the wire.

Given any Geneva strategy, :func:`explain` applies it to a canonical
handshake SYN+ACK and produces a structured description — the packets it
emits and the evasion *mechanisms* it engages (simultaneous open,
corrupted ack numbers, handshake payloads, insertion packets, window
reduction). This powers the CLI's ``explain`` command and gives evolved
strategies human-readable provenance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..packets import Packet, make_tcp_packet
from .dsl import Strategy

__all__ = ["StrategyReport", "EmittedPacket", "explain", "MECHANISMS"]

_MOD = 1 << 32

#: Mechanism identifiers with the strategies that canonically use them.
MECHANISMS = {
    "simultaneous-open": "a bare SYN from the server triggers client sim-open (S1-S3)",
    "corrupt-ack": "a SYN+ACK with a wrong ack number induces a client RST (S3-S7)",
    "handshake-payload": "payload bytes during the handshake confuse the censor (S2,S5,S6,S9,S10)",
    "injected-rst": "an inert RST from the server triggers GFW resync (S1,S7)",
    "insertion-packet": "checksum-corrupted packets reach only the censor (S5/S9/S10 compat)",
    "window-reduction": "a tiny window induces client segmentation (S8)",
    "null-flags": "a packet without FIN/RST/SYN/ACK breaks censor pattern models (S11)",
    "drops-handshake": "the real SYN+ACK is never sent (breaks the connection!)",
}

_CLIENT_ISN = 1_000_000
_SERVER_ISN = 2_000_000


@dataclass
class EmittedPacket:
    """One packet a strategy put on the wire, annotated."""

    flags: str
    seq: int
    ack: int
    payload_length: int
    window: int
    valid_checksum: bool
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line description."""
        flags = self.flags if self.flags else "<null>"
        parts = [f"[{flags}]", f"seq={self.seq}", f"ack={self.ack}"]
        if self.payload_length:
            parts.append(f"load={self.payload_length}B")
        parts.append(f"win={self.window}")
        if not self.valid_checksum:
            parts.append("BAD-CHKSUM")
        if self.notes:
            parts.append("(" + ", ".join(self.notes) + ")")
        return " ".join(parts)


@dataclass
class StrategyReport:
    """Structured description of a strategy's wire behaviour."""

    strategy: str
    packets: List[EmittedPacket]
    mechanisms: List[str]
    breaks_handshake: bool

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"strategy: {self.strategy}"]
        lines.append(f"packets emitted for one SYN+ACK ({len(self.packets)}):")
        if not self.packets:
            lines.append("  (none - the SYN+ACK is dropped)")
        for packet in self.packets:
            lines.append(f"  {packet.summary()}")
        lines.append("mechanisms:")
        if not self.mechanisms:
            lines.append("  (none - behaves like an unmodified server)")
        for mechanism in self.mechanisms:
            lines.append(f"  - {mechanism}: {MECHANISMS[mechanism]}")
        return "\n".join(lines)


def _canonical_synack() -> Packet:
    return make_tcp_packet(
        src="192.0.2.10",
        dst="10.1.0.2",
        sport=80,
        dport=40000,
        flags="SA",
        seq=_SERVER_ISN,
        ack=(_CLIENT_ISN + 1) % _MOD,
        window=65535,
        options=[("mss", 1460), ("wscale", 7), ("sackok", None)],
    )


def _annotate(packet: Packet) -> EmittedPacket:
    notes: List[str] = []
    tcp = packet.tcp
    if tcp.is_syn:
        notes.append("sim-open SYN")
    if tcp.is_synack and tcp.ack != (_CLIENT_ISN + 1) % _MOD:
        notes.append("bad ackno")
    if tcp.is_rst:
        notes.append("inert RST")
    if not set(tcp.flags) & set("FRSA"):
        notes.append("non-handshake flags")
    if tcp.is_synack and tcp.window <= 64:
        notes.append("reduced window")
    if tcp.is_synack and tcp.get_option("wscale") is None:
        notes.append("wscale removed")
    return EmittedPacket(
        flags=tcp.flags,
        seq=tcp.seq,
        ack=tcp.ack,
        payload_length=len(tcp.load),
        window=tcp.window,
        valid_checksum=packet.checksums_ok(),
        notes=notes,
    )


def explain(strategy: Strategy, seed: int = 0) -> StrategyReport:
    """Apply ``strategy`` to a canonical SYN+ACK and describe the result."""
    rng = random.Random(seed)
    emitted = strategy.apply_outbound(_canonical_synack(), rng)
    packets = [_annotate(packet) for packet in emitted]

    mechanisms: List[str] = []
    valid_synack_survives = any(
        p.flags == "SA"
        and p.ack == (_CLIENT_ISN + 1) % _MOD
        and p.valid_checksum
        for p in packets
    )
    has_syn = any("sim-open SYN" in p.notes and p.valid_checksum for p in packets)
    if has_syn:
        mechanisms.append("simultaneous-open")
    if any("bad ackno" in p.notes and p.valid_checksum for p in packets):
        mechanisms.append("corrupt-ack")
    if any(p.payload_length and p.valid_checksum for p in packets):
        mechanisms.append("handshake-payload")
    if any("inert RST" in p.notes for p in packets):
        mechanisms.append("injected-rst")
    if any(not p.valid_checksum for p in packets):
        mechanisms.append("insertion-packet")
    if any(
        "reduced window" in p.notes or "wscale removed" in p.notes for p in packets
    ):
        mechanisms.append("window-reduction")
    if any("non-handshake flags" in p.notes for p in packets):
        mechanisms.append("null-flags")

    breaks = not valid_synack_survives and not has_syn
    if breaks:
        mechanisms.append("drops-handshake")

    return StrategyReport(
        strategy=str(strategy),
        packets=packets,
        mechanisms=mechanisms,
        breaks_handshake=breaks,
    )
