"""Geneva core: the strategy DSL, the wire-level engine, the strategy
library, and the genetic algorithm that discovers new strategies.

This package is the paper's primary contribution area: running Geneva
*server-side*, so completely unmodified clients evade censorship.
"""

from .analysis import MECHANISMS, EmittedPacket, StrategyReport, explain
from .dsl import (
    Action,
    DropAction,
    DuplicateAction,
    FragmentAction,
    RecordSplitAction,
    SendAction,
    StallAction,
    Strategy,
    TamperAction,
    Trigger,
    canonical_key,
    canonical_strategy,
    parse_action,
    parse_strategy,
)
from .engine import StrategyEngine, install_strategy
from .strategies import (
    CLIENT_SIDE_STRATEGIES,
    NO_EVASION,
    PAPER_STRATEGY_NUMBERS,
    SERVER_STRATEGIES,
    StrategyRecord,
    client_side_strategy,
    compat_strategy,
    deployed_strategy,
    server_side_analogs,
    strategy,
)

__all__ = [
    "Action",
    "CLIENT_SIDE_STRATEGIES",
    "EmittedPacket",
    "MECHANISMS",
    "StrategyReport",
    "explain",
    "DropAction",
    "DuplicateAction",
    "FragmentAction",
    "NO_EVASION",
    "PAPER_STRATEGY_NUMBERS",
    "RecordSplitAction",
    "SERVER_STRATEGIES",
    "SendAction",
    "StallAction",
    "Strategy",
    "StrategyEngine",
    "StrategyRecord",
    "TamperAction",
    "Trigger",
    "canonical_key",
    "canonical_strategy",
    "client_side_strategy",
    "compat_strategy",
    "deployed_strategy",
    "install_strategy",
    "parse_action",
    "parse_strategy",
    "server_side_analogs",
    "strategy",
]
