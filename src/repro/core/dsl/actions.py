"""Geneva's five packet-manipulation building blocks.

An action tree is applied to one intercepted packet and yields the list of
packets that go on the wire in its place. The genetic building blocks are
exactly the paper's (Appendix: "Geneva's syntax"):

- ``duplicate(A1, A2)`` — copy the packet, apply ``A1`` to the first copy
  and ``A2`` to the second;
- ``fragment{tcp:offset:inOrder}(A1, A2)`` — split the payload into two
  segments at ``offset`` bytes;
- ``tamper{proto:field:mode[:value]}(A)`` — rewrite one header field
  (``replace``) or randomize it (``corrupt``), then continue with ``A``;
- ``drop`` — discard the packet;
- ``send`` — emit the packet.

Tampering any field other than a checksum/length leaves checksum
computation to serialization time (i.e. checksums are fixed up), matching
the real tool; tampering ``chksum`` itself plants the literal corrupted
value — the mechanism behind insertion packets.

Two SNI-era extensions ride alongside the paper's five:

- ``recordsplit{offset}`` — re-chunk the first TLS record of the payload
  into two records (length-preserving), defeating record-reassembling
  SNI boxes;
- ``stall{n}`` — drop the first ``n`` packets the trigger matches
  (*stateful*), modelling server-initiated connection migration: the
  handshake only completes once the censor's flow-tracking window has
  lapsed.
"""

from __future__ import annotations

import random
from typing import List

from ...apps.tls import RECORD_HANDSHAKE, resplit_first_record
from ...packets import Packet

__all__ = [
    "Action",
    "SendAction",
    "DropAction",
    "DuplicateAction",
    "TamperAction",
    "FragmentAction",
    "RecordSplitAction",
    "StallAction",
]


class Action:
    """Base class for all Geneva actions."""

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        """Apply this action to ``packet``; return the packets to emit."""
        raise NotImplementedError

    def children(self) -> List["Action"]:
        """Direct child actions (for tree traversal)."""
        return []

    def tree_size(self) -> int:
        """Number of nodes in this subtree (complexity metric for the GA)."""
        return 1 + sum(child.tree_size() for child in self.children())

    def copy(self) -> "Action":
        """Deep copy of this subtree."""
        raise NotImplementedError

    def is_stateful(self) -> bool:
        """Whether applying this subtree mutates it (e.g. ``stall``).

        Stateful strategies must not be shared between engines — the
        parse cache hands out one instance per DSL string, so engines
        take a private :meth:`copy` when this is true.
        """
        return any(child.is_stateful() for child in self.children())

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))


class SendAction(Action):
    """Emit the packet unchanged (the implicit default child)."""

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        return [packet]

    def copy(self) -> "SendAction":
        return SendAction()

    def __str__(self) -> str:
        return "send"


class DropAction(Action):
    """Discard the packet."""

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        return []

    def copy(self) -> "DropAction":
        return DropAction()

    def __str__(self) -> str:
        return "drop"


def _is_send(action: Action) -> bool:
    return isinstance(action, SendAction)


class DuplicateAction(Action):
    """Duplicate the packet, applying one subtree to each copy."""

    def __init__(self, first: Action = None, second: Action = None) -> None:
        self.first = first if first is not None else SendAction()
        self.second = second if second is not None else SendAction()

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        copy1 = packet
        copy2 = packet.copy()
        return self.first.apply(copy1, rng) + self.second.apply(copy2, rng)

    def children(self) -> List[Action]:
        return [self.first, self.second]

    def copy(self) -> "DuplicateAction":
        return DuplicateAction(self.first.copy(), self.second.copy())

    def __str__(self) -> str:
        if _is_send(self.first) and _is_send(self.second):
            return "duplicate"
        left = "" if _is_send(self.first) else str(self.first)
        right = "" if _is_send(self.second) else str(self.second)
        return f"duplicate({left},{right})"


class TamperAction(Action):
    """Rewrite one header field, then continue with a single subtree."""

    def __init__(
        self,
        protocol: str,
        field: str,
        mode: str,
        value: str = "",
        child: Action = None,
    ) -> None:
        if mode not in ("replace", "corrupt"):
            raise ValueError(f"unknown tamper mode {mode!r}")
        self.protocol = protocol.upper()
        self.field = field
        self.mode = mode
        self.value = value
        self.child = child if child is not None else SendAction()

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        if self.mode == "replace":
            packet.replace_field(self.protocol, self.field, self.value)
        else:
            packet.corrupt_field(self.protocol, self.field, rng)
        return self.child.apply(packet, rng)

    def children(self) -> List[Action]:
        return [self.child]

    def copy(self) -> "TamperAction":
        return TamperAction(
            self.protocol, self.field, self.mode, self.value, self.child.copy()
        )

    def __str__(self) -> str:
        if self.mode == "replace":
            spec = f"{self.protocol}:{self.field}:replace:{self.value}"
        else:
            spec = f"{self.protocol}:{self.field}:corrupt"
        base = f"tamper{{{spec}}}"
        if _is_send(self.child):
            return base
        return f"{base}({self.child},)"


class FragmentAction(Action):
    """Split the packet's payload into two TCP segments at ``offset``.

    ``in_order=False`` emits the second segment first — exploiting censors
    that cannot reorder. (Only TCP segmentation is meaningful for the
    strategies in this paper; the ``protocol`` tag is kept for syntax
    fidelity.)
    """

    def __init__(
        self,
        protocol: str = "tcp",
        offset: int = 8,
        in_order: bool = True,
        first: Action = None,
        second: Action = None,
    ) -> None:
        self.protocol = protocol.lower()
        self.offset = offset
        self.in_order = in_order
        self.first = first if first is not None else SendAction()
        self.second = second if second is not None else SendAction()

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        load = packet.load
        if not load or self.offset <= 0 or self.offset >= len(load):
            # Nothing to split: behave like duplicate-free send.
            return self.first.apply(packet, rng)
        seg1 = packet.copy()
        seg2 = packet.copy()
        seg1.tcp.load = load[: self.offset]
        seg2.tcp.load = load[self.offset :]
        seg2.tcp.seq = (packet.tcp.seq + self.offset) % (1 << 32)
        out1 = self.first.apply(seg1, rng)
        out2 = self.second.apply(seg2, rng)
        return out1 + out2 if self.in_order else out2 + out1

    def children(self) -> List[Action]:
        return [self.first, self.second]

    def copy(self) -> "FragmentAction":
        return FragmentAction(
            self.protocol, self.offset, self.in_order, self.first.copy(), self.second.copy()
        )

    def __str__(self) -> str:
        base = f"fragment{{{self.protocol}:{self.offset}:{self.in_order}}}"
        if _is_send(self.first) and _is_send(self.second):
            return base
        left = "" if _is_send(self.first) else str(self.first)
        right = "" if _is_send(self.second) else str(self.second)
        return f"{base}({left},{right})"


class RecordSplitAction(Action):
    """Split the payload's first TLS record in two, preserving length.

    Applies :func:`repro.apps.tls.resplit_first_record` to handshake
    payloads: the first record is re-chunked into two records at
    ``offset`` body bytes, with the 5-byte overflow trimmed from the
    second record's tail so the TCP stream length — and therefore every
    sequence number already in flight — is unchanged. Record-reassembling
    DPI can no longer complete the handshake message; lenient clients
    (which only need *a* handshake record plus intact application data)
    are unaffected. Packets that do not start with a complete handshake
    record pass through untouched.
    """

    def __init__(self, offset: int = 2, child: Action = None) -> None:
        self.offset = offset
        self.child = child if child is not None else SendAction()

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        load = packet.load
        if load and load[0] == RECORD_HANDSHAKE:
            split = resplit_first_record(load, self.offset)
            if split is not None:
                packet.tcp.load = split
        return self.child.apply(packet, rng)

    def children(self) -> List[Action]:
        return [self.child]

    def copy(self) -> "RecordSplitAction":
        return RecordSplitAction(self.offset, self.child.copy())

    def __str__(self) -> str:
        base = f"recordsplit{{{self.offset}}}"
        if _is_send(self.child):
            return base
        return f"{base}({self.child},)"


class StallAction(Action):
    """Drop the first ``count`` matching packets, then pass the rest.

    The DSL face of server-initiated connection migration: triggered on
    the SYN+ACK, the server's first ``count`` handshake responses are
    suppressed, so the connection only comes up on a later retransmission
    (0.4 s/0.8 s/1.6 s/... RTO backoff) — after the censor's per-flow
    tracking window, anchored at the client's first SYN, has lapsed.

    Stateful: the drop counter advances across :meth:`apply` calls.
    :meth:`copy` resets it, and engines copy stateful strategies at
    install time, so each trial/flow stalls independently.
    """

    def __init__(self, count: int = 1, child: Action = None) -> None:
        self.count = count
        self.child = child if child is not None else SendAction()
        self.dropped = 0

    def apply(self, packet: Packet, rng: random.Random) -> List[Packet]:
        if self.dropped < self.count:
            self.dropped += 1
            return []
        return self.child.apply(packet, rng)

    def children(self) -> List[Action]:
        return [self.child]

    def copy(self) -> "StallAction":
        return StallAction(self.count, self.child.copy())

    def is_stateful(self) -> bool:
        return True

    def __str__(self) -> str:
        base = f"stall{{{self.count}}}"
        if _is_send(self.child):
            return base
        return f"{base}({self.child},)"
