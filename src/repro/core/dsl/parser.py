"""Parser and container for Geneva strategy strings.

The concrete syntax is the paper's (Appendix):

    [<trigger>]-<action tree>-| ... \\/ [<trigger>]-<action tree>-| ...

with the ``\\/`` separating the outbound forest from the inbound forest.
``Strategy.parse(str(strategy))`` round-trips for every strategy in the
library, and every strategy string printed in the paper parses.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ...packets import Packet
from .actions import (
    Action,
    DropAction,
    DuplicateAction,
    FragmentAction,
    RecordSplitAction,
    SendAction,
    StallAction,
    TamperAction,
)
from .triggers import Trigger

__all__ = ["Strategy", "parse_strategy", "parse_action"]

ActionTree = Tuple[Trigger, Action]


class Strategy:
    """A full Geneva strategy: outbound and inbound trigger/action forests.

    Applying the strategy to a packet finds the first action tree whose
    trigger matches and runs it; unmatched packets pass through unchanged.
    """

    def __init__(
        self,
        outbound: Optional[List[ActionTree]] = None,
        inbound: Optional[List[ActionTree]] = None,
        name: str = "",
    ) -> None:
        self.outbound = list(outbound or [])
        self.inbound = list(inbound or [])
        self.name = name

    # ------------------------------------------------------------------

    def apply_outbound(self, packet: Packet, rng: random.Random) -> List[Packet]:
        """Transform one outbound packet into the packets to send."""
        return self._apply(self.outbound, packet, rng)

    def apply_inbound(self, packet: Packet, rng: random.Random) -> List[Packet]:
        """Transform one inbound packet into the packets to deliver."""
        return self._apply(self.inbound, packet, rng)

    @staticmethod
    def _apply(forest: List[ActionTree], packet: Packet, rng: random.Random) -> List[Packet]:
        for trigger, action in forest:
            if trigger.matches(packet):
                return action.apply(packet.copy(), rng)
        return [packet]

    # ------------------------------------------------------------------

    def tree_size(self) -> int:
        """Total node count across all action trees (complexity metric)."""
        return sum(action.tree_size() for _, action in self.outbound + self.inbound)

    def copy(self) -> "Strategy":
        """Deep copy (stateful actions come back with fresh state)."""
        return Strategy(
            [(trigger, action.copy()) for trigger, action in self.outbound],
            [(trigger, action.copy()) for trigger, action in self.inbound],
            name=self.name,
        )

    def is_stateful(self) -> bool:
        """Whether applying the strategy mutates it (any stateful action).

        Stateful strategies must be private to one engine: the runtime's
        parse cache shares instances across trials, so engines copy them
        at install time when this is true.
        """
        return any(
            action.is_stateful() for _, action in self.outbound + self.inbound
        )

    def is_noop(self) -> bool:
        """Whether this strategy has no action trees at all."""
        return not self.outbound and not self.inbound

    def canonical(self) -> "Strategy":
        """Semantic normal form (see :mod:`repro.core.dsl.canonical`)."""
        from .canonical import canonical_strategy

        return canonical_strategy(self)

    def canonical_key(self) -> str:
        """Canonical DSL text; equal for behaviourally-equivalent strategies."""
        return str(self.canonical())

    @classmethod
    def parse(cls, text: str, name: str = "") -> "Strategy":
        """Parse a strategy string (see module docstring for syntax)."""
        return parse_strategy(text, name=name)

    def __str__(self) -> str:
        out = " ".join(f"{trigger}-{action}-|" for trigger, action in self.outbound)
        inb = " ".join(f"{trigger}-{action}-|" for trigger, action in self.inbound)
        return f"{out} \\/ {inb}".strip()

    def __repr__(self) -> str:
        return f"Strategy({self!s})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Strategy) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


# ----------------------------------------------------------------------
# Parsing

class _Cursor:
    """A tiny scanning cursor over the strategy text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise ValueError(
                f"expected {literal!r} at position {self.pos} in {self.text!r}"
            )
        self.pos += len(literal)

    def take_until(self, terminator: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise ValueError(f"missing {terminator!r} in {self.text!r}")
        value = self.text[self.pos : end]
        self.pos = end + len(terminator)
        return value

    def done(self) -> bool:
        return self.pos >= len(self.text)


def parse_strategy(text: str, name: str = "") -> Strategy:
    """Parse a full strategy string into a :class:`Strategy`."""
    if "\\/" in text:
        out_text, _, in_text = text.partition("\\/")
    else:
        out_text, in_text = text, ""
    return Strategy(_parse_forest(out_text), _parse_forest(in_text), name=name)


def _parse_forest(text: str) -> List[ActionTree]:
    cursor = _Cursor(text)
    forest: List[ActionTree] = []
    while True:
        cursor.skip_ws()
        if cursor.done():
            return forest
        cursor.expect("[")
        trigger = Trigger.parse(cursor.take_until("]"))
        cursor.expect("-")
        action = _parse_action(cursor)
        cursor.skip_ws()
        cursor.expect("-|")
        forest.append((trigger, action))


def parse_action(text: str) -> Action:
    """Parse a standalone action tree (without trigger or terminator)."""
    cursor = _Cursor(text)
    action = _parse_action(cursor)
    cursor.skip_ws()
    if not cursor.done():
        raise ValueError(f"trailing input at position {cursor.pos} in {text!r}")
    return action


def _parse_action(cursor: _Cursor) -> Action:
    cursor.skip_ws()
    name_start = cursor.pos
    while cursor.peek().isalpha():
        cursor.pos += 1
    name = cursor.text[name_start : cursor.pos]
    if not name:
        raise ValueError(f"expected action name at position {cursor.pos}")

    args = ""
    if cursor.peek() == "{":
        cursor.pos += 1
        args = cursor.take_until("}")

    first: Optional[Action] = None
    second: Optional[Action] = None
    if cursor.peek() == "(":
        cursor.pos += 1
        cursor.skip_ws()
        if cursor.peek() not in (",", ")"):
            first = _parse_action(cursor)
        cursor.skip_ws()
        if cursor.peek() == ",":
            cursor.pos += 1
            cursor.skip_ws()
            if cursor.peek() != ")":
                second = _parse_action(cursor)
        cursor.skip_ws()
        cursor.expect(")")

    return _build_action(name, args, first, second)


def _build_action(
    name: str, args: str, first: Optional[Action], second: Optional[Action]
) -> Action:
    if name == "send":
        _require_leaf(name, args, first, second)
        return SendAction()
    if name == "drop":
        _require_leaf(name, args, first, second)
        return DropAction()
    if name == "duplicate":
        if args:
            raise ValueError("duplicate takes no arguments")
        return DuplicateAction(first, second)
    if name == "tamper":
        parts = args.split(":", 3)
        if len(parts) < 3:
            raise ValueError(f"malformed tamper arguments {args!r}")
        protocol, field, mode = parts[0], parts[1], parts[2]
        value = parts[3] if len(parts) > 3 else ""
        if second is not None:
            raise ValueError("tamper takes a single child")
        return TamperAction(protocol, field, mode, value, first)
    if name == "fragment":
        parts = args.split(":")
        if len(parts) != 3:
            raise ValueError(f"malformed fragment arguments {args!r}")
        protocol, offset, in_order = parts
        return FragmentAction(
            protocol, int(offset), in_order.strip().lower() == "true", first, second
        )
    if name == "recordsplit":
        if second is not None:
            raise ValueError("recordsplit takes a single child")
        if not args:
            raise ValueError("recordsplit requires an offset argument")
        return RecordSplitAction(int(args), first)
    if name == "stall":
        if second is not None:
            raise ValueError("stall takes a single child")
        if not args:
            raise ValueError("stall requires a count argument")
        return StallAction(int(args), first)
    raise ValueError(f"unknown action {name!r}")


def _require_leaf(
    name: str, args: str, first: Optional[Action], second: Optional[Action]
) -> None:
    if args or first is not None or second is not None:
        raise ValueError(f"{name} takes no arguments or children")
