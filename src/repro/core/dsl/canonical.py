"""Semantic canonicalization of Geneva strategies.

Evolution produces heaps of *textually distinct but behaviourally
identical* genomes: a mutated second tree behind the same trigger can
never fire (first match wins), ``duplicate`` with a ``drop`` branch is
just its other branch, ``stall{0}`` stalls nothing, and trigger values
like ``SA`` vs ``AS`` or ``10`` vs ``010`` denote the same predicate
(flags match as sets, ints by value). :func:`canonical_strategy` rewrites
a strategy into a normal form with all of that folded away, so the GA's
fitness memo — and the content-addressed result cache underneath it —
collapse every such duplicate onto one evaluation.

Every rule here is *semantics-preserving in the strict sense the runtime
needs*: the canonical strategy produces byte-identical packet traces for
every trial, which also requires preserving the RNG draw sequence —
``corrupt`` tampers draw from the trial RNG, so no rule may remove or
reorder one. The property suite in ``tests/core/test_canonical_property``
checks trace equality for random genomes against every censor.

The rules:

**Action trees** (applied bottom-up)

- ``duplicate(A, drop)`` → ``A``; ``duplicate(drop, A)`` → ``A`` (a
  dropped copy contributes nothing, and ``drop`` draws no randomness).
- ``fragment{p:offset:order}(A, B)`` → ``A`` when ``offset <= 0`` (the
  guard in :meth:`FragmentAction.apply` always takes the first branch;
  the second branch never runs).
- ``stall{n}(C)`` → ``C`` when ``n <= 0`` (never drops anything).
- ``recordsplit{o}(C)`` → ``C`` when ``o <= 0``
  (:func:`~repro.apps.tls.resplit_first_record` refuses the split).
- ``tamper{P:F:replace:v1}(tamper{P:F:replace:v2}(C))`` → the inner
  tamper: the outer write is dead-stored by its direct child. Only
  ``replace`` children qualify (``corrupt`` of a bytes field depends on
  the *current* value's length), and only when ``v1`` itself parses for
  the field (an unparseable value raises at apply time, which removal
  would suppress).
- ``replace`` values are normalized per field kind the same way trigger
  values are (``010`` → ``10`` for ints, case/order/duplicates folded
  for flag sets) — the parsed value, hence the wire, is unchanged.

**Forests** (after trigger normalization)

- Trigger values are normalized per field kind: flag sets are rewritten
  into canonical wire order (``AS`` → ``SA``), integer values to
  ``str(int(v))``. A trigger that can never match any packet — unknown
  protocol/field, invalid flag letter, unparseable integer — marks its
  whole tree dead, and dead trees are removed.
- A tree whose (normalized) trigger repeats an earlier tree's is
  unreachable and removed.
- Trailing trees whose action is a plain ``send`` are removed: a match
  emits the packet unchanged, exactly what falling off the forest does.
- When every trigger in the forest tests the *same* field (so the
  predicates are mutually exclusive once values are distinct), ``send``
  trees anywhere are identity and removed, and the surviving trees are
  sorted by trigger text — trigger order is commutative for exclusive
  predicates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...packets import TCP, UDP, IPv4, IPv6, TCP_FLAG_LETTERS
from .actions import (
    Action,
    DropAction,
    DuplicateAction,
    FragmentAction,
    RecordSplitAction,
    SendAction,
    StallAction,
    TamperAction,
)
from .parser import Strategy
from .triggers import Trigger

__all__ = ["canonical_strategy", "canonical_key", "normalize_trigger"]

_FLAG_ORDER = {letter: index for index, letter in enumerate(TCP_FLAG_LETTERS)}


def _field_kinds(protocol: str, field: str) -> List[str]:
    """Field kinds a ``protocol:field`` name can resolve to at match time.

    ``IP`` consults both the v4 and v6 registries (a packet's version
    picks one); unknown protocols or fields resolve to nothing.
    """
    protocol = protocol.upper()
    if protocol == "TCP":
        registries = (TCP.FIELDS,)
    elif protocol == "UDP":
        registries = (UDP.FIELDS,)
    elif protocol == "IP":
        registries = (IPv4.FIELDS, IPv6.FIELDS)
    else:
        return []
    return sorted({r[field].kind for r in registries if field in r})


def normalize_trigger(trigger: Trigger) -> Optional[Tuple[Trigger, Optional[str]]]:
    """Normalize a trigger's value; ``None`` if it can never match.

    Returns ``(canonical_trigger, kind)`` where ``kind`` is the field
    kind when it is unambiguous (used to reason about mutual exclusion)
    or ``None`` when it is not.
    """
    kinds = _field_kinds(trigger.protocol, trigger.field)
    if not kinds:
        return None  # unknown protocol or field: matches no packet, ever
    if len(kinds) > 1:
        # Same field name, different kinds across IP versions: keep the
        # trigger verbatim and treat its semantics as opaque.
        return Trigger(trigger.protocol.upper(), trigger.field, trigger.value), None
    kind = kinds[0]
    value = trigger.value
    if kind == "flags":
        letters = set(value.upper())
        if letters - set(TCP_FLAG_LETTERS):
            return None  # stacks only ever set canonical letters
        value = "".join(sorted(letters, key=_FLAG_ORDER.__getitem__))
    elif kind == "int":
        try:
            value = str(int(value))
        except ValueError:
            return None  # int(current) == int(value) can never hold
    return Trigger(trigger.protocol.upper(), trigger.field, value), kind


def _replace_value_parses(protocol: str, field: str, value: str) -> bool:
    """Whether ``tamper{...:replace:value}`` parses its value cleanly.

    The dead-store rule must not remove a tamper that would *raise* at
    apply time (removal would turn a broken trial into a working one).
    """
    from ...packets.fields import parse_replace_value

    kinds = _field_kinds(protocol, field)
    if len(kinds) != 1:
        return False
    spec_kind = kinds[0]
    if spec_kind in ("ip",):
        # v6 setters eagerly expand the text; validity is packet-shaped.
        return False

    class _Probe:
        kind = spec_kind

    try:
        parse_replace_value(_Probe, value)  # type: ignore[arg-type]
    except ValueError:
        return False
    return True


def _canonical_replace_value(protocol: str, field: str, value: str) -> str:
    """Normalize a ``replace`` value to its canonical spelling.

    Only rewrites values whose parsed form — what actually reaches the
    packet setter — is provably unchanged: integer respellings and flag
    sets (the setter canonicalizes order and duplicates anyway).
    Anything unparseable is left verbatim so apply-time errors survive.
    """
    kinds = _field_kinds(protocol, field)
    if len(kinds) != 1:
        return value
    kind = kinds[0]
    if kind == "int":
        try:
            return str(int(value)) if value.strip() else "0"
        except ValueError:
            return value
    if kind == "flags":
        letters = set(value.strip().upper())
        if letters - set(TCP_FLAG_LETTERS):
            return value
        return "".join(sorted(letters, key=_FLAG_ORDER.__getitem__))
    return value


def _canonical_action(action: Action) -> Action:
    """Rewrite one action tree bottom-up into canonical form."""
    if isinstance(action, DuplicateAction):
        first = _canonical_action(action.first)
        second = _canonical_action(action.second)
        if isinstance(second, DropAction):
            return first
        if isinstance(first, DropAction):
            return second
        return DuplicateAction(first, second)
    if isinstance(action, FragmentAction):
        first = _canonical_action(action.first)
        if action.offset <= 0:
            return first
        return FragmentAction(
            action.protocol,
            action.offset,
            action.in_order,
            first,
            _canonical_action(action.second),
        )
    if isinstance(action, TamperAction):
        child = _canonical_action(action.child)
        if (
            action.mode == "replace"
            and isinstance(child, TamperAction)
            and child.mode == "replace"
            and child.protocol == action.protocol
            and child.field == action.field
            and _replace_value_parses(action.protocol, action.field, action.value)
        ):
            return child
        value = action.value
        if action.mode == "replace":
            value = _canonical_replace_value(action.protocol, action.field, value)
        return TamperAction(action.protocol, action.field, action.mode, value, child)
    if isinstance(action, StallAction):
        child = _canonical_action(action.child)
        if action.count <= 0:
            return child
        return StallAction(action.count, child)
    if isinstance(action, RecordSplitAction):
        child = _canonical_action(action.child)
        if action.offset <= 0:
            return child
        return RecordSplitAction(action.offset, child)
    return action.copy()  # send / drop leaves


def _canonical_forest(
    forest: List[Tuple[Trigger, Action]]
) -> List[Tuple[Trigger, Action]]:
    trees: List[Tuple[Trigger, Action, Optional[str]]] = []
    seen = set()
    for trigger, action in forest:
        normalized = normalize_trigger(trigger)
        if normalized is None:
            continue  # dead tree: the trigger matches no packet
        canon_trigger, kind = normalized
        key = (canon_trigger.protocol, canon_trigger.field, canon_trigger.value)
        if key in seen:
            continue  # unreachable: an earlier tree owns this predicate
        seen.add(key)
        trees.append((canon_trigger, _canonical_action(action), kind))

    # A trailing send-tree is identity: matching emits the packet as-is,
    # which is exactly what falling off the end of the forest does.
    while trees and isinstance(trees[-1][1], SendAction):
        trees.pop()

    exclusive = (
        len(trees) > 1
        and len({(t.protocol, t.field) for t, _, _ in trees}) == 1
        and all(kind is not None for _, _, kind in trees)
    )
    if exclusive:
        # Distinct values on one field are mutually exclusive predicates:
        # send-trees are identity anywhere, and order is commutative.
        trees = [t for t in trees if not isinstance(t[1], SendAction)]
        trees.sort(key=lambda item: str(item[0]))
    return [(trigger, action) for trigger, action, _ in trees]


def canonical_strategy(strategy: Strategy) -> Strategy:
    """The canonical form of ``strategy`` (a new, behaviour-identical object)."""
    return Strategy(
        _canonical_forest(strategy.outbound),
        _canonical_forest(strategy.inbound),
        name=strategy.name,
    )


def canonical_key(strategy: Strategy) -> str:
    """Canonical DSL text: equal for all behaviourally-equivalent genomes."""
    return str(canonical_strategy(strategy))
