"""Geneva's strategy DSL: triggers, action trees, and the parser."""

from .actions import (
    Action,
    DropAction,
    DuplicateAction,
    FragmentAction,
    RecordSplitAction,
    SendAction,
    StallAction,
    TamperAction,
)
from .canonical import canonical_key, canonical_strategy, normalize_trigger
from .parser import Strategy, parse_action, parse_strategy
from .triggers import Trigger

__all__ = [
    "Action",
    "DropAction",
    "DuplicateAction",
    "FragmentAction",
    "RecordSplitAction",
    "SendAction",
    "StallAction",
    "Strategy",
    "TamperAction",
    "Trigger",
    "canonical_key",
    "canonical_strategy",
    "normalize_trigger",
    "parse_action",
    "parse_strategy",
]
