"""Geneva triggers: ``[protocol:field:value]``.

A trigger gates an action tree. Geneva's trigger matching is an *exact*
match on the named field — ``[TCP:flags:S]`` does not match SYN+ACK
packets (Appendix of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...packets import Packet

__all__ = ["Trigger"]


@dataclass(frozen=True)
class Trigger:
    """An exact-match packet predicate.

    Attributes:
        protocol: ``"TCP"`` or ``"IP"``.
        field: Field name within the protocol (Geneva namespace).
        value: Textual value the field must equal exactly.
    """

    protocol: str
    field: str
    value: str

    def matches(self, packet: Packet) -> bool:
        """Whether ``packet`` satisfies this trigger."""
        try:
            return packet.matches(self.protocol, self.field, self.value)
        except ValueError:
            return False

    @classmethod
    def parse(cls, text: str) -> "Trigger":
        """Parse ``proto:field:value`` (without the surrounding brackets)."""
        parts = text.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"malformed trigger {text!r}")
        protocol, field, value = parts
        return cls(protocol.upper(), field, value)

    def __str__(self) -> str:
        return f"[{self.protocol}:{self.field}:{self.value}]"
