"""The strategy engine: applies a Geneva strategy at a host's wire boundary.

This plays the role NetfilterQueue plays for the real tool — it intercepts
every packet between a host's TCP stack and the network and rewrites it
according to the strategy. Installing the engine on the *server* host is
precisely the paper's contribution: server-side evasion with a completely
unmodified client.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional

from ..obs import spans as _spans
from ..obs.metrics import Counter
from ..packets import Packet
from ..tcpstack import Host
from .dsl import Strategy

__all__ = ["StrategyEngine", "install_strategy"]

#: Strategy-engine interventions: outbound packets a trigger actually
#: rewrote (forwarded-unchanged traffic is not counted).
_STRATEGY_INTERCEPTS = Counter(
    "repro_strategy_intercepts_total",
    "Outbound packets modified by an installed strategy",
    ("direction",),
)


class StrategyEngine:
    """Applies one :class:`~repro.core.dsl.Strategy` to a host's traffic.

    Attributes:
        strategy: The strategy being enforced.
        rng: Randomness source for ``corrupt`` tampers (seeded per trial).
        packets_intercepted: Outbound packets that matched a trigger.
    """

    def __init__(self, strategy: Strategy, rng: Optional[random.Random] = None) -> None:
        # Stateful strategies (e.g. ``stall``) mutate as they apply; take
        # a private copy so instances shared by the runtime's parse cache
        # are never written to, and every trial starts from fresh state.
        self.strategy = strategy.copy() if strategy.is_stateful() else strategy
        self.rng = rng if rng is not None else random.Random(0)
        self.packets_intercepted = 0

    def _timed_apply(self, apply, packet: Packet) -> List[Packet]:
        """Run one strategy direction, span-timed only when profiling is on."""
        if _spans.ENABLED:
            t0 = time.perf_counter()
            result = apply(packet, self.rng)
            _spans.add("simulate/strategy", time.perf_counter() - t0)
            return result
        return apply(packet, self.rng)

    def outbound_filter(self, packet: Packet) -> List[Packet]:
        """Filter suitable for :attr:`Host.outbound_filters`."""
        result = self._timed_apply(self.strategy.apply_outbound, packet)
        if len(result) != 1 or result[0] is not packet:
            self.packets_intercepted += 1
            _STRATEGY_INTERCEPTS.inc(direction="outbound")
        return result

    def inbound_filter(self, packet: Packet) -> List[Packet]:
        """Filter suitable for :attr:`Host.inbound_filters`."""
        return self._timed_apply(self.strategy.apply_inbound, packet)


def install_strategy(
    host: Host, strategy: Strategy, rng: Optional[random.Random] = None
) -> StrategyEngine:
    """Attach ``strategy`` to ``host`` (both directions); returns the engine."""
    engine = StrategyEngine(strategy, rng)
    host.outbound_filters.append(engine.outbound_filter)
    host.inbound_filters.append(engine.inbound_filter)
    return engine
