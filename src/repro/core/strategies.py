"""The paper's strategy library.

Contains, in Geneva DSL form:

- the **11 server-side strategies** of Table 2 (Strategies 1–8 for China,
  8–11 for India/Iran/Kazakhstan), exactly as printed in the paper;
- **deployed variants** where needed — Strategy 8's window reduction is
  also applied to the server's subsequent ACKs so induced segmentation
  persists past the first flight (the printed form tampers only the
  SYN+ACK; our unmodified server stack re-advertises its real window on
  the very next ACK, so for protocols whose forbidden request comes after
  a sign-in dialogue the clamp must be maintained — see EXPERIMENTS.md);
- **client-compatibility variants** (§7): Strategies 5, 9 and 10 carry a
  payload on a SYN+ACK, which Windows and macOS stacks consume; the fix
  sends the payload packets as checksum-corrupted insertion packets and
  the original SYN+ACK unmodified afterwards;
- a corpus of **client-side strategies** (TCB teardown via TTL-limited or
  checksum-corrupted insertion packets, from Bock et al.) used by §3's
  generalization experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .dsl import Strategy

__all__ = [
    "StrategyRecord",
    "PAPER_STRATEGY_NUMBERS",
    "SERVER_STRATEGIES",
    "strategy",
    "deployed_strategy",
    "compat_strategy",
    "CLIENT_SIDE_STRATEGIES",
    "CLIENT_SEGMENTATION_STRATEGIES",
    "client_side_strategy",
    "server_side_analogs",
    "NO_EVASION",
]

#: The do-nothing baseline (Table 2's "No evasion" rows).
NO_EVASION = Strategy(name="no-evasion")


@dataclass(frozen=True)
class StrategyRecord:
    """One numbered strategy from the paper.

    Attributes:
        number: Paper strategy number (1–11).
        name: Short descriptive name from Table 2.
        dsl: The strategy string exactly as printed in the paper.
        deployed_dsl: Variant actually installed for evaluation when the
            printed form needs reinforcement (see module docstring);
            ``None`` means the printed form is deployed as-is.
        compat_dsl: Client-compatibility variant using checksum-corrupted
            insertion packets (§7); ``None`` when not needed.
        countries: Countries where Table 2 reports the strategy.
        uses_simultaneous_open: Whether the strategy relies on TCP
            simultaneous open (relevant for carrier middleboxes, §7).
        synack_payload: Whether a payload rides on a SYN+ACK (the §7
            Windows/macOS incompatibility).
    """

    number: int
    name: str
    dsl: str
    deployed_dsl: Optional[str] = None
    compat_dsl: Optional[str] = None
    countries: Tuple[str, ...] = ("china",)
    uses_simultaneous_open: bool = False
    synack_payload: bool = False

    def strategy(self) -> Strategy:
        """The strategy as printed in the paper."""
        return Strategy.parse(self.dsl, name=f"strategy-{self.number}")

    def deployed(self) -> Strategy:
        """The variant installed for evaluation."""
        text = self.deployed_dsl if self.deployed_dsl is not None else self.dsl
        return Strategy.parse(text, name=f"strategy-{self.number}")

    def compat(self) -> Strategy:
        """The §7 client-compatibility variant (falls back to deployed)."""
        text = self.compat_dsl if self.compat_dsl is not None else self.dsl
        return Strategy.parse(text, name=f"strategy-{self.number}-compat")


# A window clamp maintained on every outbound packet class the server
# emits, so induced segmentation persists beyond the first flight.
_WINDOW_CLAMP_TAIL = (
    " [TCP:flags:A]-tamper{TCP:window:replace:10}-|"
    " [TCP:flags:PA]-tamper{TCP:window:replace:10}-|"
    " [TCP:flags:FA]-tamper{TCP:window:replace:10}-| \\/"
)

SERVER_STRATEGIES: Dict[int, StrategyRecord] = {
    1: StrategyRecord(
        number=1,
        name="Sim. Open, Injected RST",
        dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:flags:replace:R},"
            "tamper{TCP:flags:replace:S})-| \\/"
        ),
        uses_simultaneous_open=True,
    ),
    2: StrategyRecord(
        number=2,
        name="Sim. Open, Injected Load",
        dsl=(
            "[TCP:flags:SA]-tamper{TCP:flags:replace:S}("
            "duplicate(,tamper{TCP:load:corrupt}),)-| \\/"
        ),
        uses_simultaneous_open=True,
    ),
    3: StrategyRecord(
        number=3,
        name="Corrupt ACK, Sim. Open",
        dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:ack:corrupt},"
            "tamper{TCP:flags:replace:S})-| \\/"
        ),
        uses_simultaneous_open=True,
    ),
    4: StrategyRecord(
        number=4,
        name="Corrupt ACK Alone",
        dsl="[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/",
    ),
    5: StrategyRecord(
        number=5,
        name="Corrupt ACK, Injected Load",
        dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:ack:corrupt},"
            "tamper{TCP:load:corrupt})-| \\/"
        ),
        compat_dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:ack:corrupt},"
            "duplicate(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt},),))-| \\/"
        ),
        synack_payload=True,
    ),
    6: StrategyRecord(
        number=6,
        name="Injected Load, Induced RST",
        dsl=(
            "[TCP:flags:SA]-duplicate(duplicate("
            "tamper{TCP:flags:replace:F}(tamper{TCP:load:corrupt},),"
            "tamper{TCP:ack:corrupt}),)-| \\/"
        ),
    ),
    7: StrategyRecord(
        number=7,
        name="Injected RST, Induced RST",
        dsl=(
            "[TCP:flags:SA]-duplicate(duplicate("
            "tamper{TCP:flags:replace:R},"
            "tamper{TCP:ack:corrupt}),)-| \\/"
        ),
    ),
    8: StrategyRecord(
        number=8,
        name="TCP Window Reduction",
        dsl=(
            "[TCP:flags:SA]-tamper{TCP:window:replace:10}("
            "tamper{TCP:options-wscale:replace:},)-| \\/"
        ),
        deployed_dsl=(
            "[TCP:flags:SA]-tamper{TCP:window:replace:10}("
            "tamper{TCP:options-wscale:replace:},)-|" + _WINDOW_CLAMP_TAIL
        ),
        countries=("china", "india", "iran", "kazakhstan"),
    ),
    9: StrategyRecord(
        number=9,
        name="Triple Load",
        dsl="[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \\/",
        compat_dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt}"
            "(duplicate(duplicate,),),),)-| \\/"
        ),
        countries=("kazakhstan",),
        synack_payload=True,
    ),
    10: StrategyRecord(
        number=10,
        name="Double GET",
        dsl="[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \\/",
        compat_dsl=(
            "[TCP:flags:SA]-duplicate("
            "tamper{TCP:load:replace:GET / HTTP1.}(tamper{TCP:chksum:corrupt}"
            "(duplicate,),),)-| \\/"
        ),
        countries=("kazakhstan",),
        synack_payload=True,
    ),
    11: StrategyRecord(
        number=11,
        name="Null Flags",
        dsl="[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/",
        countries=("kazakhstan",),
    ),
    # ------------------------------------------------------------------
    # SNI-era additions (12-15): server-side answers to TLS-metadata
    # censors. Not from the paper's Table 2 — they target the southkorea/
    # russia SNI boxes and are evaluated by eval/sni_matrix.py.
    12: StrategyRecord(
        number=12,
        name="ServerHello Record Split",
        dsl="[TCP:flags:PA]-recordsplit{2}-| \\/",
        countries=("southkorea",),
    ),
    13: StrategyRecord(
        number=13,
        name="ServerHello Segmentation",
        dsl="[TCP:flags:PA]-fragment{tcp:3:True}-| \\/",
        countries=("southkorea",),
    ),
    14: StrategyRecord(
        number=14,
        name="Connection Migration (shallow)",
        dsl="[TCP:flags:SA]-stall{2}-| \\/",
        countries=("southkorea",),
    ),
    15: StrategyRecord(
        number=15,
        name="Connection Migration (deep)",
        dsl="[TCP:flags:SA]-stall{3}-| \\/",
        countries=("southkorea", "russia"),
    ),
}

#: Strategy numbers printed in the paper's Table 2 (the SNI-era additions
#: above are evaluated by the SNI matrix, not the paper tables).
PAPER_STRATEGY_NUMBERS = tuple(range(1, 12))


def strategy(number: int) -> Strategy:
    """Strategy ``number`` (1-11 paper, 12-15 SNI-era) as printed."""
    return SERVER_STRATEGIES[number].strategy()


def deployed_strategy(number: int) -> Strategy:
    """Strategy ``number`` in the form installed for evaluation."""
    return SERVER_STRATEGIES[number].deployed()


def compat_strategy(number: int) -> Strategy:
    """Strategy ``number`` in its §7 client-compatibility form."""
    return SERVER_STRATEGIES[number].compat()


# ----------------------------------------------------------------------
# Client-side strategies for §3's generalization experiment.
#
# Representative of Bock et al.'s working client-side species: each sends
# an insertion packet (TTL-limited or checksum-corrupted so it reaches the
# censor but not the server) that tears down the censor's TCB. The TTL
# value 5 reaches a censor at hop 3 but not a server 10 hops away in the
# default evaluation topology.

def _teardown(trigger: str, flags: str, trick: str) -> str:
    if trick == "ttl":
        inner = f"tamper{{TCP:flags:replace:{flags}}}(tamper{{IP:ttl:replace:5}},)"
    else:
        inner = f"tamper{{TCP:flags:replace:{flags}}}(tamper{{TCP:chksum:corrupt}},)"
    return f"[TCP:flags:{trigger}]-duplicate({inner},)-| \\/"


#: Name -> client-side strategy string. The TCB-teardown species trigger
#: on the client's handshake ACK or request and send an insertion
#: teardown packet; the segmentation species split the request itself
#: (the client-side counterpart of Strategy 8, which has no server-side
#: analog — §3 discards it as such).
CLIENT_SIDE_STRATEGIES: Dict[str, str] = {}
for _trigger in ("A", "PA"):
    for _flags in ("R", "RA"):
        for _trick in ("ttl", "chksum"):
            _name = f"teardown-{_flags.lower()}-{_trick}-on-{_trigger.lower()}"
            CLIENT_SIDE_STRATEGIES[_name] = _teardown(_trigger, _flags, _trick)

#: Client-side segmentation species (no server-side analog exists; they
#: are excluded from §3's translation experiment, mirroring the paper's
#: manual triage of 36 -> 25 strategies).
CLIENT_SEGMENTATION_STRATEGIES: Dict[str, str] = {
    "segmentation-8": "[TCP:flags:PA]-fragment{tcp:8:True}-| \\/",
    "segmentation-4": "[TCP:flags:PA]-fragment{tcp:4:True}-| \\/",
    "segmentation-8-ooo": "[TCP:flags:PA]-fragment{tcp:8:False}-| \\/",
}


def client_side_strategy(name: str) -> Strategy:
    """A client-side strategy from the §3 corpus, by name."""
    return Strategy.parse(CLIENT_SIDE_STRATEGIES[name], name=name)


def server_side_analogs(name: str) -> List[Strategy]:
    """§3's translation: the two server-side analogs of a client strategy.

    Each client-side strategy sends an insertion packet during/after the
    handshake; the analogs send the same insertion packet from the server,
    once *before* and once *after* the SYN+ACK. The TTL trick is dropped
    (a server-side TTL limit would stop the packet before the censor);
    the insertion packet itself is kept byte-identical otherwise.
    """
    parts = name.split("-")
    flags = parts[1].upper()
    trick = parts[2]
    if trick == "ttl":
        insertion = f"tamper{{TCP:flags:replace:{flags}}}"
    else:
        insertion = (
            f"tamper{{TCP:flags:replace:{flags}}}(tamper{{TCP:chksum:corrupt}},)"
        )
    before = Strategy.parse(
        f"[TCP:flags:SA]-duplicate({insertion},)-| \\/",
        name=f"{name}-server-before",
    )
    after = Strategy.parse(
        f"[TCP:flags:SA]-duplicate(,{insertion})-| \\/",
        name=f"{name}-server-after",
    )
    return [before, after]
