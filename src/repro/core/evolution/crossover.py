"""Crossover operator: exchange genetic material between two strategies."""

from __future__ import annotations

import random
from typing import Tuple

from ..dsl import Strategy
from .mutation import all_nodes, replace_node

__all__ = ["crossover"]


def crossover(
    left: Strategy, right: Strategy, rng: random.Random
) -> Tuple[Strategy, Strategy]:
    """Produce two children by swapping random subtrees (or whole trees).

    If either parent has no action trees, the parents are returned
    unchanged (copies).
    """
    a = left.copy()
    b = right.copy()
    if not a.outbound or not b.outbound:
        return a, b

    ai = rng.randrange(len(a.outbound))
    bi = rng.randrange(len(b.outbound))

    if rng.random() < 0.5:
        # Whole-tree swap.
        a.outbound[ai], b.outbound[bi] = b.outbound[bi], a.outbound[ai]
        return a, b

    # Subtree swap.
    a_trigger, a_action = a.outbound[ai]
    b_trigger, b_action = b.outbound[bi]
    a_node = rng.choice(all_nodes(a_action))
    b_node = rng.choice(all_nodes(b_action))
    a.outbound[ai] = (a_trigger, replace_node(a_action, a_node, b_node.copy()))
    b.outbound[bi] = (b_trigger, replace_node(b_action, b_node, a_node.copy()))
    return a, b
