"""Geneva's genetic algorithm: gene pools, operators, fitness, and the loop."""

from .coevolve import (
    COEVOLVE_PROTOCOLS,
    CoevolveConfig,
    CoevolveResult,
    CoevolveStats,
    EpochRecord,
    FrontierEntry,
    PairEvaluator,
    PairOutcome,
    paper_strategy_numbers,
    run_coevolution,
)
from .crossover import crossover
from .fitness import CensorTrialEvaluator, EvalStats, FitnessEvaluator
from .ga import EvolutionResult, GAConfig, GAResult, GARunState, GeneticAlgorithm
from .genes import GenePool, client_side_pool, genome_key, server_side_pool
from .islands import IslandConfig, run_islands
from .minimize import candidate_reductions, minimize
from .mutation import all_nodes, mutate, replace_node

__all__ = [
    "COEVOLVE_PROTOCOLS",
    "CensorTrialEvaluator",
    "CoevolveConfig",
    "CoevolveResult",
    "CoevolveStats",
    "EpochRecord",
    "EvalStats",
    "EvolutionResult",
    "FitnessEvaluator",
    "FrontierEntry",
    "GAConfig",
    "GAResult",
    "GARunState",
    "GenePool",
    "IslandConfig",
    "GeneticAlgorithm",
    "PairEvaluator",
    "PairOutcome",
    "all_nodes",
    "candidate_reductions",
    "client_side_pool",
    "crossover",
    "genome_key",
    "minimize",
    "mutate",
    "paper_strategy_numbers",
    "replace_node",
    "run_coevolution",
    "server_side_pool",
]
