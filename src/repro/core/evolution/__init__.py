"""Geneva's genetic algorithm: gene pools, operators, fitness, and the loop."""

from .crossover import crossover
from .fitness import CensorTrialEvaluator, EvalStats, FitnessEvaluator
from .ga import EvolutionResult, GAConfig, GAResult, GARunState, GeneticAlgorithm
from .genes import GenePool, client_side_pool, genome_key, server_side_pool
from .islands import IslandConfig, run_islands
from .minimize import candidate_reductions, minimize
from .mutation import all_nodes, mutate, replace_node

__all__ = [
    "CensorTrialEvaluator",
    "EvalStats",
    "EvolutionResult",
    "FitnessEvaluator",
    "GAConfig",
    "GAResult",
    "GARunState",
    "GenePool",
    "IslandConfig",
    "GeneticAlgorithm",
    "all_nodes",
    "candidate_reductions",
    "client_side_pool",
    "crossover",
    "genome_key",
    "minimize",
    "mutate",
    "replace_node",
    "run_islands",
    "server_side_pool",
]
