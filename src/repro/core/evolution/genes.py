"""Gene pool configuration: what mutations are allowed to build.

Mirrors §4.1's setup: for server-side evolution the only packet a server
can trigger on before a censorship event is its SYN+ACK, so the default
server-side pool restricts triggers to ``[TCP:flags:SA]`` (the paper's
"slight optimization"). The client-side pool triggers on the client's
handshake ACK and request packets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..dsl import (
    Action,
    DropAction,
    DuplicateAction,
    FragmentAction,
    SendAction,
    TamperAction,
    Trigger,
)

__all__ = ["GenePool", "genome_key", "server_side_pool", "client_side_pool"]


def genome_key(strategy) -> str:
    """Deduplication key for a genome: its canonical strategy text.

    Textually distinct but behaviourally identical genomes (dead trees
    behind a repeated trigger, ``duplicate`` with a ``drop`` branch,
    aliased trigger values...) share one key, so the batched evaluator
    scores each *behaviour* once per run instead of once per spelling.
    """
    return strategy.canonical_key()

#: (protocol, field, mode, candidate replace values)
TamperGene = Tuple[str, str, str, Tuple[str, ...]]

_SERVER_TAMPERS: List[TamperGene] = [
    ("TCP", "flags", "replace", ("R", "S", "A", "F", "FA", "RA", "")),
    ("TCP", "ack", "corrupt", ()),
    ("TCP", "seq", "corrupt", ()),
    ("TCP", "load", "corrupt", ()),
    ("TCP", "load", "replace", ("GET / HTTP1.",)),
    ("TCP", "window", "replace", ("10", "100", "1000")),
    ("TCP", "options-wscale", "replace", ("",)),
    ("TCP", "chksum", "corrupt", ()),
    ("IP", "ttl", "replace", ("1", "5", "8")),
]

_CLIENT_TAMPERS: List[TamperGene] = [
    ("TCP", "flags", "replace", ("R", "RA", "F", "FA", "")),
    ("TCP", "seq", "corrupt", ()),
    ("TCP", "load", "corrupt", ()),
    ("TCP", "chksum", "corrupt", ()),
    ("IP", "ttl", "replace", ("1", "5", "8")),
]


@dataclass
class GenePool:
    """The building blocks evolution may combine.

    Attributes:
        triggers: Candidate triggers for new action trees.
        tampers: Candidate tamper genes.
        allow_fragment: Whether ``fragment`` nodes may be generated.
        allow_drop: Whether ``drop`` leaves may be generated.
        max_tree_size: Hard cap on nodes per action tree.
        max_trees: Hard cap on action trees per strategy side.
    """

    triggers: List[Trigger] = field(default_factory=list)
    tampers: List[TamperGene] = field(default_factory=lambda: list(_SERVER_TAMPERS))
    allow_fragment: bool = False
    allow_drop: bool = True
    max_tree_size: int = 10
    max_trees: int = 2

    # ------------------------------------------------------------------

    def random_trigger(self, rng: random.Random) -> Trigger:
        """Pick a trigger for a new action tree."""
        return rng.choice(self.triggers)

    def random_tamper(self, rng: random.Random) -> TamperAction:
        """Build a random tamper node (with a plain send child)."""
        protocol, fld, mode, values = rng.choice(self.tampers)
        value = rng.choice(values) if (mode == "replace" and values) else ""
        return TamperAction(protocol, fld, mode, value)

    def random_action(self, rng: random.Random, depth: int = 0) -> Action:
        """Build a random small action subtree.

        Sampling is weighted toward tamper/duplicate at the root (trivial
        ``send``/``drop`` roots carry no genetic material worth keeping).
        """
        choices = ["tamper", "tamper", "tamper", "duplicate", "duplicate", "send"]
        if self.allow_drop:
            choices.append("drop")
        if self.allow_fragment:
            choices.append("fragment")
        if depth >= 2:
            choices = ["tamper", "send", "send"]
        elif depth >= 1:
            choices = ["tamper", "tamper", "duplicate", "send", "send"]
            if self.allow_drop:
                choices.append("drop")
        kind = rng.choice(choices)
        if kind == "send":
            return SendAction()
        if kind == "drop":
            return DropAction()
        if kind == "tamper":
            node = self.random_tamper(rng)
            if rng.random() < 0.3:
                node.child = self.random_action(rng, depth + 1)
            return node
        if kind == "duplicate":
            return DuplicateAction(
                self.random_action(rng, depth + 1),
                self.random_action(rng, depth + 1),
            )
        return FragmentAction(
            "tcp",
            offset=rng.choice([2, 4, 8, 16]),
            in_order=rng.random() < 0.7,
            first=SendAction(),
            second=SendAction(),
        )


def server_side_pool() -> GenePool:
    """The paper's server-side gene pool (SYN+ACK trigger only)."""
    return GenePool(triggers=[Trigger("TCP", "flags", "SA")])


def client_side_pool() -> GenePool:
    """Client-side gene pool (triggers on the client's ACK/request)."""
    return GenePool(
        triggers=[Trigger("TCP", "flags", "A"), Trigger("TCP", "flags", "PA")],
        tampers=list(_CLIENT_TAMPERS),
    )
