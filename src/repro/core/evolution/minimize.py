"""Post-discovery strategy minimization.

Evolved strategies accumulate vestigial genetic material — duplicates of
sends, tampers that change nothing the censor looks at. Geneva's workflow
prunes these before reporting a strategy. :func:`minimize` greedily
removes nodes (and whole action trees) while the strategy's fitness does
not drop, yielding the minimal strategy with the same effect — often
exactly one of the paper's canonical forms.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..dsl import Action, SendAction, Strategy, TamperAction
from .fitness import FitnessEvaluator
from .mutation import all_nodes, replace_node

__all__ = ["minimize", "candidate_reductions"]


def candidate_reductions(strategy: Strategy) -> List[Strategy]:
    """All single-step simplifications of ``strategy``.

    Each candidate removes one action tree, or replaces one non-leaf node
    with one of its children (for tamper: its continuation; for
    duplicate/fragment: either branch).
    """
    candidates: List[Strategy] = []

    for index in range(len(strategy.outbound)):
        clone = strategy.copy()
        del clone.outbound[index]
        candidates.append(clone)

    for index, (trigger, action) in enumerate(strategy.outbound):
        for node in all_nodes(action):
            children = node.children()
            if not children:
                continue
            replacements: List[Action] = [child.copy() for child in children]
            if not isinstance(node, TamperAction):
                replacements.append(SendAction())
            for replacement in replacements:
                clone = strategy.copy()
                original = clone.outbound[index][1]
                # Walk to the matching node in the copy by position.
                target = _node_at(original, _position_of(action, node))
                clone.outbound[index] = (
                    trigger,
                    replace_node(original, target, replacement),
                )
                candidates.append(clone)

    seen = set()
    unique: List[Strategy] = []
    for candidate in candidates:
        key = str(candidate)
        if key != str(strategy) and key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def _position_of(root: Action, node: Action) -> int:
    for index, candidate in enumerate(all_nodes(root)):
        if candidate is node:
            return index
    raise ValueError("node not found in tree")


def _node_at(root: Action, position: int) -> Action:
    return all_nodes(root)[position]


def minimize(
    strategy: Strategy,
    evaluator: FitnessEvaluator,
    tolerance: float = 0.0,
    max_rounds: int = 20,
) -> Tuple[Strategy, float]:
    """Greedily prune ``strategy`` while fitness stays within ``tolerance``.

    Returns ``(minimal_strategy, fitness)``. The evaluator should be
    deterministic enough (enough trials) that pruning decisions are
    stable.

    With a batch-capable evaluator every round's candidates are scored
    in one executor dispatch; the accepted reduction — the smallest
    candidate whose fitness holds — is the same one the serial loop
    picks, because acceptance is decided on the scored list in the same
    size-sorted order.
    """
    evaluate = getattr(evaluator, "evaluate", None)
    current = strategy.copy()
    current_fitness = evaluator(current)
    for _ in range(max_rounds):
        improved = False
        candidates = sorted(
            candidate_reductions(current), key=lambda s: s.tree_size()
        )
        if evaluate is not None:
            # One dispatch for the whole round; pick the first acceptable
            # candidate from the batch, exactly as the serial scan would.
            for candidate, fitness in zip(candidates, evaluate(candidates)):
                if fitness >= current_fitness - tolerance:
                    current = candidate
                    current_fitness = fitness
                    improved = True
                    break
        else:
            for candidate in candidates:
                fitness = evaluator(candidate)
                if fitness >= current_fitness - tolerance:
                    current = candidate
                    current_fitness = fitness
                    improved = True
                    break
        if not improved:
            break
    return current, current_fitness
