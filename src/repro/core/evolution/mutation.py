"""Mutation operators over strategy action trees.

Geneva's genetic algorithm mutates individuals by growing, shrinking and
rewriting their action trees. All operators take and return *copies*; the
input strategy is never modified.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..dsl import (
    Action,
    DuplicateAction,
    FragmentAction,
    SendAction,
    Strategy,
    TamperAction,
)
from .genes import GenePool

__all__ = ["mutate", "all_nodes", "replace_node"]


def all_nodes(action: Action) -> List[Action]:
    """Every node of an action subtree, root first."""
    nodes = [action]
    for child in action.children():
        nodes.extend(all_nodes(child))
    return nodes


def replace_node(root: Action, target: Action, replacement: Action) -> Action:
    """Return a copy of ``root`` with ``target`` (by identity) replaced."""
    if root is target:
        return replacement
    clone = root
    if isinstance(root, DuplicateAction):
        clone = DuplicateAction(
            replace_node(root.first, target, replacement),
            replace_node(root.second, target, replacement),
        )
    elif isinstance(root, FragmentAction):
        clone = FragmentAction(
            root.protocol,
            root.offset,
            root.in_order,
            replace_node(root.first, target, replacement),
            replace_node(root.second, target, replacement),
        )
    elif isinstance(root, TamperAction):
        clone = TamperAction(
            root.protocol,
            root.field,
            root.mode,
            root.value,
            replace_node(root.child, target, replacement),
        )
    return clone


def mutate(strategy: Strategy, pool: GenePool, rng: random.Random) -> Strategy:
    """Return a mutated copy of ``strategy``."""
    clone = strategy.copy()
    operations = [_add_tree, _mutate_tree, _mutate_tree, _mutate_tree, _drop_tree]
    rng.choice(operations)(clone, pool, rng)
    return clone


# ----------------------------------------------------------------------
# Tree-level operations


def _add_tree(strategy: Strategy, pool: GenePool, rng: random.Random) -> None:
    if len(strategy.outbound) >= pool.max_trees:
        _mutate_tree(strategy, pool, rng)
        return
    trigger = pool.random_trigger(rng)
    strategy.outbound.append((trigger, pool.random_action(rng)))


def _drop_tree(strategy: Strategy, pool: GenePool, rng: random.Random) -> None:
    if len(strategy.outbound) <= 1:
        # Never leave an individual with no genetic material at all.
        _mutate_tree(strategy, pool, rng)
        return
    index = rng.randrange(len(strategy.outbound))
    del strategy.outbound[index]


def _mutate_tree(strategy: Strategy, pool: GenePool, rng: random.Random) -> None:
    if not strategy.outbound:
        _add_tree(strategy, pool, rng)
        return
    index = rng.randrange(len(strategy.outbound))
    trigger, action = strategy.outbound[index]
    strategy.outbound[index] = (trigger, _mutate_action(action, pool, rng))


# ----------------------------------------------------------------------
# Node-level operations


def _mutate_action(action: Action, pool: GenePool, rng: random.Random) -> Action:
    operators = [_wrap_duplicate, _wrap_tamper, _replace_subtree, _tweak_tamper, _prune]
    mutated = rng.choice(operators)(action, pool, rng)
    if mutated.tree_size() > pool.max_tree_size:
        return action
    return mutated


def _pick(action: Action, rng: random.Random) -> Action:
    return rng.choice(all_nodes(action))


def _wrap_duplicate(action: Action, pool: GenePool, rng: random.Random) -> Action:
    target = _pick(action, rng)
    wrapped = DuplicateAction(target.copy(), SendAction())
    if rng.random() < 0.5:
        wrapped = DuplicateAction(SendAction(), target.copy())
    return replace_node(action, target, wrapped)


def _wrap_tamper(action: Action, pool: GenePool, rng: random.Random) -> Action:
    target = _pick(action, rng)
    tamper = pool.random_tamper(rng)
    tamper.child = target.copy()
    return replace_node(action, target, tamper)


def _replace_subtree(action: Action, pool: GenePool, rng: random.Random) -> Action:
    target = _pick(action, rng)
    return replace_node(action, target, pool.random_action(rng))


def _tweak_tamper(action: Action, pool: GenePool, rng: random.Random) -> Action:
    tampers = [node for node in all_nodes(action) if isinstance(node, TamperAction)]
    if not tampers:
        return _wrap_tamper(action, pool, rng)
    target = rng.choice(tampers)
    fresh = pool.random_tamper(rng)
    fresh.child = target.child.copy()
    return replace_node(action, target, fresh)


def _prune(action: Action, pool: GenePool, rng: random.Random) -> Action:
    target = _pick(action, rng)
    children = target.children()
    promoted: Optional[Action] = None
    if isinstance(target, TamperAction):
        promoted = target.child.copy()
    elif children:
        promoted = rng.choice(children).copy()
    else:
        promoted = SendAction()
    return replace_node(action, target, promoted)
