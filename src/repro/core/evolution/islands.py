"""Island-model evolution: parallel populations with elite migration.

Single-population GAs collapse onto local optima (a censored-but-small
strategy) and then rely on mutation alone to escape. Running several
islands with different seeds and periodically migrating each island's
best individual into its neighbour makes small-budget discovery far more
reliable — useful when each fitness evaluation is a full censor trial.

All islands share the **one** evaluator they are given: with a batched
:class:`~repro.core.evolution.fitness.CensorTrialEvaluator` its
canonical-genome memo is global across islands, so a genome one island
already scored is never re-run by another. Islands also advance in
*lockstep* — each epoch steps every island one generation at a time and
pools the genomes no island can answer from its memo into a single
cross-island executor dispatch, amortizing the worker pool across the
whole archipelago. The per-island evolutionary trajectories (RNG
streams, histories, champions, migration) are bit-identical to running
the islands sequentially.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..dsl import Strategy
from .fitness import FitnessEvaluator
from .ga import EvolutionResult, GAConfig, GeneticAlgorithm
from .genes import GenePool

__all__ = ["IslandConfig", "run_islands"]


@dataclasses.dataclass
class IslandConfig:
    """Hyperparameters for an island-model run.

    Attributes:
        islands: Number of independent populations.
        epochs: Migration rounds.
        generations_per_epoch: Generations each island evolves per round.
        base: The per-island GA configuration (seed is varied per island).
    """

    islands: int = 4
    epochs: int = 3
    generations_per_epoch: int = 8
    base: GAConfig = dataclasses.field(default_factory=GAConfig)


def _prewarm(evaluator: FitnessEvaluator, pending: List[Strategy]) -> None:
    """Batch-score genomes across islands ahead of the per-island steps.

    Only batch-capable evaluators benefit; the call fills their memo so
    each island's own scoring pass is answered without dispatching. The
    returned fitnesses are discarded — every island re-reads them from
    the shared memo, keeping per-island bookkeeping untouched.
    """
    evaluate = getattr(evaluator, "evaluate", None)
    if evaluate is not None and pending:
        evaluate(pending)


def run_islands(
    evaluator: FitnessEvaluator,
    pool: Optional[GenePool] = None,
    config: Optional[IslandConfig] = None,
) -> EvolutionResult:
    """Run island-model evolution; returns the globally best result."""
    config = config if config is not None else IslandConfig()
    algorithms: List[GeneticAlgorithm] = []
    populations: List[List[Strategy]] = []
    for index in range(config.islands):
        island_cfg = dataclasses.replace(
            config.base,
            seed=config.base.seed + index * 977,
            generations=config.generations_per_epoch,
            convergence_patience=config.generations_per_epoch + 1,
        )
        ga = GeneticAlgorithm(evaluator, pool=pool, config=island_cfg)
        algorithms.append(ga)
        populations.append(ga.initial_population())

    best: Optional[Strategy] = None
    best_fitness = float("-inf")
    history: List[float] = []
    generations = 0

    for epoch in range(config.epochs):
        # Lockstep epoch: every island advances one generation per round,
        # with all islands' unseen genomes pooled into one dispatch first.
        states = [ga.start(population) for ga, population in zip(algorithms, populations)]
        while any(not state.done for state in states):
            pending: List[Strategy] = []
            for ga, state in zip(algorithms, states):
                if not state.done:
                    pending.extend(ga.pending_individuals(state.population))
            _prewarm(evaluator, pending)
            for ga, state in zip(algorithms, states):
                ga.step(state)

        champions: List[Strategy] = []
        for ga, state in zip(algorithms, states):
            result = ga.result(state)
            generations += result.generations_run
            history.extend(result.history)
            champions.append(result.best)
            if result.best_fitness > best_fitness:
                best_fitness = result.best_fitness
                best = result.best
        if epoch == config.epochs - 1:
            break
        # Migration: each island receives its left neighbour's champion,
        # seeding the next epoch's population.
        for index, ga in enumerate(algorithms):
            immigrant = champions[(index - 1) % len(champions)].copy()
            population = ga.initial_population()
            population[0] = immigrant
            population[1] = champions[index].copy()
            populations[index] = population

    fame: List = []
    for ga in algorithms:
        fame.extend(ga._cache.items())
    fame.sort(key=lambda item: item[1], reverse=True)

    return EvolutionResult(
        best=best if best is not None else populations[0][0],
        best_fitness=best_fitness,
        history=history,
        generations_run=generations,
        hall_of_fame=fame[:10],
    )
