"""The genetic algorithm driving Geneva's strategy discovery.

§4.1 of the paper configures Geneva with a population of 300 individuals
evolved for 50 generations (or until convergence). Those scales are
supported; tests and examples use smaller populations against the
simulated censors, which converge in a handful of generations because the
fitness landscape is the same one the paper's strategies exploit.

Scoring is *generation-batched*: when the evaluator exposes a batch
``evaluate(strategies)`` method (as :class:`CensorTrialEvaluator` does),
every individual the per-run memo cannot answer is scored in one call —
one executor dispatch per generation instead of one per individual. The
evolutionary trajectory (selection, mutation, history, hall of fame) is
bit-identical to per-individual scoring: evaluation order, memo
insertion order, and the GA's own RNG stream are all preserved.

The loop is also exposed stepwise (:meth:`GeneticAlgorithm.start` /
:meth:`~GeneticAlgorithm.step` / :meth:`~GeneticAlgorithm.result`) so
:mod:`repro.core.evolution.islands` can advance several populations in
lockstep and pool their pending genomes into one cross-island batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...obs import spans as _spans
from ...obs.metrics import Counter
from ..dsl import Strategy
from .crossover import crossover
from .fitness import FitnessEvaluator
from .genes import GenePool, server_side_pool
from .mutation import mutate

__all__ = ["GAConfig", "GARunState", "GeneticAlgorithm", "EvolutionResult", "GAResult"]

#: Evolution-loop progress. Deterministic: the GA runs on its own
#: seeded RNG, so generation and evaluation counts replay exactly.
_GA_GENERATIONS = Counter(
    "repro_ga_generations_total",
    "Generations the evolution loop has executed",
)
_GA_FITNESS_EVALS = Counter(
    "repro_ga_fitness_evals_total",
    "Fitness lookups, split by real evaluations vs memo hits",
    ("source",),  # evaluated | memoized
)


@dataclass
class GAConfig:
    """Hyperparameters for one evolution run.

    The defaults are test-scale; the paper's run used
    ``population_size=300, generations=50``.
    """

    population_size: int = 20
    generations: int = 10
    seed: int = 0
    elite_count: int = 2
    tournament_size: int = 3
    crossover_rate: float = 0.4
    mutation_rate: float = 0.9
    immigration_rate: float = 0.25
    convergence_patience: int = 5


@dataclass
class EvolutionResult:
    """Outcome of an evolution run.

    Attributes:
        best: The fittest strategy found.
        best_fitness: Its fitness.
        history: Best fitness per generation.
        generations_run: How many generations actually executed.
        hall_of_fame: Top distinct strategies (string, fitness).
    """

    best: Strategy
    best_fitness: float
    history: List[float] = field(default_factory=list)
    generations_run: int = 0
    hall_of_fame: List[Tuple[str, float]] = field(default_factory=list)


#: Alias matching the driver-facing name used in docs and CLI output.
GAResult = EvolutionResult


@dataclass
class GARunState:
    """Mutable state of one in-flight evolution loop.

    Produced by :meth:`GeneticAlgorithm.start`, advanced one generation
    at a time by :meth:`GeneticAlgorithm.step`, folded into an
    :class:`EvolutionResult` by :meth:`GeneticAlgorithm.result`.
    """

    population: List[Strategy]
    generation: int = 0
    history: List[float] = field(default_factory=list)
    best: Optional[Strategy] = None
    best_fitness: float = float("-inf")
    stale: int = 0
    done: bool = False


class GeneticAlgorithm:
    """Evolves packet-manipulation strategies against a fitness evaluator."""

    def __init__(
        self,
        evaluator: FitnessEvaluator,
        pool: Optional[GenePool] = None,
        config: Optional[GAConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.pool = pool if pool is not None else server_side_pool()
        self.config = config if config is not None else GAConfig()
        self.rng = random.Random(self.config.seed)
        self._cache: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def initial_population(self) -> List[Strategy]:
        """Random individuals, each with one small action tree."""
        population = []
        for _ in range(self.config.population_size):
            trigger = self.pool.random_trigger(self.rng)
            action = self.pool.random_action(self.rng)
            population.append(Strategy([(trigger, action)]))
        return population

    # ------------------------------------------------------------------
    # Scoring

    def _evaluate_batch(self, strategies: List[Strategy]) -> List[float]:
        """Score strategies, batched when the evaluator supports it.

        Plain-callable evaluators see each *raw* individual exactly as
        the per-individual path would hand it over (batch dedup and
        canonicalization live inside batch-capable evaluators only).
        """
        evaluate = getattr(self.evaluator, "evaluate", None)
        if evaluate is not None:
            return list(evaluate(strategies))
        return [self.evaluator(strategy) for strategy in strategies]

    def fitness(self, strategy: Strategy) -> float:
        """Evaluate one individual (memoized on the strategy string)."""
        key = str(strategy)
        if key not in self._cache:
            self._cache[key] = self._evaluate_batch([strategy])[0]
            _GA_FITNESS_EVALS.inc(source="evaluated")
        else:
            _GA_FITNESS_EVALS.inc(source="memoized")
        return self._cache[key]

    def pending_individuals(self, population: List[Strategy]) -> List[Strategy]:
        """Individuals the per-run memo cannot answer (first-spelling only)."""
        pending: List[Strategy] = []
        seen = set()
        for individual in population:
            key = str(individual)
            if key not in self._cache and key not in seen:
                seen.add(key)
                pending.append(individual)
        return pending

    def score_population(
        self, population: List[Strategy]
    ) -> List[Tuple[float, Strategy]]:
        """Score a whole population with one batched dispatch.

        Returns ``(fitness, individual)`` sorted best-first, with the
        same stable tie order (population order) as per-individual
        scoring; memo bookkeeping and the evaluated/memoized metric
        split match the per-individual path count for count.
        """
        pending: List[Strategy] = []
        pending_keys: List[str] = []
        seen = set()
        for individual in population:
            key = str(individual)
            if key in self._cache:
                _GA_FITNESS_EVALS.inc(source="memoized")
            elif key in seen:
                _GA_FITNESS_EVALS.inc(source="memoized")
            else:
                seen.add(key)
                pending.append(individual)
                pending_keys.append(key)
                _GA_FITNESS_EVALS.inc(source="evaluated")
        if pending:
            for key, score in zip(pending_keys, self._evaluate_batch(pending)):
                self._cache[key] = score
        return sorted(
            ((self._cache[str(individual)], individual) for individual in population),
            key=lambda item: item[0],
            reverse=True,
        )

    # ------------------------------------------------------------------
    # Selection and breeding

    def _tournament(self, scored: List[Tuple[float, Strategy]]) -> Strategy:
        contenders = [
            scored[self.rng.randrange(len(scored))]
            for _ in range(self.config.tournament_size)
        ]
        return max(contenders, key=lambda item: item[0])[1]

    def _next_generation(
        self, scored: List[Tuple[float, Strategy]]
    ) -> List[Strategy]:
        config = self.config
        next_gen: List[Strategy] = [ind.copy() for _, ind in scored[: config.elite_count]]
        # Immigration: keep injecting fresh random individuals so the
        # population never fully collapses onto one local optimum.
        immigrants = int(config.population_size * config.immigration_rate)
        for _ in range(immigrants):
            trigger = self.pool.random_trigger(self.rng)
            next_gen.append(Strategy([(trigger, self.pool.random_action(self.rng))]))
        while len(next_gen) < config.population_size:
            parent = self._tournament(scored)
            if self.rng.random() < config.crossover_rate:
                other = self._tournament(scored)
                child, _ = crossover(parent, other, self.rng)
            else:
                child = parent.copy()
            if self.rng.random() < config.mutation_rate:
                child = mutate(child, self.pool, self.rng)
            next_gen.append(child)
        return next_gen

    # ------------------------------------------------------------------
    # Stepwise loop

    def start(self, population: Optional[List[Strategy]] = None) -> GARunState:
        """Begin a run; returns state for :meth:`step`/:meth:`result`."""
        state = GARunState(
            population if population is not None else self.initial_population()
        )
        if self.config.generations <= 0:
            state.done = True
        return state

    def step(self, state: GARunState) -> GARunState:
        """Advance one generation (score, bookkeep, breed)."""
        if state.done:
            return state
        config = self.config
        _GA_GENERATIONS.inc()
        with _spans.span("ga/generation"):
            scored = self.score_population(state.population)
        top_fitness, top = scored[0]
        state.history.append(top_fitness)
        if top_fitness > state.best_fitness:
            state.best_fitness = top_fitness
            state.best = top
            state.stale = 0
        else:
            state.stale += 1
        state.generation += 1
        if state.stale >= config.convergence_patience:
            state.done = True
            return state
        # Breed even on the final generation — the legacy loop did, and
        # keeping the RNG stream identical keeps trajectories replayable.
        state.population = self._next_generation(scored)
        if state.generation >= config.generations:
            state.done = True
        return state

    def result(self, state: GARunState) -> EvolutionResult:
        """Fold finished (or in-flight) state into an :class:`EvolutionResult`."""
        fame = sorted(self._cache.items(), key=lambda item: item[1], reverse=True)
        return EvolutionResult(
            best=state.best if state.best is not None else state.population[0],
            best_fitness=state.best_fitness,
            history=list(state.history),
            generations_run=len(state.history),
            hall_of_fame=fame[:10],
        )

    def run(self, population: Optional[List[Strategy]] = None) -> EvolutionResult:
        """Execute the evolution loop; returns the best strategy found."""
        state = self.start(population)
        while not state.done:
            self.step(state)
        return self.result(state)
