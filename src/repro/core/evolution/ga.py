"""The genetic algorithm driving Geneva's strategy discovery.

§4.1 of the paper configures Geneva with a population of 300 individuals
evolved for 50 generations (or until convergence). Those scales are
supported; tests and examples use smaller populations against the
simulated censors, which converge in a handful of generations because the
fitness landscape is the same one the paper's strategies exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...obs import spans as _spans
from ...obs.metrics import Counter
from ..dsl import Strategy
from .crossover import crossover
from .fitness import FitnessEvaluator
from .genes import GenePool, server_side_pool
from .mutation import mutate

__all__ = ["GAConfig", "GeneticAlgorithm", "EvolutionResult"]

#: Evolution-loop progress. Deterministic: the GA runs on its own
#: seeded RNG, so generation and evaluation counts replay exactly.
_GA_GENERATIONS = Counter(
    "repro_ga_generations_total",
    "Generations the evolution loop has executed",
)
_GA_FITNESS_EVALS = Counter(
    "repro_ga_fitness_evals_total",
    "Fitness lookups, split by real evaluations vs memo hits",
    ("source",),  # evaluated | memoized
)


@dataclass
class GAConfig:
    """Hyperparameters for one evolution run.

    The defaults are test-scale; the paper's run used
    ``population_size=300, generations=50``.
    """

    population_size: int = 20
    generations: int = 10
    seed: int = 0
    elite_count: int = 2
    tournament_size: int = 3
    crossover_rate: float = 0.4
    mutation_rate: float = 0.9
    immigration_rate: float = 0.25
    convergence_patience: int = 5


@dataclass
class EvolutionResult:
    """Outcome of an evolution run.

    Attributes:
        best: The fittest strategy found.
        best_fitness: Its fitness.
        history: Best fitness per generation.
        generations_run: How many generations actually executed.
        hall_of_fame: Top distinct strategies (string, fitness).
    """

    best: Strategy
    best_fitness: float
    history: List[float] = field(default_factory=list)
    generations_run: int = 0
    hall_of_fame: List[Tuple[str, float]] = field(default_factory=list)


class GeneticAlgorithm:
    """Evolves packet-manipulation strategies against a fitness evaluator."""

    def __init__(
        self,
        evaluator: FitnessEvaluator,
        pool: Optional[GenePool] = None,
        config: Optional[GAConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.pool = pool if pool is not None else server_side_pool()
        self.config = config if config is not None else GAConfig()
        self.rng = random.Random(self.config.seed)
        self._cache: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def initial_population(self) -> List[Strategy]:
        """Random individuals, each with one small action tree."""
        population = []
        for _ in range(self.config.population_size):
            trigger = self.pool.random_trigger(self.rng)
            action = self.pool.random_action(self.rng)
            population.append(Strategy([(trigger, action)]))
        return population

    def fitness(self, strategy: Strategy) -> float:
        """Evaluate (memoized on the canonical strategy string)."""
        key = str(strategy)
        if key not in self._cache:
            self._cache[key] = self.evaluator(strategy)
            _GA_FITNESS_EVALS.inc(source="evaluated")
        else:
            _GA_FITNESS_EVALS.inc(source="memoized")
        return self._cache[key]

    def _tournament(self, scored: List[Tuple[float, Strategy]]) -> Strategy:
        contenders = [
            scored[self.rng.randrange(len(scored))]
            for _ in range(self.config.tournament_size)
        ]
        return max(contenders, key=lambda item: item[0])[1]

    # ------------------------------------------------------------------

    def run(self, population: Optional[List[Strategy]] = None) -> EvolutionResult:
        """Execute the evolution loop; returns the best strategy found."""
        config = self.config
        population = population if population is not None else self.initial_population()
        history: List[float] = []
        best: Optional[Strategy] = None
        best_fitness = float("-inf")
        stale = 0

        for generation in range(config.generations):
            _GA_GENERATIONS.inc()
            with _spans.span("ga/generation"):
                scored = sorted(
                    ((self.fitness(ind), ind) for ind in population),
                    key=lambda item: item[0],
                    reverse=True,
                )
            top_fitness, top = scored[0]
            history.append(top_fitness)
            if top_fitness > best_fitness:
                best_fitness = top_fitness
                best = top
                stale = 0
            else:
                stale += 1
            if stale >= config.convergence_patience:
                break

            next_gen: List[Strategy] = [ind.copy() for _, ind in scored[: config.elite_count]]
            # Immigration: keep injecting fresh random individuals so the
            # population never fully collapses onto one local optimum.
            immigrants = int(config.population_size * config.immigration_rate)
            for _ in range(immigrants):
                trigger = self.pool.random_trigger(self.rng)
                next_gen.append(Strategy([(trigger, self.pool.random_action(self.rng))]))
            while len(next_gen) < config.population_size:
                parent = self._tournament(scored)
                if self.rng.random() < config.crossover_rate:
                    other = self._tournament(scored)
                    child, _ = crossover(parent, other, self.rng)
                else:
                    child = parent.copy()
                if self.rng.random() < config.mutation_rate:
                    child = mutate(child, self.pool, self.rng)
                next_gen.append(child)
            population = next_gen

        fame = sorted(self._cache.items(), key=lambda item: item[1], reverse=True)
        return EvolutionResult(
            best=best if best is not None else population[0],
            best_fitness=best_fitness,
            history=history,
            generations_run=len(history),
            hall_of_fame=fame[:10],
        )
