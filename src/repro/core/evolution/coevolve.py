"""Co-evolving censors against Geneva strategy populations.

The paper's evaluation is a snapshot: server-side strategies vs *static*
censor models. This module runs the arms race forward. A population of
:class:`~repro.censors.adaptive.CensorGenome` censor configurations
co-evolves against a population of Geneva strategies in alternating
lockstep epochs:

- **strategies** are scored against the current *censor hall of fame*
  (the strongest adapted censors so far) with the same Geneva-shaped
  fitness the single-censor GA uses;
- **censors** are scored by how many *hall-of-fame strategies* they
  defeat (evasion rate pushed below :data:`DEFEAT_THRESHOLD`).

Execution reuses the batched-dispatch discipline of
:class:`~repro.core.evolution.fitness.CensorTrialEvaluator`: each epoch
collects the full population x population pair grid, dedups it on
*(canonical strategy, canonical censor genome)* against a cross-epoch
memo, and sends everything unseen to the executor as **one**
:meth:`~repro.runtime.TrialExecutor.run_batch` call. Trial seeds derive
from ``trial_seed(seed, index)`` per pair — never from submission order —
so the whole trajectory is bit-identical for any worker count.

The deliverable is a **strategy-robustness frontier**
(:class:`CoevolveResult.frontier`): for every paper strategy applicable
to the country, its evasion rate against the calibrated baseline censor
vs its worst-case rate against the final adapted hall of fame, classified
``survived`` / ``degraded`` / ``collapsed``, plus whatever novel
strategies the arms race surfaced along the way.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...censors.adaptive import CensorGenome, seeded_censor_population
from ...obs.metrics import Counter, Histogram
from ..dsl import Strategy
from ..strategies import SERVER_STRATEGIES
from .fitness import (
    COMPLEXITY_TAX,
    PENALTY_BROKEN,
    PENALTY_CENSORED,
    REWARD_SUCCESS,
)
from .ga import GAConfig, GeneticAlgorithm

__all__ = [
    "COEVOLVE_PROTOCOLS",
    "CoevolveConfig",
    "CoevolveResult",
    "CoevolveStats",
    "DEFEAT_THRESHOLD",
    "EpochRecord",
    "FrontierEntry",
    "PairEvaluator",
    "PairOutcome",
    "paper_strategy_numbers",
    "run_coevolution",
]

#: Default protocol per country: the protocol the paper (or the SNI-era
#: escalation) evaluates that censor on.
COEVOLVE_PROTOCOLS: Dict[str, str] = {
    "china": "http",
    "india": "http",
    "iran": "http",
    "kazakhstan": "http",
    "southkorea": "https",
    "russia": "https",
}

#: A censor "defeats" a strategy when it pushes the strategy's evasion
#: rate strictly below this.
DEFEAT_THRESHOLD = 0.5

#: Frontier classification thresholds: a strategy has *collapsed* when a
#: baseline-effective strategy (static rate >= EFFECTIVE_RATE) drops to
#: COLLAPSE_RATE or below against the adapted hall of fame; it is
#: *degraded* when it loses at least DEGRADED_DROP of absolute evasion
#: rate; otherwise it *survived*.
EFFECTIVE_RATE = 0.5
COLLAPSE_RATE = 0.2
DEGRADED_DROP = 0.25

#: Co-evolution telemetry. All deterministic: dedup and memo decisions
#: happen before dispatch on the engine's own seeded trajectory, so the
#: counts replay exactly regardless of worker count.
_CO_EPOCHS = Counter(
    "repro_coevolve_epochs_total",
    "Co-evolution epochs executed",
)
_CO_BATCHES = Counter(
    "repro_coevolve_batches_total",
    "Pair-grid dispatches sent to the executor",
)
_CO_PAIRS = Counter(
    "repro_coevolve_pairs_total",
    "Strategy x censor pairs submitted, by how each was satisfied",
    ("source",),  # evaluated | memoized | duplicate
)
_CO_GRID = Histogram(
    "repro_coevolve_batch_pairs",
    "Distinct pairs per pair-grid dispatch",
    buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500),
)


def paper_strategy_numbers(country: str) -> List[int]:
    """The paper strategies (1-15) applicable to ``country``, in order."""
    return [
        number
        for number in sorted(SERVER_STRATEGIES)
        if country in SERVER_STRATEGIES[number].countries
    ]


@dataclasses.dataclass
class CoevolveConfig:
    """Hyperparameters for one co-evolution run.

    The defaults are smoke-scale: a three-epoch arms race over a dozen
    strategies and half a dozen censor variants finishes in seconds while
    already degrading resync-dependent paper strategies.

    Attributes:
        epochs: Alternating lockstep epochs to run.
        strategy_population: Geneva strategy population size.
        censor_population: Censor genome population size.
        trials: Trials per (strategy, censor) pair during the search.
        seed: Base seed for the whole trajectory (GA streams, censor
            breeding, and per-pair trial seeds all derive from it).
        strategy_hof_size: Strategy hall-of-fame cap after each epoch
            (the initial hall of fame is every applicable paper
            strategy, even when that exceeds the cap).
        censor_hof_size: Censor hall-of-fame cap.
        generations_per_epoch: Strategy-GA generations per epoch. The
            canonical ``1`` keeps the whole epoch's grid to a single
            executor dispatch.
        frontier_trials: Trials per pair for the final frontier report
            (higher than ``trials`` for a steadier rate estimate).
        censor_elite: Top censors copied unchanged into the next
            generation.
        censor_tournament: Censor tournament-selection size.
        censor_crossover_rate: Probability a bred censor crosses two
            parents instead of cloning one.
        censor_mutation_rate: Probability a bred censor is mutated.
    """

    epochs: int = 3
    strategy_population: int = 12
    censor_population: int = 6
    trials: int = 2
    seed: int = 1
    strategy_hof_size: int = 6
    censor_hof_size: int = 3
    generations_per_epoch: int = 1
    frontier_trials: int = 10
    censor_elite: int = 2
    censor_tournament: int = 2
    censor_crossover_rate: float = 0.4
    censor_mutation_rate: float = 0.9


@dataclasses.dataclass
class CoevolveStats:
    """Dedup/batching counters for one :class:`PairEvaluator`.

    Attributes:
        submitted: Pairs received by :meth:`PairEvaluator.prefetch`.
        evaluated: Distinct pairs actually sent to the executor.
        memo_hits: Pairs answered from the cross-epoch memo.
        duplicates: Pairs that collapsed onto another pair in the same
            grid (canonical-key dedup).
        batches: ``run_batch`` dispatches issued.
        trials: Trial specs dispatched (evaluated pairs x trials).
    """

    submitted: int = 0
    evaluated: int = 0
    memo_hits: int = 0
    duplicates: int = 0
    batches: int = 0
    trials: int = 0

    def format(self) -> str:
        """One ``--stats``-style summary line."""
        return (
            f"coevolve: pairs={self.submitted} evaluated={self.evaluated} "
            f"memo_hits={self.memo_hits} duplicates={self.duplicates} "
            f"batches={self.batches} trials={self.trials}"
        )

    def merged(self, other: "CoevolveStats") -> "CoevolveStats":
        """Field-wise sum of two counter sets."""
        return CoevolveStats(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in dataclasses.fields(CoevolveStats)
            )
        )


@dataclasses.dataclass(frozen=True)
class PairOutcome:
    """Aggregated trial outcomes for one (strategy, censor) pair.

    Attributes:
        successes: Trials meeting the paper's evasion criterion.
        censored: Trials where the censor acted (and evasion failed).
        broken: Trials that failed without censor action.
        trials: Total trials behind the tallies.
    """

    successes: int
    censored: int
    broken: int
    trials: int

    @property
    def evasion_rate(self) -> float:
        """Fraction of trials that evaded censorship."""
        return self.successes / self.trials

    @property
    def score(self) -> float:
        """The Geneva-shaped pre-tax fitness of this pair's trials."""
        return (
            REWARD_SUCCESS * self.successes
            + PENALTY_CENSORED * self.censored
            + PENALTY_BROKEN * self.broken
        ) / self.trials


@dataclasses.dataclass
class PairEvaluator:
    """Batched, memoized trial execution over a strategy x censor grid.

    The co-evolution analogue of
    :class:`~repro.core.evolution.fitness.CensorTrialEvaluator`: pairs
    are deduped on *(canonical strategy text, canonical censor genome)*,
    answered from a cross-epoch memo where possible, and everything
    unseen goes to the executor as a single ``run_batch``. Baseline
    genomes deliberately omit ``censor_params`` from their trial specs,
    so their cache entries are shared with every non-adaptive run of the
    same strategy.

    Attributes:
        country: Censor country.
        protocol: Application protocol for the censored workload.
        trials: Trials per pair (averaged into a :class:`PairOutcome`).
        seed: Base seed; per-trial seeds come from
            :func:`repro.runtime.trial_seed` (shared across pairs —
            common random numbers).
        executor: Prebuilt :class:`~repro.runtime.TrialExecutor`
            (created on first use from ``workers``/``cache`` if absent).
        workers: Worker processes when building an executor internally.
        cache: Result-cache setting when building an executor internally.
    """

    country: str
    protocol: str
    trials: int = 2
    seed: int = 0
    executor: Optional[object] = None
    workers: int = 1
    cache: Optional[object] = None

    def __post_init__(self) -> None:
        self._memo: Dict[Tuple[str, str], PairOutcome] = {}
        self.stats = CoevolveStats()

    # ------------------------------------------------------------------

    @staticmethod
    def _strategy_text(strategy: Union[Strategy, str]) -> str:
        if isinstance(strategy, str):
            return strategy
        return strategy.canonical_key()

    def _pair_key(
        self, strategy: Union[Strategy, str], genome: CensorGenome
    ) -> Tuple[str, str]:
        return (self._strategy_text(strategy), genome.canonical_key())

    def _specs_for(self, text: str, genome: CensorGenome) -> List[object]:
        from ...runtime import TrialSpec, trial_seed

        extra = {} if genome.is_baseline else {"censor_params": genome.params}
        return [
            TrialSpec.build(
                self.country,
                self.protocol,
                text,
                seed=trial_seed(self.seed, index),
                **extra,
            )
            for index in range(self.trials)
        ]

    def prefetch(
        self, pairs: Sequence[Tuple[Union[Strategy, str], CensorGenome]]
    ) -> None:
        """Evaluate every unseen pair in one executor dispatch."""
        from ...runtime import TrialExecutor

        if self.executor is None:
            self.executor = TrialExecutor(workers=self.workers, cache=self.cache)

        pending: List[Tuple[Tuple[str, str], CensorGenome]] = []
        pending_keys = set()
        for strategy, genome in pairs:
            key = self._pair_key(strategy, genome)
            self.stats.submitted += 1
            if key in self._memo:
                self.stats.memo_hits += 1
                _CO_PAIRS.inc(source="memoized")
            elif key in pending_keys:
                self.stats.duplicates += 1
                _CO_PAIRS.inc(source="duplicate")
            else:
                pending.append((key, genome))
                pending_keys.add(key)
                self.stats.evaluated += 1
                _CO_PAIRS.inc(source="evaluated")

        if not pending:
            return
        specs: List[object] = []
        for (text, _), genome in pending:
            specs.extend(self._specs_for(text, genome))
        self.stats.batches += 1
        self.stats.trials += len(specs)
        _CO_BATCHES.inc()
        _CO_GRID.observe(len(pending))
        results = self.executor.run_batch(specs)
        for index, (key, _) in enumerate(pending):
            chunk = results[index * self.trials : (index + 1) * self.trials]
            successes = sum(1 for r in chunk if r.succeeded)
            censored = sum(1 for r in chunk if not r.succeeded and r.censored)
            broken = len(chunk) - successes - censored
            self._memo[key] = PairOutcome(
                successes=successes,
                censored=censored,
                broken=broken,
                trials=len(chunk),
            )

    def outcome(
        self, strategy: Union[Strategy, str], genome: CensorGenome
    ) -> PairOutcome:
        """The (memoized) outcome for one pair, evaluating it if needed."""
        key = self._pair_key(strategy, genome)
        if key not in self._memo:
            self.prefetch([(strategy, genome)])
        return self._memo[key]


class _HallOfFameFitness:
    """GA-facing evaluator: mean pair score against a censor hall of fame.

    Mirrors :class:`CensorTrialEvaluator`'s shape — a batch ``evaluate``
    answered from the shared pair memo, the complexity tax charged on
    each submitted spelling's own tree size — but the opponent is a
    *list* of censor genomes instead of one calibrated censor.
    """

    def __init__(self, pairs: PairEvaluator, hof: Sequence[CensorGenome]) -> None:
        self.pairs = pairs
        self.hof = list(hof)

    def evaluate(self, strategies: Sequence[Strategy]) -> List[float]:
        """Score a population against the hall of fame, batched."""
        self.pairs.prefetch(
            [(strategy, genome) for strategy in strategies for genome in self.hof]
        )
        scores: List[float] = []
        for strategy in strategies:
            pre_tax = sum(
                self.pairs.outcome(strategy, genome).score for genome in self.hof
            ) / len(self.hof)
            scores.append(pre_tax - COMPLEXITY_TAX * strategy.tree_size())
        return scores

    def __call__(self, strategy: Strategy) -> float:
        return self.evaluate([strategy])[0]


@dataclasses.dataclass
class EpochRecord:
    """Summary of one lockstep epoch.

    Attributes:
        epoch: Zero-based epoch index.
        best_strategy_fitness: Best GA fitness against the epoch's
            censor hall of fame.
        best_censor_defeat_rate: Largest fraction of hall-of-fame
            strategies any censor candidate defeated.
        strategy_hof: Canonical texts of the updated strategy hall of
            fame.
        censor_hof: ``as_dict`` forms of the updated censor hall of
            fame.
    """

    epoch: int
    best_strategy_fitness: float
    best_censor_defeat_rate: float
    strategy_hof: List[str]
    censor_hof: List[Dict[str, object]]


@dataclasses.dataclass
class FrontierEntry:
    """One paper strategy's place on the robustness frontier.

    Attributes:
        number: Paper strategy number.
        name: Table 2 / SNI-era strategy name.
        static_rate: Evasion rate against the calibrated baseline censor.
        adapted_rate: Worst-case evasion rate against the final adapted
            censor hall of fame.
        status: ``"survived"``, ``"degraded"``, or ``"collapsed"``.
    """

    number: int
    name: str
    static_rate: float
    adapted_rate: float
    status: str


def _classify(static_rate: float, adapted_rate: float) -> str:
    if static_rate >= EFFECTIVE_RATE and adapted_rate <= COLLAPSE_RATE:
        return "collapsed"
    if static_rate - adapted_rate >= DEGRADED_DROP:
        return "degraded"
    return "survived"


@dataclasses.dataclass
class CoevolveResult:
    """Outcome of a co-evolution run.

    Attributes:
        country: Censor country the arms race ran against.
        protocol: Application protocol evaluated.
        config: The :class:`CoevolveConfig` used.
        epochs: Per-epoch summaries.
        frontier: The strategy-robustness frontier, one entry per
            applicable paper strategy.
        novel_strategies: Hall-of-fame strategies canonically distinct
            from every paper strategy, with their baseline/adapted
            evasion rates.
        final_censor_hof: The final adapted censors with the fraction of
            hall-of-fame strategies each defeats.
        stats: Combined search + frontier pair-evaluator counters.
    """

    country: str
    protocol: str
    config: CoevolveConfig
    epochs: List[EpochRecord]
    frontier: List[FrontierEntry]
    novel_strategies: List[Dict[str, object]]
    final_censor_hof: List[Dict[str, object]]
    stats: CoevolveStats

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-able form (what ``coevolve --json`` emits)."""
        return {
            "country": self.country,
            "protocol": self.protocol,
            "config": dataclasses.asdict(self.config),
            "epochs": [dataclasses.asdict(record) for record in self.epochs],
            "frontier": [dataclasses.asdict(entry) for entry in self.frontier],
            "novel_strategies": list(self.novel_strategies),
            "final_censor_hof": list(self.final_censor_hof),
        }


def _dedup_canonical(strategies: Sequence[Strategy]) -> List[Strategy]:
    """First-spelling-wins dedup on canonical strategy text."""
    out: List[Strategy] = []
    seen = set()
    for strategy in strategies:
        key = strategy.canonical_key()
        if key not in seen:
            seen.add(key)
            out.append(strategy)
    return out


def _censor_scores(
    pairs: PairEvaluator,
    candidates: Sequence[CensorGenome],
    hof: Sequence[Strategy],
) -> List[Tuple[float, float, CensorGenome]]:
    """Rank censors best-first by hall-of-fame defeats.

    Returns ``(defeat_rate, mean_evasion, genome)`` sorted by defeat
    rate descending, then mean evasion ascending (a stronger censor
    allows less evasion), then canonical key — fully deterministic.
    """
    scored = []
    for genome in candidates:
        outcomes = [pairs.outcome(strategy, genome) for strategy in hof]
        defeats = sum(
            1 for outcome in outcomes if outcome.evasion_rate < DEFEAT_THRESHOLD
        )
        mean_evasion = sum(o.evasion_rate for o in outcomes) / len(outcomes)
        scored.append((defeats / len(outcomes), mean_evasion, genome))
    scored.sort(key=lambda item: (-item[0], item[1], item[2].canonical_key()))
    return scored


def _dedup_genomes(genomes: Sequence[CensorGenome]) -> List[CensorGenome]:
    out: List[CensorGenome] = []
    seen = set()
    for genome in genomes:
        key = genome.canonical_key()
        if key not in seen:
            seen.add(key)
            out.append(genome)
    return out


def _breed_censors(
    scored: Sequence[Tuple[float, float, CensorGenome]],
    config: CoevolveConfig,
    rng: random.Random,
) -> List[CensorGenome]:
    """Next censor generation: elites, then tournament offspring."""
    next_gen: List[CensorGenome] = [
        genome for _, _, genome in scored[: config.censor_elite]
    ]

    def tournament() -> CensorGenome:
        contenders = [
            scored[rng.randrange(len(scored))]
            for _ in range(config.censor_tournament)
        ]
        contenders.sort(key=lambda item: (-item[0], item[1], item[2].canonical_key()))
        return contenders[0][2]

    while len(next_gen) < config.censor_population:
        parent = tournament()
        if rng.random() < config.censor_crossover_rate:
            child = parent.crossover(tournament(), rng)
        else:
            child = parent
        if rng.random() < config.censor_mutation_rate:
            child = child.mutate(rng)
        next_gen.append(child)
    return next_gen


def run_coevolution(
    country: str = "china",
    protocol: Optional[str] = None,
    config: Optional[CoevolveConfig] = None,
    executor: Optional[object] = None,
    workers: int = 1,
    cache: Optional[object] = None,
) -> CoevolveResult:
    """Run the censor-vs-strategy arms race and report the frontier.

    Each epoch advances both populations one step in lockstep: the
    epoch's full pair grid — pending strategies x censor hall of fame,
    plus hall-of-fame strategies x censor candidates — is prefetched as
    one executor dispatch, the strategy GA steps (answered entirely from
    the pair memo), censors are scored on hall-of-fame defeats, both
    halls of fame update, and the censor population breeds. A final
    higher-trial pass measures the frontier: every applicable paper
    strategy (and every novel hall-of-fame strategy) against the
    baseline censor and the final adapted hall of fame.
    """
    from ...runtime import TrialExecutor
    from ..strategies import deployed_strategy

    config = config if config is not None else CoevolveConfig()
    protocol = protocol if protocol is not None else COEVOLVE_PROTOCOLS[country]
    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)

    pair_eval = PairEvaluator(
        country, protocol, trials=config.trials, seed=config.seed, executor=executor
    )

    numbers = paper_strategy_numbers(country)
    paper: List[Tuple[int, Strategy]] = [
        (number, deployed_strategy(number)) for number in numbers
    ]
    paper_canonical = {strategy.canonical_key() for _, strategy in paper}

    strategy_hof: List[Strategy] = _dedup_canonical(
        [strategy for _, strategy in paper]
    )
    censor_rng = random.Random(f"coevolve-censors/{country}/{config.seed}")
    censor_pop = seeded_censor_population(
        country, config.censor_population, censor_rng
    )
    censor_hof: List[CensorGenome] = [CensorGenome.baseline(country)]

    strategy_pop: Optional[List[Strategy]] = None
    epochs: List[EpochRecord] = []

    for epoch in range(config.epochs):
        _CO_EPOCHS.inc()
        fitness = _HallOfFameFitness(pair_eval, censor_hof)
        ga = GeneticAlgorithm(
            fitness,
            config=GAConfig(
                population_size=config.strategy_population,
                generations=config.generations_per_epoch,
                seed=config.seed + 7919 * epoch,
                convergence_patience=config.generations_per_epoch + 1,
            ),
        )
        if strategy_pop is None:
            strategy_pop = ga.initial_population()
            for index, (_, strategy) in enumerate(paper):
                if index >= len(strategy_pop):
                    break
                strategy_pop[index] = strategy.copy()

        censor_candidates = _dedup_genomes(list(censor_pop) + list(censor_hof))
        # Censors are always scored against the paper strategies *plus*
        # the evolving hall of fame: the frontier question is "which
        # paper strategies survive", so the selection gradient must keep
        # pointing at them even as novel strategies displace them from
        # the hall of fame.
        censor_targets = _dedup_canonical(
            [strategy for _, strategy in paper] + strategy_hof
        )
        state = ga.start(strategy_pop)
        while not state.done:
            pending = ga.pending_individuals(state.population)
            grid: List[Tuple[Union[Strategy, str], CensorGenome]] = [
                (strategy, genome)
                for strategy in pending
                for genome in censor_hof
            ]
            grid.extend(
                (strategy, genome)
                for strategy in censor_targets
                for genome in censor_candidates
            )
            pair_eval.prefetch(grid)
            ga.step(state)
        strategy_pop = state.population  # the already-bred next generation

        # Strategy hall of fame: every spelling this epoch's GA scored,
        # plus the incumbents, ranked by fitness against the epoch's
        # censor hall of fame (answered from the pair memo).
        candidates = _dedup_canonical(
            strategy_hof
            + [Strategy.parse(text) for text in ga._cache]
        )

        def strategy_fitness(strategy: Strategy) -> float:
            pre_tax = sum(
                pair_eval.outcome(strategy, genome).score for genome in censor_hof
            ) / len(censor_hof)
            return pre_tax - COMPLEXITY_TAX * strategy.tree_size()

        ranked = sorted(
            candidates,
            key=lambda s: (-strategy_fitness(s), s.canonical_key()),
        )
        hof_size = max(1, config.strategy_hof_size)
        next_strategy_hof = ranked[:hof_size]

        # Censor hall of fame + breeding, scored against the targets the
        # censors actually faced this epoch (pre-update hall of fame).
        scored_censors = _censor_scores(pair_eval, censor_candidates, censor_targets)
        best_defeat = scored_censors[0][0]
        censor_hof = [
            genome
            for _, _, genome in scored_censors[: max(1, config.censor_hof_size)]
        ]
        censor_pop = _breed_censors(scored_censors, config, censor_rng)
        strategy_hof = next_strategy_hof

        epochs.append(
            EpochRecord(
                epoch=epoch,
                best_strategy_fitness=state.best_fitness,
                best_censor_defeat_rate=best_defeat,
                strategy_hof=[s.canonical_key() for s in strategy_hof],
                censor_hof=[genome.as_dict() for genome in censor_hof],
            )
        )

    # ------------------------------------------------------------------
    # Frontier: paper strategies (and novel hall-of-famers) vs baseline
    # and the final adapted censors, at frontier resolution.
    frontier_eval = PairEvaluator(
        country,
        protocol,
        trials=config.frontier_trials,
        seed=config.seed + 104729,
        executor=executor,
    )
    baseline = CensorGenome.baseline(country)
    novel = [
        strategy
        for strategy in strategy_hof
        if strategy.canonical_key() not in paper_canonical
        and not strategy.canonical().is_noop()
    ]
    targets: List[Strategy] = [strategy for _, strategy in paper] + novel
    opponents = _dedup_genomes([baseline] + censor_hof)
    frontier_eval.prefetch(
        [(strategy, genome) for strategy in targets for genome in opponents]
    )

    def rates(strategy: Strategy) -> Tuple[float, float]:
        static = frontier_eval.outcome(strategy, baseline).evasion_rate
        adapted = min(
            frontier_eval.outcome(strategy, genome).evasion_rate
            for genome in censor_hof
        )
        return static, adapted

    frontier: List[FrontierEntry] = []
    for number, strategy in paper:
        static, adapted = rates(strategy)
        frontier.append(
            FrontierEntry(
                number=number,
                name=SERVER_STRATEGIES[number].name,
                static_rate=static,
                adapted_rate=adapted,
                status=_classify(static, adapted),
            )
        )

    novel_strategies: List[Dict[str, object]] = []
    for strategy in novel:
        static, adapted = rates(strategy)
        novel_strategies.append(
            {
                "strategy": strategy.canonical_key(),
                "static_rate": static,
                "adapted_rate": adapted,
            }
        )

    final_scored = _censor_scores(frontier_eval, censor_hof, [s for _, s in paper])
    final_censor_hof = [
        {"defeat_rate": defeat, "mean_evasion": mean, "genome": genome.as_dict()}
        for defeat, mean, genome in final_scored
    ]

    return CoevolveResult(
        country=country,
        protocol=protocol,
        config=config,
        epochs=epochs,
        frontier=frontier,
        novel_strategies=novel_strategies,
        final_censor_hof=final_censor_hof,
        stats=pair_eval.stats.merged(frontier_eval.stats),
    )
