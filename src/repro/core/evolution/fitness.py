"""Fitness evaluation for evolved strategies.

Fitness mirrors Geneva's shaping: strategies are rewarded for evading
censorship, punished (mildly) for being censored, punished severely for
*breaking the connection* — a strategy that makes the server unreachable
is worse than no strategy at all — and taxed per node to keep solutions
small.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..dsl import Strategy

__all__ = ["FitnessEvaluator", "CensorTrialEvaluator"]

#: Signature every evaluator implements.
FitnessEvaluator = Callable[[Strategy], float]

REWARD_SUCCESS = 100.0
PENALTY_CENSORED = -50.0
PENALTY_BROKEN = -150.0
COMPLEXITY_TAX = 1.0


@dataclass
class CensorTrialEvaluator:
    """Evaluate a strategy by running trials against a simulated censor.

    Attributes:
        country: Censor to train against (e.g. ``"china"``).
        protocol: Application protocol for the censored workload.
        trials: Trials per evaluation (averaged).
        seed: Base seed; each trial perturbs it deterministically.
        side: ``"server"`` (the paper's contribution) or ``"client"``.
    """

    country: str
    protocol: str
    trials: int = 4
    seed: int = 0
    side: str = "server"

    def __call__(self, strategy: Strategy) -> float:
        from ...eval.runner import run_trial  # local import: avoids a cycle

        total = 0.0
        for index in range(self.trials):
            kwargs = {}
            if self.side == "server":
                kwargs["server_strategy"] = strategy
            else:
                kwargs["client_strategy"] = strategy
            result = run_trial(
                self.country,
                self.protocol,
                seed=self.seed + index * 1009,
                **kwargs,
            )
            if result.succeeded:
                total += REWARD_SUCCESS
            elif result.censored:
                total += PENALTY_CENSORED
            else:
                total += PENALTY_BROKEN
        average = total / self.trials
        return average - COMPLEXITY_TAX * strategy.tree_size()
