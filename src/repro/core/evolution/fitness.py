"""Fitness evaluation for evolved strategies.

Fitness mirrors Geneva's shaping: strategies are rewarded for evading
censorship, punished (mildly) for being censored, punished severely for
*breaking the connection* — a strategy that makes the server unreachable
is worse than no strategy at all — and taxed per node to keep solutions
small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..dsl import Strategy

__all__ = ["FitnessEvaluator", "CensorTrialEvaluator"]

#: Signature every evaluator implements.
FitnessEvaluator = Callable[[Strategy], float]

REWARD_SUCCESS = 100.0
PENALTY_CENSORED = -50.0
PENALTY_BROKEN = -150.0
COMPLEXITY_TAX = 1.0


@dataclass
class CensorTrialEvaluator:
    """Evaluate a strategy by running trials against a simulated censor.

    Attributes:
        country: Censor to train against (e.g. ``"china"``).
        protocol: Application protocol for the censored workload.
        trials: Trials per evaluation (averaged).
        seed: Base seed; per-trial seeds come from
            :func:`repro.runtime.trial_seed`.
        side: ``"server"`` (the paper's contribution) or ``"client"``.
        workers: Worker processes for the trial batch (1 = in-process).
        cache: Result-cache setting (as in ``success_rate``). The GA
            re-evaluates surviving individuals every generation, so even
            the default in-memory layer of an explicit cache pays off.
        executor: Prebuilt :class:`~repro.runtime.TrialExecutor` shared
            across evaluations (overrides ``workers``/``cache``).
        impairment: Optional network-impairment policy (an
            :class:`repro.netsim.Impairment` or its dict form) applied to
            every fitness trial — evolving under loss selects for
            strategies that tolerate real paths. ``None`` (the default)
            evaluates on a perfect path; impairment randomness is drawn
            from a stream separate from GA mutation, so enabling it never
            perturbs the evolutionary trajectory itself.
        net_seed: Pin the impairment stream (fanned out per trial).
    """

    country: str
    protocol: str
    trials: int = 4
    seed: int = 0
    side: str = "server"
    workers: int = 1
    cache: Optional[object] = None
    executor: Optional[object] = None
    impairment: Optional[object] = None
    net_seed: Optional[int] = None

    def __call__(self, strategy: Strategy) -> float:
        from ...runtime import TrialExecutor, TrialSpec, trial_seed

        if self.executor is None:
            self.executor = TrialExecutor(workers=self.workers, cache=self.cache)
        strategies = (
            {"server_strategy": strategy}
            if self.side == "server"
            else {"client_strategy": strategy}
        )
        specs = [
            TrialSpec.build(
                self.country,
                self.protocol,
                seed=trial_seed(self.seed, index),
                impairment=self.impairment,
                **strategies,
                **(
                    {"net_seed": trial_seed(self.net_seed, index)}
                    if self.net_seed is not None
                    else {}
                ),
            )
            for index in range(self.trials)
        ]
        total = 0.0
        for result in self.executor.run_batch(specs):
            if result.succeeded:
                total += REWARD_SUCCESS
            elif result.censored:
                total += PENALTY_CENSORED
            else:
                total += PENALTY_BROKEN
        average = total / self.trials
        return average - COMPLEXITY_TAX * strategy.tree_size()
