"""Fitness evaluation for evolved strategies.

Fitness mirrors Geneva's shaping: strategies are rewarded for evading
censorship, punished (mildly) for being censored, punished severely for
*breaking the connection* — a strategy that makes the server unreachable
is worse than no strategy at all — and taxed per node to keep solutions
small.

:class:`CensorTrialEvaluator` is *generation-batched*: callers hand it a
whole population via :meth:`~CensorTrialEvaluator.evaluate` and every
unevaluated genome's trials go to the executor in **one**
:meth:`~repro.runtime.TrialExecutor.run_batch` call, so the persistent
worker pool and the sharded cold-path dispatch amortize across the whole
generation instead of being re-paid per individual. Genomes are deduped
on their *canonical* form (:mod:`repro.core.dsl.canonical`) before
dispatch, and trial seeds derive from ``trial_seed(seed, index)`` per
canonical genome — never from submission order — so results are
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ...obs.metrics import Counter, Histogram
from ..dsl import Strategy

__all__ = ["FitnessEvaluator", "CensorTrialEvaluator", "EvalStats"]

#: Signature every evaluator implements. Batched consumers probe for an
#: optional ``evaluate(strategies) -> List[float]`` method and fall back
#: to per-individual calls when it is absent.
FitnessEvaluator = Callable[[Strategy], float]

REWARD_SUCCESS = 100.0
PENALTY_CENSORED = -50.0
PENALTY_BROKEN = -150.0
COMPLEXITY_TAX = 1.0

#: Batched-evaluator telemetry. All deterministic: dedup and memo
#: decisions happen before dispatch, on the GA's own seeded trajectory,
#: so counts replay exactly regardless of worker count.
_GA_BATCHES = Counter(
    "repro_ga_batches_total",
    "Generation-level fitness dispatches sent to the executor",
)
_GA_DEDUP = Counter(
    "repro_ga_dedup_total",
    "Genomes submitted for evaluation, by how each was satisfied",
    ("source",),  # evaluated | memoized | duplicate
)
_GA_EVALS_AVOIDED = Counter(
    "repro_ga_evals_avoided_total",
    "Full trial evaluations skipped via canonical dedup or the memo",
)
_GA_BATCH_SIZE = Histogram(
    "repro_ga_batch_genomes",
    "Distinct genomes per generation-level fitness dispatch",
    buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500),
)


@dataclass
class EvalStats:
    """Dedup/batching counters for one :class:`CensorTrialEvaluator`.

    Attributes:
        submitted: Genomes received by :meth:`evaluate` / ``__call__``.
        evaluated: Canonical genomes actually sent to the executor.
        memo_hits: Genomes answered from the cross-generation memo.
        duplicates: Genomes that collapsed onto another genome submitted
            in the same batch (canonical-form dedup).
        batches: ``run_batch`` dispatches issued.
        trials: Trial specs dispatched (evaluated genomes x trials).
    """

    submitted: int = 0
    evaluated: int = 0
    memo_hits: int = 0
    duplicates: int = 0
    batches: int = 0
    trials: int = 0

    @property
    def evals_avoided(self) -> int:
        """Genome evaluations saved by dedup + memoization."""
        return self.memo_hits + self.duplicates

    def format(self) -> str:
        """One ``--stats``-style summary line."""
        return (
            f"ga: submitted={self.submitted} evaluated={self.evaluated} "
            f"memo_hits={self.memo_hits} duplicates={self.duplicates} "
            f"evals_avoided={self.evals_avoided} batches={self.batches} "
            f"trials={self.trials}"
        )


@dataclass
class CensorTrialEvaluator:
    """Evaluate strategies by running trials against a simulated censor.

    Attributes:
        country: Censor to train against (e.g. ``"china"``).
        protocol: Application protocol for the censored workload.
        trials: Trials per evaluation (averaged).
        seed: Base seed; per-trial seeds come from
            :func:`repro.runtime.trial_seed`.
        side: ``"server"`` (the paper's contribution) or ``"client"``.
        workers: Worker processes for the trial batch (1 = in-process).
        cache: Result-cache setting (as in ``success_rate``). With a
            disk-backed cache, re-running a whole evolution sweep is
            warm-cache fast — fitness trials are content-addressed on
            the canonical strategy text.
        executor: Prebuilt :class:`~repro.runtime.TrialExecutor` shared
            across evaluations (overrides ``workers``/``cache``).
        impairment: Optional network-impairment policy (an
            :class:`repro.netsim.Impairment` or its dict form) applied to
            every fitness trial — evolving under loss selects for
            strategies that tolerate real paths. ``None`` (the default)
            evaluates on a perfect path; impairment randomness is drawn
            from a stream separate from GA mutation, so enabling it never
            perturbs the evolutionary trajectory itself.
        net_seed: Pin the impairment stream (fanned out per trial).
        canonicalize: Dedup genomes on their canonical form before
            dispatch (default). ``False`` restores spelling-keyed
            evaluation — used by the perf benchmark's legacy arm.
    """

    country: str
    protocol: str
    trials: int = 4
    seed: int = 0
    side: str = "server"
    workers: int = 1
    cache: Optional[object] = None
    executor: Optional[object] = None
    impairment: Optional[object] = None
    net_seed: Optional[int] = None
    canonicalize: bool = True

    def __post_init__(self) -> None:
        #: Pre-tax trial score, memoized per canonical genome text. The
        #: complexity tax is applied to each *submitted* strategy's own
        #: tree size, so a bloated spelling still pays for its bloat
        #: while sharing the trial work of its canonical form.
        self._scores: Dict[str, float] = {}
        self.stats = EvalStats()

    # ------------------------------------------------------------------

    def _genome_text(self, strategy: Strategy) -> str:
        if self.canonicalize:
            return strategy.canonical_key()
        return str(strategy)

    def _specs_for(self, text: str) -> List[object]:
        from ...runtime import TrialSpec, trial_seed

        strategies = (
            {"server_strategy": text}
            if self.side == "server"
            else {"client_strategy": text}
        )
        return [
            TrialSpec.build(
                self.country,
                self.protocol,
                seed=trial_seed(self.seed, index),
                impairment=self.impairment,
                **strategies,
                **(
                    {"net_seed": trial_seed(self.net_seed, index)}
                    if self.net_seed is not None
                    else {}
                ),
            )
            for index in range(self.trials)
        ]

    def evaluate(self, strategies: Sequence[Strategy]) -> List[float]:
        """Score a whole population in one executor dispatch.

        Genomes are deduped on canonical text and answered from the
        memo where possible; everything else goes to the executor as a
        single ``run_batch``. Returns fitnesses in submission order.
        """
        from ...runtime import TrialExecutor

        if self.executor is None:
            self.executor = TrialExecutor(workers=self.workers, cache=self.cache)

        keys = [self._genome_text(strategy) for strategy in strategies]
        pending: List[str] = []
        pending_set = set()
        for key in keys:
            self.stats.submitted += 1
            if key in self._scores:
                self.stats.memo_hits += 1
                _GA_DEDUP.inc(source="memoized")
            elif key in pending_set:
                self.stats.duplicates += 1
                _GA_DEDUP.inc(source="duplicate")
            else:
                pending.append(key)
                pending_set.add(key)
                self.stats.evaluated += 1
                _GA_DEDUP.inc(source="evaluated")
        avoided = len(keys) - len(pending)
        if avoided:
            _GA_EVALS_AVOIDED.inc(avoided)

        if pending:
            specs: List[object] = []
            for key in pending:
                specs.extend(self._specs_for(key))
            self.stats.batches += 1
            self.stats.trials += len(specs)
            _GA_BATCHES.inc()
            _GA_BATCH_SIZE.observe(len(pending))
            results = self.executor.run_batch(specs)
            for index, key in enumerate(pending):
                total = 0.0
                for result in results[index * self.trials : (index + 1) * self.trials]:
                    if result.succeeded:
                        total += REWARD_SUCCESS
                    elif result.censored:
                        total += PENALTY_CENSORED
                    else:
                        total += PENALTY_BROKEN
                self._scores[key] = total / self.trials

        return [
            self._scores[key] - COMPLEXITY_TAX * strategy.tree_size()
            for key, strategy in zip(keys, strategies)
        ]

    def __call__(self, strategy: Strategy) -> float:
        return self.evaluate([strategy])[0]
