"""The :class:`Packet` container combining an IPv4 header and TCP segment.

This is the unit that flows through the network simulator and that Geneva
action trees manipulate. It exposes a uniform field interface addressed by
``(protocol, field)`` pairs — the same namespace Geneva's DSL uses — plus
byte-level serialize/parse for wire fidelity tests.
"""

from __future__ import annotations

import random
from typing import Optional

from . import pool
from .fields import FieldSpec, corrupt_value, parse_replace_value
from .ip import IPv4
from .tcp import TCP
from .udp import IP_PROTO_UDP, UDP

__all__ = ["Packet", "make_tcp_packet", "make_udp_packet"]


class Packet:
    """An IPv4 packet carrying either a TCP segment or a UDP datagram.

    Attributes:
        ip: The IPv4 header.
        tcp: The TCP segment, or ``None`` for UDP packets.
        udp: The UDP datagram, or ``None`` for TCP packets.
    """

    __slots__ = ("ip", "tcp", "udp")

    def __init__(self, ip: IPv4, tcp: Optional[TCP] = None, udp: Optional[UDP] = None) -> None:
        if (tcp is None) == (udp is None):
            raise ValueError("packet needs exactly one transport (tcp or udp)")
        self.ip = ip
        self.tcp = tcp
        self.udp = udp

    @property
    def transport(self):
        """The transport layer (TCP segment or UDP datagram)."""
        return self.tcp if self.tcp is not None else self.udp

    @property
    def is_udp(self) -> bool:
        """Whether this is a UDP packet."""
        return self.udp is not None

    # ------------------------------------------------------------------
    # Convenience accessors

    @property
    def src(self) -> str:
        """Source IPv4 address."""
        return self.ip.src

    @property
    def dst(self) -> str:
        """Destination IPv4 address."""
        return self.ip.dst

    @property
    def sport(self) -> int:
        """Transport source port."""
        return self.transport.sport

    @property
    def dport(self) -> int:
        """Transport destination port."""
        return self.transport.dport

    @property
    def flags(self) -> str:
        """TCP flag string (canonical order); empty for UDP packets."""
        return self.tcp.flags if self.tcp is not None else ""

    @property
    def load(self) -> bytes:
        """Transport payload bytes."""
        return self.transport.load

    @property
    def flow(self) -> tuple:
        """Directed 4-tuple identifying this packet's flow."""
        return (self.src, self.sport, self.dst, self.dport)

    @property
    def reverse_flow(self) -> tuple:
        """The 4-tuple of the opposite direction of this flow."""
        return (self.dst, self.dport, self.src, self.sport)

    def checksums_ok(self) -> bool:
        """Whether both IP and TCP checksums would be valid on the wire."""
        if self.ip.chksum_override is not None:
            raw = self.serialize()
            header_len = self.ip.header_length()
            if not self.ip.checksum_ok(raw[:header_len]):
                return False
        return self.transport.checksum_ok(self.src, self.dst)

    # ------------------------------------------------------------------
    # Geneva field interface

    def _field_spec(self, protocol: str, field: str) -> tuple[object, FieldSpec]:
        protocol = protocol.upper()
        if protocol == "IP":
            layer = self.ip
            registry = type(self.ip).FIELDS  # IPv4 or IPv6 field namespace
        elif protocol == "TCP":
            layer = self.tcp
            registry = TCP.FIELDS
        elif protocol == "UDP":
            layer = self.udp
            registry = UDP.FIELDS
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        if layer is None:
            raise ValueError(f"packet has no {protocol} layer")
        try:
            return layer, registry[field]
        except KeyError:
            raise ValueError(f"unknown field {protocol}:{field}") from None

    def get_field(self, protocol: str, field: str):
        """Read a field value by Geneva ``protocol:field`` name."""
        layer, spec = self._field_spec(protocol, field)
        return spec.get(layer)

    def set_field(self, protocol: str, field: str, value) -> None:
        """Write a field value by Geneva ``protocol:field`` name."""
        layer, spec = self._field_spec(protocol, field)
        spec.set(layer, value)

    def replace_field(self, protocol: str, field: str, text: str) -> None:
        """Apply a ``tamper ... replace`` with ``text`` as the new value."""
        layer, spec = self._field_spec(protocol, field)
        spec.set(layer, parse_replace_value(spec, text))

    def corrupt_field(self, protocol: str, field: str, rng: random.Random) -> None:
        """Apply a ``tamper ... corrupt`` using ``rng`` for randomness."""
        layer, spec = self._field_spec(protocol, field)
        spec.set(layer, corrupt_value(spec, spec.get(layer), rng))

    def matches(self, protocol: str, field: str, value: str) -> bool:
        """Exact-match trigger evaluation (Geneva trigger semantics).

        For flags, ``TCP:flags:SA`` matches only packets whose flag set is
        exactly ``{S, A}`` — Geneva triggers demand an exact match.
        """
        current = self.get_field(protocol, field)
        _, spec = self._field_spec(protocol, field)
        if spec.kind == "flags":
            return set(current) == set(value.upper())
        if spec.kind == "int":
            try:
                return int(current) == int(value)
            except (TypeError, ValueError):
                return False
        if spec.kind == "bytes":
            return current == value.encode("utf-8")
        return str(current) == value

    # ------------------------------------------------------------------
    # Wire round trip

    def serialize(self) -> bytes:
        """Serialize the full packet to wire bytes."""
        return self.ip.serialize(self.transport.serialize(self.src, self.dst))

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse a full packet from wire bytes.

        The IP version nibble selects IPv4 or IPv6; the IP protocol number
        selects TCP or UDP.
        """
        if not data:
            raise ValueError("empty packet")
        version = data[0] >> 4
        if version == 6:
            from .ipv6 import IPv6

            ip, payload = IPv6.parse(data)
        else:
            ip, payload = IPv4.parse(data)
        if ip.proto == IP_PROTO_UDP:
            return cls(ip, udp=UDP.parse(payload, ip.src, ip.dst))
        tcp = TCP.parse(payload, ip.src, ip.dst)
        return cls(ip, tcp)

    # ------------------------------------------------------------------
    # Misc

    def copy(self) -> "Packet":
        """Return a deep, independent copy of this packet.

        TCP/IPv4 copies are drawn from the packet arena when one is
        active for the current trial (see :mod:`repro.packets.pool`).
        """
        if self.udp is not None:
            return Packet(self.ip.copy(), udp=self.udp.copy())
        if type(self.ip) is IPv4:
            arena = pool._ACTIVE
            if arena is not None:
                return arena.acquire_copy(self)
        clone = Packet.__new__(Packet)
        clone.ip = self.ip.copy()
        clone.tcp = self.tcp.copy()
        clone.udp = None
        return clone

    def __repr__(self) -> str:
        load = f" len={len(self.load)}" if self.load else ""
        if self.udp is not None:
            return (
                f"Packet({self.src}:{self.sport} > {self.dst}:{self.dport}"
                f" [UDP]{load})"
            )
        flags = self.flags or "<null>"
        return (
            f"Packet({self.src}:{self.sport} > {self.dst}:{self.dport}"
            f" [{flags}] seq={self.tcp.seq} ack={self.tcp.ack}{load})"
        )


def make_tcp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    flags: str = "S",
    seq: int = 0,
    ack: int = 0,
    load: bytes = b"",
    window: int = 65535,
    ttl: int = 64,
    options: Optional[list] = None,
) -> Packet:
    """Convenience constructor for a TCP packet (IPv4 or IPv6 by address)."""
    if ":" in src or ":" in dst:
        from .ipv6 import IPv6

        ip = IPv6(src=src, dst=dst, hop_limit=ttl)
    else:
        arena = pool._ACTIVE
        if arena is not None:
            return arena.acquire_tcp(
                src,
                dst,
                sport,
                dport,
                flags=flags,
                seq=seq,
                ack=ack,
                load=load,
                window=window,
                ttl=ttl,
                options=options,
            )
        ip = IPv4(src=src, dst=dst, ttl=ttl)
    tcp = TCP(
        sport=sport,
        dport=dport,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        load=load,
        options=options,
    )
    return Packet(ip, tcp)


def make_udp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    load: bytes = b"",
    ttl: int = 64,
) -> Packet:
    """Convenience constructor for a UDP packet (IPv4 or IPv6 by address)."""
    if ":" in src or ":" in dst:
        from .ipv6 import IPv6

        ip = IPv6(src=src, dst=dst, hop_limit=ttl, proto=IP_PROTO_UDP)
    else:
        ip = IPv4(src=src, dst=dst, ttl=ttl, proto=IP_PROTO_UDP)
    return Packet(ip, udp=UDP(sport=sport, dport=dport, load=load))
