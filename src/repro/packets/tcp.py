"""TCP header layer.

A from-scratch TCP segment model: header fields, a typed options list
(MSS, window scale, SACK-permitted, timestamps), payload bytes, byte-level
serialization/parsing with checksum handling, and the Geneva field registry
(including per-option pseudo-fields like ``options-wscale``).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .checksum import delta_checksum, tcp_checksum
from .fields import TCP_FLAG_LETTERS, FieldSpec

__all__ = ["TCP", "flags_to_bits", "bits_to_flags"]

#: Canonicalized-flag-string memo (e.g. ``"AS"`` -> ``"SA"``). The set of
#: canonical outputs is tiny (subsets of 8 letters) but inputs are
#: arbitrary user text, so the memo is bounded.
_CANON_FLAGS: dict = {}
_CANON_FLAGS_MAX = 4096

# Flag bit positions, matching TCP_FLAG_LETTERS ("FSRPAUEC") order.
_FLAG_BITS = {
    "F": 0x01,
    "S": 0x02,
    "R": 0x04,
    "P": 0x08,
    "A": 0x10,
    "U": 0x20,
    "E": 0x40,
    "C": 0x80,
}

OPT_EOL = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACKOK = 4
OPT_TIMESTAMP = 8

# Option name used in the options list -> TCP option kind byte.
_OPTION_KINDS = {
    "mss": OPT_MSS,
    "wscale": OPT_WSCALE,
    "sackok": OPT_SACKOK,
    "timestamp": OPT_TIMESTAMP,
    "nop": OPT_NOP,
}


def flags_to_bits(flags: str) -> int:
    """Convert a flag string like ``"SA"`` to its 8-bit wire encoding."""
    bits = 0
    for letter in flags:
        try:
            bits |= _FLAG_BITS[letter]
        except KeyError:
            raise ValueError(f"unknown TCP flag {letter!r}") from None
    return bits


def bits_to_flags(bits: int) -> str:
    """Convert the 8-bit wire encoding to a canonical flag string."""
    return "".join(letter for letter in TCP_FLAG_LETTERS if bits & _FLAG_BITS[letter])


class TCP:
    """A mutable TCP segment (header + payload).

    The checksum is computed at serialization time unless
    :attr:`chksum_override` is set; ``tamper{TCP:chksum:corrupt}`` sets the
    override so the corrupted value reaches the wire — the key mechanism
    behind "insertion packets" that censors accept but end-hosts discard.

    Serialization is cached: :meth:`serialize` keeps the last wire image
    together with a fingerprint of every field that shaped it. Re-serializing
    an unchanged segment returns the cached bytes; a segment whose only
    changes are fixed-offset header scalars (ports, seq/ack, flags, window,
    urgptr) is patched in place with an RFC 1624 incremental checksum
    update instead of being rebuilt and re-summed end to end.
    """

    __slots__ = (
        "sport",
        "dport",
        "seq",
        "ack",
        "flags",
        "window",
        "urgptr",
        "options",
        "load",
        "chksum_override",
        "dataofs_override",
        "_wire",
        "_wire_key",
    )

    def __init__(
        self,
        sport: int = 0,
        dport: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: str = "S",
        window: int = 65535,
        urgptr: int = 0,
        options: Optional[List[Tuple[str, object]]] = None,
        load: bytes = b"",
    ) -> None:
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = self._canonical_flags(flags)
        self.window = window
        self.urgptr = urgptr
        self.options: List[Tuple[str, object]] = list(options or [])
        self.load = load
        self.chksum_override: Optional[int] = None
        self.dataofs_override: Optional[int] = None
        self._wire: Optional[bytes] = None
        self._wire_key: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Flag helpers

    @staticmethod
    def _canonical_flags(flags: str) -> str:
        canon = _CANON_FLAGS.get(flags)
        if canon is None:
            canon = bits_to_flags(flags_to_bits(flags.upper()))
            if len(_CANON_FLAGS) >= _CANON_FLAGS_MAX:
                _CANON_FLAGS.clear()
            _CANON_FLAGS[flags] = canon
        return canon

    def has_flag(self, letter: str) -> bool:
        """Whether the given flag letter is set."""
        return letter in self.flags

    # Flag predicates test string membership directly (not via has_flag):
    # they run several times per packet per GFW box, and the extra method
    # call is measurable on the cold path.

    @property
    def is_syn(self) -> bool:
        """SYN set and ACK clear (a connection-opening SYN)."""
        flags = self.flags
        return "S" in flags and "A" not in flags

    @property
    def is_synack(self) -> bool:
        """Both SYN and ACK set."""
        flags = self.flags
        return "S" in flags and "A" in flags

    @property
    def is_rst(self) -> bool:
        """RST flag set."""
        return "R" in self.flags

    @property
    def is_fin(self) -> bool:
        """FIN flag set."""
        return "F" in self.flags

    @property
    def is_ack(self) -> bool:
        """ACK flag set."""
        return "A" in self.flags

    # ------------------------------------------------------------------
    # Options helpers

    def get_option(self, name: str):
        """Return the value of the named option, or ``None`` if absent."""
        for opt_name, value in self.options:
            if opt_name == name:
                return value
        return None

    def set_option(self, name: str, value) -> None:
        """Set or replace the named option."""
        for index, (opt_name, _) in enumerate(self.options):
            if opt_name == name:
                self.options[index] = (name, value)
                return
        self.options.append((name, value))

    def remove_option(self, name: str) -> None:
        """Remove the named option if present."""
        self.options = [item for item in self.options if item[0] != name]

    def _serialize_options(self) -> bytes:
        chunks = []
        for name, value in self.options:
            if name == "mss":
                chunks.append(struct.pack("!BBH", OPT_MSS, 4, int(value) & 0xFFFF))
            elif name == "wscale":
                chunks.append(struct.pack("!BBB", OPT_WSCALE, 3, int(value) & 0xFF))
            elif name == "sackok":
                chunks.append(struct.pack("!BB", OPT_SACKOK, 2))
            elif name == "timestamp":
                tsval, tsecr = value
                chunks.append(struct.pack("!BBII", OPT_TIMESTAMP, 10, tsval, tsecr))
            elif name == "nop":
                chunks.append(bytes([OPT_NOP]))
            elif name == "raw":
                chunks.append(bytes(value))
            else:
                raise ValueError(f"unknown TCP option {name!r}")
        raw = b"".join(chunks)
        if len(raw) % 4:
            raw += b"\x00" * (4 - len(raw) % 4)
        return raw

    @staticmethod
    def _parse_options(raw: bytes) -> List[Tuple[str, object]]:
        options: List[Tuple[str, object]] = []
        index = 0
        while index < len(raw):
            kind = raw[index]
            if kind == OPT_EOL:
                break
            if kind == OPT_NOP:
                options.append(("nop", None))
                index += 1
                continue
            if index + 1 >= len(raw):
                break
            length = raw[index + 1]
            if length < 2 or index + length > len(raw):
                break
            body = raw[index + 2 : index + length]
            if kind == OPT_MSS and length == 4:
                options.append(("mss", struct.unpack("!H", body)[0]))
            elif kind == OPT_WSCALE and length == 3:
                options.append(("wscale", body[0]))
            elif kind == OPT_SACKOK and length == 2:
                options.append(("sackok", None))
            elif kind == OPT_TIMESTAMP and length == 10:
                options.append(("timestamp", struct.unpack("!II", body)))
            else:
                options.append(("raw", raw[index : index + length]))
            index += length
        return options

    # ------------------------------------------------------------------
    # Serialization

    def header_length(self) -> int:
        """Length of the serialized TCP header (with options) in bytes."""
        return 20 + len(self._serialize_options())

    def serialize(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize header + payload, computing the checksum if needed.

        Returns a cached wire image when the segment is unchanged since
        the last call; applies an in-place patch with an incremental
        checksum update when only fixed-offset header scalars changed.
        """
        key = (
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            self.flags,
            self.window,
            self.urgptr,
            self.chksum_override,
            self.dataofs_override,
            self.load,
            tuple(self.options),
            src_ip,
            dst_ip,
        )
        wire = self._wire
        if wire is not None:
            old_key = self._wire_key
            if old_key == key:
                return wire
            if old_key[7:] == key[7:]:
                wire = self._patch_wire(wire, old_key, key)
                self._wire = wire
                self._wire_key = key
                return wire
        wire = self._build_wire(src_ip, dst_ip)
        self._wire = wire
        self._wire_key = key
        return wire

    #: (fingerprint index, wire offset, struct format) for every header
    #: scalar that can be patched in place. Flags are handled separately
    #: (they share a 16-bit word with the data offset).
    _PATCHABLE = (
        (0, 0, "!H"),   # sport
        (1, 2, "!H"),   # dport
        (2, 4, "!I"),   # seq
        (3, 8, "!I"),   # ack
        (5, 14, "!H"),  # window
        (6, 18, "!H"),  # urgptr
    )

    def _patch_wire(self, old_wire: bytes, old_key: tuple, key: tuple) -> bytes:
        """Rewrite changed header scalars in a cached wire image.

        The checksum is updated incrementally (RFC 1624) unless an
        override pins it, in which case the stored bytes are already
        field-independent and stay untouched.
        """
        buf = bytearray(old_wire)
        old_parts = []
        new_parts = []
        for index, offset, fmt in self._PATCHABLE:
            if old_key[index] != key[index]:
                size = 4 if fmt == "!I" else 2
                mask = 0xFFFFFFFF if size == 4 else 0xFFFF
                new_bytes = struct.pack(fmt, key[index] & mask)
                old_parts.append(old_wire[offset : offset + size])
                new_parts.append(new_bytes)
                buf[offset : offset + size] = new_bytes
        if old_key[4] != key[4]:
            # Flags live in byte 13; patch the whole 16-bit word so the
            # checksum delta stays word-aligned (byte 12 is unchanged).
            new_bytes = bytes((old_wire[12], flags_to_bits(key[4])))
            old_parts.append(old_wire[12:14])
            new_parts.append(new_bytes)
            buf[12:14] = new_bytes
        if self.chksum_override is None and old_parts:
            old_ck = (old_wire[16] << 8) | old_wire[17]
            new_ck = delta_checksum(
                old_ck, b"".join(old_parts), b"".join(new_parts)
            )
            buf[16] = new_ck >> 8
            buf[17] = new_ck & 0xFF
        return bytes(buf)

    def _build_wire(self, src_ip: str, dst_ip: str) -> bytes:
        options = self._serialize_options()
        dataofs = self.dataofs_override
        if dataofs is None:
            dataofs = (20 + len(options)) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport & 0xFFFF,
            self.dport & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (dataofs & 0xF) << 4,
            flags_to_bits(self.flags),
            self.window & 0xFFFF,
            0,
            self.urgptr & 0xFFFF,
        )
        segment = header + options + self.load
        chksum = self.chksum_override
        if chksum is None:
            chksum = tcp_checksum(src_ip, dst_ip, segment)
        return segment[:16] + struct.pack("!H", chksum & 0xFFFF) + segment[18:]

    @classmethod
    def parse(cls, data: bytes, src_ip: str = "0.0.0.0", dst_ip: str = "0.0.0.0") -> "TCP":
        """Parse a TCP segment from raw bytes.

        ``src_ip``/``dst_ip`` are used to verify the checksum; if the
        on-wire checksum does not match, it is preserved in
        :attr:`chksum_override` so the corruption survives a round trip.
        """
        if len(data) < 20:
            raise ValueError("truncated TCP header")
        (
            sport,
            dport,
            seq,
            ack,
            offset_byte,
            flag_bits,
            window,
            chksum,
            urgptr,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        dataofs = offset_byte >> 4
        header_len = dataofs * 4
        if header_len < 20 or header_len > len(data):
            header_len = 20
        segment = cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=bits_to_flags(flag_bits),
            window=window,
            urgptr=urgptr,
            options=cls._parse_options(data[20:header_len]),
            load=data[header_len:],
        )
        zeroed = data[:16] + b"\x00\x00" + data[18:]
        if tcp_checksum(src_ip, dst_ip, zeroed) != chksum:
            segment.chksum_override = chksum
        return segment

    def checksum_ok(self, src_ip: str, dst_ip: str) -> bool:
        """Whether this segment's checksum is valid between the addresses."""
        if self.chksum_override is None:
            return True
        zeroed = self.copy()
        zeroed.chksum_override = None
        raw = zeroed.serialize(src_ip, dst_ip)
        expected = struct.unpack("!H", raw[16:18])[0]
        return expected == self.chksum_override

    # ------------------------------------------------------------------
    # Misc

    def copy(self) -> "TCP":
        """Return an independent copy of this segment.

        Bypasses ``__init__`` (the fields are already canonical) and
        shares the immutable cached wire image, so a copied-then-tampered
        segment re-serializes via the incremental patch path.
        """
        clone = TCP.__new__(TCP)
        clone.sport = self.sport
        clone.dport = self.dport
        clone.seq = self.seq
        clone.ack = self.ack
        clone.flags = self.flags
        clone.window = self.window
        clone.urgptr = self.urgptr
        clone.options = list(self.options)
        clone.load = self.load
        clone.chksum_override = self.chksum_override
        clone.dataofs_override = self.dataofs_override
        clone._wire = self._wire
        clone._wire_key = self._wire_key
        return clone

    def __repr__(self) -> str:
        flags = self.flags or "<null>"
        load = f" load={len(self.load)}B" if self.load else ""
        return f"TCP({self.sport}>{self.dport} {flags} seq={self.seq} ack={self.ack}{load})"

    # ------------------------------------------------------------------
    # Geneva field registry

    FIELDS = {
        "sport": FieldSpec(
            "sport", "int", 16, lambda t: t.sport, lambda t, v: setattr(t, "sport", v & 0xFFFF)
        ),
        "dport": FieldSpec(
            "dport", "int", 16, lambda t: t.dport, lambda t, v: setattr(t, "dport", v & 0xFFFF)
        ),
        "seq": FieldSpec(
            "seq", "int", 32, lambda t: t.seq, lambda t, v: setattr(t, "seq", v & 0xFFFFFFFF)
        ),
        "ack": FieldSpec(
            "ack", "int", 32, lambda t: t.ack, lambda t, v: setattr(t, "ack", v & 0xFFFFFFFF)
        ),
        "dataofs": FieldSpec(
            "dataofs",
            "int",
            4,
            lambda t: t.dataofs_override or 0,
            lambda t, v: setattr(t, "dataofs_override", v & 0xF),
        ),
        "flags": FieldSpec(
            "flags",
            "flags",
            8,
            lambda t: t.flags,
            lambda t, v: setattr(t, "flags", TCP._canonical_flags(v)),
        ),
        "window": FieldSpec(
            "window", "int", 16, lambda t: t.window, lambda t, v: setattr(t, "window", v & 0xFFFF)
        ),
        "chksum": FieldSpec(
            "chksum",
            "int",
            16,
            lambda t: t.chksum_override or 0,
            lambda t, v: setattr(t, "chksum_override", v & 0xFFFF),
        ),
        "urgptr": FieldSpec(
            "urgptr", "int", 16, lambda t: t.urgptr, lambda t, v: setattr(t, "urgptr", v & 0xFFFF)
        ),
        "load": FieldSpec(
            "load",
            "bytes",
            0,
            lambda t: t.load,
            lambda t, v: setattr(t, "load", bytes(v)),
        ),
        "options-wscale": FieldSpec(
            "options-wscale",
            "options",
            0,
            lambda t: t.get_option("wscale"),
            lambda t, v: t.remove_option("wscale") if v == [] else t.set_option("wscale", v),
        ),
        "options-mss": FieldSpec(
            "options-mss",
            "options",
            0,
            lambda t: t.get_option("mss"),
            lambda t, v: t.remove_option("mss") if v == [] else t.set_option("mss", v),
        ),
        "options-sackok": FieldSpec(
            "options-sackok",
            "options",
            0,
            lambda t: t.get_option("sackok"),
            lambda t, v: t.remove_option("sackok") if v == [] else t.set_option("sackok", v),
        ),
        "options-timestamp": FieldSpec(
            "options-timestamp",
            "options",
            0,
            lambda t: t.get_option("timestamp"),
            lambda t, v: t.remove_option("timestamp") if v == [] else t.set_option("timestamp", v),
        ),
    }
