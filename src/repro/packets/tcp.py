"""TCP header layer.

A from-scratch TCP segment model: header fields, a typed options list
(MSS, window scale, SACK-permitted, timestamps), payload bytes, byte-level
serialization/parsing with checksum handling, and the Geneva field registry
(including per-option pseudo-fields like ``options-wscale``).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .checksum import tcp_checksum
from .fields import TCP_FLAG_LETTERS, FieldSpec

__all__ = ["TCP", "flags_to_bits", "bits_to_flags"]

# Flag bit positions, matching TCP_FLAG_LETTERS ("FSRPAUEC") order.
_FLAG_BITS = {
    "F": 0x01,
    "S": 0x02,
    "R": 0x04,
    "P": 0x08,
    "A": 0x10,
    "U": 0x20,
    "E": 0x40,
    "C": 0x80,
}

OPT_EOL = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACKOK = 4
OPT_TIMESTAMP = 8

# Option name used in the options list -> TCP option kind byte.
_OPTION_KINDS = {
    "mss": OPT_MSS,
    "wscale": OPT_WSCALE,
    "sackok": OPT_SACKOK,
    "timestamp": OPT_TIMESTAMP,
    "nop": OPT_NOP,
}


def flags_to_bits(flags: str) -> int:
    """Convert a flag string like ``"SA"`` to its 8-bit wire encoding."""
    bits = 0
    for letter in flags:
        try:
            bits |= _FLAG_BITS[letter]
        except KeyError:
            raise ValueError(f"unknown TCP flag {letter!r}") from None
    return bits


def bits_to_flags(bits: int) -> str:
    """Convert the 8-bit wire encoding to a canonical flag string."""
    return "".join(letter for letter in TCP_FLAG_LETTERS if bits & _FLAG_BITS[letter])


class TCP:
    """A mutable TCP segment (header + payload).

    The checksum is computed at serialization time unless
    :attr:`chksum_override` is set; ``tamper{TCP:chksum:corrupt}`` sets the
    override so the corrupted value reaches the wire — the key mechanism
    behind "insertion packets" that censors accept but end-hosts discard.
    """

    def __init__(
        self,
        sport: int = 0,
        dport: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: str = "S",
        window: int = 65535,
        urgptr: int = 0,
        options: Optional[List[Tuple[str, object]]] = None,
        load: bytes = b"",
    ) -> None:
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = self._canonical_flags(flags)
        self.window = window
        self.urgptr = urgptr
        self.options: List[Tuple[str, object]] = list(options or [])
        self.load = load
        self.chksum_override: Optional[int] = None
        self.dataofs_override: Optional[int] = None

    # ------------------------------------------------------------------
    # Flag helpers

    @staticmethod
    def _canonical_flags(flags: str) -> str:
        return bits_to_flags(flags_to_bits(flags.upper()))

    def has_flag(self, letter: str) -> bool:
        """Whether the given flag letter is set."""
        return letter in self.flags

    @property
    def is_syn(self) -> bool:
        """SYN set and ACK clear (a connection-opening SYN)."""
        return self.has_flag("S") and not self.has_flag("A")

    @property
    def is_synack(self) -> bool:
        """Both SYN and ACK set."""
        return self.has_flag("S") and self.has_flag("A")

    @property
    def is_rst(self) -> bool:
        """RST flag set."""
        return self.has_flag("R")

    @property
    def is_fin(self) -> bool:
        """FIN flag set."""
        return self.has_flag("F")

    @property
    def is_ack(self) -> bool:
        """ACK flag set."""
        return self.has_flag("A")

    # ------------------------------------------------------------------
    # Options helpers

    def get_option(self, name: str):
        """Return the value of the named option, or ``None`` if absent."""
        for opt_name, value in self.options:
            if opt_name == name:
                return value
        return None

    def set_option(self, name: str, value) -> None:
        """Set or replace the named option."""
        for index, (opt_name, _) in enumerate(self.options):
            if opt_name == name:
                self.options[index] = (name, value)
                return
        self.options.append((name, value))

    def remove_option(self, name: str) -> None:
        """Remove the named option if present."""
        self.options = [item for item in self.options if item[0] != name]

    def _serialize_options(self) -> bytes:
        chunks = []
        for name, value in self.options:
            if name == "mss":
                chunks.append(struct.pack("!BBH", OPT_MSS, 4, int(value) & 0xFFFF))
            elif name == "wscale":
                chunks.append(struct.pack("!BBB", OPT_WSCALE, 3, int(value) & 0xFF))
            elif name == "sackok":
                chunks.append(struct.pack("!BB", OPT_SACKOK, 2))
            elif name == "timestamp":
                tsval, tsecr = value
                chunks.append(struct.pack("!BBII", OPT_TIMESTAMP, 10, tsval, tsecr))
            elif name == "nop":
                chunks.append(bytes([OPT_NOP]))
            elif name == "raw":
                chunks.append(bytes(value))
            else:
                raise ValueError(f"unknown TCP option {name!r}")
        raw = b"".join(chunks)
        if len(raw) % 4:
            raw += b"\x00" * (4 - len(raw) % 4)
        return raw

    @staticmethod
    def _parse_options(raw: bytes) -> List[Tuple[str, object]]:
        options: List[Tuple[str, object]] = []
        index = 0
        while index < len(raw):
            kind = raw[index]
            if kind == OPT_EOL:
                break
            if kind == OPT_NOP:
                options.append(("nop", None))
                index += 1
                continue
            if index + 1 >= len(raw):
                break
            length = raw[index + 1]
            if length < 2 or index + length > len(raw):
                break
            body = raw[index + 2 : index + length]
            if kind == OPT_MSS and length == 4:
                options.append(("mss", struct.unpack("!H", body)[0]))
            elif kind == OPT_WSCALE and length == 3:
                options.append(("wscale", body[0]))
            elif kind == OPT_SACKOK and length == 2:
                options.append(("sackok", None))
            elif kind == OPT_TIMESTAMP and length == 10:
                options.append(("timestamp", struct.unpack("!II", body)))
            else:
                options.append(("raw", raw[index : index + length]))
            index += length
        return options

    # ------------------------------------------------------------------
    # Serialization

    def header_length(self) -> int:
        """Length of the serialized TCP header (with options) in bytes."""
        return 20 + len(self._serialize_options())

    def serialize(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize header + payload, computing the checksum if needed."""
        options = self._serialize_options()
        dataofs = self.dataofs_override
        if dataofs is None:
            dataofs = (20 + len(options)) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport & 0xFFFF,
            self.dport & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (dataofs & 0xF) << 4,
            flags_to_bits(self.flags),
            self.window & 0xFFFF,
            0,
            self.urgptr & 0xFFFF,
        )
        segment = header + options + self.load
        chksum = self.chksum_override
        if chksum is None:
            chksum = tcp_checksum(src_ip, dst_ip, segment)
        return segment[:16] + struct.pack("!H", chksum & 0xFFFF) + segment[18:]

    @classmethod
    def parse(cls, data: bytes, src_ip: str = "0.0.0.0", dst_ip: str = "0.0.0.0") -> "TCP":
        """Parse a TCP segment from raw bytes.

        ``src_ip``/``dst_ip`` are used to verify the checksum; if the
        on-wire checksum does not match, it is preserved in
        :attr:`chksum_override` so the corruption survives a round trip.
        """
        if len(data) < 20:
            raise ValueError("truncated TCP header")
        (
            sport,
            dport,
            seq,
            ack,
            offset_byte,
            flag_bits,
            window,
            chksum,
            urgptr,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        dataofs = offset_byte >> 4
        header_len = dataofs * 4
        if header_len < 20 or header_len > len(data):
            header_len = 20
        segment = cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=bits_to_flags(flag_bits),
            window=window,
            urgptr=urgptr,
            options=cls._parse_options(data[20:header_len]),
            load=data[header_len:],
        )
        zeroed = data[:16] + b"\x00\x00" + data[18:]
        if tcp_checksum(src_ip, dst_ip, zeroed) != chksum:
            segment.chksum_override = chksum
        return segment

    def checksum_ok(self, src_ip: str, dst_ip: str) -> bool:
        """Whether this segment's checksum is valid between the addresses."""
        if self.chksum_override is None:
            return True
        zeroed = self.copy()
        zeroed.chksum_override = None
        raw = zeroed.serialize(src_ip, dst_ip)
        expected = struct.unpack("!H", raw[16:18])[0]
        return expected == self.chksum_override

    # ------------------------------------------------------------------
    # Misc

    def copy(self) -> "TCP":
        """Return an independent copy of this segment."""
        clone = TCP(
            sport=self.sport,
            dport=self.dport,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            window=self.window,
            urgptr=self.urgptr,
            options=[(name, value) for name, value in self.options],
            load=self.load,
        )
        clone.chksum_override = self.chksum_override
        clone.dataofs_override = self.dataofs_override
        return clone

    def __repr__(self) -> str:
        flags = self.flags or "<null>"
        load = f" load={len(self.load)}B" if self.load else ""
        return f"TCP({self.sport}>{self.dport} {flags} seq={self.seq} ack={self.ack}{load})"

    # ------------------------------------------------------------------
    # Geneva field registry

    FIELDS = {
        "sport": FieldSpec(
            "sport", "int", 16, lambda t: t.sport, lambda t, v: setattr(t, "sport", v & 0xFFFF)
        ),
        "dport": FieldSpec(
            "dport", "int", 16, lambda t: t.dport, lambda t, v: setattr(t, "dport", v & 0xFFFF)
        ),
        "seq": FieldSpec(
            "seq", "int", 32, lambda t: t.seq, lambda t, v: setattr(t, "seq", v & 0xFFFFFFFF)
        ),
        "ack": FieldSpec(
            "ack", "int", 32, lambda t: t.ack, lambda t, v: setattr(t, "ack", v & 0xFFFFFFFF)
        ),
        "dataofs": FieldSpec(
            "dataofs",
            "int",
            4,
            lambda t: t.dataofs_override or 0,
            lambda t, v: setattr(t, "dataofs_override", v & 0xF),
        ),
        "flags": FieldSpec(
            "flags",
            "flags",
            8,
            lambda t: t.flags,
            lambda t, v: setattr(t, "flags", TCP._canonical_flags(v)),
        ),
        "window": FieldSpec(
            "window", "int", 16, lambda t: t.window, lambda t, v: setattr(t, "window", v & 0xFFFF)
        ),
        "chksum": FieldSpec(
            "chksum",
            "int",
            16,
            lambda t: t.chksum_override or 0,
            lambda t, v: setattr(t, "chksum_override", v & 0xFFFF),
        ),
        "urgptr": FieldSpec(
            "urgptr", "int", 16, lambda t: t.urgptr, lambda t, v: setattr(t, "urgptr", v & 0xFFFF)
        ),
        "load": FieldSpec(
            "load",
            "bytes",
            0,
            lambda t: t.load,
            lambda t, v: setattr(t, "load", bytes(v)),
        ),
        "options-wscale": FieldSpec(
            "options-wscale",
            "options",
            0,
            lambda t: t.get_option("wscale"),
            lambda t, v: t.remove_option("wscale") if v == [] else t.set_option("wscale", v),
        ),
        "options-mss": FieldSpec(
            "options-mss",
            "options",
            0,
            lambda t: t.get_option("mss"),
            lambda t, v: t.remove_option("mss") if v == [] else t.set_option("mss", v),
        ),
        "options-sackok": FieldSpec(
            "options-sackok",
            "options",
            0,
            lambda t: t.get_option("sackok"),
            lambda t, v: t.remove_option("sackok") if v == [] else t.set_option("sackok", v),
        ),
        "options-timestamp": FieldSpec(
            "options-timestamp",
            "options",
            0,
            lambda t: t.get_option("timestamp"),
            lambda t, v: t.remove_option("timestamp") if v == [] else t.set_option("timestamp", v),
        ),
    }
