"""IPv6 header layer.

The paper's Geneva extension adds IPv6 to ``tamper``'s field namespace
(Appendix). This layer implements the fixed IPv6 header with byte-level
serialization/parsing, RFC 2460 semantics (hop limit instead of TTL, no
header checksum, no fragmentation in the base header), and the same
duck-typed interface as :class:`~repro.packets.ip.IPv4` so packets and
the simulator are address-family agnostic.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from .fields import FieldSpec

__all__ = [
    "IPv6",
    "canonical_ip",
    "expand_v6",
    "compress_v6",
    "v6_to_bytes",
    "bytes_to_v6",
]


def canonical_ip(address: str) -> str:
    """Canonical form of an IP address of either family.

    IPv6 addresses are expanded (``::`` resolved) so string comparison is
    reliable; IPv4 addresses pass through unchanged.
    """
    return expand_v6(address) if ":" in address else address

IP_PROTO_TCP = 6


#: Packed-address memo (see checksum._ADDR_BYTES for rationale/bounds).
_V6_BYTES: dict = {}
_V6_BYTES_MAX = 1024


def v6_to_bytes(address: str) -> bytes:
    """Convert an IPv6 address string (with ``::`` support) to 16 bytes."""
    cached = _V6_BYTES.get(address)
    if cached is not None:
        return cached
    packed = _parse_v6(address)
    if len(_V6_BYTES) >= _V6_BYTES_MAX:
        _V6_BYTES.clear()
    _V6_BYTES[address] = packed
    return packed


def _parse_v6(address: str) -> bytes:
    if address.count("::") > 1 or ":::" in address:
        raise ValueError(f"invalid IPv6 address {address!r}")
    if "::" in address:
        head_text, _, tail_text = address.partition("::")
        head = [p for p in head_text.split(":") if p]
        tail = [p for p in tail_text.split(":") if p]
        missing = 8 - len(head) - len(tail)
        if missing < 0:
            raise ValueError(f"invalid IPv6 address {address!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise ValueError(f"invalid IPv6 address {address!r}")
    try:
        values = [int(group, 16) for group in groups]
    except ValueError as exc:
        raise ValueError(f"invalid IPv6 address {address!r}") from exc
    if any(value < 0 or value > 0xFFFF for value in values):
        raise ValueError(f"invalid IPv6 address {address!r}")
    return b"".join(struct.pack("!H", value) for value in values)


def bytes_to_v6(raw: bytes) -> str:
    """Render 16 bytes as a canonical (uncompressed) IPv6 string."""
    if len(raw) != 16:
        raise ValueError("IPv6 address must be 16 bytes")
    groups = [f"{struct.unpack('!H', raw[i : i + 2])[0]:x}" for i in range(0, 16, 2)]
    return ":".join(groups)


def expand_v6(address: str) -> str:
    """Normalize an IPv6 string (resolving ``::``)."""
    return bytes_to_v6(v6_to_bytes(address))


def compress_v6(address: str) -> str:
    """Apply the longest-zero-run ``::`` compression."""
    groups = expand_v6(address).split(":")
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups + ["sentinel"]):
        if group == "0":
            if run_start < 0:
                run_start = index
            run_len += 1
        else:
            if run_len > best_len:
                best_start, best_len = run_start, run_len
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(groups)
    head = ":".join(groups[:best_start])
    tail = ":".join(groups[best_start + best_len :])
    return f"{head}::{tail}"


class IPv6:
    """A mutable IPv6 fixed header.

    Attributes mirror RFC 2460: ``hop_limit`` plays IPv4's TTL role (and
    is also exposed via the ``ttl`` alias so the simulator's hop logic is
    family-agnostic). IPv6 has no header checksum.
    """

    version = 6

    __slots__ = (
        "src",
        "dst",
        "hop_limit",
        "proto",
        "traffic_class",
        "flow_label",
        "len_override",
        "_wire",
        "_wire_key",
    )

    def __init__(
        self,
        src: str = "::",
        dst: str = "::",
        hop_limit: int = 64,
        proto: int = IP_PROTO_TCP,
        traffic_class: int = 0,
        flow_label: int = 0,
    ) -> None:
        self.src = expand_v6(src)
        self.dst = expand_v6(dst)
        self.hop_limit = hop_limit
        self.proto = proto
        self.traffic_class = traffic_class
        self.flow_label = flow_label
        self.len_override: Optional[int] = None
        self._wire: Optional[bytes] = None
        self._wire_key: Optional[tuple] = None

    # ------------------------------------------------------------------
    # The family-agnostic TTL interface used by the network simulator.

    @property
    def ttl(self) -> int:
        """Alias for :attr:`hop_limit`."""
        return self.hop_limit

    @ttl.setter
    def ttl(self, value: int) -> None:
        self.hop_limit = value & 0xFF

    @property
    def chksum_override(self) -> Optional[int]:
        """IPv6 has no header checksum; always ``None``."""
        return None

    # ------------------------------------------------------------------

    def header_length(self) -> int:
        """Length of the serialized fixed header in bytes."""
        return 40

    def serialize(self, payload: bytes) -> bytes:
        """Serialize the fixed header followed by ``payload``.

        Cached like :meth:`IPv4.serialize`; IPv6 has no header checksum,
        so single-scalar changes are plain byte patches.
        """
        key = (
            self.traffic_class,
            self.flow_label,
            self.hop_limit,
            self.proto,
            self.src,
            self.dst,
            self.len_override,
            payload,
        )
        wire = self._wire
        if wire is not None:
            old_key = self._wire_key
            if old_key == key:
                return wire
            if old_key[4:] == key[4:]:
                buf = bytearray(wire)
                if old_key[0] != key[0] or old_key[1] != key[1]:
                    first_word = (
                        (6 << 28)
                        | ((key[0] & 0xFF) << 20)
                        | (key[1] & 0xFFFFF)
                    )
                    buf[0:4] = struct.pack("!I", first_word)
                if old_key[3] != key[3]:
                    buf[6] = key[3] & 0xFF
                if old_key[2] != key[2]:
                    buf[7] = key[2] & 0xFF
                wire = bytes(buf)
                self._wire = wire
                self._wire_key = key
                return wire
        wire = self._build_wire(payload)
        self._wire = wire
        self._wire_key = key
        return wire

    def _build_wire(self, payload: bytes) -> bytes:
        length = self.len_override
        if length is None:
            length = len(payload)
        first_word = (
            (6 << 28)
            | ((self.traffic_class & 0xFF) << 20)
            | (self.flow_label & 0xFFFFF)
        )
        header = struct.pack(
            "!IHBB16s16s",
            first_word,
            length & 0xFFFF,
            self.proto & 0xFF,
            self.hop_limit & 0xFF,
            v6_to_bytes(self.src),
            v6_to_bytes(self.dst),
        )
        return header + payload

    @classmethod
    def parse(cls, data: bytes) -> Tuple["IPv6", bytes]:
        """Parse an IPv6 fixed header; returns (header, payload)."""
        if len(data) < 40:
            raise ValueError("truncated IPv6 header")
        first_word, length, proto, hop_limit, src, dst = struct.unpack(
            "!IHBB16s16s", data[:40]
        )
        if first_word >> 28 != 6:
            raise ValueError("not an IPv6 packet")
        header = cls(
            src=bytes_to_v6(src),
            dst=bytes_to_v6(dst),
            hop_limit=hop_limit,
            proto=proto,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
        )
        return header, data[40 : 40 + length]

    def checksum_ok(self, raw_header: bytes) -> bool:
        """IPv6 headers carry no checksum; always valid."""
        return True

    # ------------------------------------------------------------------

    def copy(self) -> "IPv6":
        """Return an independent copy of this header."""
        clone = IPv6.__new__(IPv6)
        clone.src = self.src
        clone.dst = self.dst
        clone.hop_limit = self.hop_limit
        clone.proto = self.proto
        clone.traffic_class = self.traffic_class
        clone.flow_label = self.flow_label
        clone.len_override = self.len_override
        clone._wire = self._wire
        clone._wire_key = self._wire_key
        return clone

    def __repr__(self) -> str:
        return (
            f"IPv6({compress_v6(self.src)} > {compress_v6(self.dst)}"
            f" hlim={self.hop_limit} proto={self.proto})"
        )

    # ------------------------------------------------------------------
    # Geneva field registry ("IP" namespace, v6 flavour)

    FIELDS = {
        "tc": FieldSpec(
            "tc",
            "int",
            8,
            lambda ip: ip.traffic_class,
            lambda ip, v: setattr(ip, "traffic_class", v & 0xFF),
        ),
        "fl": FieldSpec(
            "fl",
            "int",
            20,
            lambda ip: ip.flow_label,
            lambda ip, v: setattr(ip, "flow_label", v & 0xFFFFF),
        ),
        "len": FieldSpec(
            "len",
            "int",
            16,
            lambda ip: ip.len_override or 0,
            lambda ip, v: setattr(ip, "len_override", v & 0xFFFF),
        ),
        "proto": FieldSpec(
            "proto", "int", 8, lambda ip: ip.proto, lambda ip, v: setattr(ip, "proto", v & 0xFF)
        ),
        "ttl": FieldSpec(
            "ttl",
            "int",
            8,
            lambda ip: ip.hop_limit,
            lambda ip, v: setattr(ip, "hop_limit", v & 0xFF),
        ),
        "hlim": FieldSpec(
            "hlim",
            "int",
            8,
            lambda ip: ip.hop_limit,
            lambda ip, v: setattr(ip, "hop_limit", v & 0xFF),
        ),
        "src": FieldSpec(
            "src", "ip", 128, lambda ip: ip.src, lambda ip, v: setattr(ip, "src", expand_v6(v) if ":" in v else v)
        ),
        "dst": FieldSpec(
            "dst", "ip", 128, lambda ip: ip.dst, lambda ip, v: setattr(ip, "dst", expand_v6(v) if ":" in v else v)
        ),
    }
