"""Field metadata shared by packet layers.

Geneva's ``tamper`` action addresses header fields by ``protocol:field``
name and supports two modes: ``replace`` (parse a new value from a string)
and ``corrupt`` (overwrite the field with an equal number of random bits).
Each packet layer exposes a ``FIELDS`` registry of :class:`FieldSpec`
entries implementing both modes uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["FieldSpec", "corrupt_value", "parse_replace_value"]

# Flag letters accepted in TCP flag strings, in serialization bit order.
TCP_FLAG_LETTERS = "FSRPAUEC"

# Default payload length range used when corrupting an empty load; the
# original Geneva generates a short random payload in this situation.
_EMPTY_LOAD_MIN = 4
_EMPTY_LOAD_MAX = 12


@dataclass(frozen=True)
class FieldSpec:
    """Description of one tamperable header field.

    Attributes:
        name: The Geneva field name (e.g. ``"flags"``, ``"ack"``).
        kind: One of ``"int"``, ``"flags"``, ``"bytes"``, ``"ip"`` or
            ``"options"``; selects parsing and corruption behaviour.
        bits: Width in bits for integer fields (bounds random corruption).
        get: Callable returning the field's current value from a layer.
        set: Callable storing a new value into a layer.
    """

    name: str
    kind: str
    bits: int
    get: Callable[[Any], Any]
    set: Callable[[Any, Any], None]


def corrupt_value(spec: FieldSpec, current: Any, rng: random.Random) -> Any:
    """Produce a random replacement for ``current`` according to ``spec``.

    Integer fields get a uniformly random value of the same bit width;
    flags get a random flag combination; byte fields get random bytes of
    the same length (or a short random payload when currently empty); IP
    addresses get four random octets.
    """
    if spec.kind == "int":
        return rng.getrandbits(spec.bits)
    if spec.kind == "flags":
        letters = [letter for letter in TCP_FLAG_LETTERS if rng.random() < 0.5]
        return "".join(letters)
    if spec.kind == "bytes":
        length = len(current) if current else rng.randint(_EMPTY_LOAD_MIN, _EMPTY_LOAD_MAX)
        return bytes(rng.getrandbits(8) for _ in range(length))
    if spec.kind == "ip":
        if spec.bits == 128:
            return ":".join(f"{rng.getrandbits(16):x}" for _ in range(8))
        return ".".join(str(rng.getrandbits(8)) for _ in range(4))
    if spec.kind == "options":
        # Corrupting the options field empties it; real Geneva replaces
        # options with random bytes which no stack parses, so the observable
        # effect is equivalent to removal.
        return []
    raise ValueError(f"cannot corrupt field kind {spec.kind!r}")


def parse_replace_value(spec: FieldSpec, text: str) -> Any:
    """Parse the ``newValue`` string of a ``tamper ... replace`` action."""
    if spec.kind == "int":
        if text == "":
            return 0
        return int(text)
    if spec.kind == "flags":
        value = text.strip().upper()
        bad = set(value) - set(TCP_FLAG_LETTERS)
        if bad:
            raise ValueError(f"unknown TCP flag letters: {sorted(bad)}")
        return value
    if spec.kind == "bytes":
        return text.encode("utf-8")
    if spec.kind == "ip":
        return text
    if spec.kind == "options":
        # Replacing options with the empty string removes them; this is the
        # form used by Strategy 8 (``options-wscale:replace:``).
        if text == "":
            return []
        raise ValueError("only option removal (empty value) is supported")
    raise ValueError(f"cannot replace field kind {spec.kind!r}")
