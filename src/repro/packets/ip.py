"""IPv4 header layer.

Implements a from-scratch IPv4 header with byte-level serialization and
parsing, automatic length/checksum computation (with explicit overrides so
Geneva's ``tamper`` can plant corrupted values), and the Geneva field
registry for tampering.
"""

from __future__ import annotations

import struct
from typing import Optional

from .checksum import internet_checksum
from .fields import FieldSpec

__all__ = ["IPv4"]

IP_PROTO_TCP = 6

# IP header flag bits (in the 3-bit flags field).
FLAG_DF = 0b010
FLAG_MF = 0b001


class IPv4:
    """A mutable IPv4 header.

    The ``len`` and ``chksum`` fields are computed at serialization time
    unless explicitly overridden via :attr:`len_override` /
    :attr:`chksum_override` (which is what ``tamper`` does when targeting
    them — Geneva deliberately does not fix up a tampered checksum or
    length).
    """

    def __init__(
        self,
        src: str = "0.0.0.0",
        dst: str = "0.0.0.0",
        ttl: int = 64,
        proto: int = IP_PROTO_TCP,
        ident: int = 0,
        tos: int = 0,
        flags: int = FLAG_DF,
        frag: int = 0,
    ) -> None:
        self.version = 4
        self.ihl = 5
        self.tos = tos
        self.ident = ident
        self.flags = flags
        self.frag = frag
        self.ttl = ttl
        self.proto = proto
        self.src = src
        self.dst = dst
        self.len_override: Optional[int] = None
        self.chksum_override: Optional[int] = None

    # ------------------------------------------------------------------
    # Serialization

    def header_length(self) -> int:
        """Length of the serialized header in bytes."""
        return self.ihl * 4

    def serialize(self, payload: bytes) -> bytes:
        """Serialize the header followed by ``payload``.

        Computes total length and header checksum unless overridden.
        """
        total_len = self.len_override
        if total_len is None:
            total_len = self.header_length() + len(payload)
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (self.version << 4) | self.ihl,
            self.tos,
            total_len & 0xFFFF,
            self.ident & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.proto & 0xFF,
            0,
            _ip_bytes(self.src),
            _ip_bytes(self.dst),
        )
        chksum = self.chksum_override
        if chksum is None:
            chksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", chksum & 0xFFFF) + header[12:]
        return header + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4", bytes]:
        """Parse an IPv4 header from ``data``; return (header, payload)."""
        if len(data) < 20:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            proto,
            chksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        header = cls(
            src=_bytes_ip(src),
            dst=_bytes_ip(dst),
            ttl=ttl,
            proto=proto,
            ident=ident,
            tos=tos,
            flags=(flags_frag >> 13) & 0x7,
            frag=flags_frag & 0x1FFF,
        )
        header.version = version_ihl >> 4
        header.ihl = version_ihl & 0xF
        header_len = header.header_length()
        if header_len < 20 or len(data) < header_len:
            raise ValueError("invalid IPv4 header length")
        payload = data[header_len:total_len] if total_len >= header_len else data[header_len:]
        # Record the on-wire checksum so a corrupted value survives a
        # parse/serialize round trip.
        expected = internet_checksum(data[:10] + b"\x00\x00" + data[12:header_len])
        if chksum != expected:
            header.chksum_override = chksum
        return header, payload

    def checksum_ok(self, raw_header: bytes) -> bool:
        """Whether ``raw_header`` carries a valid IPv4 header checksum."""
        return internet_checksum(raw_header) == 0

    # ------------------------------------------------------------------
    # Misc

    def copy(self) -> "IPv4":
        """Return an independent copy of this header."""
        clone = IPv4(
            src=self.src,
            dst=self.dst,
            ttl=self.ttl,
            proto=self.proto,
            ident=self.ident,
            tos=self.tos,
            flags=self.flags,
            frag=self.frag,
        )
        clone.version = self.version
        clone.ihl = self.ihl
        clone.len_override = self.len_override
        clone.chksum_override = self.chksum_override
        return clone

    def __repr__(self) -> str:
        return f"IPv4({self.src} > {self.dst} ttl={self.ttl} proto={self.proto})"

    # ------------------------------------------------------------------
    # Geneva field registry

    FIELDS = {
        "version": FieldSpec(
            "version", "int", 4, lambda ip: ip.version, lambda ip, v: setattr(ip, "version", v & 0xF)
        ),
        "ihl": FieldSpec(
            "ihl", "int", 4, lambda ip: ip.ihl, lambda ip, v: setattr(ip, "ihl", v & 0xF)
        ),
        "tos": FieldSpec(
            "tos", "int", 8, lambda ip: ip.tos, lambda ip, v: setattr(ip, "tos", v & 0xFF)
        ),
        "len": FieldSpec(
            "len", "int", 16, lambda ip: ip.len_override or 0, lambda ip, v: setattr(ip, "len_override", v & 0xFFFF)
        ),
        "id": FieldSpec(
            "id", "int", 16, lambda ip: ip.ident, lambda ip, v: setattr(ip, "ident", v & 0xFFFF)
        ),
        "flags": FieldSpec(
            "flags", "int", 3, lambda ip: ip.flags, lambda ip, v: setattr(ip, "flags", v & 0x7)
        ),
        "frag": FieldSpec(
            "frag", "int", 13, lambda ip: ip.frag, lambda ip, v: setattr(ip, "frag", v & 0x1FFF)
        ),
        "ttl": FieldSpec(
            "ttl", "int", 8, lambda ip: ip.ttl, lambda ip, v: setattr(ip, "ttl", v & 0xFF)
        ),
        "proto": FieldSpec(
            "proto", "int", 8, lambda ip: ip.proto, lambda ip, v: setattr(ip, "proto", v & 0xFF)
        ),
        "chksum": FieldSpec(
            "chksum",
            "int",
            16,
            lambda ip: ip.chksum_override or 0,
            lambda ip, v: setattr(ip, "chksum_override", v & 0xFFFF),
        ),
        "src": FieldSpec("src", "ip", 32, lambda ip: ip.src, lambda ip, v: setattr(ip, "src", v)),
        "dst": FieldSpec("dst", "ip", 32, lambda ip: ip.dst, lambda ip, v: setattr(ip, "dst", v)),
    }


def _ip_bytes(address: str) -> bytes:
    return bytes(int(part) for part in address.split("."))


def _bytes_ip(raw: bytes) -> str:
    return ".".join(str(byte) for byte in raw)
