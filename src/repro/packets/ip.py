"""IPv4 header layer.

Implements a from-scratch IPv4 header with byte-level serialization and
parsing, automatic length/checksum computation (with explicit overrides so
Geneva's ``tamper`` can plant corrupted values), and the Geneva field
registry for tampering.
"""

from __future__ import annotations

import struct
from typing import Optional

from .checksum import delta_checksum, internet_checksum
from .fields import FieldSpec

__all__ = ["IPv4"]

IP_PROTO_TCP = 6

# IP header flag bits (in the 3-bit flags field).
FLAG_DF = 0b010
FLAG_MF = 0b001


class IPv4:
    """A mutable IPv4 header.

    The ``len`` and ``chksum`` fields are computed at serialization time
    unless explicitly overridden via :attr:`len_override` /
    :attr:`chksum_override` (which is what ``tamper`` does when targeting
    them — Geneva deliberately does not fix up a tampered checksum or
    length).

    Like :class:`~repro.packets.tcp.TCP`, serialization is cached: an
    unchanged header returns the previous wire image, and single-scalar
    changes (tos, ident, flags/frag, ttl, proto) patch the cached bytes
    with an RFC 1624 incremental header-checksum update.
    """

    __slots__ = (
        "version",
        "ihl",
        "tos",
        "ident",
        "flags",
        "frag",
        "ttl",
        "proto",
        "src",
        "dst",
        "len_override",
        "chksum_override",
        "_wire",
        "_wire_key",
    )

    def __init__(
        self,
        src: str = "0.0.0.0",
        dst: str = "0.0.0.0",
        ttl: int = 64,
        proto: int = IP_PROTO_TCP,
        ident: int = 0,
        tos: int = 0,
        flags: int = FLAG_DF,
        frag: int = 0,
    ) -> None:
        self.version = 4
        self.ihl = 5
        self.tos = tos
        self.ident = ident
        self.flags = flags
        self.frag = frag
        self.ttl = ttl
        self.proto = proto
        self.src = src
        self.dst = dst
        self.len_override: Optional[int] = None
        self.chksum_override: Optional[int] = None
        self._wire: Optional[bytes] = None
        self._wire_key: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Serialization

    def header_length(self) -> int:
        """Length of the serialized header in bytes."""
        return self.ihl * 4

    def serialize(self, payload: bytes) -> bytes:
        """Serialize the header followed by ``payload``.

        Computes total length and header checksum unless overridden.
        Unchanged headers return the cached wire image; single-scalar
        header changes patch it in place with an incremental checksum
        update.
        """
        key = (
            self.tos,
            self.ident,
            self.flags,
            self.frag,
            self.ttl,
            self.proto,
            self.version,
            self.ihl,
            self.src,
            self.dst,
            self.len_override,
            self.chksum_override,
            payload,
        )
        wire = self._wire
        if wire is not None:
            old_key = self._wire_key
            if old_key == key:
                return wire
            if old_key[6:] == key[6:]:
                wire = self._patch_wire(wire, old_key, key)
                self._wire = wire
                self._wire_key = key
                return wire
        wire = self._build_wire(payload)
        self._wire = wire
        self._wire_key = key
        return wire

    def _patch_wire(self, old_wire: bytes, old_key: tuple, key: tuple) -> bytes:
        """Rewrite changed header scalars in a cached wire image."""
        buf = bytearray(old_wire)
        old_parts = []
        new_parts = []
        # Each entry patches one 16-bit word of the 20-byte base header.
        if old_key[0] != key[0]:  # tos shares word 0 with version/ihl
            new_bytes = bytes((old_wire[0], key[0] & 0xFF))
            old_parts.append(old_wire[0:2])
            new_parts.append(new_bytes)
            buf[0:2] = new_bytes
        if old_key[1] != key[1]:  # ident
            new_bytes = struct.pack("!H", key[1] & 0xFFFF)
            old_parts.append(old_wire[4:6])
            new_parts.append(new_bytes)
            buf[4:6] = new_bytes
        if old_key[2] != key[2] or old_key[3] != key[3]:  # flags/frag word
            flags_frag = ((key[2] & 0x7) << 13) | (key[3] & 0x1FFF)
            new_bytes = struct.pack("!H", flags_frag)
            old_parts.append(old_wire[6:8])
            new_parts.append(new_bytes)
            buf[6:8] = new_bytes
        if old_key[4] != key[4] or old_key[5] != key[5]:  # ttl/proto word
            new_bytes = bytes((key[4] & 0xFF, key[5] & 0xFF))
            old_parts.append(old_wire[8:10])
            new_parts.append(new_bytes)
            buf[8:10] = new_bytes
        if self.chksum_override is None and old_parts:
            old_ck = (old_wire[10] << 8) | old_wire[11]
            new_ck = delta_checksum(
                old_ck, b"".join(old_parts), b"".join(new_parts)
            )
            buf[10] = new_ck >> 8
            buf[11] = new_ck & 0xFF
        return bytes(buf)

    def _build_wire(self, payload: bytes) -> bytes:
        total_len = self.len_override
        if total_len is None:
            total_len = self.header_length() + len(payload)
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (self.version << 4) | self.ihl,
            self.tos,
            total_len & 0xFFFF,
            self.ident & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.proto & 0xFF,
            0,
            _ip_bytes(self.src),
            _ip_bytes(self.dst),
        )
        chksum = self.chksum_override
        if chksum is None:
            chksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", chksum & 0xFFFF) + header[12:]
        return header + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4", bytes]:
        """Parse an IPv4 header from ``data``; return (header, payload)."""
        if len(data) < 20:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            proto,
            chksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        header = cls(
            src=_bytes_ip(src),
            dst=_bytes_ip(dst),
            ttl=ttl,
            proto=proto,
            ident=ident,
            tos=tos,
            flags=(flags_frag >> 13) & 0x7,
            frag=flags_frag & 0x1FFF,
        )
        header.version = version_ihl >> 4
        header.ihl = version_ihl & 0xF
        header_len = header.header_length()
        if header_len < 20 or len(data) < header_len:
            raise ValueError("invalid IPv4 header length")
        payload = data[header_len:total_len] if total_len >= header_len else data[header_len:]
        # Record the on-wire checksum so a corrupted value survives a
        # parse/serialize round trip.
        expected = internet_checksum(data[:10] + b"\x00\x00" + data[12:header_len])
        if chksum != expected:
            header.chksum_override = chksum
        return header, payload

    def checksum_ok(self, raw_header: bytes) -> bool:
        """Whether ``raw_header`` carries a valid IPv4 header checksum."""
        return internet_checksum(raw_header) == 0

    # ------------------------------------------------------------------
    # Misc

    def copy(self) -> "IPv4":
        """Return an independent copy of this header.

        The cached wire image is shared (bytes are immutable); the clone
        re-validates it against its own fingerprint on next serialize.
        """
        clone = IPv4.__new__(IPv4)
        clone.version = self.version
        clone.ihl = self.ihl
        clone.tos = self.tos
        clone.ident = self.ident
        clone.flags = self.flags
        clone.frag = self.frag
        clone.ttl = self.ttl
        clone.proto = self.proto
        clone.src = self.src
        clone.dst = self.dst
        clone.len_override = self.len_override
        clone.chksum_override = self.chksum_override
        clone._wire = self._wire
        clone._wire_key = self._wire_key
        return clone

    def __repr__(self) -> str:
        return f"IPv4({self.src} > {self.dst} ttl={self.ttl} proto={self.proto})"

    # ------------------------------------------------------------------
    # Geneva field registry

    FIELDS = {
        "version": FieldSpec(
            "version", "int", 4, lambda ip: ip.version, lambda ip, v: setattr(ip, "version", v & 0xF)
        ),
        "ihl": FieldSpec(
            "ihl", "int", 4, lambda ip: ip.ihl, lambda ip, v: setattr(ip, "ihl", v & 0xF)
        ),
        "tos": FieldSpec(
            "tos", "int", 8, lambda ip: ip.tos, lambda ip, v: setattr(ip, "tos", v & 0xFF)
        ),
        "len": FieldSpec(
            "len", "int", 16, lambda ip: ip.len_override or 0, lambda ip, v: setattr(ip, "len_override", v & 0xFFFF)
        ),
        "id": FieldSpec(
            "id", "int", 16, lambda ip: ip.ident, lambda ip, v: setattr(ip, "ident", v & 0xFFFF)
        ),
        "flags": FieldSpec(
            "flags", "int", 3, lambda ip: ip.flags, lambda ip, v: setattr(ip, "flags", v & 0x7)
        ),
        "frag": FieldSpec(
            "frag", "int", 13, lambda ip: ip.frag, lambda ip, v: setattr(ip, "frag", v & 0x1FFF)
        ),
        "ttl": FieldSpec(
            "ttl", "int", 8, lambda ip: ip.ttl, lambda ip, v: setattr(ip, "ttl", v & 0xFF)
        ),
        "proto": FieldSpec(
            "proto", "int", 8, lambda ip: ip.proto, lambda ip, v: setattr(ip, "proto", v & 0xFF)
        ),
        "chksum": FieldSpec(
            "chksum",
            "int",
            16,
            lambda ip: ip.chksum_override or 0,
            lambda ip, v: setattr(ip, "chksum_override", v & 0xFFFF),
        ),
        "src": FieldSpec("src", "ip", 32, lambda ip: ip.src, lambda ip, v: setattr(ip, "src", v)),
        "dst": FieldSpec("dst", "ip", 32, lambda ip: ip.dst, lambda ip, v: setattr(ip, "dst", v)),
    }


#: Packed-address memo (see checksum._ADDR_BYTES for rationale/bounds).
_IP_BYTES: dict = {}
_IP_BYTES_MAX = 1024


def _ip_bytes(address: str) -> bytes:
    cached = _IP_BYTES.get(address)
    if cached is not None:
        return cached
    packed = bytes(int(part) for part in address.split("."))
    if len(_IP_BYTES) >= _IP_BYTES_MAX:
        _IP_BYTES.clear()
    _IP_BYTES[address] = packed
    return packed


def _bytes_ip(raw: bytes) -> str:
    return ".".join(str(byte) for byte in raw)
