"""UDP datagram layer.

Used by the DNS-over-UDP substrate: the GFW's classic DNS censorship
injects forged responses to UDP queries (the "lemon" responses of the
paper's §2.1), which is why censored-network clients fall back to
DNS-over-TCP — the paper's DNS workload.
"""

from __future__ import annotations

import struct
from typing import Optional

from .checksum import internet_checksum, pseudo_header
from .fields import FieldSpec

__all__ = ["UDP", "IP_PROTO_UDP"]

IP_PROTO_UDP = 17


class UDP:
    """A mutable UDP datagram (header + payload).

    Like :class:`~repro.packets.tcp.TCP`, the checksum is computed at
    serialization time unless :attr:`chksum_override` is planted by a
    tamper action.
    """

    __slots__ = ("sport", "dport", "load", "chksum_override", "len_override")

    def __init__(self, sport: int = 0, dport: int = 0, load: bytes = b"") -> None:
        self.sport = sport
        self.dport = dport
        self.load = load
        self.chksum_override: Optional[int] = None
        self.len_override: Optional[int] = None

    # ------------------------------------------------------------------

    def header_length(self) -> int:
        """Length of the serialized UDP header in bytes."""
        return 8

    def serialize(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize header + payload, computing the checksum if needed."""
        length = self.len_override
        if length is None:
            length = 8 + len(self.load)
        header = struct.pack(
            "!HHHH", self.sport & 0xFFFF, self.dport & 0xFFFF, length & 0xFFFF, 0
        )
        datagram = header + self.load
        chksum = self.chksum_override
        if chksum is None:
            pseudo = pseudo_header(src_ip, dst_ip, IP_PROTO_UDP, len(datagram))
            chksum = internet_checksum(pseudo + datagram)
            if chksum == 0:
                chksum = 0xFFFF  # RFC 768: zero means "no checksum"
        return datagram[:6] + struct.pack("!H", chksum & 0xFFFF) + datagram[8:]

    @classmethod
    def parse(cls, data: bytes, src_ip: str = "0.0.0.0", dst_ip: str = "0.0.0.0") -> "UDP":
        """Parse a UDP datagram, preserving corrupted checksums."""
        if len(data) < 8:
            raise ValueError("truncated UDP header")
        sport, dport, length, chksum = struct.unpack("!HHHH", data[:8])
        datagram = cls(sport=sport, dport=dport, load=data[8:length] if length >= 8 else data[8:])
        zeroed = data[:6] + b"\x00\x00" + data[8 : max(length, 8)]
        pseudo = pseudo_header(src_ip, dst_ip, IP_PROTO_UDP, len(zeroed))
        expected = internet_checksum(pseudo + zeroed)
        if expected == 0:
            expected = 0xFFFF
        if chksum not in (0, expected):
            datagram.chksum_override = chksum
        return datagram

    def checksum_ok(self, src_ip: str, dst_ip: str) -> bool:
        """Whether the datagram's checksum is valid between the addresses."""
        return self.chksum_override is None

    # ------------------------------------------------------------------

    def copy(self) -> "UDP":
        """Return an independent copy of this datagram."""
        clone = UDP.__new__(UDP)
        clone.sport = self.sport
        clone.dport = self.dport
        clone.load = self.load
        clone.chksum_override = self.chksum_override
        clone.len_override = self.len_override
        return clone

    def __repr__(self) -> str:
        load = f" load={len(self.load)}B" if self.load else ""
        return f"UDP({self.sport}>{self.dport}{load})"

    # ------------------------------------------------------------------
    # Geneva field registry

    FIELDS = {
        "sport": FieldSpec(
            "sport", "int", 16, lambda u: u.sport, lambda u, v: setattr(u, "sport", v & 0xFFFF)
        ),
        "dport": FieldSpec(
            "dport", "int", 16, lambda u: u.dport, lambda u, v: setattr(u, "dport", v & 0xFFFF)
        ),
        "len": FieldSpec(
            "len",
            "int",
            16,
            lambda u: u.len_override or 0,
            lambda u, v: setattr(u, "len_override", v & 0xFFFF),
        ),
        "chksum": FieldSpec(
            "chksum",
            "int",
            16,
            lambda u: u.chksum_override or 0,
            lambda u, v: setattr(u, "chksum_override", v & 0xFFFF),
        ),
        "load": FieldSpec(
            "load", "bytes", 0, lambda u: u.load, lambda u, v: setattr(u, "load", bytes(v))
        ),
    }
