"""Internet checksum computation (RFC 1071) and the TCP pseudo-header.

These helpers are used by the IPv4 and TCP layers when serializing packets.
They are implemented from scratch so the packet model has no dependency on
scapy or the host network stack.
"""

from __future__ import annotations

import struct

__all__ = ["internet_checksum", "tcp_checksum", "pseudo_header"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement internet checksum of ``data``.

    Odd-length input is implicitly padded with a trailing zero byte, as
    specified by RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: str, dst_ip: str, proto: int, length: int) -> bytes:
    """Build the pseudo-header used in TCP/UDP checksum computation.

    Addresses containing ``:`` select the IPv6 pseudo-header (RFC 2460
    §8.1); otherwise the IPv4 one is built.
    """
    if ":" in src_ip or ":" in dst_ip:
        from .ipv6 import v6_to_bytes  # deferred: avoids an import cycle

        return struct.pack(
            "!16s16sIBBBB",
            v6_to_bytes(src_ip),
            v6_to_bytes(dst_ip),
            length,
            0,
            0,
            0,
            proto,
        )
    return struct.pack(
        "!4s4sBBH",
        _ip_to_bytes(src_ip),
        _ip_to_bytes(dst_ip),
        0,
        proto,
        length,
    )


def tcp_checksum(src_ip: str, dst_ip: str, segment: bytes) -> int:
    """Compute the TCP checksum for ``segment`` between the given addresses.

    ``segment`` must be the full TCP header plus payload with the checksum
    field zeroed. Works for IPv4 and IPv6 address pairs.
    """
    header = pseudo_header(src_ip, dst_ip, 6, len(segment))
    return internet_checksum(header + segment)


def _ip_to_bytes(address: str) -> bytes:
    """Convert a dotted-quad IPv4 address into its 4-byte representation."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    try:
        octets = [int(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"invalid IPv4 address: {address!r}") from exc
    if any(octet < 0 or octet > 255 for octet in octets):
        raise ValueError(f"invalid IPv4 address: {address!r}")
    return bytes(octets)
