"""Internet checksum computation (RFC 1071) and the TCP pseudo-header.

These helpers are used by the IPv4 and TCP layers when serializing packets.
They are implemented from scratch so the packet model has no dependency on
scapy or the host network stack.

Incremental updates: :func:`delta_checksum` implements RFC 1624's
``HC' = ~(~HC + ~m + m')`` (eqn. 3) generalized to a run of 16-bit words,
which is what lets the serializer patch a cached wire image in place when
a strategy tampers with a single header field instead of re-summing the
whole segment. Exactness rests on two facts proven by the property suite
(``tests/packets/test_checksum_delta.py``): the folded one's-complement
sum of a datagram that contains at least one non-zero word (every real
TCP/UDP pseudo-header does) lies in ``[1, 0xFFFF]``, where each residue
class mod 0xFFFF has exactly one representative, so the incremental and
full sums cannot disagree by a ±0 representation.
"""

from __future__ import annotations

import struct

__all__ = ["internet_checksum", "tcp_checksum", "pseudo_header", "delta_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement internet checksum of ``data``.

    Odd-length input is implicitly padded with a trailing zero byte, as
    specified by RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def delta_checksum(checksum: int, old_bytes: bytes, new_bytes: bytes) -> int:
    """Update ``checksum`` for a region rewrite (RFC 1624, eqn. 3).

    ``checksum`` is the checksum currently stored in the datagram (the
    complemented fold), ``old_bytes`` the region's previous contents and
    ``new_bytes`` its replacement. Both regions must be equally long,
    16-bit aligned, and must not overlap the checksum field itself.

    Returns the checksum the full RFC 1071 recomputation would produce
    over the rewritten datagram.
    """
    if len(old_bytes) != len(new_bytes):
        raise ValueError("old and new regions must be the same length")
    if len(old_bytes) % 2:
        raise ValueError("checksum delta regions must be 16-bit aligned")
    total = (~checksum) & 0xFFFF
    for (old_word,), (new_word,) in zip(
        struct.iter_unpack("!H", old_bytes), struct.iter_unpack("!H", new_bytes)
    ):
        total += ((~old_word) & 0xFFFF) + new_word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: str, dst_ip: str, proto: int, length: int) -> bytes:
    """Build the pseudo-header used in TCP/UDP checksum computation.

    Addresses containing ``:`` select the IPv6 pseudo-header (RFC 2460
    §8.1); otherwise the IPv4 one is built.
    """
    if ":" in src_ip or ":" in dst_ip:
        from .ipv6 import v6_to_bytes  # deferred: avoids an import cycle

        return struct.pack(
            "!16s16sIBBBB",
            v6_to_bytes(src_ip),
            v6_to_bytes(dst_ip),
            length,
            0,
            0,
            0,
            proto,
        )
    return struct.pack(
        "!4s4sBBH",
        _ip_to_bytes(src_ip),
        _ip_to_bytes(dst_ip),
        0,
        proto,
        length,
    )


def tcp_checksum(src_ip: str, dst_ip: str, segment: bytes) -> int:
    """Compute the TCP checksum for ``segment`` between the given addresses.

    ``segment`` must be the full TCP header plus payload with the checksum
    field zeroed. Works for IPv4 and IPv6 address pairs.
    """
    header = pseudo_header(src_ip, dst_ip, 6, len(segment))
    return internet_checksum(header + segment)


#: Packed-address memo. Trials use a handful of addresses but serialize
#: thousands of segments, so the string-parsing cost is paid once per
#: address, not once per packet. Bounded: evicted wholesale if an
#: adversarial workload somehow floods it with distinct addresses.
_ADDR_BYTES: dict = {}
_ADDR_BYTES_MAX = 1024


def _ip_to_bytes(address: str) -> bytes:
    """Convert a dotted-quad IPv4 address into its 4-byte representation."""
    cached = _ADDR_BYTES.get(address)
    if cached is not None:
        return cached
    packed = _parse_ipv4(address)
    if len(_ADDR_BYTES) >= _ADDR_BYTES_MAX:
        _ADDR_BYTES.clear()
    _ADDR_BYTES[address] = packed
    return packed


def _parse_ipv4(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    try:
        octets = [int(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"invalid IPv4 address: {address!r}") from exc
    if any(octet < 0 or octet > 255 for octet in octets):
        raise ValueError(f"invalid IPv4 address: {address!r}")
    return bytes(octets)
