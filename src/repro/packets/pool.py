"""Free-list pooling for the hot TCP/IPv4 packet trio.

A cold trial allocates thousands of short-lived ``Packet``/``IPv4``/``TCP``
trios — one per injected copy, duplicate, and hop-mutated clone — and none
of them outlive the trial when tracing is off. The arena recycles those
trios: :func:`pooled` activates it for the dynamic extent of one trial,
during which ``make_tcp_packet`` and ``Packet.copy`` draw from the free
list instead of allocating, and trial teardown returns everything at once.

Hygiene is by construction, not by scrubbing: every acquire re-initializes
*every* slot of all three objects (the pool-hygiene property test in
``tests/packets/test_pool.py`` enumerates the slots so a newly added field
cannot silently leak state). Reclaim only drops payload/option/wire
references so the free list never pins large buffers.

Safety rules, enforced by the call sites:

- The arena is only active when the trial uses a :class:`NullTrace` — a
  recorded trace would keep references to packets after they are recycled.
- On an exception inside the pooled block the live set is abandoned (never
  reused), since partially-built packets may have escaped to the error
  path.
- Only the TCP-over-IPv4 trio is pooled; UDP and IPv6 packets are rare
  enough that pooling them is not worth the hygiene surface.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from .ip import FLAG_DF, IP_PROTO_TCP, IPv4
from .tcp import TCP

__all__ = ["ArenaLease", "PacketArena", "pooled", "active_arena"]

#: Resolved on first use; packet.py imports this module, so the class
#: cannot be imported at module load without a cycle.
_Packet = None


class PacketArena:
    """A bounded free list of TCP/IPv4 packet trios."""

    __slots__ = ("max_free", "_free", "_live", "created", "reused")

    def __init__(self, max_free: int = 512) -> None:
        self.max_free = max_free
        self._free: List[object] = []
        self._live: List[object] = []
        self.created = 0
        self.reused = 0

    # ------------------------------------------------------------------

    def _get(self):
        if self._free:
            packet = self._free.pop()
            self.reused += 1
        else:
            global _Packet
            if _Packet is None:  # deferred: packet.py imports this module
                from .packet import Packet as _P

                _Packet = _P
            packet = _Packet.__new__(_Packet)
            packet.ip = IPv4.__new__(IPv4)
            packet.tcp = TCP.__new__(TCP)
            packet.udp = None
            self.created += 1
        self._live.append(packet)
        return packet

    def acquire_tcp(
        self,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        flags: str = "S",
        seq: int = 0,
        ack: int = 0,
        load: bytes = b"",
        window: int = 65535,
        ttl: int = 64,
        options: Optional[list] = None,
    ):
        """Acquire a trio initialized exactly like ``make_tcp_packet``."""
        packet = self._get()
        ip = packet.ip
        ip.version = 4
        ip.ihl = 5
        ip.tos = 0
        ip.ident = 0
        ip.flags = FLAG_DF
        ip.frag = 0
        ip.ttl = ttl
        ip.proto = IP_PROTO_TCP
        ip.src = src
        ip.dst = dst
        ip.len_override = None
        ip.chksum_override = None
        ip._wire = None
        ip._wire_key = None
        tcp = packet.tcp
        tcp.sport = sport
        tcp.dport = dport
        tcp.seq = seq & 0xFFFFFFFF
        tcp.ack = ack & 0xFFFFFFFF
        tcp.flags = TCP._canonical_flags(flags)
        tcp.window = window
        tcp.urgptr = 0
        tcp.options = list(options or [])
        tcp.load = load
        tcp.chksum_override = None
        tcp.dataofs_override = None
        tcp._wire = None
        tcp._wire_key = None
        return packet

    def acquire_copy(self, source):
        """Acquire a trio carrying a deep copy of ``source`` (TCP/IPv4)."""
        packet = self._get()
        src_ip = source.ip
        ip = packet.ip
        ip.version = src_ip.version
        ip.ihl = src_ip.ihl
        ip.tos = src_ip.tos
        ip.ident = src_ip.ident
        ip.flags = src_ip.flags
        ip.frag = src_ip.frag
        ip.ttl = src_ip.ttl
        ip.proto = src_ip.proto
        ip.src = src_ip.src
        ip.dst = src_ip.dst
        ip.len_override = src_ip.len_override
        ip.chksum_override = src_ip.chksum_override
        ip._wire = src_ip._wire
        ip._wire_key = src_ip._wire_key
        src_tcp = source.tcp
        tcp = packet.tcp
        tcp.sport = src_tcp.sport
        tcp.dport = src_tcp.dport
        tcp.seq = src_tcp.seq
        tcp.ack = src_tcp.ack
        tcp.flags = src_tcp.flags
        tcp.window = src_tcp.window
        tcp.urgptr = src_tcp.urgptr
        tcp.options = list(src_tcp.options)
        tcp.load = src_tcp.load
        tcp.chksum_override = src_tcp.chksum_override
        tcp.dataofs_override = src_tcp.dataofs_override
        tcp._wire = src_tcp._wire
        tcp._wire_key = src_tcp._wire_key
        return packet

    # ------------------------------------------------------------------

    def reclaim(self) -> None:
        """Return live trios to the free list (bounded by ``max_free``).

        Payload/option/wire references are dropped so the free list holds
        only the fixed-size objects, never trial data.
        """
        free = self._free
        for packet in self._live:
            if len(free) >= self.max_free:
                break
            tcp = packet.tcp
            tcp.options = []
            tcp.load = b""
            tcp._wire = None
            tcp._wire_key = None
            ip = packet.ip
            ip._wire = None
            ip._wire_key = None
            free.append(packet)
        self._live.clear()

    def abandon(self) -> None:
        """Forget live trios without reusing them (exception path)."""
        self._live.clear()

    def lease(self) -> "ArenaLease":
        """Split off a lease sharing this arena's free list.

        Fleet mode runs many flows concurrently in one event loop, each
        with its own acquire/reclaim lifetime; a lease gives each flow an
        independent live set while every reclaimed trio lands back on the
        shared free list for any flow to reuse.
        """
        return ArenaLease(self)

    def __len__(self) -> int:
        return len(self._free)


class ArenaLease(PacketArena):
    """A per-flow view of a shared arena: own live set, shared free list.

    ``acquire_*`` behave exactly like the parent's (inherited — the free
    list object is aliased, so pops and reclaim appends hit the shared
    pool), but ``_live`` is private to the lease. A flow reclaims its
    lease when it quiesces, independent of every other in-flight flow,
    and the hygiene guarantee is unchanged: every acquire re-initializes
    every slot, so it cannot matter which flow last touched a trio.
    """

    __slots__ = ("parent",)

    def __init__(self, parent: PacketArena) -> None:
        self.parent = parent
        self.max_free = parent.max_free
        self._free = parent._free  # aliased: one shared free list
        self._live = []
        self.created = 0
        self.reused = 0

    def _get(self):
        reused = bool(self._free)
        packet = PacketArena._get(self)
        # Mirror counters onto the parent: leases are recycled with their
        # flow, but the arena-wide tallies must survive them.
        if reused:
            self.parent.reused += 1
        else:
            self.parent.created += 1
        return packet


#: The process-wide arena; pooling is rare enough to recycle one free list.
_ARENA = PacketArena()

#: The arena call sites should draw from, or ``None`` when pooling is off.
_ACTIVE: Optional[PacketArena] = None


def active_arena() -> Optional[PacketArena]:
    """The arena in effect for the current trial, if any."""
    return _ACTIVE


@contextmanager
def pooled() -> Iterator[PacketArena]:
    """Activate the packet arena for one trial's dynamic extent.

    Nested activations are no-ops (the outermost block owns reclaim).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    _ACTIVE = _ARENA
    try:
        yield _ARENA
    except BaseException:
        _ACTIVE = None
        _ARENA.abandon()
        raise
    else:
        _ACTIVE = None
        _ARENA.reclaim()
