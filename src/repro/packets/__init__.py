"""From-scratch IPv4/TCP packet model used throughout the reproduction.

Public surface:

- :class:`~repro.packets.packet.Packet` — the IPv4+TCP container Geneva
  manipulates and the simulator delivers.
- :class:`~repro.packets.ip.IPv4` / :class:`~repro.packets.tcp.TCP` — the
  individual layers with byte-level serialize/parse.
- :func:`~repro.packets.packet.make_tcp_packet` — convenience constructor.
- :func:`~repro.packets.checksum.internet_checksum` /
  :func:`~repro.packets.checksum.tcp_checksum` — RFC 1071 checksums.
"""

from .checksum import internet_checksum, pseudo_header, tcp_checksum
from .fields import TCP_FLAG_LETTERS, FieldSpec, corrupt_value, parse_replace_value
from .ip import IPv4
from .ipv6 import IPv6, canonical_ip, compress_v6, expand_v6
from .packet import Packet, make_tcp_packet, make_udp_packet
from .tcp import TCP, bits_to_flags, flags_to_bits
from .udp import IP_PROTO_UDP, UDP

__all__ = [
    "FieldSpec",
    "IP_PROTO_UDP",
    "IPv4",
    "IPv6",
    "Packet",
    "canonical_ip",
    "compress_v6",
    "expand_v6",
    "TCP",
    "TCP_FLAG_LETTERS",
    "UDP",
    "bits_to_flags",
    "corrupt_value",
    "flags_to_bits",
    "internet_checksum",
    "make_tcp_packet",
    "make_udp_packet",
    "parse_replace_value",
    "pseudo_header",
    "tcp_checksum",
]
