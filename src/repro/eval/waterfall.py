"""ASCII packet-waterfall diagrams (regenerates Figures 1 and 2).

The renderer consumes a trial's :class:`~repro.netsim.Trace` and draws a
client/server sequence diagram annotated the way the paper's figures are:
``(w/ load)`` for payload-bearing packets, ``(bad ackno)`` for SYN+ACKs
whose ack number does not acknowledge the client's ISN, ``(small
window)``, ``(bad chksum)``, and ``(rand load)`` / ``(benign GET)`` for
Kazakhstan's Strategies 9 and 10.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim import Trace, TraceEvent
from ..packets import Packet

__all__ = ["render_waterfall", "packet_label", "waterfall_for_trial"]

_MOD = 1 << 32
_WIDTH = 34


def packet_label(
    packet: Packet, client_isn: Optional[int], from_server: bool = True
) -> str:
    """Human-readable label for one packet, in the paper's figure style.

    ``from_server`` controls the ``(bad ackno)`` annotation, which only
    makes sense for server-to-client SYN+ACKs (a client's simultaneous-
    open SYN+ACK acknowledges the *server's* ISN).
    """
    if packet.udp is not None:
        return f"UDP ({len(packet.load)}B)"
    flags = packet.flags
    name = {
        "S": "SYN",
        "SA": "SYN/ACK",
        "A": "ACK",
        "PA": "PSH/ACK",
        "FA": "FIN/ACK",
        "FPA": "FIN/PSH/ACK",
        "R": "RST",
        "RA": "RST/ACK",
        "F": "FIN",
    }.get(flags, flags if flags else "(no flags)")
    notes: List[str] = []
    if packet.load:
        text = bytes(packet.load[:16])
        if text.startswith(b"GET "):
            notes.append("w/ GET load")
        else:
            notes.append("w/ load")
    if (
        from_server
        and packet.tcp.is_synack
        and client_isn is not None
        and packet.tcp.ack != (client_isn + 1) % _MOD
    ):
        notes.append("bad ackno")
    if packet.tcp.is_synack and packet.tcp.window <= 64:
        notes.append("small window")
    if packet.tcp.chksum_override is not None:
        notes.append("bad chksum")
    if notes:
        return f"{name} ({', '.join(notes)})"
    return name


def render_waterfall(trace: Trace, title: str = "") -> str:
    """Render a client/server waterfall from a trial trace.

    Wire events are taken from ``send`` at the endpoints and ``inject`` at
    middleboxes; censor injections are marked with ``*``.
    """
    client_isn: Optional[int] = None
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Client':<10}{'':<{_WIDTH}}{'Server':>10}"
    lines.append(header)
    lines.append("-" * len(header))

    for event in trace.events:
        if event.packet is None:
            continue
        packet = event.packet
        if event.kind == "send" and event.location == "client":
            if packet.tcp.is_syn and client_isn is None:
                client_isn = packet.tcp.seq
            label = packet_label(packet, client_isn, from_server=False)
            lines.append(f"  {label:<{_WIDTH}}--->")
        elif event.kind == "send" and event.location == "server":
            label = packet_label(packet, client_isn)
            lines.append(f"  {'<---':<6}{label:>{_WIDTH}}")
        elif event.kind == "inject":
            label = packet_label(packet, client_isn) + " *"
            toward_client = "toward client" in event.detail
            if toward_client:
                lines.append(f"  {'<~~~':<6}{label:>{_WIDTH}}  [{event.location}]")
            else:
                lines.append(f"  [{event.location}]  {label:<{_WIDTH}}~~~>")
        elif event.kind == "censor":
            lines.append(f"  !! censor action: {event.detail}")
        elif event.kind == "drop" and "blackholed" in event.detail:
            lines.append(f"  xx dropped by censor: {packet_label(packet, client_isn)}")
        elif event.kind in ("loss", "dup", "reorder", "corrupt"):
            label = packet_label(packet, client_isn)
            lines.append(f"  ~~ {event.kind} at {event.location}: {label}")
    return "\n".join(lines)


def waterfall_for_trial(
    country: str,
    protocol: str,
    strategy,
    seed: int = 1,
    title: str = "",
    executor=None,
    **kwargs,
) -> str:
    """Run one trial and render its waterfall (used by Figures 1 and 2).

    The trial routes through the runtime's :class:`TrialSpec` (so seeds
    and strategy serialization match the batch executors exactly), but
    always executes in-process with the trace kept — traces are the
    whole point here and never live in the result cache.
    """
    from ..runtime import SpecError, TrialExecutor, TrialSpec

    try:
        spec = TrialSpec.build(country, protocol, strategy, seed=seed, **kwargs)
    except SpecError:  # live objects in kwargs: run directly
        from .runner import run_trial  # local import avoids a module cycle

        result = run_trial(country, protocol, strategy, seed=seed, **kwargs)
    else:
        if executor is None:
            executor = TrialExecutor()
        result = executor.run_one(spec, keep_trace=True)
    prefix = title if title else f"{country}/{protocol}"
    heading = f"{prefix} — outcome: {result.outcome}"
    return render_waterfall(result.trace, title=heading)
