"""§5's follow-up experiments: instrumented probes explaining *why*
strategies work.

Each probe reproduces one of the paper's causal experiments:

- **Sequence-decrement probe** (Strategies 1/2): decrementing the
  forbidden request's sequence number by 1 *restores* censorship about
  half the time when the strategy runs — direct evidence of the
  off-by-one desynchronization — and never triggers censorship without
  the strategy.
- **Induced-RST drop probe** (Strategies 5/6): suppressing the client's
  induced RST kills Strategy 5 (the GFW resyncs on that RST) but leaves
  Strategy 6 working (it resyncs on the corrupted SYN+ACK instead).
- **RST-seq match probe** (Strategy 7): sending the forbidden request at
  the induced RST's sequence number restores censorship, proving the GFW
  synchronized onto the RST.
- **Kazakhstan sweeps** (Strategies 9/10): payload count (three copies
  required, more is fine), payload size (irrelevant), GET prefix
  well-formedness (the trailing "." is required), and the censor-probing
  injections (two GETs — or one after simultaneous open — are processed;
  it is the *second* request that counts).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import Strategy, deployed_strategy
from ..packets import Packet
from .runner import Trial

__all__ = [
    "seq_offset_probe",
    "drop_client_rst_probe",
    "rst_seq_match_probe",
    "kz_payload_count_sweep",
    "kz_payload_size_sweep",
    "kz_get_prefix_sweep",
    "kz_injection_probe",
]

_MOD = 1 << 32


def _run_with_client_hook(
    country: str,
    protocol: str,
    strategy: Optional[Strategy],
    hook,
    seed: int,
):
    trial = Trial(country, protocol, strategy, seed=seed)
    trial.client_host.outbound_filters.append(hook)
    result = trial.run()
    return trial, result


def seq_offset_probe(
    strategy_number: Optional[int],
    offset: int = -1,
    protocol: str = "http",
    trials: int = 40,
    seed: int = 0,
) -> float:
    """Fraction of trials censored when the client's request sequence
    number is shifted by ``offset`` (the paper uses -1).
    """

    def make_hook():
        def hook(packet: Packet) -> List[Packet]:
            if packet.tcp.load:
                packet = packet.copy()
                packet.tcp.seq = (packet.tcp.seq + offset) % _MOD
            return [packet]

        return hook

    strategy = None if strategy_number is None else deployed_strategy(strategy_number)
    censored = 0
    for index in range(trials):
        _, result = _run_with_client_hook(
            "china", protocol, strategy, make_hook(), seed=seed + index * 7919
        )
        censored += result.censored
    return censored / trials


def drop_client_rst_probe(
    strategy_number: int,
    protocol: str = "ftp",
    trials: int = 40,
    seed: int = 0,
) -> float:
    """Success rate when the client's induced RSTs never hit the wire."""

    def hook(packet: Packet) -> List[Packet]:
        if packet.tcp.is_rst:
            return []
        return [packet]

    strategy = deployed_strategy(strategy_number)
    successes = 0
    for index in range(trials):
        _, result = _run_with_client_hook(
            "china", protocol, strategy, hook, seed=seed + index * 7919
        )
        successes += result.succeeded
    return successes / trials


def rst_seq_match_probe(
    strategy_number: int = 7,
    protocol: str = "http",
    trials: int = 40,
    seed: int = 0,
) -> float:
    """Fraction censored when the request is re-sequenced onto the RST.

    The hook records the client's induced RST sequence number and rewrites
    the forbidden request to start exactly there — if the GFW resynced on
    the RST, censorship returns.
    """
    strategy = deployed_strategy(strategy_number)
    censored = 0
    for index in range(trials):
        state = {"rst_seq": None}

        def hook(packet: Packet, state=state) -> List[Packet]:
            if packet.tcp.is_rst and not packet.tcp.is_ack:
                state["rst_seq"] = packet.tcp.seq
            elif packet.tcp.load and state["rst_seq"] is not None:
                packet = packet.copy()
                packet.tcp.seq = state["rst_seq"]
            return [packet]

        _, result = _run_with_client_hook(
            "china", protocol, strategy, hook, seed=seed + index * 7919
        )
        censored += result.censored
    return censored / trials


# ----------------------------------------------------------------------
# Kazakhstan sweeps


def _kz_run(strategy: Strategy, seed: int = 0):
    trial = Trial("kazakhstan", "http", strategy, seed=seed)
    return trial.run()


def kz_payload_count_sweep(max_copies: int = 4, seed: int = 0) -> Dict[int, bool]:
    """Strategy 9 variant: how many payload-bearing SYN+ACKs are needed?"""
    results: Dict[int, bool] = {}
    for copies in range(1, max_copies + 1):
        inner = "send"
        for _ in range(copies - 1):
            inner = f"duplicate({inner},)"
        dsl = f"[TCP:flags:SA]-tamper{{TCP:load:corrupt}}({inner},)-| \\/"
        results[copies] = _kz_run(Strategy.parse(dsl), seed=seed).succeeded
    return results


def kz_payload_size_sweep(sizes=(1, 8, 200), seed: int = 0) -> Dict[int, bool]:
    """Strategy 9 variant: does the payload size matter? (It should not.)"""
    results: Dict[int, bool] = {}
    for size in sizes:
        load = "Z" * size
        dsl = (
            f"[TCP:flags:SA]-tamper{{TCP:load:replace:{load}}}"
            "(duplicate(duplicate,),)-| \\/"
        )
        results[size] = _kz_run(Strategy.parse(dsl), seed=seed).succeeded
    return results


def kz_get_prefix_sweep(seed: int = 0) -> Dict[str, bool]:
    """Strategy 10 variant: which GET prefixes convince the censor?"""
    cases = {
        "GET / HTTP1.": True,       # the paper's minimal working prefix
        "GET / HTTP1": False,       # dropping the "." breaks it
        "GET /index.html HTTP1.": True,  # longer paths work
        "HELLO": False,             # not a GET at all (counts as payload)
    }
    results: Dict[str, bool] = {}
    for prefix in cases:
        dsl = f"[TCP:flags:SA]-tamper{{TCP:load:replace:{prefix}}}(duplicate,)-| \\/"
        results[prefix] = _kz_run(Strategy.parse(dsl), seed=seed).succeeded
    return results


def kz_injection_probe(seed: int = 0) -> Dict[str, bool]:
    """The censor-probing experiment: which injections elicit a response?

    Returns censor-responded flags for: two forbidden GETs, one forbidden
    GET alone, simultaneous open + one forbidden GET, and a forbidden GET
    followed by a benign GET (the second request is the one processed).
    """
    results: Dict[str, bool] = {}

    def censored_by(dsl: str, seed_offset: int = 0) -> bool:
        trial = Trial(
            "kazakhstan",
            "http",
            Strategy.parse(dsl),
            seed=seed + seed_offset,
            workload={"path": "/", "host_header": "benign.example.com"},
        )
        trial.run()
        return trial.censor.censorship_events > 0

    # A complete forbidden request (tamper values may contain CRLF bytes).
    forbidden_get = "GET / HTTP/1.1\r\nHost: blocked.example.kz\r\n\r\n"
    benign_get = "GET / HTTP1."
    results["double forbidden GET"] = censored_by(
        f"[TCP:flags:SA]-tamper{{TCP:load:replace:{forbidden_get}}}(duplicate,)-| \\/"
    )
    results["single forbidden GET"] = censored_by(
        f"[TCP:flags:SA]-tamper{{TCP:load:replace:{forbidden_get}}}-| \\/", 1
    )
    results["sim-open + forbidden GET"] = censored_by(
        "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:S},"
        f"tamper{{TCP:load:replace:{forbidden_get}}})-| \\/",
        2,
    )
    results["forbidden then benign GET"] = censored_by(
        f"[TCP:flags:SA]-duplicate(tamper{{TCP:load:replace:{forbidden_get}}},"
        f"tamper{{TCP:load:replace:{benign_get}}})-| \\/",
        3,
    )
    return results
