"""Residual censorship experiments (§4.2).

The paper observes that China's GFW applies *residual censorship* to HTTP
only: for ~90 seconds after a forbidden request, every new connection to
the same server IP and port is torn down immediately after the three-way
handshake. SMTP, DNS-over-TCP and FTP show no residual censorship — a
follow-up request succeeds immediately. (HTTPS residual censorship was
inactive during the paper's measurements and is likewise off here.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps import DNSClient, FTPClient, HTTPClient, HTTPSClient, SMTPClient
from .runner import SERVER_IP, Trial, benign_workload, censored_workload, default_port

__all__ = ["ResidualProbe", "residual_probe"]

_CLIENTS = {
    "http": HTTPClient,
    "https": HTTPSClient,
    "dns": DNSClient,
    "ftp": FTPClient,
    "smtp": SMTPClient,
}


@dataclass
class ResidualProbe:
    """Result of a two-request residual-censorship probe.

    Attributes:
        protocol: Protocol probed.
        delay: Seconds between the censorship event and the follow-up.
        first_outcome: Outcome of the forbidden request (should fail).
        second_outcome: Outcome of the *benign* follow-up request.
        second_succeeded: Whether the follow-up evaded residual teardown.
    """

    protocol: str
    delay: float
    first_outcome: str
    second_outcome: str
    second_succeeded: bool


def residual_probe(
    protocol: str = "http",
    delay: float = 30.0,
    seed: int = 0,
) -> ResidualProbe:
    """Issue a forbidden request, then a benign one ``delay`` seconds later."""
    trial = Trial("china", protocol, None, seed=seed)
    trial.client_app.start()
    trial.network.run(until=12.0)
    first_outcome = trial.client_app.outcome or "timeout"

    censor_events = trial.network.trace.filter(kind="censor")
    censor_time = censor_events[0].time if censor_events else trial.scheduler.now
    start_at = censor_time + delay
    trial.network.run(until=max(start_at, trial.scheduler.now))

    port = default_port(protocol)
    params = benign_workload(protocol)
    second = _CLIENTS[protocol](trial.client_host, SERVER_IP, port, **params)
    second.start()
    trial.network.run(until=trial.scheduler.now + 25.0)

    return ResidualProbe(
        protocol=protocol,
        delay=delay,
        first_outcome=first_outcome,
        second_outcome=second.outcome or "timeout",
        second_succeeded=second.succeeded,
    )
