"""§7 regeneration: client compatibility across 17 OSes and networks.

Mirrors the paper's private-network methodology: each strategy is run
against each client OS *without a censor* (an Ubuntu 18.04 server running
each server-side strategy), and a strategy is compatible with a client if
the exchange still completes with correct data. The paper found all but
Strategies 5, 9 and 10 work everywhere; those three fail on every Windows
and macOS version (their stacks consume SYN+ACK payloads) and are fixed
by the checksum-corrupted insertion-packet variant.

The network-compatibility anecdote (Android 10 over wifi / T-Mobile /
AT&T) is reproduced with carrier middlebox models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..censors.carrier import att_box, tmobile_box, wifi_box
from ..core import (
    PAPER_STRATEGY_NUMBERS,
    SERVER_STRATEGIES,
    compat_strategy,
    deployed_strategy,
)
from ..tcpstack import PERSONALITIES, all_personality_names
from .runner import run_trial

__all__ = [
    "CompatMatrix",
    "run_os_matrix",
    "run_network_matrix",
    "format_os_matrix",
    "EXPECTED_OS_FAILURES",
]

#: (strategy number, OS family) pairs the paper reports as incompatible.
EXPECTED_OS_FAILURES = {
    (5, "windows"),
    (5, "macos"),
    (9, "windows"),
    (9, "macos"),
    (10, "windows"),
    (10, "macos"),
}

# The §7 compatibility study covers the paper's Table 2 strategies only;
# the SNI-era additions (12+) are evaluated by eval/sni_matrix.py.
ALL_STRATEGY_NUMBERS = PAPER_STRATEGY_NUMBERS


@dataclass
class CompatMatrix:
    """Strategy-by-OS compatibility results.

    ``works[(strategy_number, os_name)]`` is True when the exchange
    completed correctly with the strategy installed server-side.
    """

    works: Dict[Tuple[int, str], bool] = field(default_factory=dict)
    compat_works: Dict[Tuple[int, str], bool] = field(default_factory=dict)

    def failures(self) -> List[Tuple[int, str]]:
        """(strategy, os) pairs where the plain strategy broke the client."""
        return sorted(key for key, ok in self.works.items() if not ok)


def run_os_matrix(
    strategy_numbers: Tuple[int, ...] = ALL_STRATEGY_NUMBERS,
    protocol: str = "http",
    seed: int = 0,
    include_compat: bool = True,
) -> CompatMatrix:
    """Run every strategy against every §7 client OS (no censor)."""
    matrix = CompatMatrix()
    for number in strategy_numbers:
        plain = deployed_strategy(number)
        fixed = compat_strategy(number) if include_compat else None
        for os_name in all_personality_names():
            result = run_trial(
                None, protocol, plain, seed=seed, client_os=os_name
            )
            matrix.works[(number, os_name)] = result.succeeded
            if fixed is not None:
                result = run_trial(
                    None, protocol, fixed, seed=seed, client_os=os_name
                )
                matrix.compat_works[(number, os_name)] = result.succeeded
    return matrix


def run_network_matrix(
    strategy_numbers: Tuple[int, ...] = (1, 2, 3, 4, 6, 7, 8, 11),
    protocol: str = "http",
    client_os: str = "android-10",
    seed: int = 0,
) -> Dict[str, Dict[int, bool]]:
    """The Pixel-3-on-cellular anecdote: wifi vs T-Mobile vs AT&T."""
    results: Dict[str, Dict[int, bool]] = {}
    for factory in (wifi_box, tmobile_box, att_box):
        box = factory()
        row: Dict[int, bool] = {}
        for number in strategy_numbers:
            result = run_trial(
                None,
                protocol,
                deployed_strategy(number),
                seed=seed,
                client_os=client_os,
                client_side_boxes=[box],
            )
            row[number] = result.succeeded
            box.reset()
        results[box.name] = row
    return results


def format_os_matrix(matrix: CompatMatrix) -> str:
    """Render the OS-compatibility results grouped by family."""
    lines = ["§7 — client OS compatibility (x = strategy breaks the client)"]
    numbers = sorted({number for number, _ in matrix.works})
    header = "".join(f"{n:>4}" for n in numbers)
    lines.append(f"{'OS':<34}{header}")
    for os_name in all_personality_names():
        cells = []
        for number in numbers:
            ok = matrix.works.get((number, os_name), True)
            fixed = matrix.compat_works.get((number, os_name))
            mark = "." if ok else ("x*" if fixed else "x")
            cells.append(f"{mark:>4}")
        lines.append(f"{os_name:<34}{''.join(cells)}")
    lines.append("legend: . works   x fails   x* fails but compat variant works")
    return "\n".join(lines)
