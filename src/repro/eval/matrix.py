"""Table 1 regeneration: which protocols trigger censorship where.

The paper's Table 1 lists client vantage points and censored protocols
per country. In the reproduction the vantage points are configuration
(the paper found "no significant difference in strategy effectiveness
across the different vantage points"), and the protocol matrix is
*measured*: for each (country, protocol) we issue a forbidden request
with no evasion and record whether censorship triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..runtime import TrialExecutor, TrialSpec, trial_seed
from .reference import TABLE1_MATRIX

__all__ = ["MatrixEntry", "measure_censorship_matrix", "format_matrix"]

ALL_PROTOCOLS = ("dns", "ftp", "http", "https", "smtp")


@dataclass
class MatrixEntry:
    """Measured censorship status for one (country, protocol)."""

    country: str
    protocol: str
    censored: bool
    expected: bool


def measure_censorship_matrix(
    seed: int = 0,
    probes: int = 5,
    workers: int = 1,
    cache=None,
    executor: TrialExecutor = None,
    impairment=None,
    net_seed: int = None,
) -> List[MatrixEntry]:
    """Probe every (country, protocol) pair with forbidden requests.

    Protocols a country censors use that country's censored workload;
    other protocols use China's workloads (any forbidden content) to show
    the censor does not react at all. Each pair is probed ``probes`` times
    because some censorship (the GFW's SMTP box) is itself flaky — a pair
    counts as censored when *any* probe is.

    All probes of all pairs are submitted as one batch through a
    :class:`~repro.runtime.TrialExecutor` (``workers``/``cache`` as in
    :func:`~repro.eval.runner.success_rate`; pass ``executor`` to share
    one and read its :class:`~repro.runtime.RunStats`). ``impairment``
    applies a network-impairment policy to every probe (the matrix should
    be stable under mild loss — retransmission recovers the trigger);
    ``net_seed`` pins the impairment stream per probe.
    """
    from .runner import censored_workload  # deferred for doc-build friendliness

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)

    pairs = []
    specs: List[TrialSpec] = []
    for country, info in TABLE1_MATRIX.items():
        expected_protocols = set(info["protocols"])
        for protocol in ALL_PROTOCOLS:
            if protocol in expected_protocols:
                workload = censored_workload(country, protocol)
            else:
                # Forbidden content for some censor, but not one this
                # country inspects on this protocol.
                workload = censored_workload("china", protocol)
            pairs.append((country, protocol, protocol in expected_protocols))
            for probe in range(probes):
                extra = {}
                if net_seed is not None:
                    extra["net_seed"] = trial_seed(net_seed, probe)
                specs.append(
                    TrialSpec.build(
                        country,
                        protocol,
                        None,
                        seed=trial_seed(seed, probe),
                        workload=dict(workload),
                        impairment=impairment,
                        **extra,
                    )
                )

    results = executor.run_batch(specs)
    entries: List[MatrixEntry] = []
    for index, (country, protocol, expected) in enumerate(pairs):
        probe_results = results[index * probes : (index + 1) * probes]
        censored = any(
            result.censored or not result.succeeded for result in probe_results
        )
        entries.append(
            MatrixEntry(
                country=country,
                protocol=protocol,
                censored=censored,
                expected=expected,
            )
        )
    return entries


def format_matrix(entries: List[MatrixEntry]) -> str:
    """Render the measured matrix next to Table 1's expectations."""
    lines = ["Table 1 — protocols censored per country (measured vs paper)"]
    by_country: Dict[str, List[MatrixEntry]] = {}
    for entry in entries:
        by_country.setdefault(entry.country, []).append(entry)
    for country, rows in by_country.items():
        vantage = ", ".join(TABLE1_MATRIX[country]["vantage_points"])
        censored = [r.protocol.upper() for r in rows if r.censored]
        expected = [r.protocol.upper() for r in rows if r.expected]
        lines.append(
            f"{country:<12} vantage: {vantage:<40} measured: {','.join(censored) or '-'}"
            f"  paper: {','.join(expected)}"
        )
    return "\n".join(lines)
