"""One-shot reproduction driver: regenerate every paper artifact.

``python -m repro reproduce --out results/`` runs each experiment driver
(at configurable scale) and writes the rendered artifacts — the same ones
the benchmark suite produces — without needing pytest. Useful for
downstream users who just want the numbers.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, List, Optional

__all__ = ["reproduce_all", "EXPERIMENTS"]


def _table1(executor=None, impairment=None, net_seed=None) -> str:
    from .matrix import format_matrix, measure_censorship_matrix

    return format_matrix(
        measure_censorship_matrix(
            seed=0, executor=executor, impairment=impairment, net_seed=net_seed
        )
    )


def _robustness(trials: int, executor=None, net_seed=None) -> str:
    from .sweeps import format_robustness, impairment_robustness_sweep

    return format_robustness(
        impairment_robustness_sweep(
            trials=max(5, trials // 25),
            seed=0,
            net_seed=net_seed,
            executor=executor,
        )
    )


def _table2(trials: int, executor=None) -> str:
    from .table2 import format_table2, generate_table2

    return format_table2(generate_table2(trials=trials, seed=0, executor=executor))


def _figure1() -> str:
    from ..core import SERVER_STRATEGIES, deployed_strategy
    from .waterfall import waterfall_for_trial

    cases = {1: ("http", 3), 2: ("http", 1), 3: ("ftp", 3), 4: ("ftp", 23),
             5: ("ftp", 1), 6: ("http", 23), 7: ("http", 23), 8: ("smtp", 1)}
    sections = []
    for number, (protocol, seed) in cases.items():
        title = f"Strategy {number}: {SERVER_STRATEGIES[number].name} ({protocol})"
        sections.append(
            waterfall_for_trial("china", protocol, deployed_strategy(number),
                                seed=seed, title=title)
        )
    return "\n\n".join(sections)


def _figure2() -> str:
    from ..core import SERVER_STRATEGIES, deployed_strategy
    from .waterfall import waterfall_for_trial

    sections = []
    for number in (9, 10, 11):
        title = f"Strategy {number}: {SERVER_STRATEGIES[number].name} (kazakhstan)"
        sections.append(
            waterfall_for_trial("kazakhstan", "http", deployed_strategy(number),
                                seed=3, title=title)
        )
    return "\n\n".join(sections)


def _figure3(trials: int) -> str:
    from .multibox import (
        format_dependence,
        localize_boxes,
        protocol_dependence,
        single_box_profiles,
    )

    multi = protocol_dependence(7, trials=trials, seed=2)
    single = protocol_dependence(7, trials=trials, seed=2,
                                 profiles=single_box_profiles("http"))
    hops = localize_boxes(max_ttl=6, seed=1)
    hop_lines = [f"{protocol:<8} first censoring hop: {hop}" for protocol, hop in hops.items()]
    return format_dependence(multi, single) + "\n\nTTL localization:\n" + "\n".join(hop_lines)


def _section3(trials: int) -> str:
    from .generalization import format_generalization, run_generalization

    return format_generalization(run_generalization(trials=max(10, trials // 8), seed=4))


def _section4(trials: int) -> str:
    from .dns_retries import format_retry_curve, measure_retry_curve

    return format_retry_curve(
        measure_retry_curve(strategy_number=1, max_tries=5, trials=trials, seed=2)
    )


def _section7() -> str:
    from .client_compat import format_os_matrix, run_network_matrix, run_os_matrix

    matrix = run_os_matrix(seed=2)
    lines = [format_os_matrix(matrix), "", "network matrix (android-10):"]
    for network, row in run_network_matrix(seed=2).items():
        cells = "  ".join(f"S{n}:{'ok' if ok else 'FAIL'}" for n, ok in sorted(row.items()))
        lines.append(f"{network:<10} {cells}")
    return "\n".join(lines)


def _sni(trials: int, executor=None) -> str:
    from .sni_matrix import format_sni_matrix, sni_matrix

    return format_sni_matrix(
        sni_matrix(trials=max(10, trials // 5), seed=0, executor=executor)
    )


def _sweeps(trials: int) -> str:
    from .sweeps import (
        format_sweep,
        mitm_retry_sweep,
        resync_probability_sweep,
        window_size_sweep,
    )

    parts = [
        format_sweep(
            "Strategy 8 success vs advertised window (India/HTTP)",
            window_size_sweep(trials=6, seed=1),
            "B",
        ),
        format_sweep(
            "Strategy 1 success vs resync-entry probability",
            resync_probability_sweep(trials=trials, seed=2),
        ),
        format_sweep("Kazakhstan MITM forwarding at t+delay", mitm_retry_sweep(), "s"),
    ]
    return "\n\n".join(parts)


#: Experiment id -> renderer taking (trials, executor, impairment,
#: net_seed); the executor is shared across table-style experiments so
#: caching spans the whole run. Renderers that have no use for an
#: impairment policy simply ignore those keywords.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda trials, executor=None, impairment=None, net_seed=None: _table1(
        executor=executor, impairment=impairment, net_seed=net_seed
    ),
    "table2": lambda trials, executor=None, **_: _table2(trials, executor=executor),
    "figure1": lambda trials, executor=None, **_: _figure1(),
    "figure2": lambda trials, executor=None, **_: _figure2(),
    "figure3": lambda trials, executor=None, **_: _figure3(trials),
    "section3": lambda trials, executor=None, **_: _section3(trials),
    "section4": lambda trials, executor=None, **_: _section4(trials),
    "section7": lambda trials, executor=None, **_: _section7(),
    "sni": lambda trials, executor=None, **_: _sni(trials, executor=executor),
    "sweeps": lambda trials, executor=None, **_: _sweeps(trials),
    "robustness": lambda trials, executor=None, impairment=None, net_seed=None: (
        _robustness(trials, executor=executor, net_seed=net_seed)
    ),
}


def reproduce_all(
    out_dir: str,
    trials: int = 150,
    only: Optional[List[str]] = None,
    echo: Callable[[str], None] = print,
    workers: int = 1,
    cache=None,
    impairment=None,
    net_seed: Optional[int] = None,
    executor=None,
) -> List[str]:
    """Regenerate the selected artifacts into ``out_dir``.

    ``workers``/``cache`` configure one shared
    :class:`~repro.runtime.TrialExecutor` for the batch-style experiments
    (currently Tables 1 and 2); its cumulative :class:`RunStats` are
    echoed at the end. Pass ``executor`` to supply the shared executor
    directly (the CLI does, so telemetry collection survives the run);
    ``workers``/``cache`` are then ignored. ``impairment``/``net_seed``
    apply a network impairment to the experiments that support one
    (Table 1 and the robustness curves). Returns the list of files
    written.
    """
    from ..runtime import TrialExecutor

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    wanted = only if only else list(EXPERIMENTS)
    written: List[str] = []
    for name in wanted:
        renderer = EXPERIMENTS.get(name)
        if renderer is None:
            raise ValueError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        echo(f"[{name}] running ...")
        text = renderer(
            trials, executor=executor, impairment=impairment, net_seed=net_seed
        )
        path = directory / f"{name}.txt"
        path.write_text(text + "\n")
        written.append(str(path))
        echo(f"[{name}] wrote {path}")
    if executor.total_stats.requested:
        for line in executor.format_stats().splitlines():
            echo(f"[stats] {line}")
    return written
