"""SNI-era evaluation matrix: record-level strategies vs SNI censors.

The Table-2-style grid for the post-paper boxes in
:mod:`repro.censors.sni` — every country in :data:`SNI_COUNTRIES` against
every column in :data:`SNI_COLUMNS`:

- ``baseline`` — no evasion (both boxes must block it);
- ``12``–``15`` — the record-level server-side strategies
  (:mod:`repro.strategies.tlsrecord`);
- ``esni`` — the same censored name carried in an encrypted SNI
  extension, no strategy installed (the ECH/ESNI-tolerant serving path:
  South Korea's box finds no plaintext SNI and passes; Russia's strict
  box drops the SNI-less hello on sight).

The expected shape: South Korea blocked only at baseline; Russia blocked
everywhere except deep connection migration (#15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import SERVER_STRATEGIES, deployed_strategy
from .runner import censored_workload, success_rate

__all__ = [
    "SNI_COUNTRIES",
    "SNI_COLUMNS",
    "SNIMatrixCell",
    "esni_workload",
    "sni_matrix",
    "format_sni_matrix",
]

#: Countries with SNI-filtering censor models, in table order.
SNI_COUNTRIES: Tuple[str, ...] = ("southkorea", "russia")

#: Matrix columns: baseline, each SNI-era strategy number, ESNI serving.
SNI_COLUMNS: Tuple[str, ...] = ("baseline", "12", "13", "14", "15", "esni")

_PROTOCOL = "https"


def esni_workload(country: str) -> dict:
    """The country's censored HTTPS workload, with the SNI encrypted."""
    workload = censored_workload(country, _PROTOCOL)
    workload["encrypted_sni"] = True
    return workload


@dataclass
class SNIMatrixCell:
    """One measured cell of the SNI matrix."""

    country: str
    column: str
    measured: float

    @property
    def measured_pct(self) -> int:
        return round(self.measured * 100)


def _column_args(country: str, column: str) -> dict:
    """success_rate arguments for one cell (strategy and/or workload)."""
    if column == "baseline":
        return {"strategy": None}
    if column == "esni":
        return {"strategy": None, "workload": esni_workload(country)}
    return {"strategy": deployed_strategy(int(column))}


def sni_matrix(
    trials: int = 30,
    seed: int = 0,
    countries: Optional[List[str]] = None,
    workers: int = 1,
    cache=None,
    executor=None,
) -> List[SNIMatrixCell]:
    """Measure every cell of the SNI matrix; returns cells in table order.

    One executor spans the whole grid (``workers``/``cache``/``executor``
    as in :func:`~repro.eval.runner.success_rate`), so the grid is
    byte-identical across worker counts.
    """
    from ..runtime import TrialExecutor

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)
    wanted = countries if countries is not None else list(SNI_COUNTRIES)
    cells: List[SNIMatrixCell] = []
    for country in SNI_COUNTRIES:
        if country not in wanted:
            continue
        for index, column in enumerate(SNI_COLUMNS):
            args = _column_args(country, column)
            strategy = args.pop("strategy")
            rate = success_rate(
                country,
                _PROTOCOL,
                strategy,
                trials=trials,
                seed=seed + index * 1_000_003,
                executor=executor,
                **args,
            )
            cells.append(SNIMatrixCell(country, column, rate))
    return cells


def _column_label(column: str) -> str:
    if column == "baseline":
        return "No evasion"
    if column == "esni":
        return "Encrypted SNI (no strategy)"
    return SERVER_STRATEGIES[int(column)].name


def format_sni_matrix(cells: List[SNIMatrixCell]) -> str:
    """Render the grid: countries across, strategies down (success %)."""
    by_key: Dict[Tuple[str, str], SNIMatrixCell] = {
        (c.country, c.column): c for c in cells
    }
    countries = [c for c in SNI_COUNTRIES if any(k[0] == c for k in by_key)]
    lines = ["SNI-era matrix — success rates (%) against TLS-metadata censors"]
    header = "".join(f"{c:>12}" for c in countries)
    lines.append(f"{'Strategy':<32}{header}")
    for column in SNI_COLUMNS:
        row = [f"{_column_label(column):<32}"]
        present = False
        for country in countries:
            cell = by_key.get((country, column))
            if cell is None:
                row.append(f"{'--':>12}")
            else:
                row.append(f"{cell.measured_pct:>12}")
                present = True
        if present:
            lines.append("".join(row))
    return "\n".join(lines)
