"""Deriving GFW box profiles from Table 2 (the calibration method).

The probabilities in :data:`repro.censors.gfw.profiles.CHINA_PROFILES`
are not hand-tuned magic: each one inverts a closed-form relation between
a Table 2 cell and the mechanism that produces it. This module implements
those inversions, so given (a fresh measurement of) Table 2 one can
recover a box profile — and the tests verify the shipped profiles are
exactly what the paper's numbers imply.

The relations (per protocol/box):

- no-evasion success  = miss                      (per-try)
- Strategy 1 success  = miss + (1-miss) · P(rst resync)
- Strategy 2 success  = miss + (1-miss) · P(payload-on-SYN resync)
- Strategy 4 success  = miss + (1-miss) · P(corrupt-ack resync)
- Strategy 6 success  = miss + (1-miss) · (1-(1-P(payload-other))(1-P(corrupt-ack)))
  (Strategy 6's second packet is a corrupted-ack SYN+ACK, so on boxes with
  rule 3 — FTP — both triggers fire independently)
- Strategy 3/5/7      = miss + (1-miss) · (1-(1-p_base)(1-p_combo))
- Strategy 8 success  = miss + (1-miss) · P(reassembly failure)

DNS cells are first deflated from 3-try totals: s_try = 1-(1-s)^(1/3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..censors.gfw.profiles import (
    EVENT_CORRUPT_ACK,
    EVENT_PAYLOAD_OTHER,
    EVENT_PAYLOAD_SYN,
    EVENT_RST,
    EVENT_SYN,
    EVENT_SYNACK_PAYLOAD,
)

__all__ = ["InferredProfile", "per_try_rate", "invert_rate", "calibrate_box"]


def per_try_rate(total: float, tries: int = 1) -> float:
    """Deflate an n-try success rate to its per-try rate."""
    if not 0.0 <= total <= 1.0:
        raise ValueError("rates must lie in [0, 1]")
    if tries < 1:
        raise ValueError("tries must be >= 1")
    return 1.0 - (1.0 - total) ** (1.0 / tries)


def invert_rate(success: float, miss: float) -> float:
    """Solve ``success = miss + (1 - miss) * p`` for ``p`` (clamped)."""
    if miss >= 1.0:
        return 0.0
    return min(1.0, max(0.0, (success - miss) / (1.0 - miss)))


def _combo(base: float, combined: float) -> float:
    """Solve ``combined = 1-(1-base)(1-x)`` for the combo probability x."""
    if base >= 1.0:
        return 0.0
    return min(1.0, max(0.0, 1.0 - (1.0 - combined) / (1.0 - base)))


@dataclass(frozen=True)
class InferredProfile:
    """Event/combo probabilities recovered from one Table 2 column."""

    protocol: str
    miss_prob: float
    event_probs: Dict[str, float]
    combo_probs: Dict[tuple, float]
    reassembly_fail_prob: float


def calibrate_box(
    protocol: str,
    column: Mapping[int, float],
    tries: int = 1,
) -> InferredProfile:
    """Invert one Table 2 column (strategy number -> success fraction).

    ``column`` must contain entries for strategies 0-8; ``tries`` deflates
    multi-try protocols (3 for DNS).
    """
    rate = {number: per_try_rate(column[number], tries) for number in range(0, 9)}
    miss = rate[0]
    rst = invert_rate(rate[1], miss)
    payload_syn = invert_rate(rate[2], miss)
    corrupt_ack = invert_rate(rate[4], miss)
    # Strategy 6 combines the payload rule with the corrupt-ack rule.
    payload_other = _combo(corrupt_ack, invert_rate(rate[6], miss))
    reassembly = invert_rate(rate[8], miss)

    # Strategy 3 = corrupt-ack OR (corrupt-ack, bare-SYN) combo.
    s3 = invert_rate(rate[3], miss)
    combo_syn = _combo(corrupt_ack, s3)
    # Strategy 5 = corrupt-ack OR (corrupt-ack, SYN+ACK-payload) combo.
    s5 = invert_rate(rate[5], miss)
    combo_payload = _combo(corrupt_ack, s5)
    # Strategy 7 = rst OR corrupt-ack OR (rst, corrupt-ack) combo.
    s7 = invert_rate(rate[7], miss)
    after_rst = _combo(rst, s7)  # probability needed at the corrupt-ack step
    combo_rst_ca = _combo(corrupt_ack, after_rst)

    return InferredProfile(
        protocol=protocol,
        miss_prob=miss,
        event_probs={
            EVENT_RST: rst,
            EVENT_PAYLOAD_SYN: payload_syn,
            EVENT_PAYLOAD_OTHER: payload_other,
            EVENT_CORRUPT_ACK: corrupt_ack,
        },
        combo_probs={
            (EVENT_CORRUPT_ACK, EVENT_SYN): combo_syn,
            (EVENT_CORRUPT_ACK, EVENT_SYNACK_PAYLOAD): combo_payload,
            (EVENT_RST, EVENT_CORRUPT_ACK): combo_rst_ca,
        },
        reassembly_fail_prob=reassembly,
    )
