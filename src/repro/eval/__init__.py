"""Evaluation harness: the trial runner and one driver per experiment.

Experiment drivers (each regenerates one paper artifact):

- :mod:`repro.eval.matrix` — Table 1 (censored-protocol matrix);
- :mod:`repro.eval.table2` — Table 2 (strategy success rates);
- :mod:`repro.eval.waterfall` — Figures 1 and 2 (packet waterfalls);
- :mod:`repro.eval.multibox` — Figure 3 / §6 (multi-box evidence and
  TTL localization);
- :mod:`repro.eval.generalization` — §3 (client-side strategies do not
  generalize);
- :mod:`repro.eval.dns_retries` — §4 (RFC 7766 retry amplification);
- :mod:`repro.eval.followups` — §5 (instrumented causal probes);
- :mod:`repro.eval.residual` — §4.2 (residual censorship);
- :mod:`repro.eval.client_compat` — §7 (OS and network compatibility);
- :mod:`repro.eval.sni_matrix` — the post-paper SNI-era grid
  (TLS-metadata censors vs record-level server-side strategies).
"""

from .runner import (
    CLIENT_IP,
    COUNTRY_PROTOCOLS,
    DEFAULT_CENSOR_HOP,
    DEFAULT_SERVER_HOP,
    SERVER_IP,
    Trial,
    TrialResult,
    benign_workload,
    censored_workload,
    default_port,
    run_trial,
    success_rate,
)

__all__ = [
    "CLIENT_IP",
    "COUNTRY_PROTOCOLS",
    "DEFAULT_CENSOR_HOP",
    "DEFAULT_SERVER_HOP",
    "SERVER_IP",
    "Trial",
    "TrialResult",
    "benign_workload",
    "censored_workload",
    "default_port",
    "run_trial",
    "success_rate",
]
