"""Reference values from the paper, for paper-vs-measured comparisons.

Every benchmark prints measured values next to these so EXPERIMENTS.md
can record the reproduction fidelity. Values are percentages from
Table 2 unless noted.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "TABLE2_CHINA",
    "TABLE2_OTHER",
    "TABLE1_MATRIX",
    "paper_rate",
    "CHINA_PROTOCOLS",
]

CHINA_PROTOCOLS = ("dns", "ftp", "http", "https", "smtp")

#: Table 2, China block: strategy number (0 = no evasion) -> per-protocol
#: success percentage.
TABLE2_CHINA: Dict[int, Dict[str, int]] = {
    0: {"dns": 2, "ftp": 3, "http": 3, "https": 3, "smtp": 26},
    1: {"dns": 89, "ftp": 52, "http": 54, "https": 14, "smtp": 70},
    2: {"dns": 83, "ftp": 36, "http": 54, "https": 55, "smtp": 59},
    3: {"dns": 26, "ftp": 65, "http": 4, "https": 4, "smtp": 23},
    4: {"dns": 7, "ftp": 33, "http": 5, "https": 5, "smtp": 22},
    5: {"dns": 15, "ftp": 97, "http": 4, "https": 3, "smtp": 25},
    6: {"dns": 82, "ftp": 55, "http": 52, "https": 54, "smtp": 55},
    7: {"dns": 83, "ftp": 85, "http": 54, "https": 4, "smtp": 66},
    8: {"dns": 3, "ftp": 47, "http": 2, "https": 3, "smtp": 100},
}

#: Table 2, India/Iran/Kazakhstan blocks: (country, strategy#, protocol)
#: -> success percentage. Strategy 0 is "no evasion". Protocols a country
#: does not censor succeed 100% with no evasion.
TABLE2_OTHER: Dict[Tuple[str, int, str], int] = {
    ("india", 0, "http"): 2,
    ("india", 8, "http"): 100,
    ("iran", 0, "http"): 0,
    ("iran", 0, "https"): 0,
    ("iran", 8, "http"): 100,
    ("iran", 8, "https"): 100,
    ("kazakhstan", 0, "http"): 0,
    ("kazakhstan", 8, "http"): 100,
    ("kazakhstan", 9, "http"): 100,
    ("kazakhstan", 10, "http"): 100,
    ("kazakhstan", 11, "http"): 100,
}

#: Table 1: client locations and protocols per country.
TABLE1_MATRIX: Dict[str, Dict[str, tuple]] = {
    "china": {
        "vantage_points": ("Beijing", "Shanghai", "Shenzen", "Zhengzhou"),
        "protocols": ("dns", "ftp", "http", "https", "smtp"),
    },
    "india": {
        "vantage_points": ("Bangalore",),
        "protocols": ("http",),
    },
    "iran": {
        "vantage_points": ("Tehran", "Zanjan"),
        "protocols": ("http", "https"),
    },
    "kazakhstan": {
        "vantage_points": ("Qaraghandy", "Almaty"),
        "protocols": ("http",),
    },
    # Post-paper SNI-era boxes (repro.censors.sni) — not in the paper's
    # Table 1, but measured by the same matrix driver.
    "southkorea": {
        "vantage_points": ("Seoul",),
        "protocols": ("https",),
    },
    "russia": {
        "vantage_points": ("Moscow",),
        "protocols": ("https",),
    },
}


def paper_rate(country: str, number: int, protocol: str) -> Optional[int]:
    """The paper's Table 2 value for (country, strategy number, protocol).

    Returns ``None`` when the paper reports no value for that cell (a dash
    in Table 2).
    """
    if country == "china":
        row = TABLE2_CHINA.get(number)
        return None if row is None else row.get(protocol)
    return TABLE2_OTHER.get((country, number, protocol))
