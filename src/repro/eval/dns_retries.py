"""§4.2's DNS retry analysis: RFC 7766 retries amplify success rates.

The paper observes that because DNS clients retry over TCP when a censor
tears the connection down, a strategy that works 50% of the time reaches
87.5% with 3 total tries. This module measures success versus the number
of tries for a ~50% strategy and compares against the analytic curve
``1 - (1 - p)^n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import deployed_strategy
from .runner import success_rate

__all__ = [
    "RetryCurve",
    "measure_retry_curve",
    "measure_client_profiles",
    "analytic_curve",
    "format_retry_curve",
]


@dataclass
class RetryCurve:
    """Measured and analytic success per retry count."""

    per_try_rate: float
    measured: Dict[int, float]
    analytic: Dict[int, float]


def analytic_curve(per_try: float, max_tries: int) -> Dict[int, float]:
    """``1 - (1 - p)^n`` for n = 1..max_tries."""
    return {n: 1 - (1 - per_try) ** n for n in range(1, max_tries + 1)}


def measure_retry_curve(
    strategy_number: int = 1,
    max_tries: int = 5,
    trials: int = 120,
    seed: int = 0,
) -> RetryCurve:
    """Measure DNS success vs. tries for one strategy against China."""
    strategy = deployed_strategy(strategy_number)
    measured: Dict[int, float] = {}
    for tries in range(1, max_tries + 1):
        measured[tries] = success_rate(
            "china",
            "dns",
            strategy,
            trials=trials,
            seed=seed + tries * 40_009,
            dns_tries=tries,
        )
    per_try = measured[1]
    return RetryCurve(
        per_try_rate=per_try,
        measured=measured,
        analytic=analytic_curve(per_try, max_tries),
    )


def measure_client_profiles(
    strategy_number: int = 1,
    trials: int = 100,
    seed: int = 0,
) -> Dict[str, float]:
    """Success per real-world DNS client retry profile (§4.2's list)."""
    from ..apps.dns import DNS_CLIENT_PROFILES

    strategy = deployed_strategy(strategy_number)
    rates: Dict[str, float] = {}
    for name, tries in DNS_CLIENT_PROFILES.items():
        rates[name] = success_rate(
            "china",
            "dns",
            strategy,
            trials=trials,
            seed=seed + tries * 50_021,
            dns_tries=tries,
        )
    return rates


def format_retry_curve(curve: RetryCurve) -> str:
    """Render measured vs analytic amplification."""
    lines = [
        "§4 — DNS-over-TCP retry amplification "
        f"(per-try rate {curve.per_try_rate * 100:.0f}%)"
    ]
    lines.append(f"{'tries':>6}{'measured':>12}{'1-(1-p)^n':>12}")
    for tries in sorted(curve.measured):
        lines.append(
            f"{tries:>6}{curve.measured[tries] * 100:>11.0f}%"
            f"{curve.analytic[tries] * 100:>11.0f}%"
        )
    return "\n".join(lines)
