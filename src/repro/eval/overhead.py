"""§8's deployment-overhead claim, measured.

"Our strategies incur little computation or communication overhead (at
most three extra payloads), so we expect that they could be deployed even
in performance-critical settings." This module measures, per strategy,
the extra packets and bytes a server emits relative to a vanilla
exchange for the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core import deployed_strategy
from .runner import run_trial

__all__ = ["OverheadReport", "measure_overhead", "format_overhead"]


@dataclass(frozen=True)
class OverheadReport:
    """Server-side wire overhead of one strategy.

    Attributes:
        strategy_number: The paper strategy number.
        protocol: Protocol used for the measurement.
        baseline_packets: Server packets in the vanilla exchange.
        strategy_packets: Server packets with the strategy installed.
        baseline_bytes: Server payload+header bytes without the strategy.
        strategy_bytes: Server bytes with the strategy.
    """

    strategy_number: int
    protocol: str
    baseline_packets: int
    strategy_packets: int
    baseline_bytes: int
    strategy_bytes: int

    @property
    def extra_packets(self) -> int:
        """Additional server packets attributable to the strategy."""
        return self.strategy_packets - self.baseline_packets

    @property
    def extra_bytes(self) -> int:
        """Additional server bytes attributable to the strategy."""
        return self.strategy_bytes - self.baseline_bytes


def _server_wire_stats(result) -> tuple:
    packets = 0
    total = 0
    for event in result.trace.events:
        if event.kind == "send" and event.location == "server" and event.packet:
            packets += 1
            total += len(event.packet.serialize())
    return packets, total


def measure_overhead(
    strategy_number: int, protocol: str = "http", seed: int = 0
) -> OverheadReport:
    """Measure one strategy's extra server packets/bytes (censor-free)."""
    baseline = run_trial(None, protocol, None, seed=seed)
    with_strategy = run_trial(
        None, protocol, deployed_strategy(strategy_number), seed=seed
    )
    base_packets, base_bytes = _server_wire_stats(baseline)
    strat_packets, strat_bytes = _server_wire_stats(with_strategy)
    return OverheadReport(
        strategy_number=strategy_number,
        protocol=protocol,
        baseline_packets=base_packets,
        strategy_packets=strat_packets,
        baseline_bytes=base_bytes,
        strategy_bytes=strat_bytes,
    )


def format_overhead(reports: Dict[int, OverheadReport]) -> str:
    """Render the per-strategy overhead table."""
    lines = [
        "§8 — server-side wire overhead per strategy (censor-free exchange)",
        f"{'strategy':>8}{'extra packets':>16}{'extra bytes':>14}",
    ]
    for number in sorted(reports):
        report = reports[number]
        lines.append(
            f"{number:>8}{report.extra_packets:>16}{report.extra_bytes:>14}"
        )
    lines.append("paper: at most three extra payloads per connection")
    return "\n".join(lines)
