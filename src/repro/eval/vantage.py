"""Vantage-point sensitivity (§4.2).

The paper ran clients from multiple vantage points per country and
servers in six external countries and found "no significant difference in
strategy effectiveness across the different vantage points or external
servers". In the reproduction a vantage point is a topology variation —
censor hop distance, total path length, and base RTT — and this module
measures a strategy's success rate across a set of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import deployed_strategy
from .runner import run_trial

__all__ = ["VantagePoint", "VANTAGE_POINTS", "measure_across_vantages", "format_vantages"]


@dataclass(frozen=True)
class VantagePoint:
    """One client location / external server pairing.

    Attributes:
        name: Label, e.g. ``"beijing->us"``.
        censor_hop: Hops from the client to the censor.
        server_hop: Hops from the client to the server.
    """

    name: str
    censor_hop: int
    server_hop: int


#: China's four vantage points paired with representative external
#: servers (Table 1 lists Beijing/Shanghai/Shenzen/Zhengzhou and servers
#: in six countries; hop counts vary per pairing).
VANTAGE_POINTS: Tuple[VantagePoint, ...] = (
    VantagePoint("beijing->us", censor_hop=3, server_hop=10),
    VantagePoint("shanghai->germany", censor_hop=2, server_hop=12),
    VantagePoint("shenzen->japan", censor_hop=4, server_hop=8),
    VantagePoint("zhengzhou->australia", censor_hop=5, server_hop=14),
)


def measure_across_vantages(
    strategy_number: int = 1,
    protocol: str = "http",
    country: str = "china",
    trials: int = 100,
    seed: int = 0,
    vantages: Tuple[VantagePoint, ...] = VANTAGE_POINTS,
) -> Dict[str, float]:
    """Success rate of one strategy from each vantage point."""
    strategy = deployed_strategy(strategy_number)
    rates: Dict[str, float] = {}
    for index, vantage in enumerate(vantages):
        wins = 0
        for trial_index in range(trials):
            result = run_trial(
                country,
                protocol,
                strategy,
                seed=seed + index * 1_000_003 + trial_index * 7919,
                censor_hop=vantage.censor_hop,
                server_hop=vantage.server_hop,
            )
            wins += result.succeeded
        rates[vantage.name] = wins / trials
    return rates


def format_vantages(rates: Dict[str, float], paper_note: str = "") -> str:
    """Render per-vantage rates with the spread."""
    lines = ["§4.2 — strategy effectiveness across vantage points"]
    for name, rate in rates.items():
        lines.append(f"{name:<24} {rate * 100:5.1f}%")
    spread = max(rates.values()) - min(rates.values())
    lines.append(f"spread: {spread * 100:.1f} points")
    lines.append(
        paper_note
        or "paper: no significant difference across vantage points or servers"
    )
    return "\n".join(lines)
