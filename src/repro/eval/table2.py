"""Table 2 regeneration: success rates of all strategies, all countries.

Runs every (country, protocol, strategy) cell of Table 2 with ``trials``
independent seeded trials and reports measured success percentages next
to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import SERVER_STRATEGIES, deployed_strategy
from .reference import CHINA_PROTOCOLS, TABLE2_OTHER, paper_rate
from .runner import success_rate

__all__ = ["Table2Cell", "generate_table2", "format_table2", "CHINA_STRATEGY_NUMBERS"]

#: Strategy numbers evaluated against China (Table 2's China block).
CHINA_STRATEGY_NUMBERS = (0, 1, 2, 3, 4, 5, 6, 7, 8)

#: Other-country cells (country, strategy number, protocol), from Table 2.
OTHER_CELLS: Tuple[Tuple[str, int, str], ...] = tuple(sorted(TABLE2_OTHER))


@dataclass
class Table2Cell:
    """One measured cell of Table 2."""

    country: str
    strategy_number: int
    protocol: str
    measured: float
    paper: Optional[int]

    @property
    def measured_pct(self) -> int:
        """Measured success rate as a rounded percentage."""
        return round(self.measured * 100)

    @property
    def delta(self) -> Optional[int]:
        """Measured minus paper, in percentage points."""
        if self.paper is None:
            return None
        return self.measured_pct - self.paper


def _strategy_for(number: int):
    return None if number == 0 else deployed_strategy(number)


def generate_table2(
    trials: int = 150,
    seed: int = 0,
    countries: Optional[List[str]] = None,
    china_protocols: Tuple[str, ...] = CHINA_PROTOCOLS,
    workers: int = 1,
    cache=None,
    executor=None,
) -> List[Table2Cell]:
    """Measure every Table 2 cell; returns cells in table order.

    One :class:`~repro.runtime.TrialExecutor` is shared across all cells
    so the result cache and run counters span the whole table
    (``workers``/``cache``/``executor`` as in
    :func:`~repro.eval.runner.success_rate`).
    """
    from ..runtime import TrialExecutor

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)
    wanted = countries if countries is not None else ["china", "india", "iran", "kazakhstan"]
    cells: List[Table2Cell] = []
    if "china" in wanted:
        for number in CHINA_STRATEGY_NUMBERS:
            for protocol in china_protocols:
                rate = success_rate(
                    "china",
                    protocol,
                    _strategy_for(number),
                    trials=trials,
                    seed=seed + number * 1_000_003,
                    executor=executor,
                )
                cells.append(
                    Table2Cell("china", number, protocol, rate, paper_rate("china", number, protocol))
                )
    for country, number, protocol in OTHER_CELLS:
        if country not in wanted:
            continue
        rate = success_rate(
            country,
            protocol,
            _strategy_for(number),
            trials=max(10, trials // 5),  # deterministic censors need few trials
            seed=seed + number * 31,
            executor=executor,
        )
        cells.append(
            Table2Cell(country, number, protocol, rate, paper_rate(country, number, protocol))
        )
    return cells


def format_table2(cells: List[Table2Cell]) -> str:
    """Render measured-vs-paper cells as the paper's Table 2 layout."""
    lines = ["Table 2 — server-side strategy success rates (measured% / paper%)"]
    china = [c for c in cells if c.country == "china"]
    if china:
        protocols = sorted({c.protocol for c in china}, key=CHINA_PROTOCOLS.index)
        header = "  ".join(f"{p.upper():>12}" for p in protocols)
        lines.append(f"{'China':<32}{header}")
        numbers = sorted({c.strategy_number for c in china})
        by_key: Dict[Tuple[int, str], Table2Cell] = {
            (c.strategy_number, c.protocol): c for c in china
        }
        for number in numbers:
            name = (
                "No evasion"
                if number == 0
                else SERVER_STRATEGIES[number].name
            )
            row = []
            for protocol in protocols:
                cell = by_key[(number, protocol)]
                row.append(f"{cell.measured_pct:>4}/{cell.paper if cell.paper is not None else '--':>3}    ")
            lines.append(f"{number:>2} {name:<29}" + "  ".join(row))
    for country in ("india", "iran", "kazakhstan"):
        rows = [c for c in cells if c.country == country]
        if not rows:
            continue
        lines.append(country.capitalize())
        for cell in rows:
            name = (
                "No evasion"
                if cell.strategy_number == 0
                else SERVER_STRATEGIES[cell.strategy_number].name
            )
            lines.append(
                f"{cell.strategy_number:>2} {name:<29}{cell.protocol:>6}: "
                f"{cell.measured_pct}/{cell.paper}"
            )
    return "\n".join(lines)
