"""§6 / Figure 3: evidence that China runs multiple censorship boxes.

Two experiments:

1. **Protocol dependence** — a strategy that manipulates only the TCP
   handshake should, under a single-box censor, succeed equally across
   application protocols. Measured against the multi-box GFW the success
   rates differ sharply per protocol; against a single-box ablation
   (all five protocols share one network-stack profile) they collapse to
   the same value. This is Figure 3's argument in executable form.

2. **TTL localization** — TTL-limited censored probes locate each
   protocol's censorship box by hop count. The paper found censorship at
   the same hop for every protocol at each vantage point, i.e. the boxes
   are colocated; the default simulated topology colocates them at hop 3.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional, Sequence

from ..censors import CHINA_PROFILES, GreatFirewall
from ..core import Strategy, deployed_strategy
from .reference import CHINA_PROTOCOLS
from .runner import Trial, run_trial, success_rate

__all__ = [
    "protocol_dependence",
    "single_box_profiles",
    "localize_boxes",
    "format_dependence",
]


def protocol_dependence(
    strategy_number: int = 7,
    trials: int = 150,
    seed: int = 0,
    profiles: Optional[dict] = None,
    protocols: Sequence[str] = CHINA_PROTOCOLS,
) -> Dict[str, float]:
    """Success of one TCP-level strategy across application protocols.

    DNS runs with a single try here so the comparison isolates the
    censorship boxes themselves (RFC 7766 retries would amplify DNS
    independently of any box differences).
    """
    rates: Dict[str, float] = {}
    strategy = deployed_strategy(strategy_number)
    for protocol in protocols:
        successes = 0
        for index in range(trials):
            trial_seed = seed + index * 7919
            censor = None
            if profiles is not None:
                censor = GreatFirewall(
                    rng=random.Random(trial_seed ^ 0x5EED), profiles=profiles
                )
            result = run_trial(
                "china",
                protocol,
                strategy,
                seed=trial_seed,
                censor=censor,
                dns_tries=1,
            )
            successes += result.succeeded
        rates[protocol] = successes / trials
    return rates


def single_box_profiles(base_protocol: str = "http") -> dict:
    """Ablation: one network stack (``base_protocol``'s) for all five boxes.

    This is the "single censorship box" hypothesis of Figure 3(a): same
    resync bugs, same reassembly ability, same miss rate everywhere. Only
    the DPI matcher differs per protocol.
    """
    base = CHINA_PROFILES[base_protocol]
    return {
        protocol: dataclasses.replace(
            base, protocol=protocol, residual_duration=0.0
        )
        for protocol in CHINA_PROFILES
    }


def forbidden_payload(protocol: str) -> bytes:
    """The raw forbidden query bytes for one protocol (China workloads)."""
    from ..apps.dns import build_query
    from ..apps.tls import build_client_hello

    if protocol == "http":
        return b"GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n"
    if protocol == "https":
        return build_client_hello("www.wikipedia.org")
    if protocol == "dns":
        return build_query("www.wikipedia.org", 0x1234)
    if protocol == "ftp":
        return b"RETR ultrasurf.txt\r\n"
    if protocol == "smtp":
        return b"RCPT TO:<xiazai@upup.info>\r\n"
    raise ValueError(f"unknown protocol {protocol!r}")


def localize_boxes(
    protocols: Sequence[str] = CHINA_PROTOCOLS,
    max_ttl: int = 8,
    seed: int = 0,
    censor_hop: int = 3,
    server_hop: int = 10,
) -> Dict[str, Optional[int]]:
    """TTL-limited probe localization of each protocol's censorship box.

    Mirrors the paper's method (§6, after Yadav et al.): complete a normal
    three-way handshake, then send the forbidden query directly with
    incrementing TTLs until the censor reacts. The minimum reacting TTL is
    the box's hop distance (``None`` if it never reacts within
    ``max_ttl``). The GFW's SMTP box censors a bare RCPT and its FTP box a
    bare RETR, so no sign-in dialogue is needed.
    """
    hops: Dict[str, Optional[int]] = {}
    attempts_per_ttl = 6  # DPI is itself flaky (e.g. SMTP misses 26%)
    for protocol in protocols:
        hops[protocol] = None
        payload = forbidden_payload(protocol)
        for ttl in range(1, max_ttl + 1):
            reacted = any(
                _ttl_probe_once(
                    payload,
                    ttl,
                    rng_seed=seed * 31 + ttl * 7 + attempt * 7919,
                    censor_hop=censor_hop,
                    server_hop=server_hop,
                )
                for attempt in range(attempts_per_ttl)
            )
            if reacted:
                hops[protocol] = ttl
                break
    return hops


def _ttl_probe_once(
    payload: bytes, ttl: int, rng_seed: int, censor_hop: int, server_hop: int
) -> bool:
    """One handshake + TTL-limited forbidden query; did the GFW react?"""
    from ..core import install_strategy
    from ..netsim import Middlebox, Network, Scheduler
    from ..tcpstack import Host, SERVER_PERSONALITY, personality

    scheduler = Scheduler()
    client = Host(
        "client",
        "10.1.0.2",
        scheduler,
        random.Random(rng_seed + 1),
        personality("ubuntu-18.04.1"),
    )
    server = Host(
        "server", "192.0.2.10", scheduler, random.Random(rng_seed + 2), SERVER_PERSONALITY
    )
    gfw = GreatFirewall(rng=random.Random(rng_seed))
    middleboxes = [Middlebox() for _ in range(server_hop - 1)]
    middleboxes[censor_hop - 1] = gfw
    network = Network(scheduler, client, server, middleboxes)
    client.attach(network)
    server.attach(network)
    server.listen(9999, lambda ep: None)  # sink: ACKs, never replies

    probe = Strategy.parse(
        f"[TCP:flags:PA]-tamper{{IP:ttl:replace:{ttl}}}-| \\/",
        name=f"ttl-probe-{ttl}",
    )
    install_strategy(client, probe, random.Random(rng_seed + 3))
    endpoint = client.open_connection("192.0.2.10", 9999)
    endpoint.on_established = lambda: endpoint.send(payload)
    endpoint.connect()
    network.run(until=10.0)
    return gfw.censorship_events > 0


def format_dependence(multi: Dict[str, float], single: Dict[str, float]) -> str:
    """Render the multi-box vs single-box comparison."""
    lines = ["Figure 3 — multi-box vs single-box GFW (TCP-level strategy success %)"]
    lines.append(f"{'protocol':<10}{'multi-box':>12}{'single-box':>12}")
    for protocol in sorted(multi):
        lines.append(
            f"{protocol:<10}{multi[protocol] * 100:>11.0f}%"
            f"{single.get(protocol, float('nan')) * 100:>11.0f}%"
        )
    spread_multi = max(multi.values()) - min(multi.values())
    spread_single = max(single.values()) - min(single.values())
    lines.append(
        f"spread: multi-box {spread_multi * 100:.0f} points, "
        f"single-box {spread_single * 100:.0f} points"
    )
    return "\n".join(lines)
