"""Parameter sweeps: where the strategies' operating envelopes end.

The paper reports point measurements; these sweeps map the surrounding
parameter space and locate the crossovers:

- **Window-size sweep** (Strategy 8): induced segmentation only defeats
  non-reassembling DPI while the advertised window is smaller than the
  span needed to isolate the censored keyword — sweeping the window finds
  the crossover where censorship resumes.
- **Resync-probability sensitivity** (Strategies 1/7): strategy success
  tracks the GFW's resync-entry probability almost linearly — the
  mechanism behind the ~50% rates in Table 2.
- **MITM-duration sweep** (Kazakhstan): how long after censorship a
  retry keeps failing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from ..censors import CHINA_PROFILES, GreatFirewall
from ..censors.gfw.profiles import EVENT_RST
from ..core import Strategy, deployed_strategy
from ..netsim import Impairment
from ..runtime import trial_seed
from .runner import Trial, run_trial, success_rate

__all__ = [
    "window_size_sweep",
    "window_reduction_strategy",
    "resync_probability_sweep",
    "mitm_retry_sweep",
    "censor_hop_sweep",
    "impairment_robustness_sweep",
    "format_robustness",
    "format_sweep",
    "ROBUSTNESS_CASES",
    "DEFAULT_LOSS_GRID",
]

_WINDOW_CLAMP_TAIL = (
    " [TCP:flags:A]-tamper{{TCP:window:replace:{w}}}-|"
    " [TCP:flags:PA]-tamper{{TCP:window:replace:{w}}}-|"
    " [TCP:flags:FA]-tamper{{TCP:window:replace:{w}}}-| \\/"
)


def window_reduction_strategy(window: int) -> Strategy:
    """Strategy 8 parameterised by the advertised window size."""
    dsl = (
        f"[TCP:flags:SA]-tamper{{TCP:window:replace:{window}}}"
        "(tamper{TCP:options-wscale:replace:},)-|"
        + _WINDOW_CLAMP_TAIL.format(w=window)
    )
    return Strategy.parse(dsl, name=f"window-{window}")


def window_size_sweep(
    windows: Sequence[int] = (2, 5, 10, 20, 40, 60, 100, 200),
    country: str = "india",
    protocol: str = "http",
    trials: int = 10,
    seed: int = 0,
    workers: int = 1,
    cache=None,
) -> Dict[int, float]:
    """Success rate of window reduction as the window grows.

    Against deterministic censors (India/Kazakhstan) the crossover is
    sharp: once a single segment can carry the whole censored request,
    the per-packet DPI sees it and the strategy dies.
    """
    rates: Dict[int, float] = {}
    for window in windows:
        strategy = window_reduction_strategy(window)
        rates[window] = success_rate(
            country, protocol, strategy, trials=trials, seed=seed,
            workers=workers, cache=cache,
        )
    return rates


def resync_probability_sweep(
    probabilities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    strategy_number: int = 1,
    protocol: str = "http",
    trials: int = 80,
    seed: int = 0,
) -> Dict[float, float]:
    """Strategy success as a function of the RST resync-entry probability."""
    rates: Dict[float, float] = {}
    strategy = deployed_strategy(strategy_number)
    for probability in probabilities:
        profiles = {}
        for name, profile in CHINA_PROFILES.items():
            events = dict(profile.event_probs)
            events[EVENT_RST] = probability
            profiles[name] = dataclasses.replace(profile, event_probs=events)
        wins = 0
        for index in range(trials):
            # Custom censor instances are live objects, so this sweep
            # stays in-process — but it shares the batch seed derivation.
            per_trial = trial_seed(seed, index)
            censor = GreatFirewall(
                rng=random.Random(per_trial ^ 0x5E5), profiles=profiles
            )
            wins += run_trial(
                "china", protocol, strategy, seed=per_trial, censor=censor
            ).succeeded
        rates[probability] = wins / trials
    return rates


def mitm_retry_sweep(
    delays: Sequence[float] = (1.0, 5.0, 10.0, 14.0, 20.0, 30.0),
) -> Dict[float, bool]:
    """Whether Kazakhstan's MITM still intercepts a (benign) packet on the
    censored flow ``delay`` seconds after the censorship event.

    Returns ``delay -> forwarded?``: the paper's ~15 s interception window
    means packets are swallowed for delays under 15 s and pass afterwards.
    Measured at the censor boundary (a trial-level retry would re-trigger
    censorship through request retransmission).
    """
    from ..censors import KazakhstanCensor
    from ..packets import make_tcp_packet

    class _Ctx:
        def __init__(self):
            self.now = 0.0

        def inject(self, packet, toward):
            pass

        def record(self, *args, **kwargs):
            pass

    results: Dict[float, bool] = {}
    for delay in delays:
        censor = KazakhstanCensor()
        ctx = _Ctx()
        forbidden = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA", seq=1001, ack=5001,
            load=b"GET / HTTP/1.1\r\nHost: blocked.example.kz\r\n\r\n",
        )
        censor.process(
            make_tcp_packet("10.1.0.2", "192.0.2.10", 41000, 80, flags="S", seq=1000),
            "c2s",
            ctx,
        )
        assert censor.process(forbidden, "c2s", ctx) == []  # intercepted
        ctx.now = delay
        benign = make_tcp_packet(
            "10.1.0.2", "192.0.2.10", 41000, 80, flags="PA", seq=1043, ack=5001,
            load=b"GET /ok HTTP/1.1\r\nHost: benign.example.com\r\n\r\n",
        )
        results[delay] = censor.process(benign, "c2s", ctx) == [benign]
    return results


def censor_hop_sweep(
    hops: Sequence[int] = (1, 2, 4, 6, 8),
    strategy_number: int = 1,
    protocol: str = "http",
    trials: int = 60,
    seed: int = 0,
    server_hop: int = 10,
    workers: int = 1,
    cache=None,
) -> Dict[int, float]:
    """Strategy success as the censor moves along the path.

    Server-side strategies act on wire packets, so placement of the
    censor between client and server must not matter — a placement
    counterpart to the vantage-point invariance of §4.2.
    """
    rates: Dict[int, float] = {}
    strategy = deployed_strategy(strategy_number)
    for hop in hops:
        rates[hop] = success_rate(
            "china",
            protocol,
            strategy,
            trials=trials,
            seed=seed,
            workers=workers,
            cache=cache,
            censor_hop=hop,
            server_hop=server_hop,
        )
    return rates


#: Representative working strategy per country (mirrors the golden-trace
#: cases): (protocol, deployed strategy number).
ROBUSTNESS_CASES: Dict[str, tuple] = {
    "china": ("http", 1),
    "india": ("http", 8),
    "iran": ("https", 8),
    "kazakhstan": ("http", 11),
    "southkorea": ("https", 12),
    "russia": ("https", 15),
}

#: Per-link loss probabilities swept by default. The simulated path has
#: ~10 links, so end-to-end loss compounds quickly — the grid stays low.
DEFAULT_LOSS_GRID = (0.0, 0.01, 0.02, 0.05)


def impairment_robustness_sweep(
    loss_rates: Sequence[float] = DEFAULT_LOSS_GRID,
    countries: Optional[Sequence[str]] = None,
    trials: int = 20,
    seed: int = 0,
    net_seed: Optional[int] = None,
    workers: int = 1,
    cache=None,
    executor=None,
) -> Dict[str, Dict[float, float]]:
    """Success-vs-loss curves: strategy robustness under packet loss.

    For each country, its representative working strategy (see
    :data:`ROBUSTNESS_CASES`) is measured at every per-link loss rate in
    ``loss_rates``; clients recover dropped segments through TCP
    retransmission, so the curves show how much real-path degradation
    each evasion strategy tolerates before its success rate collapses.

    ``net_seed`` pins the impairment randomness (fanned out per trial);
    leaving it ``None`` splits the impairment stream from each trial's
    own seed. Either way two identical invocations produce identical
    curves. Returns ``{country: {loss_rate: success_rate}}``.
    """
    if countries is None:
        countries = sorted(ROBUSTNESS_CASES)
    curves: Dict[str, Dict[float, float]] = {}
    for country in countries:
        protocol, number = ROBUSTNESS_CASES[country]
        strategy = deployed_strategy(number)
        curve: Dict[float, float] = {}
        for loss in loss_rates:
            impairment = Impairment(loss=loss) if loss else None
            curve[loss] = success_rate(
                country,
                protocol,
                strategy,
                trials=trials,
                seed=seed,
                workers=workers,
                cache=cache,
                executor=executor,
                impairment=impairment,
                net_seed=net_seed if impairment is not None else None,
            )
        curves[country] = curve
    return curves


def format_robustness(curves: Dict[str, Dict[float, float]]) -> str:
    """Render success-vs-loss curves as a small per-country table."""
    lines = ["Strategy robustness under per-link packet loss"]
    for country in sorted(curves):
        protocol, number = ROBUSTNESS_CASES.get(country, ("?", "?"))
        lines.append(f"{country} (strategy {number}, {protocol}):")
        for loss in sorted(curves[country]):
            rate = curves[country][loss]
            lines.append(f"  loss {loss * 100:5.1f}% -> {rate * 100:5.0f}%")
    return "\n".join(lines)


def format_sweep(title: str, rates: Dict, unit: str = "") -> str:
    """Render a one-parameter sweep as a small table."""
    lines = [title]
    for key in sorted(rates):
        value = rates[key]
        rendered = f"{value * 100:5.0f}%" if isinstance(value, float) else str(value)
        lines.append(f"  {key}{unit:<4} -> {rendered}")
    return "\n".join(lines)
