"""Statistics helpers for experiment reporting.

Success rates in Table 2 are binomial proportions; these helpers provide
Wilson score confidence intervals (well-behaved near 0% and 100%, unlike
the normal approximation) and a two-proportion z-test used to decide
whether a measured rate is consistent with the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "Proportion",
    "wilson_interval",
    "two_proportion_z",
    "rates_consistent",
]

#: z for a 95% two-sided interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Proportion:
    """A measured binomial proportion.

    Attributes:
        successes: Number of successes.
        trials: Number of trials.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if not 0 <= self.successes <= self.trials:
            raise ValueError("successes must lie in [0, trials]")

    @property
    def rate(self) -> float:
        """The point estimate."""
        return self.successes / self.trials

    def interval(self, z: float = Z_95) -> Tuple[float, float]:
        """Wilson score interval for this proportion."""
        return wilson_interval(self.successes, self.trials, z)

    def __str__(self) -> str:
        low, high = self.interval()
        return f"{self.rate * 100:.1f}% [{low * 100:.1f}, {high * 100:.1f}]"


def wilson_interval(successes: int, trials: int, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return (low, high)


def two_proportion_z(a: Proportion, b: Proportion) -> float:
    """Two-proportion z statistic (pooled)."""
    pooled = (a.successes + b.successes) / (a.trials + b.trials)
    variance = pooled * (1 - pooled) * (1 / a.trials + 1 / b.trials)
    if variance == 0:
        return 0.0
    return (a.rate - b.rate) / math.sqrt(variance)


def rates_consistent(
    measured: Proportion, paper_pct: float, paper_trials: int = 100, z: float = Z_95
) -> bool:
    """Whether a measured rate is statistically consistent with a paper rate.

    The paper does not report its per-cell sample sizes; ``paper_trials``
    is a conservative assumption used to build the comparison proportion.
    """
    paper = Proportion(
        successes=round(paper_pct / 100 * paper_trials), trials=paper_trials
    )
    return abs(two_proportion_z(measured, paper)) <= z
