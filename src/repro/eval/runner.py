"""Trial runner: one censored request through one censor with one strategy.

This is the workhorse behind every table and figure. A :class:`Trial`
assembles the full evaluation topology —

    client ── r1 ── r2 ── censor ── r4 … r9 ── server
              (hop 3 by default; server at hop 10)

— installs the server-side (and optionally client-side) Geneva strategy,
drives the protocol's censored request with an unmodified client stack,
and reports the paper's success criterion: the connection is not torn
down and the client receives the correct, unaltered data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..apps import (
    DNSClient,
    DNSServer,
    FTPClient,
    FTPServer,
    HTTPClient,
    HTTPSClient,
    HTTPSServer,
    HTTPServer,
    SMTPClient,
    SMTPServer,
)
from ..censors import (
    AirtelCensor,
    Censor,
    GreatFirewall,
    IranCensor,
    KazakhstanCensor,
    russia_censor,
    southkorea_censor,
)
from ..core import Strategy, install_strategy
from ..netsim import Impairment, Middlebox, Network, NullTrace, Scheduler, Trace
from ..runtime.seeds import net_stream_seed, trial_seed
from ..tcpstack import Host, SERVER_PERSONALITY, personality

__all__ = [
    "Trial",
    "TrialResult",
    "run_trial",
    "success_rate",
    "CLIENT_IP",
    "SERVER_IP",
    "DEFAULT_CENSOR_HOP",
    "DEFAULT_SERVER_HOP",
    "COUNTRY_PROTOCOLS",
    "censored_workload",
    "benign_workload",
    "default_port",
]

CLIENT_IP = "10.1.0.2"
SERVER_IP = "192.0.2.10"

#: Addresses used when a trial runs over IPv6 (documentation prefix).
CLIENT_IP_V6 = "2001:db8:1::2"
SERVER_IP_V6 = "2001:db8:ffff::10"

DEFAULT_CENSOR_HOP = 3
DEFAULT_SERVER_HOP = 10

#: Protocols each country censors (Table 1 / §4.2, plus the SNI-era
#: boxes modelled after the paper: South Korea's SNIC and Russia's TSPU).
COUNTRY_PROTOCOLS: Dict[str, List[str]] = {
    "china": ["dns", "ftp", "http", "https", "smtp"],
    "india": ["http"],
    "iran": ["http", "https"],
    "kazakhstan": ["http"],
    "southkorea": ["https"],
    "russia": ["https"],
}

_CLIENT_CLASSES = {
    "http": HTTPClient,
    "https": HTTPSClient,
    "dns": DNSClient,
    "ftp": FTPClient,
    "smtp": SMTPClient,
}

_SERVER_CLASSES = {
    "http": HTTPServer,
    "https": HTTPSServer,
    "dns": DNSServer,
    "ftp": FTPServer,
    "smtp": SMTPServer,
}

_DEFAULT_PORTS = {"http": 80, "https": 443, "dns": 53, "ftp": 21, "smtp": 25}

#: Censored request parameters per (country, protocol) — §4.2's workloads.
_CENSORED_WORKLOADS: Dict[tuple, dict] = {
    ("china", "http"): {"path": "/?q=ultrasurf", "host_header": "example.com"},
    ("china", "https"): {"server_name": "www.wikipedia.org"},
    ("china", "dns"): {"qname": "www.wikipedia.org"},
    ("china", "ftp"): {"filename": "ultrasurf.txt"},
    ("china", "smtp"): {"recipient": "xiazai@upup.info"},
    ("india", "http"): {"path": "/", "host_header": "blocked.example.in"},
    ("iran", "http"): {"path": "/", "host_header": "youtube.com"},
    ("iran", "https"): {"server_name": "youtube.com"},
    ("kazakhstan", "http"): {"path": "/", "host_header": "blocked.example.kz"},
    ("southkorea", "https"): {"server_name": "blocked.example.kr"},
    ("russia", "https"): {"server_name": "blocked.example.ru"},
}

_BENIGN_WORKLOADS: Dict[str, dict] = {
    "http": {"path": "/?q=kittens", "host_header": "benign.example.com"},
    "https": {"server_name": "benign.example.com"},
    "dns": {"qname": "benign.example.com"},
    "ftp": {"filename": "notes.txt"},
    "smtp": {"recipient": "friend@example.org"},
}


def censored_workload(country: str, protocol: str) -> dict:
    """Client parameters that trigger censorship for (country, protocol)."""
    return dict(_CENSORED_WORKLOADS[(country, protocol)])


def benign_workload(protocol: str) -> dict:
    """Client parameters that no censor objects to."""
    return dict(_BENIGN_WORKLOADS[protocol])


def default_port(protocol: str) -> int:
    """The protocol's default server port."""
    return _DEFAULT_PORTS[protocol]


def make_censor(
    country: Optional[str],
    rng: random.Random,
    params: Optional[dict] = None,
) -> Optional[Censor]:
    """Instantiate the censor model for ``country`` (None = no censor).

    ``params`` configures an *adaptive* censor variant (see
    :mod:`repro.censors.adaptive`): a JSON-able dict of bounded knobs —
    a :class:`~repro.censors.adaptive.CensorGenome`'s ``params`` — that
    reshapes the calibrated model. ``None`` keeps the paper's static
    calibration on the exact pre-adaptive code path.
    """
    if country is None:
        return None
    if params is not None:
        from ..censors.adaptive import build_censor

        return build_censor(country, params, rng)
    if country == "china":
        return GreatFirewall(rng=rng)
    if country == "india":
        return AirtelCensor()
    if country == "iran":
        return IranCensor()
    if country == "kazakhstan":
        return KazakhstanCensor()
    if country == "southkorea":
        return southkorea_censor()
    if country == "russia":
        return russia_censor()
    raise ValueError(f"unknown country {country!r}")


@dataclass
class TrialResult:
    """Outcome of one trial.

    Attributes:
        outcome: Client application outcome (``"success"`` etc.).
        succeeded: The paper's evasion criterion was met.
        censored: The censor took at least one censorship action.
        detail: Free-form outcome detail from the client app.
        trace: Full packet trace of the trial.
    """

    outcome: str
    succeeded: bool
    censored: bool
    detail: str = ""
    trace: Optional[Trace] = None


class Trial:
    """One fully-assembled evaluation run (build, then :meth:`run`)."""

    def __init__(
        self,
        country: Optional[str],
        protocol: str,
        server_strategy: Optional[Strategy] = None,
        client_strategy: Optional[Strategy] = None,
        seed: int = 0,
        client_os: str = "ubuntu-18.04.1",
        workload: Optional[dict] = None,
        server_port: Optional[int] = None,
        censor_hop: int = DEFAULT_CENSOR_HOP,
        server_hop: int = DEFAULT_SERVER_HOP,
        client_side_boxes: Sequence[Middlebox] = (),
        dns_tries: int = 3,
        censor: Optional[Censor] = None,
        max_time: float = 40.0,
        client_ip: Optional[str] = None,
        strategy_at_hop: Optional[int] = None,
        ip_version: int = 4,
        impairment=None,
        net_seed: Optional[int] = None,
        capture_trace: bool = True,
        censor_params: Optional[dict] = None,
    ) -> None:
        if ip_version not in (4, 6):
            raise ValueError("ip_version must be 4 or 6")
        server_ip = SERVER_IP_V6 if ip_version == 6 else SERVER_IP
        if client_ip is None:
            client_ip = CLIENT_IP_V6 if ip_version == 6 else CLIENT_IP
        self.server_ip = server_ip
        self.protocol = protocol
        self.max_time = max_time
        self.scheduler = Scheduler()
        # Normalize the impairment policy up front; null policies drop to
        # None so the unimpaired path stays literally the pre-impairment
        # code path (zero extra RNG draws, bit-identical traces).
        policy = Impairment.from_value(impairment)
        if policy is not None and policy.is_null():
            policy = None
        self.impairment = policy
        net_rng: Optional[random.Random] = None
        if self.impairment is not None:
            # The impairment stream is split from the trial seed with a
            # domain salt (or pinned by an explicit net_seed) rather than
            # drawn from ``base`` below: consuming ``base`` here would
            # shift the censor/client/server/strategy streams and change
            # every existing trace.
            net_rng = random.Random(
                net_seed if net_seed is not None else net_stream_seed(seed)
            )
        base = random.Random(seed)
        censor_rng = random.Random(base.randrange(1 << 30))
        client_rng = random.Random(base.randrange(1 << 30))
        server_rng = random.Random(base.randrange(1 << 30))
        strategy_rng = random.Random(base.randrange(1 << 30))

        self.client_host = Host(
            "client", client_ip, self.scheduler, client_rng, personality(client_os)
        )
        self.server_host = Host(
            "server", server_ip, self.scheduler, server_rng, SERVER_PERSONALITY
        )

        if censor is not None and censor_params is not None:
            raise ValueError("pass either censor= or censor_params=, not both")
        self.censor = (
            censor
            if censor is not None
            else make_censor(country, censor_rng, censor_params)
        )
        middleboxes: List[Middlebox] = list(client_side_boxes)
        pad_before = censor_hop - 1 - len(middleboxes)
        middleboxes.extend(Middlebox() for _ in range(max(0, pad_before)))
        if self.censor is not None:
            middleboxes.append(self.censor)
        while len(middleboxes) < server_hop - 1:
            middleboxes.append(Middlebox())

        self.server_engine = None
        if (
            strategy_at_hop is not None
            and server_strategy is not None
            and not server_strategy.is_noop()
        ):
            # §8 mid-path deployment: run the strategy at a middlebox on
            # the path between the censor and the server.
            from ..deploy import StrategyMiddlebox

            if not (censor_hop < strategy_at_hop < server_hop):
                raise ValueError(
                    "strategy_at_hop must lie between the censor and the server"
                )
            proxy = StrategyMiddlebox(server_strategy, strategy_rng)
            middleboxes[strategy_at_hop - 1] = proxy
            self.server_engine = proxy
            server_strategy = None

        # Rate-only consumers (success_rate, matrices, GA fitness) pass
        # capture_trace=False: trace recording — and its per-event packet
        # copy — collapses to a no-op, and the trial becomes eligible for
        # packet pooling (nothing retains packets past the trial).
        self.network = Network(
            self.scheduler,
            self.client_host,
            self.server_host,
            middleboxes,
            impairment=self.impairment,
            net_rng=net_rng,
            trace=Trace() if capture_trace else NullTrace(),
        )
        self.client_host.attach(self.network)
        self.server_host.attach(self.network)

        if server_strategy is not None and not server_strategy.is_noop():
            self.server_engine = install_strategy(
                self.server_host, server_strategy, strategy_rng
            )
        self.client_engine = None
        if client_strategy is not None and not client_strategy.is_noop():
            self.client_engine = install_strategy(
                self.client_host, client_strategy, strategy_rng
            )

        port = server_port if server_port is not None else default_port(protocol)
        self.server_app = _SERVER_CLASSES[protocol](self.server_host, port)
        self.server_app.install()

        params = workload if workload is not None else (
            censored_workload(country, protocol)
            if country is not None and (country, protocol) in _CENSORED_WORKLOADS
            else benign_workload(protocol)
        )
        client_cls = _CLIENT_CLASSES[protocol]
        if protocol == "dns":
            params.setdefault("tries", dns_tries)
        self.client_app = client_cls(self.client_host, server_ip, port, **params)

    def run(self) -> TrialResult:
        """Execute the trial to quiescence and report the outcome."""
        self.client_app.start()
        self.network.run(until=self.max_time)
        outcome = self.client_app.outcome or "timeout"
        return TrialResult(
            outcome=outcome,
            succeeded=self.client_app.succeeded,
            censored=self.censor.censorship_events > 0 if self.censor else False,
            detail=getattr(self.client_app, "detail", ""),
            trace=self.network.trace,
        )


def run_trial(
    country: Optional[str],
    protocol: str,
    server_strategy: Optional[Strategy] = None,
    seed: int = 0,
    **kwargs,
) -> TrialResult:
    """Build and run a single trial (see :class:`Trial` for options)."""
    return Trial(country, protocol, server_strategy, seed=seed, **kwargs).run()


def success_rate(
    country: Optional[str],
    protocol: str,
    server_strategy: Optional[Strategy],
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    cache=None,
    executor=None,
    impairment=None,
    net_seed: Optional[int] = None,
    **kwargs,
) -> float:
    """Fraction of ``trials`` independent runs that evade censorship.

    Per-trial seeds are derived from ``(seed, index)`` via
    :func:`repro.runtime.trial_seed`; results are therefore identical
    whatever the execution mode. ``workers`` fans trials out over a
    process pool, ``cache`` enables the content-addressed result store
    (``True`` → ``.repro_cache/``, or a path / ``ResultCache``), and
    ``executor`` supplies a prebuilt :class:`~repro.runtime.TrialExecutor`
    (overriding both) so callers can share one across batches and read
    its :class:`~repro.runtime.RunStats`. ``impairment`` applies one
    network-impairment policy to every trial; ``net_seed`` pins the
    impairment stream explicitly (fanned out per trial via
    :func:`trial_seed`, so trials stay independent) instead of the
    default split from each trial's own seed. Arguments that cannot be
    expressed as picklable specs (live censor instances, middlebox
    objects, ...) fall back to an in-process loop over the same seeds.
    """
    from ..runtime import SpecError, TrialExecutor, TrialSpec

    imp = Impairment.from_value(impairment)
    if imp is not None and imp.is_null():
        imp = None
    seeds = [trial_seed(seed, index) for index in range(trials)]
    net_seeds: List[Optional[int]] = [
        trial_seed(net_seed, index) if net_seed is not None else None
        for index in range(trials)
    ]
    try:
        specs = []
        for s, ns in zip(seeds, net_seeds):
            extra = dict(kwargs)
            if ns is not None:
                extra["net_seed"] = ns
            specs.append(
                TrialSpec.build(
                    country,
                    protocol,
                    server_strategy,
                    seed=s,
                    impairment=imp,
                    **extra,
                )
            )
    except SpecError:
        successes = sum(
            run_trial(
                country,
                protocol,
                server_strategy,
                seed=s,
                impairment=imp,
                net_seed=ns,
                **kwargs,
            ).succeeded
            for s, ns in zip(seeds, net_seeds)
        )
        return successes / trials
    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache)
    results = executor.run_batch(specs)
    return sum(result.succeeded for result in results) / trials
