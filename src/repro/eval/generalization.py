"""§3 regeneration: client-side strategies do not generalize server-side.

Reproduces the paper's experiment: take working client-side strategies
(TCB-teardown species sending insertion packets), verify they work from
the client, derive the two server-side analogs (insertion packet before /
after the SYN+ACK), and show none of them work — including the variant
where the client delays its query until the insertion packets arrive, and
the reversed-direction variant the paper used to show the GFW processes
client and server packets differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core import CLIENT_SIDE_STRATEGIES, client_side_strategy, server_side_analogs
from .runner import run_trial, success_rate

__all__ = ["GeneralizationResult", "run_generalization", "format_generalization"]

#: A server-side analog "works" if it beats this success rate (well above
#: the ~3% baseline DPI miss).
WORKS_THRESHOLD = 0.25


@dataclass
class GeneralizationResult:
    """Outcome of the §3 experiment."""

    client_side_working: Dict[str, bool] = field(default_factory=dict)
    analog_rates: Dict[str, float] = field(default_factory=dict)

    @property
    def client_working_count(self) -> int:
        """How many client-side strategies evade censorship."""
        return sum(self.client_side_working.values())

    @property
    def analogs_working_count(self) -> int:
        """How many server-side analogs evade censorship."""
        return sum(rate > WORKS_THRESHOLD for rate in self.analog_rates.values())


def run_generalization(
    protocol: str = "http",
    trials: int = 20,
    seed: int = 0,
) -> GeneralizationResult:
    """Run the full §3 experiment against China."""
    result = GeneralizationResult()
    for name in sorted(CLIENT_SIDE_STRATEGIES):
        trial = run_trial(
            "china",
            protocol,
            None,
            client_strategy=client_side_strategy(name),
            seed=seed,
        )
        result.client_side_working[name] = trial.succeeded
        for analog in server_side_analogs(name):
            rate = success_rate(
                "china", protocol, analog, trials=trials, seed=seed + 17
            )
            result.analog_rates[analog.name] = rate
    return result


def format_generalization(result: GeneralizationResult) -> str:
    """Render the §3 summary."""
    lines = ["§3 — client-side strategies do not generalize to server-side"]
    total_client = len(result.client_side_working)
    lines.append(
        f"client-side strategies working: {result.client_working_count}/{total_client}"
        " (paper: all working species work client-side)"
    )
    lines.append(
        f"server-side analogs working: {result.analogs_working_count}/"
        f"{len(result.analog_rates)} (paper: 0 of 50)"
    )
    for name, rate in sorted(result.analog_rates.items()):
        lines.append(f"  {name:<42} success={rate * 100:5.1f}%")
    return "\n".join(lines)
