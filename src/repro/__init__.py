"""repro — a reproduction of "Come as You Are: Helping Unmodified Clients
Bypass Censorship with Server-side Evasion" (Bock et al., SIGCOMM 2020).

The package implements the paper's full system in simulation:

- :mod:`repro.packets` — from-scratch IPv4/TCP packet model;
- :mod:`repro.netsim` — deterministic discrete-event network simulator;
- :mod:`repro.tcpstack` — TCP endpoint state machine with per-OS
  behaviour profiles (§7's 17 operating systems);
- :mod:`repro.apps` — DNS-over-TCP, FTP, HTTP, HTTPS and SMTP;
- :mod:`repro.censors` — the GFW (five per-protocol boxes with
  resynchronization-state bugs), India/Airtel, Iran, Kazakhstan, and
  cellular carrier middleboxes;
- :mod:`repro.core` — Geneva: the strategy DSL, the wire-level engine,
  the 11 paper strategies, and the genetic algorithm;
- :mod:`repro.eval` — the experiment harness regenerating every table
  and figure;
- :mod:`repro.runtime` — the batch trial executor (process-pool
  parallelism, content-addressed result caching, deterministic seeds).

Quickstart::

    from repro import run_trial, deployed_strategy

    result = run_trial("china", "http", deployed_strategy(1), seed=1)
    assert result.succeeded  # ~54% of seeds, per Table 2
"""

from .core import (
    NO_EVASION,
    PAPER_STRATEGY_NUMBERS,
    SERVER_STRATEGIES,
    Strategy,
    StrategyEngine,
    compat_strategy,
    deployed_strategy,
    install_strategy,
    strategy,
)
from .eval import Trial, TrialResult, run_trial, success_rate
from .runtime import ResultCache, RunStats, TrialExecutor, TrialSpec, trial_seed

__version__ = "1.0.0"

__all__ = [
    "NO_EVASION",
    "PAPER_STRATEGY_NUMBERS",
    "SERVER_STRATEGIES",
    "ResultCache",
    "RunStats",
    "Strategy",
    "StrategyEngine",
    "Trial",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "__version__",
    "compat_strategy",
    "deployed_strategy",
    "install_strategy",
    "run_trial",
    "strategy",
    "success_rate",
    "trial_seed",
]
