"""``repro profile`` — where does a trial actually spend its time?

Runs a small batch of trials in-process with span timing enabled and
prints a per-phase wall-time breakdown. The top-level phases
(``trial/spec_decode`` → ``trial/build`` → ``trial/simulate`` →
``trial/finalize``) are contiguous brackets of each trial, so their sum
covers essentially all of the trial wall time — the report prints the
exact coverage percentage. Inner spans (censor decisions, endpoint
stepping, strategy application) are shown separately; they nest inside
``simulate`` and are not added to the coverage sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import metrics, spans

__all__ = ["ProfileResult", "profile_run", "format_profile"]

#: Top-level trial phases, in execution order. These partition the
#: ``trial`` span; coverage = their sum / the ``trial`` span's total.
TRIAL_PHASES = (
    "trial/spec_decode",
    "trial/build",
    "trial/simulate",
    "trial/finalize",
)

#: Inner spans worth surfacing (nested inside simulate; inclusive times).
INNER_SPANS = (
    ("simulate/censor", "censor decision"),
    ("simulate/middlebox", "middlebox transit"),
    ("simulate/endpoint", "endpoint stepping"),
    ("simulate/strategy", "strategy application"),
)


@dataclass
class ProfileResult:
    """Per-phase timing for one profiled batch."""

    country: Optional[str]
    protocol: str
    strategy: Optional[str]
    trials: int
    snapshot: Dict[str, Any] = field(default_factory=dict)

    def _span(self, name: str) -> Tuple[float, float, int]:
        """(wall seconds, virtual seconds, calls) for one span."""
        key = f"span={name}"

        def sample(family: str) -> float:
            entry = self.snapshot.get(family)
            if not entry:
                return 0.0
            return entry["samples"].get(key, 0.0)

        return (
            sample("repro_span_seconds_total"),
            sample("repro_span_vtime_seconds_total"),
            int(sample("repro_span_calls_total")),
        )

    @property
    def trial_wall(self) -> float:
        """Total wall seconds spent inside the ``trial`` span."""
        return self._span("trial")[0]

    @property
    def coverage(self) -> float:
        """Fraction of trial wall time the top-level phases account for."""
        total = self.trial_wall
        if total <= 0.0:
            return 0.0
        return sum(self._span(name)[0] for name in TRIAL_PHASES) / total


def profile_run(
    country: Optional[str],
    protocol: str,
    strategy: Any = None,
    trials: int = 5,
    seed: int = 0,
    **options: Any,
) -> ProfileResult:
    """Run ``trials`` spec executions in-process with spans enabled.

    Metrics are collected into an isolated registry so repeated profile
    runs in one process do not contaminate each other (or the global
    telemetry view).
    """
    from ..runtime import TrialSpec, trial_seed

    registry = metrics.MetricsRegistry()
    with metrics.collecting(registry), spans.profiling():
        for index in range(trials):
            TrialSpec.build(
                country,
                protocol,
                strategy,
                seed=trial_seed(seed, index),
                **options,
            ).run()
    return ProfileResult(
        country=country,
        protocol=protocol,
        strategy=str(strategy) if strategy is not None else None,
        trials=trials,
        snapshot=registry.snapshot(),
    )


def format_profile(result: ProfileResult) -> str:
    """Human-readable per-phase breakdown table."""
    total = result.trial_wall
    target = result.country if result.country is not None else "none"
    label = result.strategy if result.strategy else "no evasion"
    lines = [
        f"Profile: {target}/{result.protocol} strategy={label} "
        f"trials={result.trials}",
        "",
        f"{'phase':<24} {'wall':>10} {'% trial':>8} {'calls':>7} {'vtime':>10}",
    ]

    def row(label: str, name: str) -> str:
        wall, vtime, calls = result._span(name)
        share = (wall / total * 100.0) if total > 0 else 0.0
        return (
            f"{label:<24} {wall:>9.4f}s {share:>7.1f}% {calls:>7d} "
            f"{vtime:>9.3f}s"
        )

    for name in TRIAL_PHASES:
        lines.append(row(name.split("/", 1)[1], name))
    lines.append("-" * 64)
    lines.append(
        f"{'trial total':<24} {total:>9.4f}s {100.0:>7.1f}% "
        f"{result._span('trial')[2]:>7d} {result._span('trial')[1]:>9.3f}s"
    )
    lines.append(
        f"phase coverage: {result.coverage * 100.0:.1f}% of trial wall time"
    )

    inner = [
        (label, result._span(name))
        for name, label in INNER_SPANS
        if result._span(name)[2] > 0
    ]
    if inner:
        lines.append("")
        lines.append("within simulate (inclusive, nested):")
        for label, (wall, vtime, calls) in inner:
            share = (wall / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"  {label:<22} {wall:>9.4f}s {share:>7.1f}% {calls:>7d} "
                f"{vtime:>9.3f}s"
            )
    return "\n".join(lines)
