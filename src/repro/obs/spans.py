"""Lightweight phase spans: wall + virtual time, off by default.

A span brackets one phase of work — ``trial/spec_decode``,
``trial/simulate``, ``executor/batch``, ``ga/generation`` — and records
three metric families into the active registry:

- ``repro_span_seconds_total{span=}``  cumulative wall seconds
  (non-deterministic: excluded from determinism diffs);
- ``repro_span_vtime_seconds_total{span=}``  cumulative *virtual*
  seconds when the span was given a clock (deterministic);
- ``repro_span_calls_total{span=}``  invocation count (deterministic).

Spans are **disabled by default** and every call site guards on the
module flag, so the instrumented hot paths (per-packet middlebox
processing, endpoint delivery) pay one attribute check when telemetry
is off — which is what keeps the no-flags executor benchmark within
the <5% overhead budget and golden traces byte-identical.

Phase names form a hierarchy by convention (``parent/child``). Nested
spans are *inclusive*: a parent's wall time contains its children's.
The ``profile`` command's breakdown therefore sums only sibling phases
(``trial/*``), which are contiguous brackets of ``trial`` and account
for ≈99% of its wall time by construction.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import Counter, active_registry

__all__ = [
    "ENABLED",
    "enable",
    "enabled",
    "profiling",
    "span",
    "add",
    "SPAN_SECONDS",
    "SPAN_VTIME",
    "SPAN_CALLS",
]

#: Global gate. Hot paths read this attribute directly; everything else
#: goes through :func:`span`, which no-ops when it is False.
ENABLED = False

SPAN_SECONDS = Counter(
    "repro_span_seconds_total",
    "Cumulative wall-clock seconds spent inside each span",
    ("span",),
    deterministic=False,
)
SPAN_VTIME = Counter(
    "repro_span_vtime_seconds_total",
    "Cumulative virtual (simulated) seconds elapsed inside each span",
    ("span",),
)
SPAN_CALLS = Counter(
    "repro_span_calls_total",
    "Number of times each span was entered",
    ("span",),
)


def enabled() -> bool:
    """Whether span timing is currently on."""
    return ENABLED


def enable(on: bool = True) -> None:
    """Turn span timing on or off process-wide."""
    global ENABLED
    ENABLED = on


@contextmanager
def profiling() -> Iterator[None]:
    """Enable spans for the duration of a block (restores prior state)."""
    global ENABLED
    previous = ENABLED
    ENABLED = True
    try:
        yield
    finally:
        ENABLED = previous


def add(name: str, wall: float, vtime: Optional[float] = None, calls: int = 1) -> None:
    """Record an already-measured span (hot paths time inline and call
    this, avoiding context-manager overhead per packet)."""
    registry = active_registry()
    key = f"span={name}"
    registry._inc(SPAN_SECONDS._family, key, wall)
    registry._inc(SPAN_CALLS._family, key, calls)
    if vtime is not None:
        registry._inc(SPAN_VTIME._family, key, vtime)


class _NullSpan:
    """Reusable no-op context manager for disabled spans.

    Returned by :func:`span` when spans are off: entering the disabled
    path costs one attribute check plus two trivial method calls, with
    no generator frame allocated per call (``span`` brackets run four
    times per trial, so the cold path feels this).
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


@contextmanager
def _span_impl(name: str, clock: Any = None) -> Iterator[None]:
    v0 = clock.now if clock is not None else None
    t0 = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - t0
        vtime = (clock.now - v0) if clock is not None else None
        add(name, wall, vtime)


def span(name: str, clock: Any = None):
    """Bracket a phase. ``clock`` is any object with a ``.now`` attribute
    (the discrete-event scheduler) whose delta is recorded as virtual
    time. A no-op when spans are disabled."""
    if not ENABLED:
        return _NULL_SPAN
    return _span_impl(name, clock)
