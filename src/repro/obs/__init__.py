"""``repro.obs`` — the unified observability subsystem.

Four parts, all dependency-free and deterministic-by-construction:

- :mod:`~repro.obs.metrics` — labeled Counters/Gauges/Histograms whose
  snapshots are plain dicts that merge associatively, so process-pool
  workers return their snapshot next to trial results and the executor
  folds them into one run-level view;
- :mod:`~repro.obs.spans` — phase/timer spans (wall + virtual time),
  off by default, breaking a trial into spec decode / build / simulate /
  finalize and timing executor batches, cache lookups, and GA
  generations;
- :mod:`~repro.obs.runlog` — structured JSONL run logs with a
  content-derived run-id and a bounded flight recorder that dumps the
  last N trace events on a trial exception or a golden-verdict
  disagreement;
- :mod:`~repro.obs.export` — JSON and Prometheus-text exposition into
  a ``--telemetry DIR`` artifact tree.

Nothing in here imports the simulator; instrumented modules import
``repro.obs`` (never the other way around), so the subsystem stays a
leaf and cannot create import cycles.
"""

from . import metrics, spans
from .export import (
    deterministic_view,
    snapshot_to_prometheus,
    write_metrics_json,
    write_telemetry,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    collecting,
    default_registry,
    merge_snapshots,
)
from .profile import ProfileResult, format_profile, profile_run
from .runlog import FlightRecorder, RunLog, activate, active_runlog, run_id_for

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "MetricsRegistry",
    "ProfileResult",
    "RunLog",
    "activate",
    "active_registry",
    "active_runlog",
    "collecting",
    "default_registry",
    "deterministic_view",
    "format_profile",
    "merge_snapshots",
    "metrics",
    "profile_run",
    "run_id_for",
    "snapshot_to_prometheus",
    "spans",
    "write_metrics_json",
    "write_telemetry",
]
