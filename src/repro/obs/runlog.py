"""Structured JSONL run logs with a deterministic run-id and a flight
recorder.

Every attributable measurement effort (the paper's §6 follow-ups, the
Turkmenistan-scale studies in PAPERS.md) rests on one discipline: every
probe is logged with enough context to re-run it. A :class:`RunLog`
records one JSON line per trial — spec hash, seed, outcome, censor
verdict count — plus run-level events, and serializes them with sorted
keys so that **two identical runs produce byte-identical files modulo
the single ``wall`` field** (the only wall-clock value in a record).

The run-id is derived from the *content* of the run — the SHA-256 over
the sorted set of spec hashes — never from wall time or pids, so the
same experiment always logs under the same id and artifacts from
repeated runs are diffable and content-addressable.

The flight recorder handles the "what just happened?" case: a bounded
ring of the last N trace events is dumped into the log when a trial
raises, or when a censor verdict disagrees with a pinned golden
expectation (:meth:`RunLog.check_golden`). The ring holds compact
deterministic event summaries, not packet copies, so keeping it armed
costs nothing on the happy path.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "FLIGHT_RING_SIZE",
    "FlightRecorder",
    "RunLog",
    "active_runlog",
    "activate",
    "run_id_for",
    "trace_tail",
]

#: Default flight-recorder depth (last N trace events kept).
FLIGHT_RING_SIZE = 32


def run_id_for(spec_hashes: Iterable[str]) -> str:
    """Deterministic run identifier: SHA-256 over the sorted hash set.

    Depends only on *which* trials the run comprises — not submission
    order, wall clock, host, or worker count.
    """
    hasher = hashlib.sha256()
    for digest in sorted(set(spec_hashes)):
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()[:16]


def _event_summary(event) -> Dict[str, Any]:
    """Compact deterministic dict for one trace event (no packet copies)."""
    out: Dict[str, Any] = {
        "t": round(event.time, 9),
        "kind": event.kind,
        "at": event.location,
    }
    if event.detail:
        out["detail"] = event.detail
    packet = event.packet
    if packet is not None:
        out["packet"] = repr(packet)
    return out


def trace_tail(trace, limit: int = FLIGHT_RING_SIZE) -> List[Dict[str, Any]]:
    """The last ``limit`` events of a trace as deterministic summaries."""
    events = trace.events if trace is not None else []
    return [_event_summary(event) for event in events[-limit:]]


class FlightRecorder:
    """Bounded ring of recent event summaries (crash-dump context)."""

    def __init__(self, size: int = FLIGHT_RING_SIZE) -> None:
        self.size = size
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=size)

    def push(self, summary: Dict[str, Any]) -> None:
        """Append one event summary (oldest entries fall off the ring)."""
        self._ring.append(summary)

    def feed_trace(self, trace) -> None:
        """Load the tail of a trace into the ring."""
        for summary in trace_tail(trace, self.size):
            self._ring.append(summary)

    def dump(self) -> List[Dict[str, Any]]:
        """Snapshot the ring, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class RunLog:
    """Buffered structured log for one run (write once, at the end).

    Records are buffered in memory because the run-id — which every
    line carries — is derived from the full spec-hash set, known only
    once all trials are submitted. Buffering also lets :meth:`write`
    emit lines in deterministic submission order regardless of worker
    scheduling.
    """

    def __init__(self, flight_size: int = FLIGHT_RING_SIZE) -> None:
        self._records: List[Dict[str, Any]] = []
        self._spec_hashes: List[str] = []
        self.flight = FlightRecorder(flight_size)
        self.anomalies = 0

    # -- recording ------------------------------------------------------

    def record(self, event: str, **fields: Any) -> None:
        """Append one structured record (``wall`` is stamped at write)."""
        record = {"event": event}
        record.update(fields)
        self._records.append(record)

    def record_trial(self, index: int, spec, result, cached: bool = False) -> None:
        """Log one trial's spec identity and outcome."""
        digest = spec.spec_hash()
        self._spec_hashes.append(digest)
        self.record(
            "trial",
            seq=index,
            spec=digest,
            country=spec.country,
            protocol=spec.protocol,
            seed=spec.seed,
            outcome=result.outcome,
            succeeded=bool(result.succeeded),
            censored=bool(result.censored),
            cached=bool(cached),
        )

    def record_exception(self, spec, exc: BaseException, trace=None) -> None:
        """Flight-dump the trace tail around a trial that raised."""
        self.anomalies += 1
        self.record(
            "flight_dump",
            reason="trial raised",
            error=f"{type(exc).__name__}: {exc}",
            spec=spec.spec_hash() if spec is not None else None,
            events=trace_tail(trace) if trace is not None else self.flight.dump(),
        )

    def check_golden(self, spec, result, expected_censored: bool, trace=None) -> bool:
        """Compare a censor verdict against a golden expectation.

        Returns True when they agree; on disagreement, dumps the last N
        trace events so the divergence is explainable without a rerun.
        """
        if bool(result.censored) == bool(expected_censored):
            return True
        self.anomalies += 1
        self.record(
            "flight_dump",
            reason="censor verdict disagrees with golden trace",
            spec=spec.spec_hash() if spec is not None else None,
            expected_censored=bool(expected_censored),
            observed_censored=bool(result.censored),
            outcome=result.outcome,
            events=trace_tail(trace) if trace is not None else self.flight.dump(),
        )
        return False

    # -- identity / output ----------------------------------------------

    @property
    def run_id(self) -> str:
        """Content-derived run identifier (see :func:`run_id_for`)."""
        return run_id_for(self._spec_hashes)

    @property
    def spec_hashes(self) -> List[str]:
        """Spec hashes of every logged trial, in submission order."""
        return list(self._spec_hashes)

    def lines(self, wall_clock=time.time) -> Iterator[str]:
        """Serialized records: sorted-key JSON, one per line.

        ``wall`` is the only non-deterministic field; determinism tests
        and CI diffs strip or normalize it.
        """
        run = self.run_id
        for record in self._records:
            payload = dict(record)
            payload["run"] = run
            payload["wall"] = wall_clock()
            yield json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def write(self, path, wall_clock=time.time) -> int:
        """Write the JSONL file; returns the number of records."""
        count = 0
        with open(path, "w") as handle:
            for line in self.lines(wall_clock):
                handle.write(line + "\n")
                count += 1
        return count


# ---------------------------------------------------------------------------
# Active-runlog scoping (how deep code reaches the log without plumbing)

_ACTIVE: Optional[RunLog] = None


def active_runlog() -> Optional[RunLog]:
    """The runlog trial execution should report into, if any."""
    return _ACTIVE


@contextmanager
def activate(runlog: Optional[RunLog]) -> Iterator[Optional[RunLog]]:
    """Make ``runlog`` the active sink for the duration of a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = runlog
    try:
        yield runlog
    finally:
        _ACTIVE = previous
