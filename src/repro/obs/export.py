"""Telemetry exposition: JSON snapshots, Prometheus text, artifact tree.

``--telemetry DIR`` turns one run into a self-describing artifact tree:

    DIR/
      run.json                     run-id, command context, RunStats,
                                   cache stats
      metrics.json                 full metric snapshot (all families)
      metrics.deterministic.json   only families flagged deterministic —
                                   byte-identical across identical runs;
                                   the CI determinism job diffs this file
      metrics.prom                 Prometheus text exposition (0.0.4),
                                   scrape-ready / pushgateway-ready
      runlog.jsonl                 per-trial structured log + flight
                                   dumps (see repro.obs.runlog)

``--metrics-json FILE`` writes just the snapshot. Both serializations
are sorted-key JSON, so identical runs produce identical bytes (modulo
the wall-clock fields, which live only in non-deterministic families,
``run.json`` timings, and runlog ``wall`` fields).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

from .metrics import parse_label_key
from .runlog import RunLog

__all__ = [
    "deterministic_view",
    "snapshot_to_prometheus",
    "write_metrics_json",
    "write_telemetry",
]


def deterministic_view(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """Only the families whose values replay identically across runs.

    Virtual-time counters, event counts, and verdict tallies survive;
    wall-clock timings and pid-labeled worker metrics are dropped. Two
    runs of the same specs and seeds must produce equal views — CI
    enforces exactly that with a byte diff.
    """
    return {
        name: entry
        for name, entry in snapshot.items()
        if entry.get("deterministic", True)
    }


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_prom_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def snapshot_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters keep their ``_total`` names, gauges expose their raw value,
    histograms expand to cumulative ``_bucket{le=}`` series plus
    ``_sum``/``_count``. Families and samples are emitted in sorted
    order so the exposition is deterministic too.
    """
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {_prom_escape(entry['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        samples = entry["samples"]
        for key in sorted(samples):
            pairs = parse_label_key(key)
            value = samples[key]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_prom_labels(pairs)} {_format_number(value)}")
                continue
            # Histogram: cumulative buckets, then +Inf, sum, count.
            bounds = entry.get("buckets", [])
            cumulative = 0
            for bound, count in zip(bounds, value["buckets"]):
                cumulative += count
                le_pairs = pairs + [("le", _format_number(bound))]
                lines.append(
                    f"{name}_bucket{_prom_labels(le_pairs)} {cumulative}"
                )
            inf_pairs = pairs + [("le", "+Inf")]
            lines.append(f"{name}_bucket{_prom_labels(inf_pairs)} {value['count']}")
            lines.append(f"{name}_sum{_prom_labels(pairs)} {_format_number(value['sum'])}")
            lines.append(f"{name}_count{_prom_labels(pairs)} {value['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def write_metrics_json(path: Union[str, pathlib.Path], snapshot: Mapping[str, Any]) -> None:
    """Write one snapshot as sorted-key JSON."""
    pathlib.Path(path).write_text(
        json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
    )


def write_telemetry(
    directory: Union[str, pathlib.Path],
    snapshot: Mapping[str, Any],
    runlog: Optional[RunLog] = None,
    run_meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, str]:
    """Write the full artifact tree; returns {artifact name: path}.

    ``run_meta`` carries run-level context (command, RunStats dict,
    cache stats); the run-id is taken from the runlog when present.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}

    meta: Dict[str, Any] = dict(run_meta or {})
    if runlog is not None:
        meta.setdefault("run_id", runlog.run_id)
        meta.setdefault("trials_logged", len(runlog.spec_hashes))
        meta.setdefault("anomalies", runlog.anomalies)

    path = root / "run.json"
    path.write_text(json.dumps(meta, sort_keys=True, indent=2) + "\n")
    written["run.json"] = str(path)

    path = root / "metrics.json"
    write_metrics_json(path, snapshot)
    written["metrics.json"] = str(path)

    path = root / "metrics.deterministic.json"
    write_metrics_json(path, deterministic_view(snapshot))
    written["metrics.deterministic.json"] = str(path)

    path = root / "metrics.prom"
    path.write_text(snapshot_to_prometheus(snapshot))
    written["metrics.prom"] = str(path)

    if runlog is not None:
        path = root / "runlog.jsonl"
        runlog.write(path)
        written["runlog.jsonl"] = str(path)

    return written
