"""Dependency-free labeled metrics with associatively-mergeable snapshots.

The observability layer has one structural requirement the usual metrics
libraries do not meet: trials execute in **worker processes**, and every
worker's counters must fold into one run-level view without caring how
the trials were sharded. Snapshots here are therefore plain JSON-able
dicts with an associative, commutative :func:`merge_snapshots` — summing
a worker's counters into the parent gives the same totals whether the
run used one worker or eight, and whether snapshots arrive per trial,
per chunk, or per batch. That algebra is what the telemetry parity
acceptance check (``--workers 2`` equals ``--workers 1`` on every
deterministic counter) rests on.

Three metric kinds:

- :class:`Counter` — monotone sums (merge: ``+``);
- :class:`Gauge` — point-in-time values with an explicit associative
  aggregation (``max``, ``min``, or ``sum``) chosen at declaration;
- :class:`Histogram` — fixed-bucket distributions (merge: element-wise
  ``+`` on bucket counts, sum, and count).

Metric *handles* are declared once at module import time and carry only
the schema; **storage** lives in whichever :class:`MetricsRegistry` is
active when an increment happens. Recording is live only inside a
``collecting()`` scope — outside one, every handle drops its increment
after a single module-global check, which is what keeps the always-on
instrumentation of per-packet hot paths effectively free when no
telemetry output was requested. ``collecting()`` pushes an isolated
registry so a trial's metrics can be snapshotted and shipped across a
process boundary:

    REQS = Counter("repro_requests_total", "Requests seen", ("verb",))

    with collecting() as reg:
        REQS.inc(verb="GET")
    snapshot = reg.snapshot()        # plain dict, picklable/JSON-able

Families carry a ``deterministic`` flag: virtual-time and count metrics
are deterministic (two identical runs produce byte-identical values),
wall-clock timings and pid-labeled metrics are not. Exporters use the
flag to emit a separable artifact that CI can diff between runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricSchemaError",
    "active_registry",
    "collecting",
    "default_registry",
    "is_collecting",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-oriented; +Inf implied).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_GAUGE_AGGS = ("max", "min", "sum")


class MetricSchemaError(ValueError):
    """Raised when metric declarations or snapshots disagree on schema."""


def _sanitize_label_value(value: Any) -> str:
    """Canonical label-value string, safe for the ``k=v,k=v`` sample key."""
    text = str(value)
    for bad in (",", "=", "\n"):
        if bad in text:
            text = text.replace(bad, "_")
    return text


class _Family:
    """Schema of one metric family (shared by all handles and snapshots)."""

    __slots__ = ("name", "kind", "help", "labelnames", "agg", "buckets", "deterministic")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        agg: str = "sum",
        buckets: Tuple[float, ...] = (),
        deterministic: bool = True,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.agg = agg
        self.buckets = buckets
        self.deterministic = deterministic

    def meta(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "deterministic": self.deterministic,
        }
        if self.kind == "gauge":
            out["agg"] = self.agg
        if self.kind == "histogram":
            out["buckets"] = list(self.buckets)
        return out


#: Process-global family schemas, keyed by metric name. Declaring the
#: same name twice must agree on schema (re-imports are idempotent).
_FAMILIES: Dict[str, _Family] = {}


def _register(family: _Family) -> _Family:
    existing = _FAMILIES.get(family.name)
    if existing is not None:
        if (
            existing.kind != family.kind
            or existing.labelnames != family.labelnames
            or existing.agg != family.agg
            or existing.buckets != family.buckets
        ):
            raise MetricSchemaError(
                f"metric {family.name!r} re-declared with a different schema"
            )
        return existing
    _FAMILIES[family.name] = family
    return family


class MetricsRegistry:
    """Storage for metric samples; one per process scope or collection.

    Samples are keyed ``family name -> label string -> value`` where the
    label string is ``"k=v,k=v"`` in declared label order (``""`` for
    unlabeled metrics). Counter/gauge values are numbers; histogram
    values are ``{"buckets": [...], "sum": s, "count": n}`` dicts.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, Dict[str, Any]] = {}

    # -- recording (called by metric handles) ---------------------------

    def _inc(self, family: _Family, key: str, amount) -> None:
        samples = self._samples.get(family.name)
        if samples is None:
            samples = self._samples[family.name] = {}
        samples[key] = samples.get(key, 0) + amount

    def _gauge(self, family: _Family, key: str, value) -> None:
        samples = self._samples.get(family.name)
        if samples is None:
            samples = self._samples[family.name] = {}
        current = samples.get(key)
        if current is None:
            samples[key] = value
        elif family.agg == "max":
            samples[key] = max(current, value)
        elif family.agg == "min":
            samples[key] = min(current, value)
        else:  # sum
            samples[key] = current + value

    def _observe(self, family: _Family, key: str, value) -> None:
        samples = self._samples.get(family.name)
        if samples is None:
            samples = self._samples[family.name] = {}
        cell = samples.get(key)
        if cell is None:
            cell = samples[key] = {
                "buckets": [0] * (len(family.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        index = len(family.buckets)
        for i, bound in enumerate(family.buckets):
            if value <= bound:
                index = i
                break
        cell["buckets"][index] += 1
        cell["sum"] += value
        cell["count"] += 1

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every sample (JSON-able, picklable).

        The result embeds each family's schema so snapshots are
        self-describing across process boundaries and on disk.
        """
        out: Dict[str, Any] = {}
        for name, samples in self._samples.items():
            family = _FAMILIES[name]
            copied = {
                key: (dict(value, buckets=list(value["buckets"]))
                      if isinstance(value, dict) else value)
                for key, value in samples.items()
            }
            entry = family.meta()
            entry["samples"] = copied
            out[name] = entry
        return out

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot's samples into this registry (associative)."""
        for name, entry in snapshot.items():
            family = _FAMILIES.get(name)
            if family is None:
                # A snapshot from a process that declared families this
                # one never imported: adopt the embedded schema.
                family = _register(
                    _Family(
                        name,
                        entry["kind"],
                        entry.get("help", ""),
                        tuple(entry.get("labelnames", ())),
                        agg=entry.get("agg", "sum"),
                        buckets=tuple(entry.get("buckets", ())),
                        deterministic=entry.get("deterministic", True),
                    )
                )
            for key, value in entry["samples"].items():
                if family.kind == "counter":
                    self._inc(family, key, value)
                elif family.kind == "gauge":
                    self._gauge(family, key, value)
                else:
                    cell = self._samples.setdefault(name, {}).get(key)
                    if cell is None:
                        self._samples[name][key] = {
                            "buckets": list(value["buckets"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    else:
                        if len(cell["buckets"]) != len(value["buckets"]):
                            raise MetricSchemaError(
                                f"histogram {name!r} bucket count mismatch"
                            )
                        for i, c in enumerate(value["buckets"]):
                            cell["buckets"][i] += c
                        cell["sum"] += value["sum"]
                        cell["count"] += value["count"]

    def clear(self) -> None:
        """Drop every sample (schemas are process-global and remain)."""
        self._samples.clear()

    def value(self, name: str, **labels: Any) -> Any:
        """Read one sample (testing/report convenience); None if absent."""
        family = _FAMILIES.get(name)
        if family is None:
            return None
        key = _label_key(family, labels)
        return self._samples.get(name, {}).get(key)

    def __bool__(self) -> bool:
        return bool(self._samples)


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge any number of snapshots into one (pure; order-independent).

    The merge is associative and commutative: counters and histograms
    sum, gauges combine under their declared aggregation. This is the
    fold the executor applies to per-worker snapshots.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# Active-registry scoping

_DEFAULT = MetricsRegistry()
_STACK: List[MetricsRegistry] = [_DEFAULT]
#: Number of live ``collecting()`` scopes. Handles drop increments when
#: zero, so uninstrumented runs pay one global check per event.
_DEPTH = 0


def default_registry() -> MetricsRegistry:
    """The stack-bottom registry. Handles record only inside a
    ``collecting()`` scope, so this stays empty unless explicitly
    collected into (``collecting(default_registry())``)."""
    return _DEFAULT


def active_registry() -> MetricsRegistry:
    """The registry increments currently land in."""
    return _STACK[-1]


def is_collecting() -> bool:
    """Whether at least one ``collecting()`` scope is active."""
    return _DEPTH > 0


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Route increments into an isolated registry for the duration.

    Used around each trial execution so its metrics can be snapshotted
    and returned alongside the result; nested scopes shadow outer ones
    (innermost wins), matching how the executor wraps a whole batch
    while workers wrap individual trials. Entering a scope also arms
    recording itself — outside any scope, handles drop increments.
    """
    global _DEPTH
    reg = registry if registry is not None else MetricsRegistry()
    _STACK.append(reg)
    _DEPTH += 1
    try:
        yield reg
    finally:
        _DEPTH -= 1
        _STACK.pop()


def _label_key(family: _Family, labels: Mapping[str, Any]) -> str:
    if not family.labelnames:
        if labels:
            raise MetricSchemaError(f"{family.name} takes no labels")
        return ""
    try:
        return ",".join(
            f"{name}={_sanitize_label_value(labels[name])}"
            for name in family.labelnames
        )
    except KeyError as exc:
        raise MetricSchemaError(
            f"{family.name} requires labels {family.labelnames}, got {sorted(labels)}"
        ) from None


def parse_label_key(key: str) -> List[Tuple[str, str]]:
    """Split a ``"k=v,k=v"`` sample key back into pairs (exporters)."""
    if not key:
        return []
    return [tuple(part.split("=", 1)) for part in key.split(",")]  # type: ignore[misc]


# ---------------------------------------------------------------------------
# Metric handles

class _Metric:
    """Base handle: schema only; storage resolves at record time."""

    __slots__ = ("_family",)
    _kind = ""

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        deterministic: bool = True,
        **extra: Any,
    ) -> None:
        self._family = _register(
            _Family(
                name,
                self._kind,
                help,
                tuple(labelnames),
                deterministic=deterministic,
                **extra,
            )
        )

    @property
    def name(self) -> str:
        return self._family.name


class Counter(_Metric):
    """Monotone counter. ``inc(**labels)`` or prebind with ``labels()``."""

    _kind = "counter"

    def inc(self, amount=1, **labels: Any) -> None:
        """Add ``amount`` to this counter (dropped outside collection)."""
        if not _DEPTH:
            return
        _STACK[-1]._inc(self._family, _label_key(self._family, labels), amount)

    def labels(self, **labels: Any) -> "BoundCounter":
        """Prebind a label set (hot paths: one dict op per inc)."""
        return BoundCounter(self._family, _label_key(self._family, labels))


class BoundCounter:
    """A counter handle with its label key resolved ahead of time."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: _Family, key: str) -> None:
        self._family = family
        self._key = key

    def inc(self, amount=1) -> None:
        """Add ``amount`` under the prebound labels (hot-path variant)."""
        if not _DEPTH:
            return
        _STACK[-1]._inc(self._family, self._key, amount)


class Gauge(_Metric):
    """Point-in-time value with an associative cross-worker aggregation."""

    _kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        agg: str = "max",
        deterministic: bool = True,
    ) -> None:
        if agg not in _GAUGE_AGGS:
            raise MetricSchemaError(f"gauge agg must be one of {_GAUGE_AGGS}")
        super().__init__(name, help, labelnames, deterministic=deterministic, agg=agg)

    def set(self, value, **labels: Any) -> None:
        """Record ``value`` (merged under the declared aggregation)."""
        if not _DEPTH:
            return
        _STACK[-1]._gauge(self._family, _label_key(self._family, labels), value)


class Histogram(_Metric):
    """Fixed-bucket distribution (bucket counts merge element-wise)."""

    _kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        deterministic: bool = True,
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise MetricSchemaError("histogram needs at least one bucket bound")
        super().__init__(
            name, help, labelnames, deterministic=deterministic, buckets=bounds
        )

    def observe(self, value, **labels: Any) -> None:
        """Count ``value`` into its bucket and the running sum/count."""
        if not _DEPTH:
            return
        _STACK[-1]._observe(
            self._family, _label_key(self._family, labels), value
        )
