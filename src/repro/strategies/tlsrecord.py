"""Record-level TLS serving strategies against SNI-filtering censors.

SNI-era boxes (:mod:`repro.censors.sni`) defeat the paper's client-side
segmentation trick by reassembling the ClientHello, so the server-side
answers move down a layer. Three families, all still requiring zero
client modification:

- **Record splitting** (:func:`record_split_strategy`, library #12): the
  ServerHello is re-encoded as two TLS records at an attacker-chosen
  offset. Total byte count is unchanged — no TCP-level desync — but a
  censor that one-shot-parses the server's first flight for a complete
  ServerHello (South Korea's confirmation step) sees a truncated
  handshake message and stands down.
- **Handshake segmentation** (:func:`segmentation_strategy`, #13): the
  ServerHello record is intact but carried across two TCP segments, so
  no single server packet contains a parseable handshake.
- **Connection migration** (:func:`migration_strategy`, #14/#15, and the
  genuine stack-level :func:`install_migration`): the server withholds
  its SYN+ACK until the censor's per-flow tracking window — anchored at
  the client's first SYN — has lapsed, then completes the handshake
  unobserved. The DSL form drops early SYN+ACK transmissions and rides
  the retransmission backoff; the stack hook re-binds the passive open
  and answers after an exact virtual delay.

ECH/ESNI-tolerant serving needs no strategy at all: the server's
``parse_esni`` hook already recovers the name from an
``encrypted_sni`` ClientHello, so an ESNI workload sails past any box
that only reads plaintext SNI (and is exactly what strict boxes like
Russia's drop on sight).
"""

from __future__ import annotations

from ..core import SERVER_STRATEGIES, Strategy
from ..tcpstack import Host

__all__ = [
    "SNI_STRATEGY_NUMBERS",
    "install_migration",
    "migration_strategy",
    "record_split_strategy",
    "segmentation_strategy",
]

#: The library numbers of the SNI-era additions (Table-2 numbering
#: continues past the paper's 11).
SNI_STRATEGY_NUMBERS = (12, 13, 14, 15)


def record_split_strategy(offset: int = 2) -> Strategy:
    """Split the first TLS record of server payload packets at ``offset``.

    ``offset=2`` (the library's #12) leaves a 2-byte first record —
    enough to be a syntactically valid record, never enough to complete
    the ServerHello's declared handshake length.
    """
    if offset < 1:
        raise ValueError("record split offset must be >= 1")
    return Strategy.parse(
        f"[TCP:flags:PA]-recordsplit{{{offset}}}-| \\/",
        name=f"tls-record-split-{offset}",
    )


def segmentation_strategy(offset: int = 3) -> Strategy:
    """Carry server handshake bytes across two TCP segments at ``offset``.

    ``offset=3`` (the library's #13) cuts inside the 5-byte TLS record
    header, so neither segment alone contains a parseable record.
    """
    if offset < 1:
        raise ValueError("segmentation offset must be >= 1")
    return Strategy.parse(
        f"[TCP:flags:PA]-fragment{{tcp:{offset}:True}}-| \\/",
        name=f"tls-segmentation-{offset}",
    )


def migration_strategy(stalls: int = 2) -> Strategy:
    """Withhold the first ``stalls`` SYN+ACK transmissions (DSL form).

    Rides the SYN+ACK retransmission backoff (0.4 s base RTO): two
    stalls put the first on-wire SYN+ACK at ~1.2 virtual seconds (past
    South Korea's 1 s tracking window, the library's #14); three put it
    at ~2.8 s (past Russia's 2 s window as well, #15).
    """
    if stalls < 1:
        raise ValueError("migration needs at least one stalled SYN+ACK")
    return Strategy.parse(
        f"[TCP:flags:SA]-stall{{{stalls}}}-| \\/",
        name=f"tls-migration-{stalls}",
    )


def install_migration(host: Host, delay: float) -> None:
    """Genuine stack-level migration: re-bind passive opens on ``host``.

    Every accepted connection goes dark for ``delay`` virtual seconds
    before the (re-bound) socket emits its SYN+ACK — the exact-delay
    equivalent of :func:`migration_strategy`, with no Geneva engine
    involved. Client SYN retransmissions during the dark period get no
    reply, matching a socket that no longer exists.
    """
    if delay <= 0:
        raise ValueError("migration delay must be positive")

    def hook(endpoint) -> None:
        endpoint.accept_delay = delay

    host.accept_hooks.append(hook)


def _check_library_alignment() -> None:
    """The toolkit's defaults must print exactly the library's DSL."""
    assert str(record_split_strategy(2)) == SERVER_STRATEGIES[12].dsl.strip()
    assert str(segmentation_strategy(3)) == SERVER_STRATEGIES[13].dsl.strip()
    assert str(migration_strategy(2)) == SERVER_STRATEGIES[14].dsl.strip()
    assert str(migration_strategy(3)) == SERVER_STRATEGIES[15].dsl.strip()
