"""Protocol-layer strategy toolkits.

:mod:`repro.core.strategies` holds the paper's numbered Table 2 library;
this package holds *toolkits* that build strategies for specific
protocol layers. Currently: :mod:`repro.strategies.tlsrecord`, the
record-level and connection-migration answers to SNI-era censors.
"""

from .tlsrecord import (
    SNI_STRATEGY_NUMBERS,
    install_migration,
    migration_strategy,
    record_split_strategy,
    segmentation_strategy,
)

__all__ = [
    "SNI_STRATEGY_NUMBERS",
    "install_migration",
    "migration_strategy",
    "record_split_strategy",
    "segmentation_strategy",
]
