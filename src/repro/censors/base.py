"""Shared censor plumbing: flow keys, injection helpers, event counting.

All censors are :class:`~repro.netsim.Middlebox` subclasses. On-path
censors (GFW, India) forward everything and inject; in-path censors
(Iran's blackholing, Kazakhstan's MITM) may also drop.
"""

from __future__ import annotations

from typing import Tuple

from ..netsim import DIRECTION_C2S, Middlebox, PathContext
from ..obs.metrics import Counter
from ..packets import Packet, make_tcp_packet

__all__ = ["Censor", "flow_key", "client_oriented_key"]

#: Every censorship action, by censor and stated reason. Deterministic:
#: verdicts depend only on the spec and seed, never on wall time.
_CENSOR_VERDICTS = Counter(
    "repro_censor_verdicts_total",
    "Censorship actions taken, by censor and reason",
    ("censor", "reason"),
)

FlowKey = Tuple[str, int, str, int]


def flow_key(packet: Packet) -> FlowKey:
    """Undirected flow key (canonical ordering of the two endpoints).

    Hot path: called for every packet a censor observes, so the layers
    are read directly instead of through the Packet convenience
    properties (each property is a Python-level call).
    """
    ip = packet.ip
    transport = packet.tcp
    if transport is None:
        transport = packet.udp
    src = ip.src
    dst = ip.dst
    sport = transport.sport
    dport = transport.dport
    if (src, sport) <= (dst, dport):
        return (src, sport, dst, dport)
    return (dst, dport, src, sport)


def client_oriented_key(client_ip: str, client_port: int, server_ip: str, server_port: int) -> FlowKey:
    """Flow key from explicit client/server endpoints."""
    a = (client_ip, client_port)
    b = (server_ip, server_port)
    first, second = (a, b) if a <= b else (b, a)
    return (first[0], first[1], second[0], second[1])


class Censor(Middlebox):
    """Base class for censor middleboxes.

    Attributes:
        censorship_events: Count of censorship actions taken this trial.
    """

    name = "censor"

    def __init__(self) -> None:
        self.censorship_events = 0

    # ------------------------------------------------------------------
    # Injection helpers

    def inject_rst_pair(
        self,
        ctx: PathContext,
        client_ip: str,
        client_port: int,
        server_ip: str,
        server_port: int,
        seq_to_client: int,
        seq_to_server: int,
        ack_to_client: int = 0,
        ack_to_server: int = 0,
    ) -> None:
        """Inject teardown RSTs to both endpoints (on-path censorship)."""
        to_client = make_tcp_packet(
            src=server_ip,
            dst=client_ip,
            sport=server_port,
            dport=client_port,
            flags="RA",
            seq=seq_to_client,
            ack=ack_to_client,
        )
        to_server = make_tcp_packet(
            src=client_ip,
            dst=server_ip,
            sport=client_port,
            dport=server_port,
            flags="RA",
            seq=seq_to_server,
            ack=ack_to_server,
        )
        ctx.inject(to_client, toward="client")
        ctx.inject(to_server, toward="server")

    def record_censorship(self, ctx: PathContext, packet: Packet, reason: str) -> None:
        """Count and trace a censorship action."""
        self.censorship_events += 1
        _CENSOR_VERDICTS.inc(censor=self.name, reason=reason)
        ctx.record("censor", packet, reason)

    @staticmethod
    def is_client_to_server(direction: str) -> bool:
        """Whether a packet travels from the in-country client outward."""
        return direction == DIRECTION_C2S
