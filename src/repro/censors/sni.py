"""SNI-filtering censor boxes: the TLS-metadata era.

Models the escalation past the paper's 2020-era censors: middleboxes that
key on the TLS ClientHello's Server Name Indication, as deployed in South
Korea (the SNIC RST-injector) and Russia (TSPU-style in-path filtering).
Unlike the paper's non-reassembling DPI, an :class:`SNICensor` *does*
reassemble the ClientHello across TCP segment boundaries — up to a
configurable byte budget and per-flow tracking window — so client-side
segmentation alone no longer evades it. The server-side answers live in
:mod:`repro.strategies.tlsrecord`.

Calibrations:

- :func:`southkorea_censor` — on-path, reassembling, *lenient*: a hello
  it cannot parse is given the benefit of the doubt. It fingerprints a
  blocked SNI, then confirms the flow is really TLS by parsing the
  server's first response for a complete ServerHello before injecting a
  burst of RSTs toward the client (dropping the confirming packet). That
  confirmation step is the box's exploitable quirk: record-split or
  segmented ServerHellos never parse, so the box stands down. It also
  trusts observed RSTs (without validating checksums) and purges flow
  state on them.
- :func:`russia_censor` — in-path and *strict*: the verdict fires on the
  reassembled ClientHello itself, unparseable or SNI-less (ESNI) hellos
  are dropped, and the flow is blackholed; injected RSTs tear down both
  ends. Observed RSTs are ignored (no teardown-insertion escape). Only
  outlasting its two-second flow-tracking window — deep connection
  migration — evades it.

Both anchor the tracking window at the client's *first* SYN and never
refresh it, so a server that stalls its SYN+ACKs past the window serves
the flow uninspected (the connection-migration evasion).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..apps.tls import (
    HANDSHAKE_SERVER_HELLO,
    SCAN_COMPLETE,
    SCAN_NEEDS_MORE,
    scan_client_hello,
    scan_tls_handshake,
)
from ..netsim import PathContext
from ..obs.metrics import Counter
from ..packets import Packet, make_tcp_packet
from .base import Censor, FlowKey, flow_key
from .keywords import KeywordSet, RUSSIA_KEYWORDS, SOUTHKOREA_KEYWORDS

__all__ = [
    "SNICensor",
    "southkorea_censor",
    "russia_censor",
    "SNI_REASSEMBLY_BYTES",
    "SOUTHKOREA_TRACKING_WINDOW",
    "RUSSIA_TRACKING_WINDOW",
]

#: Default per-flow reassembly budget (bytes of buffered ClientHello).
SNI_REASSEMBLY_BYTES = 8192

#: Seconds after the first SYN before each box evicts a flow's reassembly
#: state. South Korea's box is the shallower tracker, so a two-RTO stall
#: (~1.2 virtual seconds) already outlasts it; Russia's needs a three-RTO
#: stall (~2.8 s).
SOUTHKOREA_TRACKING_WINDOW = 1.0
RUSSIA_TRACKING_WINDOW = 2.0

#: Client packets swallowed by an armed strict-mode blackhole (the
#: verdict that armed it is counted in repro_censor_verdicts_total).
_SNI_BLACKHOLE_DROPS = Counter(
    "repro_sni_blackhole_drops_total",
    "Packets dropped by an SNI censor's post-verdict blackhole",
    ("censor",),
)

#: Reassembly give-ups, by censor and cause (window/bytes/invalid).
_SNI_GIVEUPS = Counter(
    "repro_sni_reassembly_giveups_total",
    "Flows an SNI censor stopped tracking without a verdict",
    ("censor", "cause"),
)


class _FlowState:
    """Reassembly state for one tracked client flow."""

    __slots__ = ("base_seq", "created", "segments", "buffered", "armed")

    def __init__(self, base_seq: int, created: float) -> None:
        self.base_seq = base_seq  # first client payload byte's seq
        self.created = created  # first-SYN time; never refreshed
        self.segments: Dict[int, bytes] = {}  # stream offset -> bytes
        self.buffered = 0
        self.armed = False  # blocked SNI seen; awaiting server confirm

    def add_segment(self, offset: int, data: bytes) -> None:
        previous = self.segments.get(offset)
        if previous is None or len(data) > len(previous):
            self.segments[offset] = data
            self.buffered += len(data) - (len(previous) if previous else 0)

    def assembled(self) -> bytes:
        """The contiguous byte prefix of the client stream seen so far."""
        end = 0
        parts: List[bytes] = []
        for offset in sorted(self.segments):
            segment = self.segments[offset]
            if offset > end:
                break  # gap: later bytes are unreachable for now
            if offset + len(segment) > end:
                parts.append(segment[end - offset :])
                end = offset + len(segment)
        return b"".join(parts)


class SNICensor(Censor):
    """A reassembling TLS-SNI filter with tunable strictness.

    Attributes:
        keywords: Blocked SNI hostnames (``keywords.sni_names``).
        tls_ports: Server ports treated as TLS.
        reassembly_bytes: Per-flow reassembly budget; flows exceeding it
            are abandoned (lenient) or blackholed (strict).
        tracking_window: Seconds after the first SYN before the box
            evicts the flow's state and stops inspecting it.
        rst_count: RSTs injected per direction on a verdict.
        rst_direction: ``"client"``, ``"server"``, or ``"both"``.
        strict: Drop-and-blackhole unparseable or SNI-less hellos instead
            of passing them.
        confirm_server_hello: Hold the verdict until a complete
            ServerHello is parsed from the server's first response (the
            South-Korea quirk server-side strategies exploit).
        honor_rst_teardown: Purge flow state when a RST is observed
            (without checksum validation — insertion packets count).
        blackhole_duration: Seconds a strict verdict blackholes the flow.
    """

    name = "sni"

    def __init__(
        self,
        keywords: KeywordSet,
        tls_ports: frozenset = frozenset({443}),
        reassembly_bytes: int = SNI_REASSEMBLY_BYTES,
        tracking_window: float = SOUTHKOREA_TRACKING_WINDOW,
        rst_count: int = 1,
        rst_direction: str = "both",
        strict: bool = False,
        confirm_server_hello: bool = False,
        honor_rst_teardown: bool = True,
        blackhole_duration: float = 60.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__()
        if rst_direction not in ("client", "server", "both"):
            raise ValueError(f"unknown rst_direction {rst_direction!r}")
        self.keywords = keywords
        self.tls_ports = tls_ports
        self.reassembly_bytes = reassembly_bytes
        self.tracking_window = tracking_window
        self.rst_count = rst_count
        self.rst_direction = rst_direction
        self.strict = strict
        self.confirm_server_hello = confirm_server_hello
        self.honor_rst_teardown = honor_rst_teardown
        self.blackhole_duration = blackhole_duration
        if name is not None:
            self.name = name
        self.flows: Dict[FlowKey, _FlowState] = {}
        self.ignored: Set[FlowKey] = set()
        self.blackholed: Dict[FlowKey, float] = {}

    # ------------------------------------------------------------------

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        tcp = packet.tcp
        if tcp is None:
            return [packet]
        key = flow_key(packet)
        c2s = self.is_client_to_server(direction)

        expiry = self.blackholed.get(key)
        if expiry is not None:
            if ctx.now >= expiry:
                del self.blackholed[key]
            elif c2s:
                _SNI_BLACKHOLE_DROPS.inc(censor=self.name)
                ctx.record("drop", packet, "sni-blackholed")
                return []

        state = self.flows.get(key)
        if state is not None and self.honor_rst_teardown and tcp.is_rst:
            # The box trusts wire RSTs without validating checksums: the
            # flow is gone, forget it (teardown-insertion evasion).
            del self.flows[key]
            self.ignored.add(key)
            _SNI_GIVEUPS.inc(censor=self.name, cause="rst-teardown")
            return [packet]

        if key in self.ignored:
            return [packet]

        if c2s and tcp.is_syn and packet.dport in self.tls_ports:
            if state is None:
                # Anchor the tracking window at the FIRST SYN; SYN
                # retransmissions never refresh it.
                self.flows[key] = _FlowState(
                    (tcp.seq + 1) & 0xFFFFFFFF, ctx.now
                )
            return [packet]

        if state is None:
            return [packet]

        if not c2s:
            if state.armed and packet.load:
                return self._confirm(packet, ctx, key, state)
            return [packet]

        if not packet.load:
            return [packet]
        return self._inspect_client_bytes(packet, ctx, key, state)

    # ------------------------------------------------------------------
    # Client-to-server: reassemble the ClientHello.

    def _inspect_client_bytes(
        self, packet: Packet, ctx: PathContext, key: FlowKey, state: _FlowState
    ) -> List[Packet]:
        tcp = packet.tcp
        if ctx.now - state.created > self.tracking_window:
            # The box only has so much per-flow memory: state is evicted
            # once the window lapses, strict or not — the opening
            # connection migration exploits exactly this.
            self._forget(key, "window-expired")
            return [packet]
        offset = (tcp.seq - state.base_seq) & 0xFFFFFFFF
        if offset > self.reassembly_bytes:
            return self._give_up(packet, ctx, key, "reassembly-overflow")
        state.add_segment(offset, packet.load)
        if state.buffered > self.reassembly_bytes:
            return self._give_up(packet, ctx, key, "reassembly-overflow")

        scan = scan_client_hello(state.assembled())
        if scan.status == SCAN_NEEDS_MORE:
            return [packet]  # keep buffering
        if scan.status == SCAN_COMPLETE and scan.server_name is not None:
            if scan.server_name in self.keywords.sni_names:
                return self._verdict(packet, ctx, key, state)
            self._forget(key, "benign-sni")
            return [packet]
        # Invalid bytes, or a complete hello without plaintext SNI (ESNI).
        if scan.status == SCAN_COMPLETE:
            cause = "esni" if scan.has_esni else "no-sni"
        else:
            cause = "invalid"
        return self._give_up(packet, ctx, key, cause)

    def _verdict(
        self, packet: Packet, ctx: PathContext, key: FlowKey, state: _FlowState
    ) -> List[Packet]:
        if self.confirm_server_hello:
            # Lenient boxes hold fire until the server's response proves
            # the flow really is TLS — the quirk record-level server-side
            # strategies exploit.
            state.armed = True
            return [packet]
        return self._censor_c2s(packet, ctx, key)

    def _give_up(
        self, packet: Packet, ctx: PathContext, key: FlowKey, cause: str
    ) -> List[Packet]:
        """A hello the box cannot (or will never) parse to a blocked SNI."""
        if self.strict:
            # Strict boxes drop what they cannot read.
            self.record_censorship(ctx, packet, f"strict-drop:{cause}")
            self.blackholed[key] = ctx.now + self.blackhole_duration
            del self.flows[key]
            return []
        self._forget(key, cause)
        return [packet]

    def _forget(self, key: FlowKey, cause: str) -> None:
        del self.flows[key]
        self.ignored.add(key)
        _SNI_GIVEUPS.inc(censor=self.name, cause=cause)

    # ------------------------------------------------------------------
    # Server-to-client: the lenient box's ServerHello confirmation.

    def _confirm(
        self, packet: Packet, ctx: PathContext, key: FlowKey, state: _FlowState
    ) -> List[Packet]:
        scan = scan_tls_handshake(packet.load, HANDSHAKE_SERVER_HELLO)
        if scan.status != SCAN_COMPLETE:
            # Record-split or segmented ServerHello: confirmation fails
            # on this box's one-shot parse, and it stands down for good.
            self._forget(key, "serverhello-unconfirmed")
            return [packet]
        del self.flows[key]
        self.ignored.add(key)
        self.record_censorship(ctx, packet, "blocked-sni-confirmed")
        self._inject_rsts(
            ctx,
            client_ip=packet.dst,
            client_port=packet.dport,
            server_ip=packet.src,
            server_port=packet.sport,
            seq_to_client=packet.tcp.seq,
            ack_to_client=packet.tcp.ack,
            seq_to_server=packet.tcp.ack,
            ack_to_server=packet.tcp.seq,
        )
        return []  # the confirming ServerHello never reaches the client

    def _censor_c2s(self, packet: Packet, ctx: PathContext, key: FlowKey) -> List[Packet]:
        """Strict/immediate verdict on the reassembled ClientHello."""
        self.record_censorship(ctx, packet, "blocked-sni")
        self.blackholed[key] = ctx.now + self.blackhole_duration
        del self.flows[key]
        self._inject_rsts(
            ctx,
            client_ip=packet.src,
            client_port=packet.sport,
            server_ip=packet.dst,
            server_port=packet.dport,
            seq_to_client=packet.tcp.ack,
            ack_to_client=packet.tcp.seq,
            seq_to_server=packet.tcp.seq,
            ack_to_server=packet.tcp.ack,
        )
        return []  # the offending hello segment is dropped

    def _inject_rsts(
        self,
        ctx: PathContext,
        client_ip: str,
        client_port: int,
        server_ip: str,
        server_port: int,
        seq_to_client: int,
        ack_to_client: int,
        seq_to_server: int,
        ack_to_server: int,
    ) -> None:
        for _ in range(self.rst_count):
            if self.rst_direction in ("client", "both"):
                ctx.inject(
                    make_tcp_packet(
                        src=server_ip,
                        dst=client_ip,
                        sport=server_port,
                        dport=client_port,
                        flags="RA",
                        seq=seq_to_client,
                        ack=ack_to_client,
                    ),
                    toward="client",
                )
            if self.rst_direction in ("server", "both"):
                ctx.inject(
                    make_tcp_packet(
                        src=client_ip,
                        dst=server_ip,
                        sport=client_port,
                        dport=server_port,
                        flags="RA",
                        seq=seq_to_server,
                        ack=ack_to_server,
                    ),
                    toward="server",
                )


def southkorea_censor() -> SNICensor:
    """South Korea's SNIC: lenient, confirm-then-RST, trusts wire RSTs."""
    return SNICensor(
        SOUTHKOREA_KEYWORDS,
        tracking_window=SOUTHKOREA_TRACKING_WINDOW,
        rst_count=3,
        rst_direction="client",
        strict=False,
        confirm_server_hello=True,
        honor_rst_teardown=True,
        name="southkorea",
    )


def russia_censor() -> SNICensor:
    """Russia's TSPU-style box: strict, in-path, blackholing, RST-deaf."""
    return SNICensor(
        RUSSIA_KEYWORDS,
        tracking_window=RUSSIA_TRACKING_WINDOW,
        rst_count=1,
        rst_direction="both",
        strict=True,
        confirm_server_hello=False,
        honor_rst_teardown=False,
        name="russia",
    )
