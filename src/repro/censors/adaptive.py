"""Adaptive censors: every censor model as an evolvable parameter vector.

The paper evaluates server-side strategies against *static* censor
models. Real censors retrain: the GFW patched the simultaneous-open bugs,
South Korea's SNIC grew reassembly, Russia's TSPU lengthened its flow
tracking. This module makes that escalation expressible by collapsing
each censor model's behavioural knobs into a :class:`CensorGenome` — a
picklable, JSON-able bag of bounded parameters with mutation and
crossover operators — and a :func:`build_censor` factory that turns a
genome back into a live censor box.

Design constraints, in priority order:

- **Baseline fidelity.** ``CensorGenome.baseline(country)`` must build a
  censor whose behaviour is bit-identical to the calibrated default
  (``make_censor`` with no parameters): every default parameter value
  reproduces the paper's calibration exactly, including RNG draw
  sequences.
- **Canonical form.** Genomes serialize to sorted compact JSON
  (:meth:`CensorGenome.canonical_key`), with floats rounded at
  construction time, so equal behaviours always hash equally — the
  co-evolution engine keys its pair memo and the trial cache on this.
- **Spec transparency.** A genome's ``params`` dict rides through
  :class:`repro.runtime.TrialSpec` options (``censor_params=...``)
  unchanged, so adaptive censors work with worker pools, the
  content-addressed result cache, and campaign shards with no runtime
  changes.

Per-country parameter menus (see :data:`CENSOR_PARAM_SPECS`):

- ``china`` — global resynchronization-entry scale (rules 1–3 of §5.1),
  TCP reassembly skill, DPI vigilance (shrinks the miss rate), and the
  HTTP box's residual-censorship window;
- ``india`` / ``iran`` / ``kazakhstan`` — DPI trigger depth (bytes of
  payload inspected) plus each box's probe-aggressiveness knobs: Airtel's
  follow-up RST count, Iran's blackhole duration, Kazakhstan's MITM
  duration and handshake-payload ignore threshold;
- ``southkorea`` / ``russia`` — the SNI boxes' reassembly window and byte
  budget, RST burst size, and the behavioural bits the record-level
  strategies exploit (ServerHello confirmation, RST teardown trust).
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .base import Censor
from .gfw import CHINA_PROFILES, BoxProfile, GreatFirewall
from .india import AirtelCensor
from .iran import BLACKHOLE_DURATION, IranCensor
from .kazakhstan import MITM_DURATION, PAYLOAD_IGNORE_THRESHOLD, KazakhstanCensor
from .keywords import RUSSIA_KEYWORDS, SOUTHKOREA_KEYWORDS
from .sni import (
    RUSSIA_TRACKING_WINDOW,
    SNI_REASSEMBLY_BYTES,
    SOUTHKOREA_TRACKING_WINDOW,
    SNICensor,
)

__all__ = [
    "ADAPTIVE_COUNTRIES",
    "CENSOR_PARAM_SPECS",
    "CensorGenome",
    "ParamSpec",
    "axis_probe_genomes",
    "build_censor",
    "seeded_censor_population",
]

#: Decimal places floats are rounded to at genome construction, so the
#: canonical JSON form is short and stable across platforms.
_FLOAT_DECIMALS = 6

#: The default payload inspection depth (bytes). Every workload in the
#: evaluation suite fits well inside it, so the default is behaviourally
#: identical to the unbounded inspection the static models perform.
_FULL_INSPECT_DEPTH = 2048


@dataclasses.dataclass(frozen=True)
class ParamSpec:
    """One evolvable censor parameter: its type, bounds, and default.

    Attributes:
        name: Parameter key as it appears in ``CensorGenome.params``.
        kind: ``"float"``, ``"int"``, or ``"bool"``.
        lo: Inclusive lower bound (numeric kinds).
        hi: Inclusive upper bound (numeric kinds).
        default: The calibrated paper value — the baseline genome.
    """

    name: str
    kind: str
    lo: float
    hi: float
    default: Union[float, int, bool]

    def clamp(self, value: Union[float, int, bool]) -> Union[float, int, bool]:
        """Coerce ``value`` to this parameter's type and bounds."""
        if self.kind == "bool":
            return bool(value)
        if self.kind == "int":
            return int(min(self.hi, max(self.lo, int(value))))
        return round(float(min(self.hi, max(self.lo, float(value)))), _FLOAT_DECIMALS)

    def perturb(self, value, rng: random.Random):
        """One mutation step away from ``value``, clamped to bounds."""
        if self.kind == "bool":
            return not bool(value)
        if self.kind == "int":
            step = rng.choice((-2, -1, 1, 2))
            return self.clamp(int(value) + step)
        sigma = (self.hi - self.lo) / 6.0
        return self.clamp(float(value) + rng.gauss(0.0, sigma))


#: Evolvable parameters per country, in canonical (sorted-name) order.
CENSOR_PARAM_SPECS: Dict[str, Tuple[ParamSpec, ...]] = {
    "china": (
        ParamSpec("reassembly_skill", "float", 0.0, 1.0, 0.0),
        ParamSpec("residual_duration", "float", 0.0, 240.0, 90.0),
        ParamSpec("resync_scale", "float", 0.0, 1.5, 1.0),
        ParamSpec("vigilance", "float", 0.0, 1.0, 0.0),
    ),
    "india": (
        ParamSpec("inspect_depth", "int", 64, 2048, _FULL_INSPECT_DEPTH),
        ParamSpec("rst_count", "int", 1, 5, 1),
    ),
    "iran": (
        ParamSpec("blackhole_duration", "float", 5.0, 240.0, BLACKHOLE_DURATION),
        ParamSpec("inspect_depth", "int", 64, 2048, _FULL_INSPECT_DEPTH),
    ),
    "kazakhstan": (
        ParamSpec("inspect_depth", "int", 64, 2048, _FULL_INSPECT_DEPTH),
        ParamSpec("mitm_duration", "float", 5.0, 60.0, MITM_DURATION),
        ParamSpec(
            "payload_ignore_threshold", "int", 2, 8, PAYLOAD_IGNORE_THRESHOLD
        ),
    ),
    "southkorea": (
        ParamSpec("confirm_server_hello", "bool", 0, 1, True),
        ParamSpec("honor_rst_teardown", "bool", 0, 1, True),
        ParamSpec(
            "reassembly_bytes", "int", 512, 65536, SNI_REASSEMBLY_BYTES
        ),
        ParamSpec("rst_count", "int", 1, 6, 3),
        ParamSpec(
            "tracking_window", "float", 0.25, 10.0, SOUTHKOREA_TRACKING_WINDOW
        ),
    ),
    "russia": (
        ParamSpec("blackhole_duration", "float", 5.0, 240.0, 60.0),
        ParamSpec("honor_rst_teardown", "bool", 0, 1, False),
        ParamSpec(
            "reassembly_bytes", "int", 512, 65536, SNI_REASSEMBLY_BYTES
        ),
        ParamSpec(
            "tracking_window", "float", 0.25, 10.0, RUSSIA_TRACKING_WINDOW
        ),
    ),
}

#: Countries with an adaptive parameterization (every censored country).
ADAPTIVE_COUNTRIES: Tuple[str, ...] = tuple(sorted(CENSOR_PARAM_SPECS))


def _spec_map(country: str) -> Dict[str, ParamSpec]:
    specs = CENSOR_PARAM_SPECS.get(country)
    if specs is None:
        raise ValueError(
            f"no adaptive parameterization for country {country!r} "
            f"(valid: {', '.join(ADAPTIVE_COUNTRIES)})"
        )
    return {spec.name: spec for spec in specs}


@dataclasses.dataclass
class CensorGenome:
    """One censor configuration as an evolvable, picklable genome.

    Attributes:
        country: Which censor model the parameters configure.
        params: Complete parameter map (every :class:`ParamSpec` for the
            country is present; values are clamped and canonically
            rounded at construction).
    """

    country: str
    params: Dict[str, Union[float, int, bool]] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        specs = _spec_map(self.country)
        unknown = set(self.params) - set(specs)
        if unknown:
            raise ValueError(
                f"unknown {self.country} censor parameters: "
                f"{', '.join(sorted(unknown))}"
            )
        normalized: Dict[str, Union[float, int, bool]] = {}
        for name in sorted(specs):
            spec = specs[name]
            value = self.params.get(name, spec.default)
            normalized[name] = spec.clamp(value)
        self.params = normalized

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def baseline(cls, country: str) -> "CensorGenome":
        """The calibrated paper configuration for ``country``."""
        return cls(country, {})

    @classmethod
    def from_dict(cls, data: Mapping) -> "CensorGenome":
        """Rebuild a genome from its :meth:`as_dict` form."""
        return cls(data["country"], dict(data.get("params", {})))

    def as_dict(self) -> Dict[str, object]:
        """Plain JSON-able form (round-trips through :meth:`from_dict`)."""
        return {"country": self.country, "params": dict(self.params)}

    # ------------------------------------------------------------------
    # Canonical form

    def canonical_key(self) -> str:
        """Deterministic string form: sorted-key compact JSON."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def is_baseline(self) -> bool:
        """Whether every parameter sits at its calibrated default."""
        specs = _spec_map(self.country)
        return all(
            self.params[name] == spec.clamp(spec.default)
            for name, spec in specs.items()
        )

    # ------------------------------------------------------------------
    # Evolutionary operators

    def mutate(self, rng: random.Random, operations: int = 1) -> "CensorGenome":
        """A mutated copy: ``operations`` single-parameter perturbations."""
        specs = _spec_map(self.country)
        names = sorted(specs)
        params = dict(self.params)
        for _ in range(max(1, operations)):
            name = rng.choice(names)
            params[name] = specs[name].perturb(params[name], rng)
        return CensorGenome(self.country, params)

    def crossover(self, other: "CensorGenome", rng: random.Random) -> "CensorGenome":
        """A uniform-crossover child of ``self`` and ``other``."""
        if other.country != self.country:
            raise ValueError(
                f"cannot cross {self.country!r} with {other.country!r}"
            )
        params = {
            name: (self.params[name] if rng.random() < 0.5 else other.params[name])
            for name in sorted(self.params)
        }
        return CensorGenome(self.country, params)

    def build(self, rng: Optional[random.Random] = None) -> Censor:
        """Instantiate the live censor this genome describes."""
        return build_censor(self.country, self.params, rng)


# ----------------------------------------------------------------------
# Genome -> censor factories


def _china_profiles(params: Mapping[str, float]) -> Dict[str, BoxProfile]:
    """Scale the calibrated GFW profiles by the genome's knobs.

    At default parameter values every arithmetic identity below is exact
    (``p * 1.0 == p``, ``p * (1 - 0.0) == p``), so the baseline genome's
    profiles — and therefore the GFW's RNG draw sequence — are
    bit-identical to :data:`~repro.censors.gfw.CHINA_PROFILES`.
    """
    scale = params["resync_scale"]
    skill = params["reassembly_skill"]
    vigilance = params["vigilance"]
    residual = params["residual_duration"]
    profiles: Dict[str, BoxProfile] = {}
    for name, profile in CHINA_PROFILES.items():
        profiles[name] = dataclasses.replace(
            profile,
            miss_prob=profile.miss_prob * (1.0 - vigilance),
            event_probs={
                event: min(1.0, prob * scale)
                for event, prob in profile.event_probs.items()
            },
            combo_probs={
                combo: min(1.0, prob * scale)
                for combo, prob in profile.combo_probs.items()
            },
            reassembly_fail_prob=profile.reassembly_fail_prob * (1.0 - skill),
            residual_duration=(
                residual if profile.residual_duration else profile.residual_duration
            ),
        )
    return profiles


def build_censor(
    country: str,
    params: Optional[Mapping[str, Union[float, int, bool]]] = None,
    rng: Optional[random.Random] = None,
) -> Censor:
    """Build the live censor for ``country`` configured by ``params``.

    ``params`` may be partial (missing keys take their calibrated
    defaults) — it is normalized through :class:`CensorGenome` first, so
    out-of-bounds values clamp and unknown keys raise. ``rng`` feeds the
    probabilistic censors (currently only China's GFW).
    """
    genome = CensorGenome(country, dict(params) if params else {})
    values = genome.params
    if country == "china":
        return GreatFirewall(
            rng=rng if rng is not None else random.Random(0),
            profiles=_china_profiles(values),
        )
    if country == "india":
        return AirtelCensor(
            inspect_depth=int(values["inspect_depth"]),
            rst_count=int(values["rst_count"]),
        )
    if country == "iran":
        return IranCensor(
            duration=float(values["blackhole_duration"]),
            inspect_depth=int(values["inspect_depth"]),
        )
    if country == "kazakhstan":
        return KazakhstanCensor(
            mitm_duration=float(values["mitm_duration"]),
            payload_ignore_threshold=int(values["payload_ignore_threshold"]),
            inspect_depth=int(values["inspect_depth"]),
        )
    if country == "southkorea":
        return SNICensor(
            SOUTHKOREA_KEYWORDS,
            tracking_window=float(values["tracking_window"]),
            reassembly_bytes=int(values["reassembly_bytes"]),
            rst_count=int(values["rst_count"]),
            rst_direction="client",
            strict=False,
            confirm_server_hello=bool(values["confirm_server_hello"]),
            honor_rst_teardown=bool(values["honor_rst_teardown"]),
            name="southkorea",
        )
    if country == "russia":
        return SNICensor(
            RUSSIA_KEYWORDS,
            tracking_window=float(values["tracking_window"]),
            reassembly_bytes=int(values["reassembly_bytes"]),
            rst_count=1,
            rst_direction="both",
            strict=True,
            confirm_server_hello=False,
            honor_rst_teardown=bool(values["honor_rst_teardown"]),
            blackhole_duration=float(values["blackhole_duration"]),
            name="russia",
        )
    raise ValueError(f"unknown country {country!r}")  # pragma: no cover


def axis_probe_genomes(country: str) -> List[CensorGenome]:
    """One genome per parameter extreme, in deterministic order.

    For every parameter (sorted by name) this yields the baseline genome
    with that single parameter pushed to its low then its high bound
    (booleans: flipped once), skipping probes identical to the baseline.
    Seeding a censor population with these axis-aligned extremes lets a
    short co-evolution run discover decisive single-knob escalations —
    e.g. ``resync_scale=0`` disabling the GFW's resynchronization rules —
    that a Gaussian mutation walk would take many generations to reach.
    """
    base = CensorGenome.baseline(country)
    probes: List[CensorGenome] = []
    for name, spec in sorted(_spec_map(country).items()):
        if spec.kind == "bool":
            extremes: Tuple[object, ...] = (not spec.default,)
        else:
            extremes = (spec.lo, spec.hi)
        for value in extremes:
            clamped = spec.clamp(value)
            if clamped == base.params[name]:
                continue
            probes.append(
                CensorGenome(country, {**base.params, name: clamped})
            )
    return probes


def seeded_censor_population(
    country: str, size: int, rng: random.Random
) -> List[CensorGenome]:
    """Baseline, then axis-extreme probes, then single-mutation variants.

    The first genome is always the calibrated baseline; the next slots
    are :func:`axis_probe_genomes` extremes (truncated to fit); any
    remaining slots are filled with random single mutations of the
    baseline drawn from ``rng``.
    """
    base = CensorGenome.baseline(country)
    population = [base] + axis_probe_genomes(country)
    population = population[:size]
    while len(population) < size:
        population.append(base.mutate(rng))
    return population
