"""Censored keywords, domains, and addresses used by the censor models.

These mirror the triggers the paper used to elicit censorship (§4.2):
URL keywords like ``ultrasurf`` in China, forbidden ``Host:`` domains in
India/Iran/Kazakhstan, forbidden SNI names (``www.wikipedia.org`` in
China, ``youtube.com`` in Iran), sensitive FTP filenames, and the GFW's
forbidden SMTP recipient ``xiazai@upup.info``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

__all__ = [
    "KeywordSet",
    "CHINA_KEYWORDS",
    "INDIA_KEYWORDS",
    "IRAN_KEYWORDS",
    "KAZAKHSTAN_KEYWORDS",
    "SOUTHKOREA_KEYWORDS",
    "RUSSIA_KEYWORDS",
]


@dataclass(frozen=True)
class KeywordSet:
    """Per-country censorship triggers.

    Attributes:
        http_keywords: Substrings censored when they appear in an HTTP
            request line (URL parameters — China's trigger).
        http_hosts: Domains censored in the HTTP ``Host:`` header.
        sni_names: Hostnames censored in the TLS SNI field.
        dns_names: Hostnames censored in DNS queries.
        ftp_keywords: Substrings censored in FTP command arguments.
        smtp_recipients: Email addresses censored in ``RCPT TO``.
    """

    http_keywords: FrozenSet[str] = frozenset()
    http_hosts: FrozenSet[str] = frozenset()
    sni_names: FrozenSet[str] = frozenset()
    dns_names: FrozenSet[str] = frozenset()
    ftp_keywords: FrozenSet[str] = frozenset()
    smtp_recipients: FrozenSet[str] = frozenset()


CHINA_KEYWORDS = KeywordSet(
    http_keywords=frozenset({"ultrasurf", "falun"}),
    http_hosts=frozenset({"www.wikipedia.org", "www.google.com"}),
    sni_names=frozenset({"www.wikipedia.org", "www.google.com"}),
    dns_names=frozenset({"www.wikipedia.org", "www.google.com"}),
    ftp_keywords=frozenset({"ultrasurf", "falun"}),
    smtp_recipients=frozenset({"xiazai@upup.info"}),
)

INDIA_KEYWORDS = KeywordSet(
    http_hosts=frozenset({"blocked.example.in", "www.blockedsite.com"}),
)

IRAN_KEYWORDS = KeywordSet(
    http_hosts=frozenset({"youtube.com", "www.blockedsite.com"}),
    sni_names=frozenset({"youtube.com", "www.blockedsite.com"}),
)

KAZAKHSTAN_KEYWORDS = KeywordSet(
    http_hosts=frozenset({"blocked.example.kz", "www.blockedsite.com"}),
)

# SNI-era boxes (post-paper): both filter on TLS metadata only.
SOUTHKOREA_KEYWORDS = KeywordSet(
    sni_names=frozenset({"blocked.example.kr", "www.blockedsite.com"}),
)

RUSSIA_KEYWORDS = KeywordSet(
    sni_names=frozenset({"blocked.example.ru", "www.blockedsite.com"}),
)
