"""India's Airtel censorship model (§5.2).

Behaviour reverse-engineered by the paper (building on Yadav et al.):

- HTTP only, and only on port 80 — any other port is uncensored;
- completely stateless: every client packet is inspected independently,
  with no connection tracking (a forbidden request without a handshake
  still elicits censorship);
- cannot reassemble TCP segments (why Strategy 8's induced segmentation
  wins 100% of the time);
- on a match it injects an HTTP 200 block page on a FIN+PSH+ACK packet,
  plus a follow-up RST "for good measure", rather than tearing the
  connection down with RSTs alone.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..netsim import PathContext
from ..packets import Packet, make_tcp_packet
from .base import Censor
from .dpi import match_http
from .keywords import INDIA_KEYWORDS, KeywordSet

__all__ = ["AirtelCensor", "build_block_page"]

_MOD = 1 << 32

#: Marker shared with :mod:`repro.apps.http` so clients recognize the page.
_BLOCK_BODY = (
    b"<html><body>This page has been blocked as per government order."
    b"</body></html>"
)


def build_block_page() -> bytes:
    """The HTTP 200 block page Airtel injects."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/html\r\n"
        b"Content-Length: " + str(len(_BLOCK_BODY)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + _BLOCK_BODY
    )


class AirtelCensor(Censor):
    """Stateless on-path HTTP censor modelling the Airtel ISP middleboxes."""

    name = "airtel"

    def __init__(
        self,
        keywords: KeywordSet = INDIA_KEYWORDS,
        censored_ports: FrozenSet[int] = frozenset({80}),
        inspect_depth: Optional[int] = None,
        rst_count: int = 1,
    ) -> None:
        super().__init__()
        self.keywords = keywords
        self.censored_ports = censored_ports
        # Adaptive knobs (repro.censors.adaptive): how many payload bytes
        # the DPI examines (None = unbounded, the calibrated behaviour)
        # and how many follow-up RSTs ride behind the block page.
        self.inspect_depth = inspect_depth
        self.rst_count = rst_count

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        if packet.tcp is None:
            return [packet]  # TCP censorship only
        if (
            self.is_client_to_server(direction)
            and packet.dport in self.censored_ports
            and packet.load
            and match_http(self._inspected(packet.load), self.keywords) is True
        ):
            self._inject_block_page(packet, ctx)
        return [packet]  # on-path: the request still reaches the server

    def _inspected(self, load: bytes) -> bytes:
        if self.inspect_depth is None:
            return load
        return load[: self.inspect_depth]

    def _inject_block_page(self, packet: Packet, ctx: PathContext) -> None:
        self.record_censorship(ctx, packet, "http host blocked")
        page = build_block_page()
        seq = packet.tcp.ack
        ack = (packet.tcp.seq + len(packet.load)) % _MOD
        block = make_tcp_packet(
            src=packet.dst,
            dst=packet.src,
            sport=packet.dport,
            dport=packet.sport,
            flags="FPA",
            seq=seq,
            ack=ack,
            load=page,
        )
        ctx.inject(block, toward="client")
        # Follow-up RST(s) (observed by Yadav et al. and in the paper).
        for _ in range(self.rst_count):
            rst = make_tcp_packet(
                src=packet.dst,
                dst=packet.src,
                sport=packet.dport,
                dport=packet.sport,
                flags="RA",
                seq=(seq + len(page) + 1) % _MOD,
                ack=ack,
            )
            ctx.inject(rst, toward="client")
