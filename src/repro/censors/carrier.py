"""Cellular carrier middleboxes (§7's anecdotal network-compatibility tests).

The paper found that all strategies worked over wifi, but the
simultaneous-open strategies failed on cellular networks — Strategies 1
and 3 on T-Mobile, and Strategies 1, 2 and 3 on AT&T — speculating that
in-network middleboxes were responsible. We model carrier boxes that
filter server-originated SYN packets (a plausible anti-spoofing NAT
behaviour) with exactly the selectivity needed to reproduce the observed
pattern: T-Mobile's box drops only *bare* server SYNs (so Strategy 2's
payload-bearing SYN still gets through), while AT&T's drops every server
SYN.
"""

from __future__ import annotations

from typing import List

from ..netsim import DIRECTION_S2C, Middlebox, PathContext
from ..packets import Packet

__all__ = ["CarrierNATBox", "tmobile_box", "att_box", "wifi_box"]


class CarrierNATBox(Middlebox):
    """A cellular carrier NAT that filters anomalous server packets."""

    def __init__(
        self,
        name: str = "carrier",
        drop_bare_server_syn: bool = False,
        drop_any_server_syn: bool = False,
    ) -> None:
        self.name = name
        self.drop_bare_server_syn = drop_bare_server_syn
        self.drop_any_server_syn = drop_any_server_syn
        self.dropped = 0

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        if packet.tcp is None:
            return [packet]  # TCP censorship only
        if direction == DIRECTION_S2C and packet.tcp.is_syn and not packet.tcp.is_ack:
            if self.drop_any_server_syn or (
                self.drop_bare_server_syn and not packet.tcp.load
            ):
                self.dropped += 1
                ctx.record("drop", packet, "carrier NAT filtered server SYN")
                return []
        return [packet]

    def reset(self) -> None:
        self.dropped = 0


def tmobile_box() -> CarrierNATBox:
    """T-Mobile model: filters bare server SYNs (breaks Strategies 1 and 3)."""
    return CarrierNATBox(name="t-mobile", drop_bare_server_syn=True)


def att_box() -> CarrierNATBox:
    """AT&T model: filters all server SYNs (breaks Strategies 1, 2 and 3)."""
    return CarrierNATBox(name="att", drop_any_server_syn=True)


def wifi_box() -> CarrierNATBox:
    """Plain wifi: no interference (all strategies work)."""
    return CarrierNATBox(name="wifi")
