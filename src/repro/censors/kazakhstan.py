"""Kazakhstan's in-path HTTP censorship model (§5.3).

Behaviour from the paper:

- in-network DPI of HTTP on port 80 triggered by a forbidden ``Host:``;
- on a match the censor performs a man-in-the-middle: all client packets
  in the TCP stream are intercepted for ~15 seconds, and a FIN+PSH+ACK
  block page is injected to the client;
- the censor monitors connections for patterns resembling *normal* HTTP
  connections and *ignores* flows that violate its handshake model:

  * three or more payload-bearing packets from the server during the
    handshake (Strategy 9 — two are not enough);
  * a duplicated well-formed benign GET prefix from the server during
    the handshake, which makes the censor believe the server is actually
    the client (Strategy 10 — the prefix must be well-formed up to
    ``GET / HTTP1.``);
  * a packet using none of the FIN/RST/SYN/ACK flags (Strategy 11);

- when content is injected before the connection is established, it is
  the *second* GET request the censor processes (or the first, after a
  simultaneous open) — the paper's censor-probing follow-up experiment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..netsim import PathContext
from ..packets import Packet, make_tcp_packet
from .base import Censor, FlowKey, flow_key
from .dpi import looks_like_http_get, match_http
from .keywords import KAZAKHSTAN_KEYWORDS, KeywordSet

__all__ = ["KazakhstanCensor", "MITM_DURATION", "PAYLOAD_IGNORE_THRESHOLD"]

_MOD = 1 << 32

#: How long the censor intercepts client packets after a match (seconds).
MITM_DURATION = 15.0

#: Server handshake payloads needed before the censor gives up on a flow.
PAYLOAD_IGNORE_THRESHOLD = 3

_BLOCK_BODY = (
    b"<html><body>This page has been blocked by order of the Republic."
    b"</body></html>"
)


def _block_page() -> bytes:
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/html\r\n"
        b"Content-Length: " + str(len(_BLOCK_BODY)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + _BLOCK_BODY
    )


class _KZFlow:
    """Per-flow censor state."""

    def __init__(self) -> None:
        self.handshake_done = False
        self.server_payloads = 0
        self.server_gets = 0
        self.sim_open = False
        self.ignored = False
        self.mitm_until = 0.0


class KazakhstanCensor(Censor):
    """In-path HTTP censor with a handshake-pattern model."""

    name = "kazakhstan"

    def __init__(
        self,
        keywords: KeywordSet = KAZAKHSTAN_KEYWORDS,
        censored_ports: FrozenSet[int] = frozenset({80}),
        mitm_duration: float = MITM_DURATION,
        payload_ignore_threshold: int = PAYLOAD_IGNORE_THRESHOLD,
        inspect_depth: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.keywords = keywords
        self.censored_ports = censored_ports
        # Adaptive knobs (repro.censors.adaptive): defaults reproduce the
        # module constants the paper's calibration uses.
        self.mitm_duration = mitm_duration
        self.payload_ignore_threshold = payload_ignore_threshold
        self.inspect_depth = inspect_depth
        self.flows: Dict[FlowKey, _KZFlow] = {}

    # ------------------------------------------------------------------

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        if packet.tcp is None:
            return [packet]  # TCP censorship only
        if packet.dport not in self.censored_ports and packet.sport not in self.censored_ports:
            return [packet]
        key = flow_key(packet)
        flow = self.flows.setdefault(key, _KZFlow())
        if self.is_client_to_server(direction):
            return self._client_packet(flow, packet, ctx)
        return self._server_packet(flow, packet, ctx)

    # ------------------------------------------------------------------

    def _server_packet(self, flow: _KZFlow, packet: Packet, ctx: PathContext) -> List[Packet]:
        if flow.ignored or flow.handshake_done:
            return [packet]
        tcp = packet.tcp
        if not set(tcp.flags) & set("FRSA"):
            # A packet using none of the standard handshake flags violates
            # the censor's model of a normal connection (Strategy 11).
            flow.ignored = True
            ctx.record("censor", packet, "flow ignored: non-standard flags")
            return [packet]
        if tcp.is_syn and not tcp.is_ack:
            flow.sim_open = True
        if tcp.load:
            if looks_like_http_get(tcp.load):
                flow.server_gets += 1
                threshold = 1 if flow.sim_open else 2
                if flow.server_gets >= threshold:
                    self._process_injected_get(flow, packet, ctx)
            else:
                flow.server_payloads += 1
                if flow.server_payloads >= self.payload_ignore_threshold:
                    # Payloads from the server during the handshake violate
                    # the censor's model (Strategy 9 — exactly three needed).
                    flow.ignored = True
                    ctx.record("censor", packet, "flow ignored: handshake payloads")
        return [packet]

    def _inspected(self, load: bytes) -> bytes:
        if self.inspect_depth is None:
            return load
        return load[: self.inspect_depth]

    def _process_injected_get(self, flow: _KZFlow, packet: Packet, ctx: PathContext) -> None:
        verdict = match_http(self._inspected(packet.load), self.keywords)
        if verdict is True:
            # The censor-probing experiment: injected forbidden content
            # elicits a censor response toward whoever it now believes is
            # the client — the server.
            self.record_censorship(ctx, packet, "injected forbidden GET")
            self._inject_block_page(packet, ctx, toward="server")
        else:
            # A benign well-formed GET convinces the censor the server is
            # the client; the real connection is ignored (Strategy 10).
            flow.ignored = True
            ctx.record("censor", packet, "flow ignored: server looks like client")

    # ------------------------------------------------------------------

    def _client_packet(self, flow: _KZFlow, packet: Packet, ctx: PathContext) -> List[Packet]:
        if flow.mitm_until and ctx.now < flow.mitm_until:
            ctx.record("drop", packet, "kz mitm interception")
            return []
        tcp = packet.tcp
        if not tcp.load:
            return [packet]
        if not flow.ignored and match_http(self._inspected(tcp.load), self.keywords) is True:
            self.record_censorship(ctx, packet, "http host blocked (mitm)")
            flow.mitm_until = ctx.now + self.mitm_duration
            self._inject_block_page(packet, ctx, toward="client")
            return []  # intercepted: the forbidden request never arrives
        flow.handshake_done = True
        return [packet]

    def _inject_block_page(self, packet: Packet, ctx: PathContext, toward: str) -> None:
        page = _block_page()
        block = make_tcp_packet(
            src=packet.dst,
            dst=packet.src,
            sport=packet.dport,
            dport=packet.sport,
            flags="FPA",
            seq=packet.tcp.ack,
            ack=(packet.tcp.seq + len(packet.load)) % _MOD,
            load=page,
        )
        ctx.inject(block, toward=toward)
